//! `proptest::collection::vec` — element strategy plus a size range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive size bounds, converted from the argument forms the
/// workspace uses (`usize` exact, `a..b`, `a..=b`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_excl: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_excl: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_excl: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_excl - self.size.lo) as u128;
        let n = self.size.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
