//! `&str` regex-literal strategies (`"[a-z_][a-z0-9_]{0,18}"` style).
//!
//! Supports the subset the workspace uses: literal characters, character
//! classes with ranges (`[a-z0-9_]`), and `{m}` / `{m,n}` quantifiers on
//! the preceding atom. Anything else panics at strategy construction time
//! (a test-authoring error, not an input-dependent condition).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

enum Atom {
    Class(Vec<char>),
    Literal(char),
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = chars.next() else {
                        panic!("unterminated character class in {pattern:?}");
                    };
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            for ch in lo..=hi {
                                set.push(ch);
                            }
                        }
                        _ => {
                            set.push(c);
                            prev = Some(c);
                        }
                    }
                }
                Atom::Class(set)
            }
            '\\' => Atom::Literal(chars.next().expect("escape target")),
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                panic!("unsupported regex feature {c:?} in {pattern:?}")
            }
            _ => Atom::Literal(c),
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let m: usize = spec.trim().parse().expect("quantifier count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse(self);
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let n = *min + rng.below((*max - *min) as u128 + 1) as usize;
            for _ in 0..n {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        let i = rng.below(set.len() as u128) as usize;
                        out.push(set[i]);
                    }
                }
            }
        }
        out
    }
}
