//! The case runner: deterministic RNG, config, regression-file replay and
//! persistence, and the per-case execution loop.

use std::cell::RefCell;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of novel cases to generate (after regression replay).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A non-panicking test-case failure (from `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// `TestCaseError::Reject` compatibility shim: discard the case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG (splitmix64 stream). One instance per test case,
/// seeded either from a regression file or from the (test name, case
/// index) pair, so every `cargo test` run reproduces the same inputs.
pub struct TestRng {
    state: u64,
    /// Index of the current case; the first few cases of each test lean
    /// harder on boundary values (see [`TestRng::edge_bias`]).
    pub(crate) case_index: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64, case_index: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            case_index,
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }

    /// True roughly once per `denom` calls — used to decide whether a
    /// generated integer should be a boundary value instead of uniform.
    /// The first few cases of each test quadruple the odds so boundary
    /// combinations surface even at low case counts.
    pub fn edge_bias(&mut self, denom: u64) -> bool {
        let denom = if self.case_index < 8 {
            (denom / 4).max(1)
        } else {
            denom
        };
        self.next_u64().is_multiple_of(denom)
    }
}

thread_local! {
    static LAST_INPUT: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Called by the `proptest!` expansion after generating a case's inputs,
/// so failures (including panics inside the body) can report them.
pub fn record_input(s: String) {
    LAST_INPUT.with(|c| *c.borrow_mut() = s);
}

fn last_input() -> String {
    LAST_INPUT.with(|c| c.borrow().clone())
}

/// Locate `<test file stem>.proptest-regressions` next to the test source.
/// `file!()` paths are workspace-relative; the test binary's
/// `CARGO_MANIFEST_DIR` points at the package, so splice them at the
/// trailing `tests/` component.
fn regression_path(file: &str) -> Option<PathBuf> {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let tail = match file.rfind("tests/") {
        Some(i) => &file[i..],
        None => file,
    };
    let mut p = PathBuf::from(manifest).join(tail);
    p.set_extension("proptest-regressions");
    Some(p)
}

/// Parse `cc <hex>` lines, folding each hex digest into a u64 seed by
/// XOR-ing its 8-byte chunks (so short and long digests both work).
fn read_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        if hex.len() < 16 {
            continue;
        }
        let mut fold = 0u64;
        for chunk in hex.as_bytes().chunks(16) {
            let s = std::str::from_utf8(chunk).unwrap_or("0");
            if let Ok(v) = u64::from_str_radix(s, 16) {
                // Left-align short trailing chunks so "cc 1234" != "cc 12340000".
                fold ^= v << (4 * (16 - s.len()));
            }
        }
        seeds.push(fold);
    }
    seeds
}

fn persist_failure(path: &Path, seed: u64, input: &str) {
    let header_needed = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    if header_needed {
        let _ = writeln!(
            f,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases."
        );
    }
    let _ = writeln!(f, "cc {seed:016x}{:048} # shrinks to {input}", 0);
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Run one property test: replay regression seeds, then `cfg.cases` novel
/// cases. The closure generates inputs from the RNG, records their debug
/// form via [`record_input`], and returns the body's verdict.
pub fn run<F>(cfg: &ProptestConfig, file: &str, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let reg_path = regression_path(file);
    let replay_seeds = reg_path
        .as_deref()
        .map(read_regression_seeds)
        .unwrap_or_default();

    for &seed in &replay_seeds {
        run_one(&mut case, seed, 0, None, file, name, true);
    }

    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cfg.cases);
    let base = fnv1a(name) ^ fnv1a(file).rotate_left(17);
    for i in 0..cases as u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        run_one(&mut case, seed, i, reg_path.as_deref(), file, name, false);
    }
}

fn run_one<F>(
    case: &mut F,
    seed: u64,
    case_index: u64,
    persist_to: Option<&Path>,
    file: &str,
    name: &str,
    replay: bool,
) where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_seed(seed, case_index);
    record_input(String::from("<inputs not yet generated>"));
    let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
    let failure: Option<String> = match outcome {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e.to_string()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            Some(format!("panic: {msg}"))
        }
    };
    if let Some(msg) = failure {
        let input = last_input();
        if let Some(p) = persist_to {
            persist_failure(p, seed, &input);
        }
        let kind = if replay { "regression replay" } else { "case" };
        panic!(
            "proptest {kind} failed for {name} ({file}):\n\
             {msg}\n\
             input: {input}\n\
             seed: cc {seed:016x}"
        );
    }
}
