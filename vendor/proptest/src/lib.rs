//! An offline, dependency-free shim implementing the subset of the
//! `proptest` API this workspace uses.
//!
//! The build container has no access to crates.io, so the real `proptest`
//! cannot be vendored; this crate keeps the property tests *running* with
//! the same source text. Semantics preserved:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} }`
//!   runs `f` over `cases` generated inputs; `prop_assert!`/`prop_assert_eq!`
//!   report failures with the offending input.
//! * `.proptest-regressions` files are honoured: each `cc <hex>` line is
//!   folded into a deterministic RNG seed and replayed *before* novel cases
//!   are generated; novel failures are appended to the same file.
//! * integer generation is edge-biased (0, ±1, extremes, and ±2^31-area
//!   boundary values) so off-by-one window bugs surface without millions of
//!   cases.
//!
//! Not implemented: shrinking (failures report the raw generated input),
//! weighted `prop_oneof!`, `prop_compose!`, and the strategy combinators
//! the workspace does not call.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

// `proptest::bool::ANY` — `bool` is a valid module name even though it
// shadows the primitive type's name in paths like `bool::ANY`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` item macro: a config header plus `#[test]` functions
/// whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(&__cfg, file!(), stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(stringify!($arg));
                        __s.push_str(" = ");
                        __s.push_str(&format!("{:?}", &$arg));
                        __s.push_str(", ");
                    )+
                    $crate::test_runner::record_input(__s);
                }
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`: fail the
/// current case (without panicking) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// `prop_oneof![a, b, c]`: choose uniformly among the strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
