//! `any::<T>()` — edge-biased uniform generation for the primitive types
//! the workspace draws from.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct ArbitraryStrategy<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8: draw from the boundary pool. These include the
                // ±2^31 ± 2^11 neighbourhood that pc-relative addressing
                // windows (auipc+lo12) pivot on.
                if rng.edge_bias(8) {
                    const EDGES: [u64; 20] = [
                        0,
                        1,
                        2,
                        0x7FF,
                        0x800,
                        0x801,
                        0xFFF,
                        0x1000,
                        0x7FFF_F7FF,
                        0x7FFF_F800,
                        0x7FFF_FFFF,
                        0x8000_0000,
                        0x8000_0800,
                        0x8000_0801,
                        0xFFFF_F800,
                        0xFFFF_FFFF,
                        u64::MAX,
                        u64::MAX - 1,
                        i64::MAX as u64,
                        i64::MIN as u64,
                    ];
                    let i = rng.below(EDGES.len() as u128) as usize;
                    return EDGES[i] as $t;
                }
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.edge_bias(8) {
            const SPECIALS: [f64; 10] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                f64::MIN_POSITIVE,
                f64::MAX,
                5e-324, // smallest subnormal
            ];
            let i = rng.below(SPECIALS.len() as u128) as usize;
            return SPECIALS[i];
        }
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        if rng.edge_bias(8) {
            const SPECIALS: [f32; 8] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::NAN,
                f32::MIN_POSITIVE,
            ];
            let i = rng.below(SPECIALS.len() as u128) as usize;
            return SPECIALS[i];
        }
        f32::from_bits(rng.next_u32())
    }
}
