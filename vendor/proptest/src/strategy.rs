//! The `Strategy` trait and the combinators the workspace uses:
//! `Just`, `prop_map`, ranges, tuples, `Union` (for `prop_oneof!`).

use crate::test_runner::TestRng;

/// A generator of values. Unlike real proptest there is no shrinking
/// tree: `generate` produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retry generation until `f` accepts the value (bounded; panics with
    /// the reason if the filter rejects everything).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Type-erase for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        )
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u128) as usize;
        self.0[i].generate(rng)
    }
}

// ---- Ranges as strategies -------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Boundary bias: hit the ends of the window now and then.
                if rng.edge_bias(16) {
                    return if rng.next_u64() & 1 == 0 {
                        self.start
                    } else {
                        self.end - 1
                    };
                }
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if rng.edge_bias(16) {
                    return if rng.next_u64() & 1 == 0 { lo } else { hi };
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- Tuples of strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
