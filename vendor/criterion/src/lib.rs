//! An offline shim implementing the subset of the `criterion` API the
//! workspace's benches use. It actually measures (wall-clock over a fixed
//! number of iterations) and prints one line per benchmark, but does none
//! of criterion's statistics, warm-up calibration, or HTML reporting.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_bench(name, sample_size, None, f);
        self
    }

    /// Parse command-line args (`cargo bench` passes `--bench`); accepted
    /// and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed_nanos: u128,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed_nanos = start.elapsed().as_nanos();
    }

    pub fn iter_batched<S, R, SF, F>(&mut self, mut setup: SF, mut f: F, _size: BatchSize)
    where
        SF: FnMut() -> S,
        F: FnMut(S) -> R,
    {
        let mut total = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(f(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_nanos = total;
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: sample_size.max(1) as u64,
        elapsed_nanos: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_nanos as f64 / b.iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if per_iter > 0.0 => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / per_iter * 1e9 / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:.1} Melem/s", n as f64 / per_iter * 1e9 / 1e6)
        }
        _ => String::new(),
    };
    println!("{label:<48} {:>12.0} ns/iter{rate}", per_iter);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
