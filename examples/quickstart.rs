//! Quickstart: static binary rewriting in five steps.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Mirrors the basic Dyninst workflow (Figure 1, static path): open a
//! RISC-V ELF, analyze it, insert a counter snippet at a function's entry,
//! write the instrumented binary, and run it.

use rvdyn::{BinaryEditor, PointKind, Snippet};

fn main() {
    // 1. A mutatee. Normally this would be a file from disk; the workspace
    //    ships the paper's matmul application as a generated ELF.
    let elf: Vec<u8> = rvdyn_asm::matmul_program(32, 4).to_bytes().unwrap();
    println!("mutatee: {} bytes of ELF", elf.len());

    // 2. Open + analyze (SymtabAPI + ParseAPI under the hood).
    let mut editor = BinaryEditor::open(&elf).expect("valid RISC-V ELF");
    println!("profile: {}", editor.profile().arch_string());
    println!(
        "functions: {:?}",
        editor
            .code()
            .functions
            .values()
            .filter_map(|f| f.name.clone())
            .collect::<Vec<_>>()
    );

    // 3. Instrumentation: one counter, incremented at every entry of
    //    `matmul` (PatchAPI points + CodeGenAPI snippets).
    let counter = editor.alloc_var(8);
    let points = editor.find_points("matmul", PointKind::FuncEntry).unwrap();
    editor.insert(&points, Snippet::increment(counter));

    // 4. Rewrite: a new ELF with the instrumentation baked in.
    let rewritten = editor.rewrite().expect("instrumentation applies");
    println!("rewritten: {} bytes of ELF", rewritten.len());

    // 5. Run on the RV64GC execution substrate and read the counter.
    let out = rvdyn::run_elf(&rewritten, 2_000_000_000).expect("runs");
    println!("exit code: {}", out.exit_code);
    println!(
        "modelled time: {:.6}s ({} instructions)",
        out.seconds, out.icount
    );
    println!(
        "matmul was called {} times",
        out.read_u64(counter.addr).unwrap()
    );
    assert_eq!(out.read_u64(counter.addr), Some(4));
}
