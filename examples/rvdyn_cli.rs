//! A small command-line front end over the rvdyn toolkits, working on
//! RISC-V ELF *files* — the shape of tool a downstream user builds first.
//!
//! ```sh
//! cargo run --release --example rvdyn_cli -- gen matmul /tmp/mm.elf 50 2
//! cargo run --release --example rvdyn_cli -- info /tmp/mm.elf
//! cargo run --release --example rvdyn_cli -- disasm /tmp/mm.elf matmul
//! cargo run --release --example rvdyn_cli -- cfg /tmp/mm.elf matmul
//! cargo run --release --example rvdyn_cli -- count /tmp/mm.elf matmul blocks /tmp/mm-instr.elf
//! cargo run --release --example rvdyn_cli -- run /tmp/mm-instr.elf
//! cargo run --release --example rvdyn_cli -- --json profile /tmp/mm.elf matmul entry
//! ```
//!
//! Global flags: `--json` switches the diagnostics output of `info`,
//! `count`, `run` and `profile` to the machine-readable
//! `rvdyn-diagnostics-v1` schema; `--trace` streams telemetry events to
//! stderr as the pipeline runs; `--engine <interpreter|cached>` selects
//! the execution engine for `run`/`profile` (defaults to the `RVDYN_EMU`
//! environment knob, see docs/EMULATOR.md).

use rvdyn::{BinaryEditor, CounterPlacement, EmuEngine, PointKind, SessionOptions, Snippet};
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: rvdyn_cli [--json] [--trace] [--threads N] [--engine E] <command> ...\n\
         \n\
         gen <matmul|fib|switch|memcpy|atomics|indirect|tiny|many> <out.elf> [args…]\n\
         info <elf>\n\
         disasm <elf> [function]\n\
         cfg <elf> <function> [--dot]\n\
         count <elf> <function> <entry|blocks|blocks-optimal|edges> <out.elf>\n\
         run <elf>   (prints exit code, modelled time, and the counter at\n\
                      the patch-data base if the binary was instrumented)\n\
         profile <elf> <function> <entry|blocks|blocks-optimal|edges>\n\
                     (instrument + run in one session: full per-stage\n\
                      wall-clock attribution in the diagnostics; the two\n\
                      blocks classes also print exact per-block counts —\n\
                      blocks-optimal places counters only on the Knuth-\n\
                      minimal site set and reconstructs the rest)\n\
         memtrace <elf> <out.trace> [function] [capacity]\n\
         \x20            (attach the memory-access tracer to a fresh process:\n\
         \x20             every load/store — optionally only in <function> —\n\
         \x20             is recorded (pc, address, width, direction) into an\n\
         \x20             in-mutatee ring of [capacity] records, drained after\n\
         \x20             exit and written to <out.trace> as the validated\n\
         \x20             rvdyn-trace-v1 stream — see docs/TOOLS.md)\n\
         sample <elf> [interval] [N]\n\
         \x20            (cycle-interval sampling profiler: interrupt every\n\
         \x20             [interval] modelled cycles — default 10000 — walk\n\
         \x20             the stack with the RISC-V frame steppers, and print\n\
         \x20             the folded flame-style profile with per-function\n\
         \x20             self/total counts; N>1 samples a fleet of N\n\
         \x20             processes round-robin — see docs/TOOLS.md)\n\
         cache <elf> [elf…]\n\
                     (open every file twice through one shared analysis\n\
                      cache: prints each file's content key and whether\n\
                      the front half was recomputed or reused — files\n\
                      with identical code/data/symbols share one entry)\n\
         fleet <elf> <function> [N]\n\
                     (instrument a fleet of N mutatees — default 8 —\n\
                      from one controller: the function-entry counter is\n\
                      planned once, delivered into every process with\n\
                      read-back verification, and all processes run to\n\
                      exit through the event loop; --threads sizes the\n\
                      worker pool, --json prints the fleet rollup —\n\
                      see docs/FLEET.md for the controller contract)\n\
         \n\
         --json        emit diagnostics as one rvdyn-diagnostics-v1 JSON line\n\
         --trace       stream telemetry events to stderr\n\
         --threads N   fan the parse and instrument plan phases over N\n\
                       workers (the output bytes are identical for any N)\n\
         --engine E    execution engine for run/profile: interpreter (the\n\
                       reference) or cached (the block-translating DBT\n\
                       back end — same counts/cycles, much faster);\n\
                       defaults to the RVDYN_EMU environment knob"
    );
    exit(2);
}

fn main() {
    let mut json = false;
    let mut trace = false;
    let mut threads = 1usize;
    let mut engine = EmuEngine::from_env();
    let mut args = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--json" => json = true,
            "--trace" => trace = true,
            "--threads" => {
                threads = raw
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--engine" => {
                engine = match raw.next().as_deref() {
                    Some("interpreter") => EmuEngine::Interpreter,
                    Some("cached") => EmuEngine::Cached,
                    other => {
                        eprintln!("unknown engine {other:?}");
                        usage()
                    }
                }
            }
            _ => args.push(a),
        }
    }
    let opts = || {
        let o = SessionOptions::new().threads(threads).engine(engine);
        if trace {
            o.telemetry(Arc::new(rvdyn::StderrSink))
        } else {
            o
        }
    };
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "gen" => {
            let (prog, out) = (arg(&args, 1), arg(&args, 2));
            let bin = match prog.as_str() {
                "matmul" => rvdyn_asm::matmul_program(
                    num(&args, 3).unwrap_or(100) as usize,
                    num(&args, 4).unwrap_or(1) as usize,
                ),
                "fib" => rvdyn_asm::fib_program(num(&args, 3).unwrap_or(20)),
                "switch" => rvdyn_asm::switch_program(num(&args, 3).unwrap_or(64)),
                "switch_rel" => rvdyn_asm::switch_rel_program(num(&args, 3).unwrap_or(64)),
                "deep" => rvdyn_asm::deep_call_program(num(&args, 3).unwrap_or(16)),
                "memcpy" => rvdyn_asm::memcpy_program(),
                "atomics" => rvdyn_asm::atomics_program(num(&args, 3).unwrap_or(100)),
                "indirect" => rvdyn_asm::indirect_entry_program(num(&args, 3).unwrap_or(32)),
                "tiny" => rvdyn_asm::tiny_function_program(num(&args, 3).unwrap_or(32)),
                "many" => rvdyn_asm::many_functions_program(num(&args, 3).unwrap_or(64) as usize),
                other => {
                    eprintln!("unknown program {other:?}");
                    usage()
                }
            };
            std::fs::write(&out, bin.to_bytes().expect("serialise")).expect("write");
            println!("wrote {out}");
        }
        "info" => {
            let ed = open(&arg(&args, 1), opts());
            if json {
                println!("{}", ed.diagnostics().to_json());
                return;
            }
            let b = ed.binary();
            println!("entry:   {:#x}", b.entry);
            println!("profile: {}", ed.profile().arch_string());
            println!("sections:");
            for s in &b.sections {
                println!(
                    "  {:<18} {:#10x}  {:>7} bytes  flags {:#x}",
                    s.name,
                    s.addr,
                    s.data.len(),
                    s.flags
                );
            }
            println!("functions:");
            for f in ed.code().functions.values() {
                let (lo, hi) = f.extent();
                println!(
                    "  {:#10x}  {:<16} {:>5} bytes, {} blocks, {} loops",
                    f.entry,
                    f.name.as_deref().unwrap_or("?"),
                    hi - lo,
                    f.blocks.len(),
                    f.loops.len()
                );
            }
            println!("--- pipeline diagnostics ---");
            println!("{}", ed.diagnostics());
        }
        "disasm" => {
            let ed = open(&arg(&args, 1), opts());
            match args.get(2) {
                Some(name) => {
                    let addr = ed.function_addr(name).unwrap_or_else(die);
                    let f = &ed.code().functions[&addr];
                    for b in f.blocks.values() {
                        for i in &b.insts {
                            println!(
                                "{:#10x}:  {}",
                                i.address,
                                rvdyn_isa::disasm::format_instruction(i)
                            );
                        }
                    }
                }
                None => {
                    for s in ed.binary().code_sections() {
                        print!("{}", rvdyn_isa::disasm::disassemble(&s.data, s.addr));
                    }
                }
            }
        }
        "cfg" => {
            let ed = open(&arg(&args, 1), opts());
            let addr = ed.function_addr(&arg(&args, 2)).unwrap_or_else(die);
            let f = &ed.code().functions[&addr];
            if args.get(3).map(String::as_str) == Some("--dot") {
                print!("{}", f.to_dot());
                return;
            }
            for b in f.blocks.values() {
                println!("block {:#x}..{:#x}", b.start, b.end);
                for e in &b.edges {
                    match e.target {
                        Some(t) => println!("  {:?} → {:#x}", e.kind, t),
                        None => println!("  {:?}", e.kind),
                    }
                }
            }
            for l in &f.loops {
                println!("loop header {:#x}: {} blocks", l.header, l.body.len());
            }
        }
        "count" => {
            let class = arg(&args, 3);
            let mut ed = open(&arg(&args, 1), class_opts(&class, opts()));
            let func = arg(&args, 2);
            if class == "blocks-optimal" {
                let bc = ed.count_blocks(&func).unwrap_or_else(die);
                if !json {
                    println!(
                        "placing {} counter(s) over {} block(s) in {func}",
                        bc.counters_placed(),
                        bc.blocks_covered()
                    );
                }
                let out = arg(&args, 4);
                std::fs::write(&out, ed.rewrite().unwrap_or_else(die)).expect("write");
                if json {
                    println!("{}", ed.diagnostics().to_json());
                    return;
                }
                println!("wrote {out}");
                println!("--- pipeline diagnostics ---");
                println!("{}", ed.diagnostics());
                return;
            }
            let kind = point_kind(&class);
            let counter = ed.alloc_var(8);
            let pts = ed.find_points(&func, kind).unwrap_or_else(die);
            if !json {
                println!("instrumenting {} point(s) in {func}", pts.len());
            }
            ed.insert(&pts, Snippet::increment(counter));
            let out = arg(&args, 4);
            std::fs::write(&out, ed.rewrite().unwrap_or_else(die)).expect("write");
            if json {
                println!("{}", ed.diagnostics().to_json());
                return;
            }
            println!("wrote {out} (counter lives at {:#x})", counter.addr);
            println!("--- pipeline diagnostics ---");
            println!("{}", ed.diagnostics());
        }
        "run" => {
            let elf = std::fs::read(arg(&args, 1)).expect("read");
            let r = rvdyn::run_elf_with(&elf, 10_000_000_000, engine).unwrap_or_else(die);
            if json {
                let mut d = rvdyn::Diagnostics::default();
                d.record_run(r.icount, r.cycles);
                println!("{}", d.to_json());
                return;
            }
            println!("exit code:     {}", r.exit_code);
            println!("instructions:  {}", r.icount);
            println!("modelled time: {:.6}s @1.4GHz", r.seconds);
            if !r.stdout.is_empty() {
                match std::str::from_utf8(&r.stdout) {
                    Ok(s) if s.chars().all(|c| !c.is_control() || c == '\n') => {
                        println!("stdout:        {s:?}")
                    }
                    _ => println!("stdout:        {} raw bytes", r.stdout.len()),
                }
            }
            // Counter convention: the first slot of the patch data area.
            if let Some(v) = r.read_u64(rvdyn::PatchLayout::default().patch_data) {
                println!("counter[0]:    {v}");
            }
            let mut d = rvdyn::Diagnostics::default();
            d.record_run(r.icount, r.cycles);
            println!("--- pipeline diagnostics ---");
            println!("{d}");
        }
        "profile" => {
            // The full pipeline in one session: open → parse → instrument
            // → commit → run, so the diagnostics carry wall-clock timings
            // for every stage.
            let class = arg(&args, 3);
            let mut ed = open(&arg(&args, 1), class_opts(&class, opts()));
            let func = arg(&args, 2);
            if class == "blocks" || class == "blocks-optimal" {
                // Per-block profile through the counter-placement API:
                // exact counts for every block, from however many
                // counters the placement mode asks for.
                let bc = ed.count_blocks(&func).unwrap_or_else(die);
                let r = ed.instrument_and_run(10_000_000_000).unwrap_or_else(die);
                let counts = ed.block_counts(&bc, &r).unwrap_or_else(die);
                if json {
                    println!("{}", ed.diagnostics().to_json());
                    return;
                }
                println!("exit code:  {}", r.exit_code);
                println!(
                    "counters:   {} placed over {} block(s)",
                    bc.counters_placed(),
                    bc.blocks_covered()
                );
                for (block, count) in &counts {
                    println!("  block {block:#10x}: {count}");
                }
                println!("--- pipeline diagnostics ---");
                println!("{}", ed.diagnostics());
                return;
            }
            let kind = point_kind(&class);
            let counter = ed.alloc_var(8);
            let pts = ed.find_points(&func, kind).unwrap_or_else(die);
            ed.insert(&pts, Snippet::increment(counter));
            let r = ed.instrument_and_run(10_000_000_000).unwrap_or_else(die);
            if json {
                println!("{}", ed.diagnostics().to_json());
                return;
            }
            println!("exit code:  {}", r.exit_code);
            println!("counter:    {:?}", r.read_u64(counter.addr));
            println!("--- pipeline diagnostics ---");
            println!("{}", ed.diagnostics());
        }
        "fleet" => {
            // Fleet-scale dynamic instrumentation (docs/FLEET.md): one
            // controller, one shared plan, N verified deliveries, one
            // event loop running every mutatee to exit.
            let elf = std::fs::read(arg(&args, 1)).expect("read");
            let func = arg(&args, 2);
            let n = num(&args, 3).unwrap_or(8) as usize;
            let mut fleet = rvdyn::FleetController::open(&elf, opts()).unwrap_or_else(die);
            let pids = fleet.spawn(n);
            let counter = fleet.alloc_var(8);
            let pts = fleet
                .find_points(&func, PointKind::FuncEntry)
                .unwrap_or_else(die);
            fleet.insert(&pts, Snippet::increment(counter));
            fleet.commit_all().unwrap_or_else(die);
            fleet.run_all();
            let summary = fleet.summary();
            if json {
                println!("{}", summary.to_json());
                return;
            }
            println!(
                "fleet of {} over {func} ({} point(s), {} worker thread(s))",
                pids.len(),
                pts.len(),
                threads
            );
            for pid in &pids {
                if let Some(v) = fleet.read_var(*pid, counter) {
                    println!("  pid {pid:>4}: counter {v}");
                }
            }
            println!("--- fleet rollup ---");
            print!("{summary}");
            println!("--- controller diagnostics ---");
            println!("{}", fleet.diagnostics());
            if summary.processes_failed > 0 {
                exit(1);
            }
        }
        "memtrace" => {
            // Memory-access tracing (docs/TOOLS.md): plan record-emitting
            // snippets at every load/store, run the mutatee, drain the
            // ring, and persist the validated rvdyn-trace-v1 stream.
            let elf = std::fs::read(arg(&args, 1)).expect("read");
            let out_path = arg(&args, 2);
            let funcs = args.get(3).map(|f| vec![f.clone()]);
            let capacity = num(&args, 4).unwrap_or(1 << 16);
            let bin = rvdyn::Binary::parse(&elf).unwrap_or_else(die);
            let mut dy = rvdyn::DynamicInstrumenter::create_with(bin, opts());
            let tracer =
                rvdyn::MemTracer::plan_dynamic(&mut dy, &rvdyn::TraceOptions { capacity, funcs })
                    .unwrap_or_else(die);
            dy.commit().unwrap_or_else(die);
            let code = dy.run_to_exit().unwrap_or_else(die);
            let drained = tracer.drain_dynamic(&mut dy).unwrap_or_else(die);
            let file = std::fs::File::create(&out_path).expect("create");
            let mut sink = rvdyn::TraceSink::new(std::io::BufWriter::new(file));
            for r in &drained.records {
                sink.push(*r).expect("write record");
            }
            sink.finish().expect("seal trace");
            // Close the loop: the file we just wrote must validate.
            let reader = rvdyn::TraceReader::parse(&std::fs::read(&out_path).expect("re-read"))
                .unwrap_or_else(die);
            if json {
                println!("{}", dy.diagnostics().to_json());
                return;
            }
            let (lb, sb) = reader.bytes_moved();
            println!("exit code: {code}");
            println!(
                "sites:     {} instrumented load/store site(s)",
                tracer.sites()
            );
            println!("records:   {} ({} dropped)", reader.len(), drained.dropped);
            println!("loads:     {} ({lb} bytes)", reader.loads().count());
            println!("stores:    {} ({sb} bytes)", reader.stores().count());
            println!("wrote {out_path}");
            println!("--- pipeline diagnostics ---");
            println!("{}", dy.diagnostics());
        }
        "sample" => {
            // Sampling profiler (docs/TOOLS.md): cycle-interval
            // interrupts, stackwalker frames, folded flame-style output.
            let elf = std::fs::read(arg(&args, 1)).expect("read");
            let interval = num(&args, 2).unwrap_or(10_000);
            let n = num(&args, 3).unwrap_or(1) as usize;
            let profiler = rvdyn::Profiler::new(rvdyn::ProfileOptions {
                interval_cycles: interval,
                max_samples: 1 << 20,
            });
            if n > 1 {
                let mut fleet = rvdyn::FleetController::open(&elf, opts()).unwrap_or_else(die);
                fleet.spawn(n);
                let out = profiler.sample_fleet(&mut fleet).unwrap_or_else(die);
                if json {
                    println!("{}", fleet.diagnostics().to_json());
                    return;
                }
                println!(
                    "fleet of {n}: {} sample(s), max depth {}",
                    out.profile.samples, out.profile.max_depth
                );
                for (pid, p) in &out.per_process {
                    println!("  pid {pid:>4}: {} sample(s)", p.samples);
                }
                print!("{}", out.profile.report());
                println!("--- controller diagnostics ---");
                println!("{}", fleet.diagnostics());
                return;
            }
            let bin = rvdyn::Binary::parse(&elf).unwrap_or_else(die);
            let mut dy = rvdyn::DynamicInstrumenter::create_with(bin, opts());
            let r = profiler.sample_dynamic(&mut dy).unwrap_or_else(die);
            if json {
                println!("{}", dy.diagnostics().to_json());
                return;
            }
            println!("exit code: {}", r.exit_code);
            println!(
                "samples:   {} every {interval} cycle(s), max depth {}",
                r.profile.samples, r.profile.max_depth
            );
            print!("{}", r.profile.report());
            println!("--- folded stacks (flamegraph input) ---");
            print!("{}", r.profile.folded_lines());
            println!("--- pipeline diagnostics ---");
            println!("{}", dy.diagnostics());
        }
        "cache" => {
            // Two passes over the file list through one shared cache:
            // the first pass computes (or shares) each analysis, the
            // second demonstrates which opens are now free.
            let paths: Vec<String> = args[1..].to_vec();
            if paths.is_empty() {
                usage();
            }
            let cache = rvdyn::AnalysisCache::new(paths.len());
            let mut last = None;
            for pass in 1..=2 {
                if !json {
                    println!("pass {pass}:");
                }
                for path in &paths {
                    let bytes = std::fs::read(path).unwrap_or_else(|e| {
                        eprintln!("cannot read {path}: {e}");
                        exit(1)
                    });
                    let ed = BinaryEditor::open_cached(&bytes, opts(), &cache).unwrap_or_else(die);
                    let d = ed.diagnostics();
                    if !json {
                        println!(
                            "  {:016x}  {}  {path}",
                            ed.analysis().key().prefix(),
                            if d.analysis_cache_hits > 0 {
                                "hit "
                            } else {
                                "miss"
                            }
                        );
                    }
                    last = Some(ed);
                }
            }
            let stats = cache.stats();
            if json {
                // The last session's diagnostics line carries the
                // rvdyn-diagnostics-v1 schema; cache totals follow the
                // per-session convention (this one session's view).
                println!(
                    "{}",
                    last.expect("at least one file").diagnostics().to_json()
                );
                return;
            }
            println!(
                "cache: {} hits, {} misses, {} evictions, {}/{} entries resident",
                stats.hits, stats.misses, stats.evictions, stats.entries, stats.capacity
            );
        }
        _ => usage(),
    }
}

/// Session options for a point class: `blocks-optimal` switches the
/// counter-placement mode, everything else keeps the defaults.
fn class_opts(class: &str, o: SessionOptions) -> SessionOptions {
    if class == "blocks-optimal" {
        o.counter_placement(CounterPlacement::Optimal)
    } else {
        o
    }
}

fn point_kind(s: &str) -> PointKind {
    match s {
        "entry" => PointKind::FuncEntry,
        "blocks" => PointKind::BlockEntry,
        "edges" => PointKind::BranchTaken,
        other => {
            eprintln!("unknown point class {other:?}");
            usage()
        }
    }
}

fn arg(args: &[String], i: usize) -> String {
    args.get(i).cloned().unwrap_or_else(|| usage())
}

fn num(args: &[String], i: usize) -> Option<u64> {
    args.get(i).map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad numeric argument: {s:?}");
            exit(2)
        })
    })
}

fn open(path: &str, opts: SessionOptions) -> BinaryEditor {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    BinaryEditor::open_with(&bytes, opts).unwrap_or_else(die)
}

fn die<T>(e: impl std::fmt::Display) -> T {
    eprintln!("error: {e}");
    exit(1)
}
