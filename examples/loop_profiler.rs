//! Loop profiler: per-loop iteration counts via loop-back-edge points —
//! the §2 "loop back edges" point class, in the shape performance tools
//! like HPCToolkit use to find hot loops.
//!
//! ```sh
//! cargo run --release --example loop_profiler
//! ```

use rvdyn::{BinaryEditor, PointKind, SessionOptions, Snippet};

fn main() {
    let n = 24usize;
    let bin = rvdyn_asm::matmul_program(n, 1);
    let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());

    // One counter per natural loop of matmul, attached to its latch.
    let mm_entry = ed.function_addr("matmul").unwrap();
    let loops: Vec<(u64, usize)> = ed.code().functions[&mm_entry]
        .loops
        .iter()
        .map(|l| (l.header, l.body.len()))
        .collect();
    println!("matmul has {} natural loops:", loops.len());

    let all_latch_points = ed.find_points("matmul", PointKind::LoopBackEdge).unwrap();
    let mut counters = Vec::new();
    for p in &all_latch_points {
        let c = ed.alloc_var(8);
        ed.insert(&[*p], Snippet::increment(c));
        counters.push((*p, c));
    }

    let out = ed.rewrite().expect("instrumentation applies");
    let r = rvdyn::run_elf(&out, 2_000_000_000).expect("runs");
    assert_eq!(r.exit_code, 0);

    println!("{:<12} {:>14}  note", "latch @", "iterations");
    let mut rows: Vec<(u64, u64)> = counters
        .iter()
        .map(|(p, c)| (p.addr, r.read_u64(c.addr).unwrap()))
        .collect();
    rows.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    for (addr, count) in &rows {
        let note = match *count as usize {
            c if c == n * n * n => "k-loop (hottest)",
            c if c == n * n => "j-loop",
            c if c == n => "i-loop",
            _ => "",
        };
        println!("{addr:#12x} {count:>14}  {note}");
    }
    // The triple nest: n³ + n² + n latch executions.
    let total: u64 = rows.iter().map(|&(_, c)| c).sum();
    assert_eq!(total as usize, n * n * n + n * n + n);
    println!("\ntotal loop iterations: {total}");
}
