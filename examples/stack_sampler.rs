//! Stack sampler: the STAT-style debugging workflow (§2 cites Stack Trace
//! Analysis for large-scale debugging as a flagship Dyninst consumer).
//!
//! ```sh
//! cargo run --example stack_sampler
//! ```
//!
//! Attaches to the mutatee, plants a breakpoint inside the recursion,
//! and on each of several hits walks the call stack with the RISC-V
//! frame steppers (§3.2.7) — no frame pointer required.

use rvdyn::{CodeObject, Event, ParseOptions, Process, StackWalker};

fn main() {
    let bin = rvdyn_asm::fib_program(8);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let fib = bin.symbol_by_name("fib").unwrap().value;

    let mut p = Process::launch(&bin);
    p.set_breakpoint(fib).unwrap();

    let walker = StackWalker::new();
    let mut samples = 0;
    let mut deepest = 0usize;
    loop {
        match p.cont().expect("process control") {
            Event::Breakpoint(_) => {
                samples += 1;
                let frames = walker.walk_process(&p, &co);
                if samples <= 5 || frames.len() > deepest {
                    println!("sample {samples}: {} frames", frames.len());
                    for (i, fr) in frames.iter().enumerate() {
                        println!(
                            "  #{i} pc={:#x} sp={:#x} {}",
                            fr.pc,
                            fr.sp,
                            fr.func_name.as_deref().unwrap_or("??")
                        );
                    }
                }
                deepest = deepest.max(frames.len());
            }
            Event::Exited(code) => {
                println!("\nmutatee exited with {code}");
                break;
            }
            e => panic!("unexpected event {e:?}"),
        }
        // Only sample the first handful plus track the deepest stack.
        if samples > 200 {
            p.remove_breakpoint(fib).unwrap();
        }
    }
    println!("{samples} samples; deepest stack: {deepest} frames");
    // fib(8) recurses 8 deep → 8 fib frames + main + _start.
    assert_eq!(deepest, 8 + 2);
}
