//! CFG explorer: the analysis side of rvdyn, no instrumentation.
//!
//! ```sh
//! cargo run --example cfg_explorer
//! ```
//!
//! Parses two mutatees and prints what ParseAPI/DataflowAPI discovered:
//! functions, basic blocks, edges (including the classified `jal`/`jalr`
//! purposes of §3.2.3), natural loops, a resolved jump table, and
//! per-block register liveness.

use rvdyn::{CodeObject, Liveness, ParseOptions};
use rvdyn_isa::disasm::format_instruction;
use rvdyn_parse::EdgeKind;

fn explore(name: &str, bin: &rvdyn::Binary) {
    println!("==== {name} ====");
    let co = CodeObject::parse(bin, &ParseOptions::default());
    for f in co.functions.values() {
        let (lo, hi) = f.extent();
        println!(
            "\nfunction {} @ {:#x}..{:#x}: {} blocks, {} loops{}",
            f.name.as_deref().unwrap_or("<anon>"),
            lo,
            hi,
            f.blocks.len(),
            f.loops.len(),
            if f.has_unresolved {
                " (has unresolved flow)"
            } else {
                ""
            }
        );
        let lv = Liveness::analyze(f);
        for b in f.blocks.values() {
            let dead = lv.live_in(b.start).complement();
            println!(
                "  block {:#x}..{:#x}  ({} dead GPRs at entry)",
                b.start,
                b.end,
                dead.intersect(rvdyn_isa::RegSet::ALL_GPR).len()
            );
            for i in &b.insts {
                println!("    {:#8x}:  {}", i.address, format_instruction(i));
            }
            for e in &b.edges {
                match (e.kind, e.target) {
                    (EdgeKind::Return, _) => println!("      └─ return"),
                    (k, Some(t)) => println!("      └─ {k:?} → {t:#x}"),
                    (k, None) => println!("      └─ {k:?}"),
                }
            }
        }
        for l in &f.loops {
            println!(
                "  loop: header {:#x}, {} blocks, latches {:?}",
                l.header,
                l.body.len(),
                l.latches
                    .iter()
                    .map(|x| format!("{x:#x}"))
                    .collect::<Vec<_>>()
            );
        }
    }
    println!();
}

fn main() {
    // The paper's matmul: 11 blocks, a triple loop nest.
    explore(
        "matmul application (§4.1)",
        &rvdyn_asm::matmul_program(8, 1),
    );
    // The jump-table mutatee: watch the IndirectJump edges on the
    // dispatch block — the §3.2.3 jump-table analysis at work.
    explore("switch / jump table", &rvdyn_asm::switch_program(4));
}
