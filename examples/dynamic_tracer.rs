//! Dynamic function tracer (Figure 1, dynamic path; the TAU/HPCToolkit
//! use case from §2).
//!
//! ```sh
//! cargo run --example dynamic_tracer
//! ```
//!
//! Creates the mutatee process, inserts entry/exit counters into `fib`
//! *through the process-control interface* (no file is written), resumes
//! it, and reports call/return counts plus the modelled runtime.

use rvdyn::{DynamicInstrumenter, PointKind, Snippet};

fn main() {
    let n = 12u64;
    let bin = rvdyn_asm::fib_program(n);

    // Figure 1, variant 1: create the process (stopped at entry).
    let mut dy = DynamicInstrumenter::create(bin);

    // Instrumentation variables live in the patch data area of the live
    // process.
    let calls = dy.alloc_var(8);
    let returns = dy.alloc_var(8);

    let entries = dy.find_points("fib", PointKind::FuncEntry).unwrap();
    let exits = dy.find_points("fib", PointKind::FuncExit).unwrap();
    dy.insert(&entries, Snippet::increment(calls));
    dy.insert(&exits, Snippet::increment(returns));

    // Apply the patch to the live process and let it run.
    dy.commit().expect("dynamic instrumentation applies");
    let code = dy.run_to_exit().expect("mutatee runs");

    let calls_n = dy.read_var(calls).unwrap();
    let returns_n = dy.read_var(returns).unwrap();
    println!("fib({n}) exited with {code}");
    println!("fib was entered {calls_n} times and returned {returns_n} times");
    println!(
        "modelled runtime: {:.6}s, {} instructions",
        dy.process().machine().now_seconds(),
        dy.process().machine().icount
    );
    assert_eq!(calls_n, returns_n);
    // The call-tree size of naive fib: 2*fib(n+1)-1.
    let fib = |k: u64| -> u64 {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..k {
            let t = a + b;
            a = b;
            b = t;
        }
        a
    };
    assert_eq!(calls_n, 2 * fib(n + 1) - 1);
}
