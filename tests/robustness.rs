//! Robustness suite: regression tests for found bugs plus stress and
//! fuzz-style coverage of the rewriter.

use rvdyn::{BinaryEditor, PointKind, SessionOptions, Snippet};

#[test]
fn bss_survives_elf_round_trip() {
    // Regression: SHT_NOBITS sections were serialised with sh_size = 0,
    // so reloaded binaries lost all but one page of .bss. N=30 needs
    // ~21 KiB of arrays — well past a page.
    let bin = rvdyn_asm::matmul_program(30, 1);
    let bytes = bin.to_bytes().unwrap();
    let re = rvdyn::Binary::parse(&bytes).unwrap();
    let bss = re.section_by_name(".bss").unwrap();
    assert_eq!(
        bss.data.len(),
        3 * 30 * 30 * 8,
        "bss size lost in round trip"
    );
    let r = rvdyn::run_elf(&bytes, 1_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
}

#[test]
fn whole_program_instrumentation() {
    // Per-block counters on EVERY function (including _start): every
    // function gets relocated, every call chain crosses springboards, and
    // the program must still be fully correct.
    let n = 6usize;
    let bin = rvdyn_asm::matmul_program(n, 2);
    let names: Vec<String> = rvdyn::CodeObject::parse(&bin, &rvdyn::ParseOptions::default())
        .functions
        .values()
        .filter_map(|f| f.name.clone())
        .collect();
    let mut ed = BinaryEditor::from_binary(bin.clone(), SessionOptions::default());
    let c = ed.alloc_var(8);
    for name in &names {
        let pts = ed.find_points(name, PointKind::BlockEntry).unwrap();
        ed.insert(&pts, Snippet::increment(c));
    }
    let out = ed.rewrite().unwrap();
    let r = rvdyn::run_elf(&out, 2_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    // Correct product despite instrumenting everything.
    let c_addr = bin.symbol_by_name("mat_c").unwrap().value;
    for i in 0..n {
        for j in 0..n {
            let mut expect = 0.0f64;
            for k in 0..n {
                expect += (i + k) as f64 * (k as f64 - j as f64);
            }
            let got = f64::from_bits(r.read_u64(c_addr + ((i * n + j) * 8) as u64).unwrap());
            assert_eq!(got, expect, "C[{i}][{j}]");
        }
    }
    // Global block count is large and sane: more than matmul's own blocks.
    let blocks = r.read_u64(c.addr).unwrap();
    assert!(blocks > 2 * 300, "whole-program count too small: {blocks}");
}

#[test]
fn random_point_subsets_never_break_the_program() {
    // Fuzz-flavoured: for a range of seeds, instrument a random subset of
    // matmul's 11 block points; the rewritten binary must always exit 0
    // with the same observable output, and the counter must equal the
    // exact sum of the chosen blocks' dynamic counts.
    let n = 5u64;
    // Per-block dynamic counts in block address order (B1..B11).
    let per_block: [u64; 11] = [
        1,
        n + 1,
        n,
        n * (n + 1),
        n * n,
        n * n * (n + 1),
        n * n * n,
        n * n,
        n * n,
        n,
        1,
    ];
    let bin = rvdyn_asm::matmul_program(n as usize, 1);
    let base = rvdyn::editor::run_binary(&bin, 1_000_000_000).unwrap();

    for seed in 0u32..24 {
        let mask = (seed.wrapping_mul(2654435761)) % (1 << 11);
        let mut ed = BinaryEditor::from_binary(bin.clone(), SessionOptions::default());
        let c = ed.alloc_var(8);
        let pts = ed.find_points("matmul", PointKind::BlockEntry).unwrap();
        assert_eq!(pts.len(), 11);
        let mut expect = 0u64;
        for (i, p) in pts.iter().enumerate() {
            if mask & (1 << i) != 0 {
                ed.insert(&[*p], Snippet::increment(c));
                expect += per_block[i];
            }
        }
        let out = ed.rewrite().unwrap();
        let r = rvdyn::run_elf(&out, 1_000_000_000).unwrap();
        assert_eq!(r.exit_code, 0, "seed {seed}");
        assert_eq!(
            r.read_u64(c.addr),
            Some(expect),
            "seed {seed} mask {mask:#b}: wrong counter"
        );
        assert_eq!(
            r.stdout.len(),
            base.stdout.len(),
            "seed {seed}: output shape"
        );
    }
}

#[test]
fn no_compressed_profile_gets_no_compressed_springboards() {
    // An RV64G (no C extension) mutatee: the springboard planner and the
    // relocation engine must emit only 4-byte-aligned standard encodings.
    use rvdyn_asm::Assembler;
    use rvdyn_isa::Reg;
    use rvdyn_symtab::{
        Section, Symbol, SymbolBinding, SymbolKind, SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE,
    };

    let mut a = Assembler::new(0x1_0000);
    let l_main = a.label();
    a.call(l_main);
    a.li(Reg::x(17), 93);
    a.ecall();
    a.bind(l_main);
    let main_addr = a.here();
    a.addi(Reg::X2, Reg::X2, -16);
    a.sd(Reg::X1, Reg::X2, 8);
    a.li(Reg::x(5), 10);
    let head = a.here_label();
    a.addi(Reg::x(5), Reg::x(5), -1);
    a.bne(Reg::x(5), Reg::X0, head);
    a.mv(Reg::x(10), Reg::X0);
    a.ld(Reg::X1, Reg::X2, 8);
    a.addi(Reg::X2, Reg::X2, 16);
    a.ret();
    let main_size = a.here() - main_addr;
    let code = a.finish().unwrap();
    let profile = rvdyn_isa::IsaProfile::rv64g();
    let bin = rvdyn::Binary {
        entry: 0x1_0000,
        e_flags: rvdyn::Binary::eflags_for(profile),
        e_type: rvdyn_symtab::elf::ET_EXEC,
        sections: vec![
            Section::progbits(".text", 0x1_0000, SHF_ALLOC | SHF_EXECINSTR, code),
            Section::progbits(".data", 0x2_0000, SHF_ALLOC | SHF_WRITE, vec![0; 8]),
        ],
        symbols: vec![Symbol {
            name: "main".into(),
            value: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
            binding: SymbolBinding::Global,
        }],
        attributes: Some(rvdyn_symtab::RiscvAttributes::for_profile(profile)),
    };
    assert_eq!(bin.profile(), profile);

    let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
    let c = ed.alloc_var(8);
    let pts = ed.find_points("main", PointKind::BlockEntry).unwrap();
    ed.insert(&pts, Snippet::increment(c));
    let patched = ed.instrumented().unwrap();

    // The springboard at main must be the 4-byte jal, not c.j.
    let text = patched.binary.section_by_name(".text").unwrap();
    let off = (main_addr - text.addr) as usize;
    assert_eq!(
        text.data[off] & 0b11,
        0b11,
        "springboard must be a standard 4-byte encoding on RV64G"
    );
    // And the rewritten program still runs correctly.
    let r = rvdyn::editor::run_binary(&patched.binary, 10_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.read_u64(c.addr), Some(1 + 10 + 1)); // entry + 10 loop heads + exit...
}

// --- Typed error paths (the panic-free pipeline contract) ------------------
//
// A mutatee that faults, stalls, or defeats the patcher is *data* the tool
// must be able to report: every scenario below used to panic (or would
// have) and now comes back as an inspectable `rvdyn::Error`.

mod typed_errors {
    use super::*;
    use rvdyn::{DynamicInstrumenter, Error, RegAllocMode, Stage};

    #[test]
    fn mutatee_fault_is_a_typed_error_with_pc_and_addr() {
        // Instrument normally, then derail the mutatee: point its pc at
        // unmapped memory. The fetch fault must surface as MutateeFault —
        // never a mutator panic.
        let bin = rvdyn_asm::matmul_program(4, 1);
        let mut dy = DynamicInstrumenter::create(bin);
        let c = dy.alloc_var(8);
        let pts = dy.find_points("matmul", PointKind::FuncEntry).unwrap();
        dy.insert(&pts, Snippet::increment(c));
        dy.commit().unwrap();
        dy.process_mut().set_pc(0xDEAD_0000);
        match dy.run_to_exit() {
            Err(Error::MutateeFault { pc, addr }) => {
                assert_eq!(pc, 0xDEAD_0000);
                assert_eq!(addr, 0xDEAD_0000);
            }
            other => panic!("expected MutateeFault, got {other:?}"),
        }
        // The error also reports its stage and pc generically.
        dy.process_mut().set_pc(0xDEAD_0000);
        let err = dy.run_to_exit().unwrap_err();
        assert_eq!(err.stage(), Stage::Run);
        assert_eq!(err.pc(), Some(0xDEAD_0000));
    }

    #[test]
    fn store_to_unmapped_memory_reports_the_bad_address() {
        // A mutatee whose own code stores to an unmapped address: the
        // MemFault must carry the *data* address, distinct from the pc.
        use rvdyn_isa::Reg;
        let mut a = rvdyn_asm::Assembler::new(0x1_0000);
        a.li(Reg::x(5), 0x6666_0000); // unmapped
        let store_pc = a.here();
        a.sd(Reg::x(6), Reg::x(5), 0);
        a.li(Reg::x(17), 93);
        a.ecall();
        let code = a.finish().unwrap();
        let profile = rvdyn_isa::IsaProfile::rv64gc();
        let bin = rvdyn::Binary {
            entry: 0x1_0000,
            e_flags: rvdyn::Binary::eflags_for(profile),
            e_type: rvdyn_symtab::elf::ET_EXEC,
            sections: vec![rvdyn_symtab::Section::progbits(
                ".text",
                0x1_0000,
                rvdyn_symtab::SHF_ALLOC | rvdyn_symtab::SHF_EXECINSTR,
                code,
            )],
            symbols: vec![],
            attributes: Some(rvdyn_symtab::RiscvAttributes::for_profile(profile)),
        };
        let err = match rvdyn::editor::run_binary(&bin, 1_000_000) {
            Err(e) => e,
            Ok(_) => panic!("expected a memory fault"),
        };
        match err {
            Error::MutateeFault { pc, addr } => {
                assert_eq!(pc, store_pc);
                assert_eq!(addr, 0x6666_0000);
            }
            other => panic!("expected MutateeFault, got {other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion_is_a_typed_unclean_exit() {
        let elf = rvdyn_asm::matmul_program(8, 1).to_bytes().unwrap();
        match rvdyn::run_elf(&elf, 100) {
            Err(Error::UncleanExit { reason, icount, .. }) => {
                assert_eq!(icount, 100);
                assert!(reason.contains("fuel"), "reason: {reason}");
            }
            Err(other) => panic!("expected UncleanExit, got {other}"),
            Ok(_) => panic!("expected UncleanExit, got a clean exit"),
        }
    }

    #[test]
    fn far_patch_area_turns_tail_call_into_typed_relocation_error() {
        // twice_plus1 tail-calls double_it with `jal x0` — a jump with no
        // link register to spare. Relocating it ~1 GiB away exceeds jal's
        // ±1 MiB reach with no register to widen through: the springboard
        // planner's failure mode, reported as JumpOutOfRange.
        let bin = rvdyn_asm::tailcall_program();
        let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
        ed.set_layout(rvdyn::PatchLayout {
            patch_text: 0x4000_0000,
            patch_data: 0x4100_0000,
        });
        let c = ed.alloc_var(8);
        let pts = ed.find_points("twice_plus1", PointKind::FuncEntry).unwrap();
        ed.insert(&pts, Snippet::increment(c));
        let err = match ed.rewrite() {
            Err(e) => e,
            Ok(_) => panic!("expected a relocation failure"),
        };
        assert_eq!(err.stage(), Stage::Instrument);
        match err {
            Error::Instrument {
                source:
                    rvdyn_patch::InstrumentError::Relocate(
                        rvdyn_patch::relocate::RelocateError::JumpOutOfRange { at, target },
                    ),
            } => {
                assert!(target < 0x4000_0000, "target is the original double_it");
                assert!(at >= 0x4000_0000, "jump sits in the far patch area");
            }
            other => panic!("expected JumpOutOfRange, got {other}"),
        }
    }

    #[test]
    fn snippet_needing_too_many_registers_is_a_typed_codegen_error() {
        // A balanced 2^14-leaf expression tree needs 15 simultaneous
        // scratch registers — one more than the allocator's candidate
        // pool, even with every register spillable.
        fn deep(depth: u32) -> Snippet {
            if depth == 0 {
                Snippet::Const(1)
            } else {
                Snippet::bin(rvdyn::BinaryOp::Add, deep(depth - 1), deep(depth - 1))
            }
        }
        let bin = rvdyn_asm::matmul_program(4, 1);
        let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
        let pts = ed.find_points("matmul", PointKind::FuncEntry).unwrap();
        ed.insert(&pts, deep(14));
        let err = match ed.rewrite() {
            Err(e) => e,
            Ok(_) => panic!("expected an out-of-registers failure"),
        };
        assert_eq!(err.stage(), Stage::Instrument);
        assert!(
            err.to_string().contains("register"),
            "expected an out-of-registers diagnosis, got: {err}"
        );
    }

    #[test]
    fn zero_dead_register_point_spills_instead_of_failing() {
        // Force the all-registers-live worst case: the allocator must fall
        // back to spill slots (§4.3's slow path), succeed, and the
        // diagnostics must show zero dead-register points.
        let bin = rvdyn_asm::matmul_program(4, 2);
        let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
        ed.set_mode(RegAllocMode::ForceSpill);
        let c = ed.alloc_var(8);
        let pts = ed.find_points("matmul", PointKind::FuncEntry).unwrap();
        ed.insert(&pts, Snippet::increment(c));
        let out = ed.rewrite().unwrap();
        let d = ed.diagnostics();
        assert_eq!(d.dead_register_points, 0, "every point must have spilled");
        assert!(d.spills > 0, "spill slots must have been used");
        let r = rvdyn::run_elf(&out, 1_000_000_000).unwrap();
        assert_eq!(r.exit_code, 0);
        assert_eq!(r.read_u64(c.addr), Some(2));
    }

    #[test]
    fn diagnostics_cover_the_full_pipeline() {
        // One end-to-end dynamic run with every stage's counters checked.
        let bin = rvdyn_asm::matmul_program(5, 3);
        let mut dy = DynamicInstrumenter::create(bin);
        let parse_d = dy.diagnostics();
        assert!(parse_d.functions_parsed >= 3); // _start, main, matmul, …
        assert!(parse_d.blocks_parsed > parse_d.functions_parsed);
        assert!(parse_d.instructions_decoded as usize > parse_d.blocks_parsed);
        assert_eq!(parse_d.points_instrumented, 0);
        assert_eq!(parse_d.instret, 0);

        let c = dy.alloc_var(8);
        let pts = dy.find_points("matmul", PointKind::BlockEntry).unwrap();
        dy.insert(&pts, Snippet::increment(c));
        dy.commit().unwrap();
        let patch_d = dy.diagnostics();
        assert_eq!(patch_d.points_instrumented, pts.len());
        assert!(
            patch_d.dead_register_points > 0,
            "matmul's blocks have dead temporaries"
        );
        assert_eq!(patch_d.springboards.total(), 1); // one relocated function
        assert_eq!(patch_d.springboards.trap, 0, "no trap springboards needed");

        assert_eq!(dy.run_to_exit().unwrap(), 0);
        let run_d = dy.diagnostics();
        assert!(run_d.instret > 0);
        assert!(run_d.cycles >= run_d.instret);
        // The printable summary mentions every stage.
        let text = run_d.to_string();
        for needle in ["parse:", "instrument:", "springboards:", "run:"] {
            assert!(text.contains(needle), "summary missing {needle}: {text}");
        }
    }
}
