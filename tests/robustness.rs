//! Robustness suite: regression tests for found bugs plus stress and
//! fuzz-style coverage of the rewriter.

use rvdyn::{BinaryEditor, PointKind, Snippet};

#[test]
fn bss_survives_elf_round_trip() {
    // Regression: SHT_NOBITS sections were serialised with sh_size = 0,
    // so reloaded binaries lost all but one page of .bss. N=30 needs
    // ~21 KiB of arrays — well past a page.
    let bin = rvdyn_asm::matmul_program(30, 1);
    let bytes = bin.to_bytes().unwrap();
    let re = rvdyn::Binary::parse(&bytes).unwrap();
    let bss = re.section_by_name(".bss").unwrap();
    assert_eq!(bss.data.len(), 3 * 30 * 30 * 8, "bss size lost in round trip");
    let r = rvdyn::run_elf(&bytes, 1_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
}

#[test]
fn whole_program_instrumentation() {
    // Per-block counters on EVERY function (including _start): every
    // function gets relocated, every call chain crosses springboards, and
    // the program must still be fully correct.
    let n = 6usize;
    let bin = rvdyn_asm::matmul_program(n, 2);
    let names: Vec<String> = rvdyn::CodeObject::parse(&bin, &rvdyn::ParseOptions::default())
        .functions
        .values()
        .filter_map(|f| f.name.clone())
        .collect();
    let mut ed = BinaryEditor::from_binary(bin.clone());
    let c = ed.alloc_var(8);
    for name in &names {
        let pts = ed.find_points(name, PointKind::BlockEntry).unwrap();
        ed.insert(&pts, Snippet::increment(c));
    }
    let out = ed.rewrite().unwrap();
    let r = rvdyn::run_elf(&out, 2_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    // Correct product despite instrumenting everything.
    let c_addr = bin.symbol_by_name("mat_c").unwrap().value;
    for i in 0..n {
        for j in 0..n {
            let mut expect = 0.0f64;
            for k in 0..n {
                expect += (i + k) as f64 * (k as f64 - j as f64);
            }
            let got = f64::from_bits(r.read_u64(c_addr + ((i * n + j) * 8) as u64).unwrap());
            assert_eq!(got, expect, "C[{i}][{j}]");
        }
    }
    // Global block count is large and sane: more than matmul's own blocks.
    let blocks = r.read_u64(c.addr).unwrap();
    assert!(blocks > 2 * 300, "whole-program count too small: {blocks}");
}

#[test]
fn random_point_subsets_never_break_the_program() {
    // Fuzz-flavoured: for a range of seeds, instrument a random subset of
    // matmul's 11 block points; the rewritten binary must always exit 0
    // with the same observable output, and the counter must equal the
    // exact sum of the chosen blocks' dynamic counts.
    let n = 5u64;
    // Per-block dynamic counts in block address order (B1..B11).
    let per_block: [u64; 11] = [
        1,
        n + 1,
        n,
        n * (n + 1),
        n * n,
        n * n * (n + 1),
        n * n * n,
        n * n,
        n * n,
        n,
        1,
    ];
    let bin = rvdyn_asm::matmul_program(n as usize, 1);
    let base = rvdyn::editor::run_binary(&bin, 1_000_000_000).unwrap();

    for seed in 0u32..24 {
        let mask = (seed.wrapping_mul(2654435761)) % (1 << 11);
        let mut ed = BinaryEditor::from_binary(bin.clone());
        let c = ed.alloc_var(8);
        let pts = ed.find_points("matmul", PointKind::BlockEntry).unwrap();
        assert_eq!(pts.len(), 11);
        let mut expect = 0u64;
        for (i, p) in pts.iter().enumerate() {
            if mask & (1 << i) != 0 {
                ed.insert(&[*p], Snippet::increment(c));
                expect += per_block[i];
            }
        }
        let out = ed.rewrite().unwrap();
        let r = rvdyn::run_elf(&out, 1_000_000_000).unwrap();
        assert_eq!(r.exit_code, 0, "seed {seed}");
        assert_eq!(
            r.read_u64(c.addr),
            Some(expect),
            "seed {seed} mask {mask:#b}: wrong counter"
        );
        assert_eq!(r.stdout.len(), base.stdout.len(), "seed {seed}: output shape");
    }
}

#[test]
fn no_compressed_profile_gets_no_compressed_springboards() {
    // An RV64G (no C extension) mutatee: the springboard planner and the
    // relocation engine must emit only 4-byte-aligned standard encodings.
    use rvdyn_asm::Assembler;
    use rvdyn_isa::Reg;
    use rvdyn_symtab::{Section, Symbol, SymbolBinding, SymbolKind, SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE};

    let mut a = Assembler::new(0x1_0000);
    let l_main = a.label();
    a.call(l_main);
    a.li(Reg::x(17), 93);
    a.ecall();
    a.bind(l_main);
    let main_addr = a.here();
    a.addi(Reg::X2, Reg::X2, -16);
    a.sd(Reg::X1, Reg::X2, 8);
    a.li(Reg::x(5), 10);
    let head = a.here_label();
    a.addi(Reg::x(5), Reg::x(5), -1);
    a.bne(Reg::x(5), Reg::X0, head);
    a.mv(Reg::x(10), Reg::X0);
    a.ld(Reg::X1, Reg::X2, 8);
    a.addi(Reg::X2, Reg::X2, 16);
    a.ret();
    let main_size = a.here() - main_addr;
    let code = a.finish().unwrap();
    let profile = rvdyn_isa::IsaProfile::rv64g();
    let bin = rvdyn::Binary {
        entry: 0x1_0000,
        e_flags: rvdyn::Binary::eflags_for(profile),
        e_type: rvdyn_symtab::elf::ET_EXEC,
        sections: vec![
            Section::progbits(".text", 0x1_0000, SHF_ALLOC | SHF_EXECINSTR, code),
            Section::progbits(".data", 0x2_0000, SHF_ALLOC | SHF_WRITE, vec![0; 8]),
        ],
        symbols: vec![Symbol {
            name: "main".into(),
            value: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
            binding: SymbolBinding::Global,
        }],
        attributes: Some(rvdyn_symtab::RiscvAttributes::for_profile(profile)),
    };
    assert_eq!(bin.profile(), profile);

    let mut ed = BinaryEditor::from_binary(bin);
    let c = ed.alloc_var(8);
    let pts = ed.find_points("main", PointKind::BlockEntry).unwrap();
    ed.insert(&pts, Snippet::increment(c));
    let patched = ed.instrumented().unwrap();

    // The springboard at main must be the 4-byte jal, not c.j.
    let text = patched.binary.section_by_name(".text").unwrap();
    let off = (main_addr - text.addr) as usize;
    assert_eq!(
        text.data[off] & 0b11,
        0b11,
        "springboard must be a standard 4-byte encoding on RV64G"
    );
    // And the rewritten program still runs correctly.
    let r = rvdyn::editor::run_binary(&patched.binary, 10_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.read_u64(c.addr), Some(1 + 10 + 1)); // entry + 10 loop heads + exit...
}
