//! The `rvdyn-trace-v1` serialization contract: every well-formed
//! stream round-trips exactly, and every malformation — truncation in
//! any region, garbled magic or meta, a lying count, a flipped
//! checksum, trailing garbage — surfaces as a typed
//! [`rvdyn::Error::TraceCorrupt`] with a useful offset, never a panic
//! and never a silently-wrong record. See `docs/FAILURE-MODES.md`.

use proptest::prelude::*;
use rvdyn::tools::{serialize_trace, TraceReader, TraceRecord, TraceSink, TRACE_MAGIC};
use rvdyn::Error;

fn rec(pc: u64, addr: u64, len: u8, is_store: bool) -> TraceRecord {
    TraceRecord {
        pc,
        addr,
        len,
        is_store,
    }
}

fn sample() -> Vec<TraceRecord> {
    vec![
        rec(0x1_0000, 0xC_0000, 8, true),
        rec(0x1_0004, 0xC_0008, 4, false),
        rec(0x1_0004, 0xC_0010, 4, false),
        rec(0xFFFF_FFFF_0000, 0, 1, true),
        rec(0, u64::MAX, 2, false),
    ]
}

/// Every parse failure must be the typed error — panics and wrong data
/// are both format-contract violations.
fn expect_corrupt(bytes: &[u8], what: &str) -> (u64, String) {
    match TraceReader::parse(bytes) {
        Err(Error::TraceCorrupt { offset, reason }) => (offset, reason),
        Err(other) => panic!("{what}: wrong error type: {other}"),
        Ok(r) => panic!("{what}: accepted {} bogus record(s)", r.len()),
    }
}

#[test]
fn round_trip_identity() {
    for records in [vec![], sample()] {
        let bytes = serialize_trace(&records);
        let reader = TraceReader::parse(&bytes).expect("well-formed stream");
        assert_eq!(reader.records(), &records[..]);
        assert_eq!(reader.len(), records.len());
        assert_eq!(reader.is_empty(), records.is_empty());
    }
}

#[test]
fn sink_streams_through_any_writer() {
    // The sink's chunked path (cross the 64KiB flush threshold) must
    // produce the same image as the one-shot helper.
    let records: Vec<TraceRecord> = (0..40_000)
        .map(|i| rec(0x1_0000 + i * 4, 0xC_0000 + i * 8, 8, i % 3 == 0))
        .collect();
    let mut sink = TraceSink::new(Vec::new());
    for r in &records {
        sink.push(*r).unwrap();
    }
    assert_eq!(sink.count(), records.len() as u64);
    let bytes = sink.finish().unwrap();
    assert_eq!(bytes, serialize_trace(&records));
    assert_eq!(TraceReader::parse(&bytes).unwrap().records(), &records[..]);
}

#[test]
fn delta_encoding_is_compact() {
    // A loop-like trace (small pc/addr strides) must cost a few bytes
    // per record, not the flat 17 — the format's reason to exist.
    let records: Vec<TraceRecord> = (0..10_000)
        .map(|i| rec(0x1_0000 + (i % 7) * 4, 0xC_0000 + i * 8, 8, false))
        .collect();
    let bytes = serialize_trace(&records);
    let per_record = (bytes.len() - 25) as f64 / records.len() as f64;
    assert!(per_record < 6.0, "{per_record:.1} bytes/record");
}

#[test]
fn accessors_slice_the_trace() {
    let reader = TraceReader::parse(&serialize_trace(&sample())).unwrap();
    assert_eq!(reader.stores().count(), 2);
    assert_eq!(reader.loads().count(), 3);
    assert_eq!(reader.at_pc(0x1_0004).count(), 2);
    assert_eq!(reader.bytes_moved(), (4 + 4 + 2, 8 + 1));
}

#[test]
fn truncation_anywhere_is_typed_corruption() {
    let bytes = serialize_trace(&sample());
    // Every proper prefix — through the magic, mid-record, mid-varint,
    // mid-count, mid-checksum — must fail with the typed error.
    for cut in 0..bytes.len() {
        let (_, reason) = expect_corrupt(&bytes[..cut], &format!("prefix of {cut} bytes"));
        assert!(!reason.is_empty());
    }
}

#[test]
fn bad_magic_is_rejected_at_offset_zero() {
    let mut bytes = serialize_trace(&sample());
    bytes[0] ^= 0x20;
    let (offset, reason) = expect_corrupt(&bytes, "bad magic");
    assert_eq!(offset, 0);
    assert!(reason.contains("magic"), "{reason}");
    // Entirely foreign bytes too.
    expect_corrupt(b"GIF89a_definitely_not_a_trace", "foreign bytes");
}

#[test]
fn invalid_access_width_is_rejected() {
    // Corrupt the first record's meta byte into an undefined width.
    let mut bytes = serialize_trace(&sample());
    bytes[8] = 3; // len 3 is not in {1,2,4,8}
    let (offset, reason) = expect_corrupt(&bytes, "bad width");
    assert_eq!(offset, 8);
    assert!(reason.contains("width"), "{reason}");
}

#[test]
fn unterminated_varint_is_rejected() {
    // magic + valid meta + a varint that never clears its
    // continuation bit before the buffer ends.
    let mut bytes = TRACE_MAGIC.to_vec();
    bytes.push(1); // len 1, load
    bytes.extend_from_slice(&[0x80; 12]);
    let (_, reason) = expect_corrupt(&bytes, "runaway varint");
    assert!(
        reason.contains("varint"),
        "truncated or overflowing varint, got: {reason}"
    );
}

#[test]
fn lying_count_is_rejected() {
    let records = sample();
    let bytes = serialize_trace(&records);
    let count_off = bytes.len() - 16;
    let mut lied = bytes.clone();
    lied[count_off..count_off + 8].copy_from_slice(&(records.len() as u64 + 1).to_le_bytes());
    let (offset, reason) = expect_corrupt(&lied, "count+1");
    assert_eq!(offset as usize, count_off);
    assert!(reason.contains("count"), "{reason}");
}

#[test]
fn flipped_bit_anywhere_fails_the_checksum() {
    let bytes = serialize_trace(&sample());
    // Flip one bit in each checksummed byte; whatever the mutation
    // breaks first (width, varint shape, count, checksum), the answer
    // is the typed error — never an Ok with different records.
    for i in 8..bytes.len() - 8 {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0x40;
        expect_corrupt(&mutated, &format!("bit flip at {i}"));
    }
    // And the checksum field itself.
    let mut mutated = bytes.clone();
    let n = mutated.len();
    mutated[n - 1] ^= 1;
    let (offset, reason) = expect_corrupt(&mutated, "flipped checksum");
    assert_eq!(offset as usize, n - 8);
    assert!(reason.contains("checksum"), "{reason}");
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = serialize_trace(&sample());
    let n = bytes.len();
    bytes.push(0);
    let (offset, reason) = expect_corrupt(&bytes, "trailing byte");
    assert_eq!(offset as usize, n);
    assert!(reason.contains("trailing"), "{reason}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary record sequences round-trip exactly — including
    /// pathological pc/addr jumps that stress the zigzag deltas.
    #[test]
    fn random_records_round_trip(
        raw in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), 0usize..4, any::<bool>()),
            0..200,
        )
    ) {
        let records: Vec<TraceRecord> = raw
            .into_iter()
            .map(|(pc, addr, li, st)| rec(pc, addr, [1u8, 2, 4, 8][li], st))
            .collect();
        let bytes = serialize_trace(&records);
        let reader = TraceReader::parse(&bytes).expect("round trip");
        prop_assert_eq!(reader.records(), &records[..]);
    }

    /// No byte soup panics the reader: arbitrary inputs (with a valid
    /// magic prepended so decoding gets past offset 0) either parse or
    /// fail with the typed error.
    #[test]
    fn arbitrary_bytes_never_panic(
        body in proptest::collection::vec(any::<u8>(), 0..400)
    ) {
        let mut bytes = TRACE_MAGIC.to_vec();
        bytes.extend_from_slice(&body);
        match TraceReader::parse(&bytes) {
            Ok(_) | Err(Error::TraceCorrupt { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error type: {}", other),
        }
    }
}
