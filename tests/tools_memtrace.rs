//! Differential ground truth for the memory-access tracer
//! (`rvdyn::tools::MemTracer`): the trace an *instrumented* mutatee
//! emits must be record-identical — pc, effective address, width,
//! direction, **and order** — to the interpreter-side memory-op oracle
//! ([`rvdyn_emu::Machine::arm_mem_oracle`]) recorded from an
//! uninstrumented run of the same binary, restricted to the planned
//! sites. The comparison is engine-differential (interpreter and cached
//! DBT produce the same trace, including with mid-run invalidations)
//! and worker-count-invariant (threads 1 and 4 plan identical traces).

mod common;

use common::{stmt_program, ProgramStrategy, Stmt};
use proptest::prelude::*;
use rvdyn::tools::{MemTracer, TraceOptions, TraceReader};
use rvdyn::{
    BinaryEditor, DynamicInstrumenter, EmuEngine, FleetController, SessionOptions, TraceRecord,
};
use rvdyn_emu::{load_binary, MemOp, StopReason};
use rvdyn_symtab::Binary;

/// The oracle: run `bin` uninstrumented with the interpreter-side
/// memory-op oracle armed, and keep only the ops at the planned pcs.
fn oracle_records(bin: &Binary, pcs: &[u64]) -> Vec<TraceRecord> {
    let set: std::collections::BTreeSet<u64> = pcs.iter().copied().collect();
    let mut m = load_binary(bin);
    m.arm_mem_oracle();
    m.fuel = Some(50_000_000);
    let stop = m.run();
    assert!(
        matches!(stop, StopReason::Exited(0)),
        "oracle run must exit cleanly: {stop:?}"
    );
    m.take_mem_oracle()
        .into_iter()
        .filter(|op| set.contains(&op.pc))
        .map(
            |MemOp {
                 pc,
                 addr,
                 len,
                 is_store,
             }| TraceRecord {
                pc,
                addr,
                len,
                is_store,
            },
        )
        .collect()
}

/// Instrument `bin` with a full-program tracer under `opts`, run it to
/// exit on the dynamic path, and drain the ring.
fn traced_run(bin: &Binary, opts: SessionOptions, cap: u64) -> (Vec<u64>, Vec<TraceRecord>, u64) {
    let mut dy = DynamicInstrumenter::create_with(bin.clone(), opts);
    let tracer = MemTracer::plan_dynamic(
        &mut dy,
        &TraceOptions {
            capacity: cap,
            funcs: None,
        },
    )
    .expect("plan");
    dy.commit().expect("commit");
    assert_eq!(dy.run_to_exit().expect("run"), 0);
    let drained = tracer.drain_dynamic(&mut dy).expect("drain");
    (tracer.pcs(), drained.records, drained.dropped)
}

#[test]
fn matmul_trace_matches_oracle_on_both_engines() {
    let bin = rvdyn_asm::matmul_program(6, 2);
    for engine in [EmuEngine::Interpreter, EmuEngine::Cached] {
        let (pcs, records, dropped) =
            traced_run(&bin, SessionOptions::new().engine(engine), 1 << 16);
        assert!(!records.is_empty(), "matmul must touch memory");
        assert_eq!(dropped, 0, "capacity must hold the whole run");
        let expected = oracle_records(&bin, &pcs);
        assert_eq!(
            records.len(),
            expected.len(),
            "{engine:?}: record count vs oracle"
        );
        assert_eq!(records, expected, "{engine:?}: trace vs oracle");
    }
}

#[test]
fn static_rewrite_trace_matches_oracle() {
    // The same contract through the static path: plan on a
    // BinaryEditor, rewrite, run the rewritten ELF, drain the ring from
    // the final memory image.
    let bin = rvdyn_asm::matmul_program(5, 1);
    let mut ed = BinaryEditor::from_binary(bin.clone(), SessionOptions::new());
    let tracer = MemTracer::plan_editor(&mut ed, &TraceOptions::default()).expect("plan");
    let out = ed.instrument_and_run(50_000_000).expect("run");
    assert_eq!(out.exit_code, 0);
    let drained = tracer.drain_output(&mut ed, &out).expect("drain");
    assert_eq!(drained.dropped, 0);
    assert_eq!(drained.records, oracle_records(&bin, &tracer.pcs()));
    let d = ed.diagnostics();
    assert_eq!(d.trace_points_planned, tracer.sites() as u64);
    assert_eq!(d.trace_records, drained.records.len() as u64);
}

#[test]
fn ring_exhaustion_keeps_a_faithful_prefix() {
    let bin = rvdyn_asm::matmul_program(6, 1);
    let (pcs, records, dropped) = traced_run(&bin, SessionOptions::new(), 8);
    let expected = oracle_records(&bin, &pcs);
    assert!(expected.len() > 8, "mutatee must overflow the tiny ring");
    assert_eq!(records.len(), 8, "ring holds exactly its capacity");
    assert_eq!(records[..], expected[..8], "the prefix is untorn");
    assert_eq!(
        dropped,
        (expected.len() - 8) as u64,
        "every lost access is counted"
    );
}

#[test]
fn function_filter_traces_only_named_function() {
    let bin = rvdyn_asm::matmul_program(5, 2);
    let mut dy = DynamicInstrumenter::create(bin.clone());
    let matmul = bin.symbol_by_name("matmul").unwrap().value;
    let tracer = MemTracer::plan_dynamic(
        &mut dy,
        &TraceOptions {
            capacity: 1 << 16,
            funcs: Some(vec!["matmul".into()]),
        },
    )
    .expect("plan");
    let f = &dy.code().functions[&matmul];
    let (lo, hi) = f.extent();
    assert!(tracer.pcs().iter().all(|pc| *pc >= lo && *pc < hi));
    dy.commit().expect("commit");
    assert_eq!(dy.run_to_exit().unwrap(), 0);
    let drained = tracer.drain_dynamic(&mut dy).expect("drain");
    assert_eq!(drained.records, oracle_records(&bin, &tracer.pcs()));
    assert!(drained.records.iter().all(|r| r.pc >= lo && r.pc < hi));
}

#[test]
fn unknown_function_filter_fails_loudly() {
    let bin = rvdyn_asm::matmul_program(4, 1);
    let mut dy = DynamicInstrumenter::create(bin);
    let err = MemTracer::plan_dynamic(
        &mut dy,
        &TraceOptions {
            capacity: 64,
            funcs: Some(vec!["no_such_fn".into()]),
        },
    );
    match err {
        Err(rvdyn::Error::NoSuchFunction { name }) => assert_eq!(name, "no_such_fn"),
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("planning against a missing function must fail"),
    }
}

#[test]
fn mid_run_commit_trace_is_engine_invariant() {
    // Attach-style tracing with a mid-run commit: run the mutatee up to
    // `work`, THEN commit the tracer (whose springboard writes
    // invalidate already-translated blocks in the cached engine), and
    // run on. Both engines must drain the identical post-commit trace.
    let stmts = vec![
        Stmt::Loop(vec![
            Stmt::Block,
            Stmt::If(vec![Stmt::Block], vec![Stmt::Block]),
        ]),
        Stmt::Block,
    ];
    let bin = stmt_program(&stmts, 0xDEAD_BEEF);
    let work = bin.symbol_by_name("work").unwrap().value;
    let run = |engine: EmuEngine| -> (Vec<TraceRecord>, u64) {
        let mut p = rvdyn::Process::launch(&bin);
        p.machine_mut().engine = engine;
        p.set_breakpoint(work).unwrap();
        assert!(matches!(p.cont().unwrap(), rvdyn::Event::Breakpoint(_)));
        p.remove_breakpoint(work).unwrap();
        let mut dy =
            DynamicInstrumenter::attach_with(bin.clone(), p, SessionOptions::new().engine(engine));
        let tracer = MemTracer::plan_dynamic(&mut dy, &TraceOptions::default()).expect("plan");
        dy.commit().expect("commit");
        assert_eq!(dy.run_to_exit().expect("run"), 0);
        let d = tracer.drain_dynamic(&mut dy).expect("drain");
        (d.records, d.dropped)
    };
    let interp = run(EmuEngine::Interpreter);
    let cached = run(EmuEngine::Cached);
    assert!(!interp.0.is_empty(), "work's loop must touch the stack");
    assert_eq!(interp, cached, "mid-run-commit traces diverge");
}

#[test]
fn fleet_traces_are_identical_per_process_and_match_oracle() {
    let bin = rvdyn_asm::matmul_program(5, 1);
    let mut fc = FleetController::from_binary(bin.clone(), SessionOptions::new().threads(4));
    let pids = fc.spawn(3);
    let tracer = MemTracer::plan_fleet(&mut fc, &TraceOptions::default()).expect("plan");
    fc.commit_all().expect("commit_all");
    fc.run_all();
    let expected = oracle_records(&bin, &tracer.pcs());
    for pid in pids {
        assert!(matches!(fc.result(pid), Some(Ok(0))), "pid {pid}");
        let d = tracer.drain_fleet(&mut fc, pid).expect("drain");
        assert_eq!(d.records, expected, "pid {pid} trace vs oracle");
        let pd = fc.process_diagnostics(pid).unwrap();
        assert_eq!(pd.trace_records, expected.len() as u64);
    }
}

#[test]
fn drained_trace_round_trips_through_the_v1_stream() {
    let bin = rvdyn_asm::matmul_program(4, 1);
    let (_, records, _) = traced_run(&bin, SessionOptions::new(), 1 << 16);
    let bytes = rvdyn::tools::serialize_trace(&records);
    let reader = TraceReader::parse(&bytes).expect("round trip");
    assert_eq!(reader.records(), &records[..]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole differential: over random reducible programs, the
    /// instrumented trace equals the interpreter oracle on BOTH engines
    /// and at BOTH worker counts — four configurations, one answer.
    #[test]
    fn random_programs_trace_equals_oracle(stmts in ProgramStrategy, seed in 0u64..1u64<<30) {
        let bin = stmt_program(&stmts, seed);
        let mut baseline: Option<(Vec<TraceRecord>, u64)> = None;
        for engine in [EmuEngine::Interpreter, EmuEngine::Cached] {
            for threads in [1usize, 4] {
                let opts = SessionOptions::new().engine(engine).threads(threads);
                let (pcs, records, dropped) = traced_run(&bin, opts, 1 << 16);
                prop_assert_eq!(dropped, 0, "dropped at {:?}/t{}", engine, threads);
                match &baseline {
                    None => {
                        let expected = oracle_records(&bin, &pcs);
                        prop_assert_eq!(
                            &records, &expected,
                            "trace vs oracle at {:?}/t{}", engine, threads
                        );
                        baseline = Some((records, dropped));
                    }
                    Some((recs, drop)) => {
                        prop_assert_eq!(&records, recs,
                            "trace differs at {:?}/t{}", engine, threads);
                        prop_assert_eq!(dropped, *drop);
                    }
                }
            }
        }
    }
}
