//! Differential ground truth for the sampling profiler and its
//! StackwalkerAPI substrate: (a) unwind proptests over random call-depth
//! mutatees, with and without frame pointers, exercising both the
//! `SpHeightStepper` (stack-height analysis, §3.2.7's "no frame pointer
//! required" walk) and the `FpStepper` (classic fp chain); (b) the
//! sampling harness itself — every cycle-interrupt's walked stack must
//! match the emulator's shadow call stack at the interrupt pc; (c) the
//! profiler's engine-identity witness (`sample_pcs` equal on interpreter
//! and cached DBT) and fleet aggregation.

use proptest::prelude::*;
use rvdyn::{
    CodeObject, DynamicInstrumenter, EmuEngine, Event, FleetController, ParseOptions, Process,
    Profile, ProfileOptions, Profiler, SessionOptions, StackWalker,
};
use rvdyn_stackwalker::{FpStepper, SpHeightStepper};
use rvdyn_symtab::Binary;

/// Run `bin` to its leaf `ebreak` and return (process, trap pc).
fn run_to_trap(bin: &Binary) -> (Process, u64) {
    let mut p = Process::launch(bin);
    match p.cont().expect("cont") {
        Event::Trap(pc) => (p, pc),
        e => panic!("expected the leaf ebreak, got {e:?}"),
    }
}

/// The call chain `nested_call_program(frames, _)` is trapped inside:
/// innermost first, as the walker reports it.
fn expected_chain(n: usize) -> Vec<String> {
    let mut v: Vec<String> = (0..n).rev().map(|i| format!("g_{i}")).collect();
    v.push("main".into());
    v.push("_start".into());
    v
}

fn names(frames: &[rvdyn::Frame]) -> Vec<String> {
    frames
        .iter()
        .map(|f| {
            f.func_name
                .clone()
                .unwrap_or_else(|| format!("{:#x}", f.pc))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Height-based unwinding needs no frame pointer: the default
    /// pipeline and the bare `SpHeightStepper` both recover the exact
    /// call chain from random-depth, random-frame-size mutatees,
    /// whether or not the binary maintains an fp chain.
    #[test]
    fn sp_height_walk_recovers_random_call_chains(
        frames in proptest::collection::vec(0u16..500, 1..7),
        fp in proptest::bool::ANY,
    ) {
        let bin = rvdyn_asm::nested_call_program(&frames, fp);
        let co = CodeObject::parse(&bin, &ParseOptions::default());
        let (p, pc) = run_to_trap(&bin);
        let want = expected_chain(frames.len());

        for walker in [
            StackWalker::new(),
            StackWalker::with_steppers(vec![Box::new(SpHeightStepper)]),
        ] {
            let fr = walker.walk_process(&p, &co);
            prop_assert_eq!(fr[0].pc, pc, "innermost pc is the trap pc");
            prop_assert_eq!(&names(&fr), &want, "fp={}", fp);
        }
    }

    /// The classic fp chain agrees with the height-based walk whenever
    /// the mutatee keeps frame pointers — and degrades to a single
    /// (innermost) frame when it does not, instead of fabricating one.
    #[test]
    fn fp_walk_follows_the_chain_only_when_present(
        frames in proptest::collection::vec(0u16..500, 1..7),
    ) {
        let walker = StackWalker::with_steppers(vec![Box::new(FpStepper)]);

        let with_fp = rvdyn_asm::nested_call_program(&frames, true);
        let co = CodeObject::parse(&with_fp, &ParseOptions::default());
        let (p, _) = run_to_trap(&with_fp);
        prop_assert_eq!(&names(&walker.walk_process(&p, &co)), &expected_chain(frames.len()));

        let without = rvdyn_asm::nested_call_program(&frames, false);
        let co = CodeObject::parse(&without, &ParseOptions::default());
        let (p, pc) = run_to_trap(&without);
        let fr = walker.walk_process(&p, &co);
        prop_assert_eq!(fr.len(), 1, "no fp chain to follow");
        prop_assert_eq!(fr[0].pc, pc);
    }
}

/// The stack_sampler example's STAT-style workflow, promoted into a
/// tested path: breakpoint-driven sampling of the fib recursion must
/// see every depth up to 8 fib frames + main + _start.
#[test]
fn breakpoint_sampling_sees_full_recursion_depth() {
    let bin = rvdyn_asm::fib_program(8);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let fib = bin.symbol_by_name("fib").unwrap().value;

    let mut p = Process::launch(&bin);
    p.set_breakpoint(fib).unwrap();
    let walker = StackWalker::new();
    let mut deepest = 0usize;
    let mut samples = 0u32;
    loop {
        match p.cont().expect("process control") {
            Event::Breakpoint(_) => {
                samples += 1;
                let fr = walker.walk_process(&p, &co);
                assert_eq!(fr[0].func_name.as_deref(), Some("fib"));
                assert_eq!(fr.last().unwrap().func_name.as_deref(), Some("_start"));
                deepest = deepest.max(fr.len());
            }
            Event::Exited(code) => {
                assert_eq!(code, 0);
                break;
            }
            e => panic!("unexpected event {e:?}"),
        }
        if samples > 200 {
            p.remove_breakpoint(fib).unwrap();
        }
    }
    assert!(samples > 0);
    assert_eq!(deepest, 8 + 2, "8 fib frames + main + _start");
}

/// The tentpole ground truth: interrupt the mutatee on a cycle
/// interval and, at EVERY interrupt, the walked stack's caller pcs must
/// equal the emulator's shadow call stack (armed oracle, innermost
/// return address last) — and the innermost frame must sit at the
/// interrupt pc.
#[test]
fn every_sample_matches_the_shadow_call_stack() {
    // Interval scaled to each mutatee's run length so every binary
    // actually gets interrupted many times before it finishes.
    for (bin, interval) in [
        (rvdyn_asm::matmul_program(6, 2), 997),
        (rvdyn_asm::nested_call_program(&[3, 7, 250, 11], false), 5),
        (rvdyn_asm::deep_call_program(40), 11),
    ] {
        let co = CodeObject::parse(&bin, &ParseOptions::default());
        let walker = StackWalker::new();
        let mut p = Process::launch(&bin);
        p.machine_mut().arm_call_oracle();
        let mut samples = 0u64;
        loop {
            let now = p.machine().cycles;
            p.machine_mut().stop_at_cycles = Some(now + interval);
            match p.cont().expect("cont") {
                Event::CycleLimit(pc) => {
                    samples += 1;
                    let fr = walker.walk_process(&p, &co);
                    assert_eq!(fr[0].pc, pc, "sample {samples}: innermost pc");
                    let walked: Vec<u64> = fr.iter().skip(1).map(|f| f.pc).collect();
                    let mut shadow: Vec<u64> = p.machine().call_stack().to_vec();
                    shadow.reverse();
                    assert_eq!(
                        walked, shadow,
                        "sample {samples} at {pc:#x}: walked callers vs shadow stack"
                    );
                }
                Event::Trap(pc) => {
                    // nested_call_program ends in its leaf ebreak; the
                    // shadow stack must still agree there.
                    let fr = walker.walk_process(&p, &co);
                    assert_eq!(fr[0].pc, pc);
                    let walked: Vec<u64> = fr.iter().skip(1).map(|f| f.pc).collect();
                    let mut shadow: Vec<u64> = p.machine().call_stack().to_vec();
                    shadow.reverse();
                    assert_eq!(walked, shadow);
                    break;
                }
                Event::Exited(code) => {
                    assert_eq!(code, 0);
                    break;
                }
                e => panic!("unexpected event {e:?}"),
            }
        }
        assert!(
            samples > 3,
            "interval must actually fire ({samples} samples)"
        );
    }
}

/// `sample_pcs` is the reproducibility witness: the same binary sampled
/// at the same interval interrupts at the same pcs on both engines.
#[test]
fn profiler_is_engine_identical() {
    let bin = rvdyn_asm::matmul_program(6, 2);
    let profiler = Profiler::new(ProfileOptions {
        interval_cycles: 2_500,
        max_samples: 1 << 20,
    });
    let mut runs: Vec<Profile> = Vec::new();
    for engine in [EmuEngine::Interpreter, EmuEngine::Cached] {
        let mut dy =
            DynamicInstrumenter::create_with(bin.clone(), SessionOptions::new().engine(engine));
        let out = profiler.sample_dynamic(&mut dy).expect("sample");
        assert_eq!(out.exit_code, 0);
        assert!(out.profile.samples > 10, "{engine:?}: too few samples");
        let d = dy.diagnostics();
        assert_eq!(d.profile_samples, out.profile.samples);
        assert_eq!(d.profile_max_depth, out.profile.max_depth);
        runs.push(out.profile);
    }
    assert_eq!(
        runs[0].sample_pcs, runs[1].sample_pcs,
        "interrupt pcs diverge between engines"
    );
    assert_eq!(runs[0].folded, runs[1].folded);
}

/// The aggregate report is well-formed: matmul dominates self samples,
/// every function's total ≥ self, folded lines parse as `stack count`.
#[test]
fn profile_report_shape() {
    let bin = rvdyn_asm::matmul_program(8, 2);
    let mut dy = DynamicInstrumenter::create(bin);
    let out = Profiler::new(ProfileOptions {
        interval_cycles: 1_000,
        max_samples: 1 << 20,
    })
    .sample_dynamic(&mut dy)
    .expect("sample");
    let p = &out.profile;
    assert!(p.max_depth >= 3, "matmul under main under _start");
    let matmul = p.funcs.get("matmul").expect("matmul sampled");
    assert!(matmul.self_samples > 0);
    for (name, c) in &p.funcs {
        assert!(c.total_samples >= c.self_samples, "{name}");
        assert!(c.total_samples <= p.samples, "{name}");
    }
    let folded_total: u64 = p.folded.values().sum();
    assert_eq!(folded_total, p.samples, "every sample folds exactly once");
    for line in p.folded_lines().lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(stack.starts_with("_start"), "outermost first: {line}");
        count.parse::<u64>().expect("numeric count");
    }
    assert!(p.report().contains("matmul"));
}

/// Fleet sampling: N identical processes, one merged profile whose
/// totals are the per-process sums, every outcome clean.
#[test]
fn fleet_profile_aggregates_per_process() {
    let bin = rvdyn_asm::matmul_program(5, 1);
    let mut fc = FleetController::from_binary(bin, SessionOptions::new());
    let pids = fc.spawn(3);
    let out = Profiler::new(ProfileOptions {
        interval_cycles: 2_000,
        max_samples: 1 << 20,
    })
    .sample_fleet(&mut fc)
    .expect("sample_fleet");
    assert_eq!(out.per_process.len(), 3);
    let mut sum = 0;
    for pid in &pids {
        assert!(matches!(out.outcomes.get(pid), Some(Ok(0))), "pid {pid}");
        let pp = &out.per_process[pid];
        assert!(pp.samples > 0, "pid {pid} never sampled");
        sum += pp.samples;
    }
    assert_eq!(out.profile.samples, sum, "merged profile is the sum");
    // Identical mutatees sampled at the same interval behave alike.
    let first = &out.per_process[&pids[0]];
    for pid in &pids[1..] {
        assert_eq!(out.per_process[pid].sample_pcs, first.sample_pcs);
    }
}
