//! Precise invalidation of the DBT translation cache under the dynamic
//! instrumentation path (docs/EMULATOR.md §"Invalidation"): springboard
//! patches delivered through the debug interface land in basic blocks
//! the cached engine has *already* translated and chained, and both the
//! direct-jump and trap-springboard redirect paths must take effect on
//! the very next execution — never a stale cached step. The FaultPlan
//! corrupt-write case pins the same hook for torn deliveries.

use rvdyn::{
    DynamicInstrumenter, EmuEngine, Error, Event, FaultPlan, PointKind, Process, SessionOptions,
    Snippet,
};
use rvdyn_asm::{matmul_program, tiny_function_program};

/// Warm a process's translation cache by running it to the `nth` hit of
/// a breakpoint at `addr` (the function body before `addr`'s nth visit
/// has then executed n-1 times — translated, chained, hot).
fn warm_to(p: &mut Process, addr: u64, hits: usize) {
    p.set_breakpoint(addr).unwrap();
    for _ in 0..hits {
        match p.cont().unwrap() {
            Event::Breakpoint(at) => assert_eq!(at, addr),
            other => panic!("expected breakpoint during warmup, got {other:?}"),
        }
    }
    p.remove_breakpoint(addr).unwrap();
}

/// Springboard writes into a hot cached block: warm the mutatee under an
/// engine until `matmul`'s blocks are translated, then attach and commit
/// jump springboards *into those blocks* and finish the run. The counter
/// must come out identical on both engines, and the cached engine must
/// report invalidations for the patched blocks.
#[test]
fn springboard_write_into_hot_block_redirects_on_both_engines() {
    let reps = 6usize;
    let mut counters = Vec::new();
    for engine in [EmuEngine::Interpreter, EmuEngine::Cached] {
        let bin = matmul_program(5, reps);
        let mm = bin.symbol_by_name("matmul").unwrap().value;
        let mut p = Process::launch(&bin);
        p.machine_mut().engine = engine;
        // Two full executions of matmul's body: its blocks are cached
        // and chained before instrumentation exists.
        warm_to(&mut p, mm, 3);
        if engine == EmuEngine::Cached {
            assert!(
                p.machine().emu_blocks_translated() > 0,
                "warmup must have populated the translation cache"
            );
        }

        let mut dy = DynamicInstrumenter::attach_with(bin, p, SessionOptions::new().engine(engine));
        let counter = dy.alloc_var(8);
        let pts = dy.find_points("matmul", PointKind::FuncEntry).unwrap();
        dy.insert(&pts, Snippet::increment(counter));
        dy.commit().unwrap();
        if engine == EmuEngine::Cached {
            assert!(
                dy.process().machine().emu_invalidations() > 0,
                "committing springboards into hot blocks must invalidate them"
            );
        }
        assert_eq!(dy.run_to_exit().unwrap(), 0);
        counters.push(dy.read_var(counter).unwrap());
        // The redirect was taken on the remaining calls, through freshly
        // re-decoded blocks — the counter saw every post-commit entry.
        assert!(counters.last().copied().unwrap() > 0);
    }
    assert_eq!(
        counters[0], counters[1],
        "engines disagree on post-patch entry counts: {counters:?}"
    );
}

/// Same shape through the *trap* springboard path: the 2-byte `tiny`
/// function forces an ebreak springboard, so every post-commit call
/// resolves through the trap-redirect table — inside the cached engine's
/// block dispatcher, not the interpreter loop.
#[test]
fn trap_springboard_into_hot_block_resolves_on_both_engines() {
    let iters = 40u64;
    let warm_hits = 5usize;
    let mut counters = Vec::new();
    for engine in [EmuEngine::Interpreter, EmuEngine::Cached] {
        let bin = tiny_function_program(iters);
        let tiny = bin.symbol_by_name("tiny").unwrap().value;
        let mut p = Process::launch(&bin);
        p.machine_mut().engine = engine;
        warm_to(&mut p, tiny, warm_hits);

        let mut dy = DynamicInstrumenter::attach_with(bin, p, SessionOptions::new().engine(engine));
        let counter = dy.alloc_var(8);
        let pts = dy.find_points("tiny", PointKind::FuncEntry).unwrap();
        dy.insert(&pts, Snippet::increment(counter));
        dy.commit().unwrap();
        assert!(
            dy.process().machine().trap_redirects.contains_key(&tiny),
            "tiny must use the trap springboard"
        );
        assert_eq!(dy.run_to_exit().unwrap(), 0);
        counters.push(dy.read_var(counter).unwrap());
    }
    assert_eq!(
        counters[0], counters[1],
        "engines disagree on trap-redirect counts: {counters:?}"
    );
    // Exactly the calls made after the warmup stop are counted.
    assert_eq!(counters[0], iters - warm_hits as u64 + 1);
}

/// A FaultPlan-corrupted patch write still goes through the machine's
/// invalidation hook: the torn bytes kill every overlapping cached
/// block, so the engine re-decodes rather than executing stale steps —
/// pinned by arming `verify_translations`, whose coherence assertion
/// would trip if a stale block survived the corrupt write.
#[test]
fn corrupt_write_invalidates_hot_cached_blocks() {
    let bin = matmul_program(5, 6);
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let mut p = Process::launch(&bin);
    p.machine_mut().engine = EmuEngine::Cached;
    p.machine_mut().verify_translations = true;
    warm_to(&mut p, mm, 3);
    let warm_blocks = p.machine().emu_blocks_translated();
    assert!(warm_blocks > 0);

    let plan = FaultPlan::new().corrupt_write(1, 0);
    let mut dy = DynamicInstrumenter::attach_with(
        bin,
        p,
        SessionOptions::new()
            .engine(EmuEngine::Cached)
            .fault_plan(plan),
    );
    let counter = dy.alloc_var(8);
    let pts = dy.find_points("matmul", PointKind::FuncEntry).unwrap();
    dy.insert(&pts, Snippet::increment(counter));
    // The corrupted region fails read-back verification…
    assert!(matches!(dy.commit(), Err(Error::PatchVerifyFailed { .. })));
    // …but the bytes *were* delivered, and the invalidation hook killed
    // the overlapping cached blocks — the coherence invariant holds even
    // for torn writes the commit refused.
    assert!(
        dy.process().machine().emu_invalidations() > 0,
        "corrupt write must invalidate overlapping cached blocks"
    );
    assert_eq!(dy.diagnostics().faults_injected, 1);
}
