//! Shared test infrastructure: the random structured-program generator
//! used by the placement proptests and the parallel-rewrite parity
//! proptests.
//!
//! [`Stmt`] trees lower to *reducible* CFGs by construction. Two
//! lowerings exist: `tests/placement.rs` keeps a synthetic
//! [`rvdyn_parse::Function`] lowering (for pure-placement math), while
//! [`stmt_program`] here assembles a **real runnable mutatee** whose
//! `work` function walks the same shape deterministically — every `If`
//! flips on a bit of an in-program LCG and every `Loop` runs an
//! LCG-derived 0..=3 trips — so instrumented runs are reproducible for
//! a given seed.

#![allow(dead_code)]

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use rvdyn_asm::{Assembler, Layout};
use rvdyn_isa::{build, IsaProfile, Op, Reg};
use rvdyn_symtab::{
    Binary, RiscvAttributes, Section, Symbol, SymbolBinding, SymbolKind, SHF_ALLOC, SHF_EXECINSTR,
    SHF_WRITE,
};

/// Structured program shapes lower to reducible CFGs by construction.
#[derive(Debug, Clone)]
pub enum Stmt {
    Block,
    If(Vec<Stmt>, Vec<Stmt>),
    Loop(Vec<Stmt>),
}

/// Recursive strategy for whole programs (the vendored proptest shim has
/// no `prop_recursive`, so the recursion is hand-rolled over its RNG).
#[derive(Debug, Clone, Copy)]
pub struct ProgramStrategy;

impl Strategy for ProgramStrategy {
    type Value = Vec<Stmt>;
    fn generate(&self, rng: &mut TestRng) -> Vec<Stmt> {
        gen_seq(rng, 0)
    }
}

fn gen_seq(rng: &mut TestRng, depth: usize) -> Vec<Stmt> {
    let n = 1 + rng.below(3) as usize;
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

fn gen_stmt(rng: &mut TestRng, depth: usize) -> Stmt {
    if depth >= 3 {
        return Stmt::Block;
    }
    match rng.below(3) {
        0 => Stmt::Block,
        1 => Stmt::If(gen_seq(rng, depth + 1), gen_seq(rng, depth + 1)),
        _ => Stmt::Loop(gen_seq(rng, depth + 1)),
    }
}

const T0: Reg = Reg::x(5);
const T1: Reg = Reg::x(6);
const S0: Reg = Reg::x(8);
const S1: Reg = Reg::x(9);
const A0: Reg = Reg::x(10);
const A7: Reg = Reg::x(17);
const RA: Reg = Reg::X1;
const SP: Reg = Reg::X2;

fn step_lcg(a: &mut Assembler) {
    a.li(T0, 25173);
    a.mul(S0, S0, T0);
    a.li(T1, 13849);
    a.add(S0, S0, T1);
}

fn emit_seq(a: &mut Assembler, stmts: &[Stmt], id: &mut i64) {
    for s in stmts {
        emit_stmt(a, s, id);
    }
}

fn emit_stmt(a: &mut Assembler, s: &Stmt, id: &mut i64) {
    match s {
        Stmt::Block => {
            // acc = acc * 3 + block_id — order-sensitive, so a wrong walk
            // (or a miscompiled relocation) changes the final value.
            let k = *id % 512;
            *id += 1;
            a.li(T0, 3);
            a.mul(S1, S1, T0);
            a.addi(S1, S1, k);
        }
        Stmt::If(then_, else_) => {
            step_lcg(a);
            a.inst(build::i_type(Op::Andi, T0, S0, 1 << 7));
            let l_then = a.label();
            let l_join = a.label();
            a.bne(T0, Reg::X0, l_then);
            emit_seq(a, else_, id);
            a.jump(l_join);
            a.bind(l_then);
            emit_seq(a, then_, id);
            a.bind(l_join);
        }
        Stmt::Loop(body) => {
            // Trip count 0..=3 from the LCG; the counter lives in a stack
            // slot so nested loops don't clobber each other.
            step_lcg(a);
            a.addi(SP, SP, -16);
            a.inst(build::i_type(Op::Andi, T0, S0, 3));
            a.sd(T0, SP, 0);
            let l_head = a.here_label();
            let l_exit = a.label();
            a.ld(T0, SP, 0);
            a.beq(T0, Reg::X0, l_exit);
            emit_seq(a, body, id);
            a.ld(T0, SP, 0);
            a.addi(T0, T0, -1);
            a.sd(T0, SP, 0);
            a.jump(l_head);
            a.bind(l_exit);
            a.addi(SP, SP, 16);
        }
    }
}

/// Assemble a [`Stmt`] tree into a real mutatee: `main` calls
/// `work(seed)` and stores the accumulator at the `result` data slot
/// (exit code is always 0). Execution is fully determined by `seed`.
pub fn stmt_program(stmts: &[Stmt], seed: u64) -> Binary {
    let layout = Layout::default();
    let result = layout.data;
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_work = a.label();

    let start_addr = a.here();
    a.call(l_main);
    a.li(A7, 93); // exit
    a.ecall();
    let start_size = a.here() - start_addr;

    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -16);
    a.sd(RA, SP, 8);
    a.li(A0, ((seed & 0x7fff_ffff) | 1) as i64);
    a.call(l_work);
    a.li(T0, result as i64);
    a.sd(A0, T0, 0);
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 8);
    a.addi(SP, SP, 16);
    a.ret();
    let main_size = a.here() - main_addr;

    // work(a0 = seed): the deterministic walk. s0 = LCG state, s1 = acc.
    a.bind(l_work);
    let work_addr = a.here();
    a.mv(S0, A0);
    a.li(S1, 0);
    let mut id = 1i64;
    emit_seq(&mut a, stmts, &mut id);
    a.mv(A0, S1);
    a.ret();
    let work_size = a.here() - work_addr;

    let code = a.finish().expect("stmt program assembles");
    let sections = vec![
        Section::progbits(".text", layout.text, SHF_ALLOC | SHF_EXECINSTR, code),
        Section::progbits(".data", layout.data, SHF_ALLOC | SHF_WRITE, vec![0; 8]),
    ];
    let sym = |name: &str, addr: u64, size: u64, kind| Symbol {
        name: name.to_string(),
        value: addr,
        size,
        kind,
        binding: SymbolBinding::Global,
    };
    let profile = IsaProfile::rv64gc();
    Binary {
        entry: layout.text,
        e_flags: Binary::eflags_for(profile),
        e_type: rvdyn_symtab::elf::ET_EXEC,
        sections,
        symbols: vec![
            sym("_start", start_addr, start_size, SymbolKind::Function),
            sym("main", main_addr, main_size, SymbolKind::Function),
            sym("work", work_addr, work_size, SymbolKind::Function),
            sym("result", result, 8, SymbolKind::Object),
        ],
        attributes: Some(RiscvAttributes::for_profile(profile)),
    }
}
