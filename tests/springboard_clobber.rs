//! Springboard redirect soundness (DESIGN.md §4, ROADMAP "springboard
//! clobber" item): overwriting the head of a function with a springboard
//! clobbers every instruction the springboard bytes overlap. If any
//! clobbered address can still be reached — compressed instructions
//! straddled by a 4-byte jump, or an entry block that is also an
//! indirect-jump target — the patcher must either have a redirect
//! registered for it or refuse with `Error::SpringboardClobber`.
//!
//! The mutatee is `rvdyn_asm::indirect_entry_program`: `spin`'s entry
//! block opens with two compressed instructions and is re-entered through
//! a `.rodata` jump table, so a 4-byte entry springboard clobbers two
//! addresses and *both* stay reachable.

use rvdyn::{
    audit_redirect_coverage, clobbered_addresses, BinaryEditor, CodeObject, DynamicInstrumenter,
    Error, ParseOptions, PointKind, SessionOptions, Snippet, Stage,
};
use rvdyn_asm::indirect_entry_program;
use rvdyn_patch::{find_points, Instrumenter};
use std::collections::BTreeMap;

const ITERS: u64 = 9;

fn spin_entry(co: &CodeObject) -> u64 {
    co.functions
        .values()
        .find(|f| f.name.as_deref() == Some("spin"))
        .expect("spin parsed")
        .entry
}

/// The deterministic shape the whole suite relies on: the entry block is
/// an indirect-jump target and a 4-byte springboard clobbers exactly the
/// two compressed instructions at its head.
#[test]
fn entry_block_is_indirect_target_with_compressed_straddle() {
    let bin = indirect_entry_program(ITERS);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let spin = spin_entry(&co);
    let f = &co.functions[&spin];

    let entry_block = &f.blocks[&f.entry];
    assert_eq!(entry_block.insts[0].size, 2, "entry opens compressed");
    assert_eq!(entry_block.insts[1].size, 2, "second inst compressed");

    let indirect_targets: Vec<u64> = f
        .blocks
        .values()
        .flat_map(|b| b.edges.iter())
        .filter(|e| matches!(e.kind, rvdyn::EdgeKind::IndirectJump))
        .filter_map(|e| e.target)
        .collect();
    assert_eq!(
        indirect_targets,
        vec![spin],
        "jump table must resolve back to spin's entry"
    );

    assert_eq!(
        clobbered_addresses(f, spin, 4),
        vec![spin, spin + 2],
        "4-byte springboard straddles both compressed instructions"
    );
}

/// The audit itself: with no relocation map there is no redirect coverage,
/// and the typed error names every clobbered address.
#[test]
fn audit_rejects_uncovered_clobbers_with_typed_error() {
    let bin = indirect_entry_program(ITERS);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let spin = spin_entry(&co);
    let f = &co.functions[&spin];

    let err = audit_redirect_coverage(f, spin, 4, &BTreeMap::new()).unwrap_err();
    let err: Error = err.into();
    match &err {
        Error::SpringboardClobber { pc, clobbered } => {
            assert_eq!(*pc, spin);
            assert_eq!(clobbered, &vec![spin, spin + 2]);
        }
        other => panic!("expected SpringboardClobber, got {other:?}"),
    }
    assert_eq!(err.stage(), Stage::Instrument);
    assert_eq!(err.pc(), Some(spin));

    // Partial coverage is still a rejection, and the error lists exactly
    // the missing addresses.
    let mut partial = BTreeMap::new();
    partial.insert(spin, 0x8_0000u64);
    match audit_redirect_coverage(f, spin, 4, &partial) {
        Err(rvdyn::InstrumentError::SpringboardClobber { clobbered, .. }) => {
            assert_eq!(clobbered, vec![spin + 2]);
        }
        other => panic!("expected SpringboardClobber, got {other:?}"),
    }

    // Full coverage passes and returns the redirect pairs.
    partial.insert(spin + 2, 0x8_0004u64);
    let pairs = audit_redirect_coverage(f, spin, 4, &partial).unwrap();
    assert_eq!(pairs, vec![(spin, 0x8_0000), (spin + 2, 0x8_0004)]);
}

/// The regression the ISSUE pins: instrumenting a function whose entry
/// block is an indirect-jump target must register a redirect for EVERY
/// clobbered address — the trap table covers the full clobbered set.
#[test]
fn patch_registers_redirects_for_all_clobbered_addresses() {
    let bin = indirect_entry_program(ITERS);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let spin = spin_entry(&co);
    let f = &co.functions[&spin];

    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(f, PointKind::FuncEntry),
        &Snippet::increment(counter),
    );
    let patched = ins.apply().unwrap();

    let clobbered = clobbered_addresses(f, spin, 4);
    assert_eq!(clobbered, vec![spin, spin + 2]);
    for pc in &clobbered {
        assert!(
            patched.trap_table.iter().any(|(from, _)| from == pc),
            "clobbered address {pc:#x} has no redirect in the trap table"
        );
    }
    assert!(patched.clobbers_audited >= clobbered.len());
    assert!(patched.redirects_registered >= clobbered.len());
}

/// Static path, end to end: the rewritten ELF still computes the right
/// answer (every table dispatch lands on covered code), the counter is
/// exact, and the audit counters surface in the session diagnostics.
#[test]
fn static_rewrite_of_indirect_entry_function_stays_correct() {
    let bin = indirect_entry_program(ITERS);
    let result_addr = bin.symbol_by_name("result").unwrap().value;

    let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
    let counter = ed.alloc_var(8);
    let pts = ed.find_points("spin", PointKind::FuncEntry).unwrap();
    ed.insert(&pts, Snippet::increment(counter));
    let out = ed.rewrite().unwrap();

    let d = ed.diagnostics();
    assert!(d.clobbers_audited >= 2, "audit ran: {d:?}");
    assert!(d.redirects_registered >= 2, "redirects registered: {d:?}");
    let json = d.to_json();
    assert!(json.contains("\"clobbers_audited\":"));
    assert!(json.contains("\"redirects_registered\":"));

    let r = rvdyn::run_elf(&out, 100_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.read_u64(result_addr), Some(ITERS), "semantics preserved");
    assert_eq!(
        r.read_u64(counter.addr),
        Some(ITERS),
        "every entry — direct call and indirect re-entry — counted"
    );
}

/// Dynamic path: the same mutatee through the debug interface. The
/// runtime redirect table must cover the same clobbered set, and the live
/// run must stay correct.
#[test]
fn dynamic_commit_covers_clobbers_and_runs_correct() {
    let bin = indirect_entry_program(ITERS);
    let result_addr = bin.symbol_by_name("result").unwrap().value;
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let spin = spin_entry(&co);
    let clobbered = clobbered_addresses(&co.functions[&spin], spin, 4);

    let mut dy = DynamicInstrumenter::create(bin);
    let counter = dy.alloc_var(8);
    let pts = dy.find_points("spin", PointKind::FuncEntry).unwrap();
    dy.insert(&pts, Snippet::increment(counter));
    dy.commit().unwrap();

    for pc in &clobbered {
        assert!(
            dy.process().machine().trap_redirects.contains_key(pc),
            "runtime redirect table missing clobbered address {pc:#x}"
        );
    }

    assert_eq!(dy.run_to_exit().unwrap(), 0);
    assert_eq!(dy.read_var(counter), Some(ITERS));
    let got = dy
        .process()
        .read_mem(result_addr, 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .ok();
    assert_eq!(got, Some(ITERS), "semantics preserved under redirects");
    assert!(dy.diagnostics().clobbers_audited >= 2);
}
