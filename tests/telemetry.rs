//! Integration coverage for the instrumentation-session API: the shared
//! `Session` core behind both delivery shells, per-stage wall-clock
//! timing, the telemetry event stream, and the conservative-mode /
//! delivery-verification error paths.

use rvdyn::telemetry::CollectSink;
use rvdyn::{
    BinaryEditor, DynamicInstrumenter, Error, PointKind, SessionOptions, Snippet, Stage,
    TelemetryEvent, TimedStage,
};

// --- shared session core ---------------------------------------------------

#[test]
fn static_and_dynamic_paths_report_identical_counters() {
    // Both entry points are shells over the same Session core, so the
    // parse and instrument counters must agree exactly for the same
    // program and the same insertions.
    let elf = rvdyn_asm::matmul_program(5, 2).to_bytes().unwrap();
    let mut ed = BinaryEditor::open(&elf).unwrap();
    let c1 = ed.alloc_var(8);
    let pts = ed.find_points("matmul", PointKind::BlockEntry).unwrap();
    ed.insert(&pts, Snippet::increment(c1));
    ed.rewrite().unwrap();
    let sd = ed.diagnostics().clone();

    let bin = rvdyn_asm::matmul_program(5, 2);
    let mut dy = DynamicInstrumenter::create(bin);
    let c2 = dy.alloc_var(8);
    let pts = dy.find_points("matmul", PointKind::BlockEntry).unwrap();
    dy.insert(&pts, Snippet::increment(c2));
    dy.commit().unwrap();
    let dd = dy.diagnostics();

    assert_eq!(sd.functions_parsed, dd.functions_parsed);
    assert_eq!(sd.blocks_parsed, dd.blocks_parsed);
    assert_eq!(sd.instructions_decoded, dd.instructions_decoded);
    assert_eq!(sd.unresolved_indirects, dd.unresolved_indirects);
    assert_eq!(sd.points_instrumented, dd.points_instrumented);
    assert_eq!(sd.dead_register_points, dd.dead_register_points);
    assert_eq!(sd.spills, dd.spills);
    assert_eq!(sd.springboards.total(), dd.springboards.total());
    // Both deliveries report their region structure now: the dynamic
    // commit counts coalesced write_mem regions, the static rewrite
    // counts serialised PT_LOAD segments.
    assert!(sd.patch_regions_written > 0);
    assert!(dd.patch_regions_written > 0);
}

#[test]
fn stage_timings_are_populated_and_consistent() {
    let elf = rvdyn_asm::matmul_program(6, 2).to_bytes().unwrap();
    let mut ed = BinaryEditor::open(&elf).unwrap();
    let c = ed.alloc_var(8);
    let pts = ed.find_points("matmul", PointKind::FuncEntry).unwrap();
    ed.insert(&pts, Snippet::increment(c));
    ed.instrument_and_run(1_000_000_000).unwrap();

    let t = ed.diagnostics().timings;
    for (stage, ns) in [
        (TimedStage::Open, t.open_ns),
        (TimedStage::Parse, t.parse_ns),
        (TimedStage::Instrument, t.instrument_ns),
        (TimedStage::Commit, t.commit_ns),
        (TimedStage::Run, t.run_ns),
    ] {
        assert!(ns > 0, "{stage} stage must have nonzero wall-clock");
        assert_eq!(t.get(stage), ns);
    }
    // Relocation is a sub-phase of instrument, never longer than it.
    assert!(t.relocate_ns <= t.instrument_ns);
    // The total covers each top-level stage.
    let total = t.total_ns();
    for ns in [
        t.open_ns,
        t.parse_ns,
        t.instrument_ns,
        t.commit_ns,
        t.run_ns,
    ] {
        assert!(total >= ns);
    }
}

// --- the event stream ------------------------------------------------------

#[test]
fn static_pipeline_streams_events_to_the_sink() {
    let elf = rvdyn_asm::matmul_program(5, 1).to_bytes().unwrap();
    let sink = CollectSink::new();
    let mut ed =
        BinaryEditor::open_with(&elf, SessionOptions::new().telemetry(sink.clone())).unwrap();
    let c = ed.alloc_var(8);
    let pts = ed.find_points("matmul", PointKind::BlockEntry).unwrap();
    ed.insert(&pts, Snippet::increment(c));
    ed.instrument_and_run(1_000_000_000).unwrap();

    let d = ed.diagnostics();
    // Stage boundaries arrive paired.
    for stage in [
        TimedStage::Open,
        TimedStage::Parse,
        TimedStage::Instrument,
        TimedStage::Commit,
        TimedStage::Run,
    ] {
        let starts =
            sink.count(|e| matches!(e, TelemetryEvent::StageStart { stage: s } if *s == stage));
        let ends =
            sink.count(|e| matches!(e, TelemetryEvent::StageEnd { stage: s, .. } if *s == stage));
        assert_eq!(starts, 1, "one {stage} start");
        assert_eq!(ends, 1, "one {stage} end");
    }
    // Parse events mirror the parse counters.
    assert_eq!(
        sink.count(|e| matches!(e, TelemetryEvent::FunctionParsed { .. })),
        d.functions_parsed
    );
    // Every instrumented point was reported as it lowered.
    assert_eq!(
        sink.count(|e| matches!(e, TelemetryEvent::PointLowered { .. })),
        d.points_instrumented
    );
    assert_eq!(
        sink.count(|e| matches!(e, TelemetryEvent::SpringboardPlanted { .. })),
        d.springboards.total()
    );
    assert!(sink.count(|e| matches!(e, TelemetryEvent::FunctionRelocated { .. })) > 0);
    // The run loop reported a clean exit.
    assert_eq!(
        sink.count(|e| matches!(e, TelemetryEvent::RunExit { reason: "exited" })),
        1
    );
}

#[test]
fn dynamic_delivery_streams_proc_and_region_events() {
    let bin = rvdyn_asm::matmul_program(4, 1);
    let sink = CollectSink::new();
    let mut dy =
        DynamicInstrumenter::create_with(bin, SessionOptions::new().telemetry(sink.clone()));
    let c = dy.alloc_var(8);
    let pts = dy.find_points("matmul", PointKind::BlockEntry).unwrap();
    dy.insert(&pts, Snippet::increment(c));
    dy.commit().unwrap();
    assert_eq!(dy.run_to_exit().unwrap(), 0);

    // Delivery goes through the observed debug interface…
    assert!(sink.count(|e| matches!(e, TelemetryEvent::MemWritten { .. })) > 0);
    // …as coalesced, verified regions, matching the diagnostics counter.
    assert_eq!(
        sink.count(|e| matches!(e, TelemetryEvent::PatchRegionWritten { .. })),
        dy.diagnostics().patch_regions_written
    );
    assert_eq!(
        sink.count(|e| matches!(e, TelemetryEvent::RunExit { reason: "exited" })),
        1
    );
    // Controller breakpoints stream too.
    let main = dy.code().functions.values().next().unwrap().entry;
    let _ = dy.process_mut().set_breakpoint(main);
    assert_eq!(
        sink.count(|e| matches!(e, TelemetryEvent::BreakpointSet { .. })),
        1
    );
}

// --- conservative mode -----------------------------------------------------

/// A program whose `main` contains a never-taken indirect jump the parser
/// cannot resolve (no jump-table pattern behind it).
fn program_with_unresolved_indirect() -> rvdyn::Binary {
    use rvdyn_isa::Reg;
    use rvdyn_symtab::{
        Section, Symbol, SymbolBinding, SymbolKind, SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE,
    };
    let mut a = rvdyn_asm::Assembler::new(0x1_0000);
    let l_main = a.label();
    a.call(l_main);
    a.li(Reg::x(17), 93);
    a.ecall();
    a.bind(l_main);
    let main_addr = a.here();
    let l_done = a.label();
    a.beq(Reg::X0, Reg::X0, l_done); // always skip the indirect jump
    a.jalr(Reg::X0, Reg::x(10), 0); // parsed, never executed, unresolvable
    a.bind(l_done);
    a.ret();
    let main_size = a.here() - main_addr;
    let code = a.finish().unwrap();
    let profile = rvdyn_isa::IsaProfile::rv64gc();
    rvdyn::Binary {
        entry: 0x1_0000,
        e_flags: rvdyn::Binary::eflags_for(profile),
        e_type: rvdyn_symtab::elf::ET_EXEC,
        sections: vec![
            Section::progbits(".text", 0x1_0000, SHF_ALLOC | SHF_EXECINSTR, code),
            Section::progbits(".data", 0x2_0000, SHF_ALLOC | SHF_WRITE, vec![0; 8]),
        ],
        symbols: vec![Symbol {
            name: "main".into(),
            value: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
            binding: SymbolBinding::Global,
        }],
        attributes: Some(rvdyn_symtab::RiscvAttributes::for_profile(profile)),
    }
}

#[test]
fn conservative_mode_refuses_unresolved_indirects() {
    let bin = program_with_unresolved_indirect();

    // Conservative session: refuse to relocate.
    let mut ed =
        BinaryEditor::from_binary(bin.clone(), SessionOptions::new().allow_unresolved(false));
    assert!(ed.diagnostics().unresolved_indirects > 0);
    let c = ed.alloc_var(8);
    let pts = ed.find_points("main", PointKind::FuncEntry).unwrap();
    let func = pts[0].func;
    ed.insert(&pts, Snippet::increment(c));
    match ed.instrumented() {
        Err(Error::UnresolvedIndirects { func: f, count }) => {
            assert_eq!(f, func);
            assert!(count > 0);
        }
        other => panic!("expected UnresolvedIndirects, got {other:?}"),
    }
    let err = ed.instrumented().unwrap_err();
    assert_eq!(err.stage(), Stage::Instrument);
    assert_eq!(err.pc(), Some(func));

    // Default (permissive) session: same insertions go through, and the
    // instrumented program still runs — the indirect path is never taken.
    let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
    let c = ed.alloc_var(8);
    let pts = ed.find_points("main", PointKind::FuncEntry).unwrap();
    ed.insert(&pts, Snippet::increment(c));
    let out = ed.rewrite().unwrap();
    let r = rvdyn::run_elf(&out, 10_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.read_u64(c.addr), Some(1));
}

// --- redirect misses -------------------------------------------------------

#[test]
fn static_redirect_miss_is_typed_not_generic() {
    use rvdyn_symtab::{Section, SHF_ALLOC, SHF_EXECINSTR};
    // A binary whose entry is a bare ebreak while its trap table redirects
    // a *different* address: the run must report the miss, with the pc.
    let mut a = rvdyn_asm::Assembler::new(0x1_0000);
    a.ebreak();
    let code = a.finish().unwrap();
    let profile = rvdyn_isa::IsaProfile::rv64gc();
    let mut traps = Vec::new();
    traps.extend_from_slice(&0x9999_0000u64.to_le_bytes()); // from: elsewhere
    traps.extend_from_slice(&0x9999_0004u64.to_le_bytes()); // to
    let bin = rvdyn::Binary {
        entry: 0x1_0000,
        e_flags: rvdyn::Binary::eflags_for(profile),
        e_type: rvdyn_symtab::elf::ET_EXEC,
        sections: vec![
            Section::progbits(".text", 0x1_0000, SHF_ALLOC | SHF_EXECINSTR, code),
            Section::progbits(".rvdyn.traps", 0x9000_0000, SHF_ALLOC, traps),
        ],
        symbols: vec![],
        attributes: Some(rvdyn_symtab::RiscvAttributes::for_profile(profile)),
    };
    match rvdyn::run_binary(&bin, 1_000) {
        Err(Error::RedirectMiss { pc }) => assert_eq!(pc, 0x1_0000),
        Err(other) => panic!("expected RedirectMiss, got {other:?}"),
        Ok(_) => panic!("expected RedirectMiss, got a clean exit"),
    }
    let err = match rvdyn::run_binary(&bin, 1_000) {
        Err(e) => e,
        Ok(_) => unreachable!(),
    };
    assert_eq!(err.stage(), Stage::Run);
    assert_eq!(err.pc(), Some(0x1_0000));

    // The same trap in a binary with NO redirect table is the mutatee's
    // own ebreak — still the generic unclean exit, not a miss.
    let mut a = rvdyn_asm::Assembler::new(0x1_0000);
    a.ebreak();
    let code = a.finish().unwrap();
    let plain = rvdyn::Binary {
        entry: 0x1_0000,
        e_flags: rvdyn::Binary::eflags_for(profile),
        e_type: rvdyn_symtab::elf::ET_EXEC,
        sections: vec![Section::progbits(
            ".text",
            0x1_0000,
            SHF_ALLOC | SHF_EXECINSTR,
            code,
        )],
        symbols: vec![],
        attributes: Some(rvdyn_symtab::RiscvAttributes::for_profile(profile)),
    };
    assert!(matches!(
        rvdyn::run_binary(&plain, 1_000),
        Err(Error::UncleanExit { .. })
    ));
}

// --- error taxonomy + JSON -------------------------------------------------

#[test]
fn delivery_errors_carry_stage_and_address() {
    let e = Error::PatchVerifyFailed { addr: 0x420 };
    assert_eq!(e.stage(), Stage::Instrument);
    assert_eq!(e.pc(), Some(0x420));
    assert!(e.to_string().contains("0x420"));

    let e = Error::RedirectMiss { pc: 0x1234 };
    assert!(e.to_string().contains("0x1234"));
}

#[test]
fn diagnostics_json_round_trips_a_real_pipeline() {
    let elf = rvdyn_asm::matmul_program(4, 1).to_bytes().unwrap();
    let mut ed = BinaryEditor::open(&elf).unwrap();
    let c = ed.alloc_var(8);
    let pts = ed.find_points("matmul", PointKind::FuncEntry).unwrap();
    ed.insert(&pts, Snippet::increment(c));
    ed.instrument_and_run(1_000_000_000).unwrap();
    let j = ed.diagnostics().to_json();
    for key in [
        "\"schema\":\"rvdyn-diagnostics-v1\"",
        "\"parse\":",
        "\"instrument\":",
        "\"run\":",
        "\"timings_ns\":",
    ] {
        assert!(j.contains(key), "JSON missing {key}: {j}");
    }
    // Timings in the JSON are the live ones, not zeros.
    assert!(!j.contains("\"run\":{\"instret\":0"));
}

// --- the deprecated surface ------------------------------------------------

#[test]
#[allow(deprecated)]
fn constructor_shims_still_serve_old_callers() {
    // The pre-redesign constructor spread forwards to the collapsed
    // `from_binary(Binary, SessionOptions)`; same session either way.
    let bin = rvdyn_asm::fib_program(4);
    let ed = BinaryEditor::from_binary_with(bin.clone(), &rvdyn::ParseOptions::default());
    let ed2 = BinaryEditor::from_binary_with_options(bin.clone(), SessionOptions::default());
    let new = BinaryEditor::from_binary(bin, SessionOptions::default());
    assert_eq!(
        ed.diagnostics().functions_parsed,
        new.diagnostics().functions_parsed
    );
    assert_eq!(
        ed2.diagnostics().blocks_parsed,
        new.diagnostics().blocks_parsed
    );
}
