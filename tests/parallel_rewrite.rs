//! Determinism and parity of the parallel instrumentation back half:
//! the plan phase fans out over a worker pool, but the sequential layout
//! phase must make the output **bit-identical for any thread count** —
//! on the static (`rewrite`) path, on the dynamic (`commit`) path, and
//! observably (same telemetry order, same diagnostics, same emulator
//! results) — pinned here over the whole mutatee suite and over random
//! reducible CFGs.

mod common;

use common::ProgramStrategy;
use proptest::prelude::*;
use rvdyn::telemetry::CollectSink;
use rvdyn::{
    Binary, BinaryEditor, DynamicInstrumenter, PointKind, SessionOptions, Snippet, TelemetryEvent,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The mutatee suite under test: (name, binary, functions to instrument).
type Mutatee = (&'static str, Binary, Vec<(String, PointKind)>);

fn mutatees() -> Vec<Mutatee> {
    let b = PointKind::BlockEntry;
    let many_funcs: Vec<(String, PointKind)> = (0..24)
        .map(|i| (format!("f_{i}"), b))
        .chain([("main".to_string(), b), ("selector".to_string(), b)])
        .collect();
    vec![
        (
            "matmul",
            rvdyn_asm::matmul_program(4, 1),
            vec![
                ("matmul".to_string(), b),
                ("init_arrays".to_string(), b),
                ("main".to_string(), b),
            ],
        ),
        (
            "indirect",
            rvdyn_asm::indirect_entry_program(6),
            vec![("spin".to_string(), b), ("main".to_string(), b)],
        ),
        (
            "tiny",
            rvdyn_asm::tiny_function_program(8),
            vec![
                ("tiny".to_string(), PointKind::FuncEntry),
                ("main".to_string(), b),
            ],
        ),
        ("many", rvdyn_asm::many_functions_program(24), many_funcs),
    ]
}

fn insert_counters(ed: &mut BinaryEditor, funcs: &[(String, PointKind)]) -> rvdyn::Var {
    let c = ed.alloc_var(8);
    let mut pts = Vec::new();
    for (f, kind) in funcs {
        pts.extend(ed.find_points(f, *kind).unwrap());
    }
    ed.insert(&pts, Snippet::increment(c));
    c
}

#[test]
fn static_rewrite_is_bit_identical_across_thread_counts() {
    for (name, bin, funcs) in mutatees() {
        let elf = bin.to_bytes().unwrap();
        let mut outputs = Vec::new();
        for t in THREADS {
            let mut ed = BinaryEditor::open_with(&elf, SessionOptions::new().threads(t)).unwrap();
            insert_counters(&mut ed, &funcs);
            let out = ed.rewrite().unwrap();
            let d = ed.diagnostics().clone();
            assert_eq!(
                d.instrument_workers,
                t.min(funcs.len()),
                "{name}: worker count at threads={t}"
            );
            assert_eq!(d.plans_built, funcs.len(), "{name}: one plan per function");
            outputs.push(out);
        }
        for (i, out) in outputs.iter().enumerate().skip(1) {
            assert_eq!(
                out, &outputs[0],
                "{name}: threads={} bytes differ from threads=1",
                THREADS[i]
            );
        }
        // The deterministic output must also still run correctly.
        let r = rvdyn::run_elf(&outputs[0], 1_000_000_000).unwrap();
        assert_eq!(r.exit_code, 0, "{name} exit");
    }
}

#[test]
fn static_memory_writes_are_identical_across_thread_counts() {
    // One level below the ELF serializer: the raw (address, bytes) patch
    // writes — what the dynamic path delivers — must match exactly.
    for (name, bin, funcs) in mutatees() {
        let reference = {
            let mut ed = BinaryEditor::from_binary(bin.clone(), SessionOptions::new());
            insert_counters(&mut ed, &funcs);
            ed.instrumented().unwrap()
        };
        for t in [2usize, 4, 8] {
            let mut ed = BinaryEditor::from_binary(bin.clone(), SessionOptions::new().threads(t));
            insert_counters(&mut ed, &funcs);
            let got = ed.instrumented().unwrap();
            assert_eq!(
                got.memory_writes(),
                reference.memory_writes(),
                "{name}: memory writes differ at threads={t}"
            );
            assert_eq!(
                got.trap_table, reference.trap_table,
                "{name}: trap table differs at threads={t}"
            );
        }
    }
}

#[test]
fn dynamic_commit_is_bit_identical_across_thread_counts() {
    for (name, bin, funcs) in mutatees() {
        // Reference payload from a single-threaded plan.
        let reference = {
            let mut ed = BinaryEditor::from_binary(bin.clone(), SessionOptions::new());
            insert_counters(&mut ed, &funcs);
            ed.instrumented().unwrap()
        };
        let mut counters = Vec::new();
        for t in THREADS {
            let mut dy =
                DynamicInstrumenter::create_with(bin.clone(), SessionOptions::new().threads(t));
            let c = dy.alloc_var(8);
            let mut pts = Vec::new();
            for (f, kind) in &funcs {
                pts.extend(dy.find_points(f, *kind).unwrap());
            }
            dy.insert(&pts, Snippet::increment(c));
            dy.commit().unwrap();
            // Every byte the reference plan wrote must be in the live
            // process, exactly.
            for (addr, bytes) in reference.memory_writes() {
                let got = dy.process().read_mem(*addr, bytes.len()).unwrap();
                assert_eq!(
                    &got, bytes,
                    "{name}: committed bytes at {addr:#x} differ at threads={t}"
                );
            }
            assert_eq!(dy.run_to_exit().unwrap(), 0, "{name} exit at threads={t}");
            counters.push(dy.read_var(c).unwrap());
        }
        assert!(
            counters.windows(2).all(|w| w[0] == w[1]),
            "{name}: counter values diverge across thread counts: {counters:?}"
        );
        assert!(counters[0] > 0, "{name}: counted nothing");
    }
}

#[test]
fn telemetry_event_order_is_deterministic() {
    // The plan phase runs on a pool, but events are buffered per plan and
    // replayed in entry order by the layout phase — so the observable
    // event stream is identical for any thread count, including the
    // per-function PlanBuilt markers.
    let bin = rvdyn_asm::many_functions_program(16);
    let funcs: Vec<(String, PointKind)> = (0..16)
        .map(|i| (format!("f_{i}"), PointKind::BlockEntry))
        .collect();
    let trace = |t: usize| {
        let sink = CollectSink::new();
        let mut ed = BinaryEditor::from_binary(
            bin.clone(),
            SessionOptions::new().threads(t).telemetry(sink.clone()),
        );
        insert_counters(&mut ed, &funcs);
        ed.rewrite().unwrap();
        sink.events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TelemetryEvent::PlanBuilt { .. }
                        | TelemetryEvent::PointLowered { .. }
                        | TelemetryEvent::FunctionRelocated { .. }
                        | TelemetryEvent::SpringboardPlanted { .. }
                )
            })
            .map(|e| format!("{e:?}"))
            .collect::<Vec<_>>()
    };
    let baseline = trace(1);
    assert!(
        baseline
            .iter()
            .filter(|s| s.starts_with("PlanBuilt"))
            .count()
            == 16,
        "one PlanBuilt per instrumented function"
    );
    for t in [2, 4, 8] {
        assert_eq!(trace(t), baseline, "event order differs at threads={t}");
    }
}

#[test]
fn many_functions_mutatee_computes_its_closed_form() {
    // The stress mutatee's architectural result is 30 + 4n at `result`.
    let n = 24u64;
    let bin = rvdyn_asm::many_functions_program(n as usize);
    let result = bin.symbol_by_name("result").unwrap().value;
    let elf = bin.to_bytes().unwrap();
    let r = rvdyn::run_elf(&elf, 1_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.read_u64(result), Some(30 + 4 * n));
}

// --- parity over random reducible CFGs --------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any structured program, instrumenting with a worker pool
    /// produces the same bytes, the same architectural result, and the
    /// same per-block counts as the sequential instrumenter.
    #[test]
    fn random_cfgs_run_identically_under_parallel_instrumentation(
        stmts in ProgramStrategy,
        seed in any::<u64>(),
    ) {
        let bin = common::stmt_program(&stmts, seed);
        let result_addr = bin.symbol_by_name("result").unwrap().value;
        let elf = bin.to_bytes().unwrap();

        let run = |threads: usize| {
            let mut ed = BinaryEditor::open_with(
                &elf,
                SessionOptions::new().threads(threads),
            ).unwrap();
            let bc_work = ed.count_blocks("work").unwrap();
            let bc_main = ed.count_blocks("main").unwrap();
            let r = ed.instrument_and_run(1_000_000_000).unwrap();
            let counts_work = ed.block_counts(&bc_work, &r).unwrap();
            let counts_main = ed.block_counts(&bc_main, &r).unwrap();
            (r.exit_code, r.read_u64(result_addr), counts_work, counts_main)
        };
        let sequential = run(1);
        prop_assert_eq!(sequential.0, 0, "mutatee must exit cleanly");
        for t in [2usize, 4] {
            let parallel = run(t);
            prop_assert_eq!(&parallel, &sequential,
                "threads={} diverged from sequential", t);
        }

        // And the rewritten images themselves are bit-identical.
        let rewrite = |threads: usize| {
            let mut ed = BinaryEditor::open_with(
                &elf,
                SessionOptions::new().threads(threads),
            ).unwrap();
            let c = ed.alloc_var(8);
            let pts = ed.find_points("work", PointKind::BlockEntry).unwrap();
            ed.insert(&pts, Snippet::increment(c));
            let pts = ed.find_points("main", PointKind::BlockEntry).unwrap();
            ed.insert(&pts, Snippet::increment(c));
            ed.rewrite().unwrap()
        };
        let base = rewrite(1);
        prop_assert_eq!(rewrite(4), base, "rewritten bytes differ at threads=4");
    }
}
