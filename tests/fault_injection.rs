//! Debug-interface fault injection (the ISSUE's FaultPlan hook): the
//! recovery paths a real ptrace transport exercises — a corrupted or
//! short `write_mem`, a dropped trap-redirect resolution, a delayed stop
//! event — must be reachable end to end through the *public* pipeline,
//! with no test-only code paths in the library crates. Each fault here
//! produces the real typed error ([`Error::PatchVerifyFailed`],
//! [`Error::RedirectMiss`]) or a recoverable spurious stop, and the
//! injection is counted in the session diagnostics.

use rvdyn::telemetry::CollectSink;
use rvdyn::{
    DynamicInstrumenter, Error, Event, FaultPlan, PointKind, Process, SessionOptions, Snippet,
    TelemetryEvent,
};
use rvdyn_asm::{many_functions_program, matmul_program, tiny_function_program};

/// Write 0 of a commit is the data-area zero-fill; write 1 is the first
/// verified patch region. Corrupting one byte of it must fail read-back
/// verification as `PatchVerifyFailed` at that region's address.
#[test]
fn corrupted_patch_write_is_a_verify_failure() {
    let bin = matmul_program(4, 1);
    let plan = FaultPlan::new().corrupt_write(1, 0);
    let mut dy = DynamicInstrumenter::create_with(bin, SessionOptions::new().fault_plan(plan));
    let counter = dy.alloc_var(8);
    let pts = dy.find_points("matmul", PointKind::FuncEntry).unwrap();
    dy.insert(&pts, Snippet::increment(counter));
    let failed_at = match dy.commit() {
        Err(Error::PatchVerifyFailed { addr }) => addr,
        other => panic!("expected PatchVerifyFailed, got {other:?}"),
    };
    assert!(failed_at > 0);

    // The injection is visible in the diagnostics and the JSON schema.
    let d = dy.diagnostics();
    assert_eq!(d.faults_injected, 1);
    assert!(d.to_json().contains("\"faults\":{\"injected\":1}"));
    // The failed region was not counted as written.
    assert_eq!(d.patch_regions_written, 0);
}

/// A short write (transport delivered fewer bytes than asked) fails the
/// same way: the truncated region's read-back cannot match.
#[test]
fn short_patch_write_is_a_verify_failure() {
    let bin = matmul_program(4, 1);
    let plan = FaultPlan::new().short_write(1, 1);
    let mut dy = DynamicInstrumenter::create_with(bin, SessionOptions::new().fault_plan(plan));
    let counter = dy.alloc_var(8);
    let pts = dy.find_points("matmul", PointKind::FuncEntry).unwrap();
    dy.insert(&pts, Snippet::increment(counter));
    assert!(matches!(dy.commit(), Err(Error::PatchVerifyFailed { .. })));
    assert_eq!(dy.diagnostics().faults_injected, 1);
}

/// Dropping the Nth trap-redirect resolution: the mutatee's 2-byte
/// function uses the trap springboard, so every call resolves through the
/// redirect table. Dropping resolution 3 surfaces the trap as a real
/// `RedirectMiss` at the springboard pc, after exactly 3 counted visits.
#[test]
fn dropped_redirect_resolution_is_a_redirect_miss() {
    let bin = tiny_function_program(50);
    let tiny = bin.symbol_by_name("tiny").unwrap().value;
    let plan = FaultPlan::new().drop_redirect(3);
    let mut dy = DynamicInstrumenter::create_with(bin, SessionOptions::new().fault_plan(plan));
    let counter = dy.alloc_var(8);
    let pts = dy.find_points("tiny", PointKind::FuncEntry).unwrap();
    dy.insert(&pts, Snippet::increment(counter));
    dy.commit().unwrap();
    assert!(
        dy.process().machine().trap_redirects.contains_key(&tiny),
        "trap springboard registered"
    );

    match dy.run_to_exit() {
        Err(Error::RedirectMiss { pc }) => assert_eq!(pc, tiny),
        other => panic!("expected RedirectMiss, got {other:?}"),
    }
    // Resolutions 0..3 went through before the drop: 3 counted visits.
    assert_eq!(dy.read_var(counter), Some(3));
    assert_eq!(dy.diagnostics().faults_injected, 1);
    assert!(dy
        .diagnostics()
        .to_json()
        .contains("\"faults\":{\"injected\":1}"));
}

/// A delayed stop on the raw debug interface: the Nth stop event comes
/// back as a spurious `Stepped`, and the real event is delivered on the
/// next `cont` — the shape a mutator's event loop must tolerate.
#[test]
fn delayed_stop_surfaces_as_spurious_step_then_real_event() {
    let bin = matmul_program(4, 1);
    let main = bin.symbol_by_name("main").unwrap().value;
    let mut p = Process::launch(&bin);
    p.set_fault_plan(FaultPlan::new().delay_stop(0));
    p.set_breakpoint(main).unwrap();

    match p.cont().unwrap() {
        Event::Stepped(_) => {}
        other => panic!("expected spurious Stepped, got {other:?}"),
    }
    assert_eq!(p.faults_injected(), 1);
    match p.cont().unwrap() {
        Event::Breakpoint(at) => assert_eq!(at, main),
        other => panic!("expected the delayed Breakpoint, got {other:?}"),
    }
}

/// The facade's run loop recovers from a delayed stop without help: the
/// spurious `Stepped` is just continued, the pending breakpoint event is
/// consumed on the next iteration, and the instrumented run finishes with
/// exact counters — an unclean-*looking* stop that is fully recoverable.
#[test]
fn run_loop_recovers_from_delayed_stop() {
    let bin = matmul_program(4, 2);
    let main = bin.symbol_by_name("main").unwrap().value;
    let sink = CollectSink::new();
    let plan = FaultPlan::new().delay_stop(0);
    let opts = SessionOptions::new()
        .fault_plan(plan)
        .telemetry(sink.clone());
    let mut dy = DynamicInstrumenter::create_with(bin, opts);
    let counter = dy.alloc_var(8);
    let pts = dy.find_points("matmul", PointKind::FuncEntry).unwrap();
    dy.insert(&pts, Snippet::increment(counter));
    dy.commit().unwrap();
    // Plant a breakpoint so the run actually stops mid-flight; the run
    // loop treats both the spurious step and the real breakpoint as
    // continue-and-go.
    dy.process_mut().set_breakpoint(main).unwrap();

    assert_eq!(dy.run_to_exit().unwrap(), 0);
    assert_eq!(dy.read_var(counter), Some(2));
    assert_eq!(dy.diagnostics().faults_injected, 1);

    // The injection was streamed to telemetry as it happened.
    assert!(sink
        .events()
        .iter()
        .any(|e| matches!(e, TelemetryEvent::FaultInjected { .. })));
}

/// Delivery faults against a parallel-planned patch: because the layout
/// phase emits bit-identical writes for any thread count, a corrupted
/// write must fail verification at the *same region address* whether the
/// plans were built sequentially or on a 4-worker pool.
#[test]
fn corrupted_write_fails_at_the_same_region_for_any_thread_count() {
    let fail_addr = |threads: usize| {
        let bin = many_functions_program(16);
        let plan = FaultPlan::new().corrupt_write(2, 0);
        let mut dy = DynamicInstrumenter::create_with(
            bin,
            SessionOptions::new().threads(threads).fault_plan(plan),
        );
        let counter = dy.alloc_var(8);
        let mut pts = Vec::new();
        for i in 0..16 {
            pts.extend(
                dy.find_points(&format!("f_{i}"), PointKind::BlockEntry)
                    .unwrap(),
            );
        }
        dy.insert(&pts, Snippet::increment(counter));
        let addr = match dy.commit() {
            Err(Error::PatchVerifyFailed { addr }) => addr,
            other => panic!("expected PatchVerifyFailed at threads={threads}, got {other:?}"),
        };
        assert_eq!(dy.diagnostics().faults_injected, 1);
        assert_eq!(dy.diagnostics().instrument_workers, threads.min(16));
        addr
    };
    let sequential = fail_addr(1);
    for t in [2usize, 4] {
        assert_eq!(
            fail_addr(t),
            sequential,
            "verify failure must land on the same region at threads={t}"
        );
    }
}

/// The trap-redirect drop under a worker pool: the tiny-function trap
/// springboard still resolves through the same redirect, so the miss
/// surfaces at the same pc after the same number of counted visits.
#[test]
fn dropped_redirect_under_worker_pool_matches_sequential() {
    let bin = tiny_function_program(50);
    let tiny = bin.symbol_by_name("tiny").unwrap().value;
    let plan = FaultPlan::new().drop_redirect(3);
    let mut dy =
        DynamicInstrumenter::create_with(bin, SessionOptions::new().threads(4).fault_plan(plan));
    let counter = dy.alloc_var(8);
    let pts = dy.find_points("tiny", PointKind::FuncEntry).unwrap();
    dy.insert(&pts, Snippet::increment(counter));
    dy.commit().unwrap();
    match dy.run_to_exit() {
        Err(Error::RedirectMiss { pc }) => assert_eq!(pc, tiny),
        other => panic!("expected RedirectMiss, got {other:?}"),
    }
    assert_eq!(dy.read_var(counter), Some(3));
    assert_eq!(dy.diagnostics().faults_injected, 1);
}

/// A plan-phase failure inside a worker (snippet lowering running out of
/// registers) propagates as the same typed instrument-stage error the
/// sequential path reports — workers never panic or hang the pool.
#[test]
fn plan_phase_worker_errors_propagate_as_the_same_typed_error() {
    fn deep(depth: u32) -> Snippet {
        if depth == 0 {
            Snippet::Const(1)
        } else {
            Snippet::bin(rvdyn::BinaryOp::Add, deep(depth - 1), deep(depth - 1))
        }
    }
    let msg = |threads: usize| {
        let bin = many_functions_program(8);
        let mut dy = DynamicInstrumenter::create_with(bin, SessionOptions::new().threads(threads));
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.extend(
                dy.find_points(&format!("f_{i}"), PointKind::FuncEntry)
                    .unwrap(),
            );
        }
        dy.insert(&pts, deep(14));
        match dy.commit() {
            Err(e) => e.to_string(),
            Ok(()) => panic!("expected an out-of-registers failure"),
        }
    };
    let sequential = msg(1);
    assert!(
        sequential.contains("register"),
        "expected an out-of-registers diagnosis, got: {sequential}"
    );
    assert_eq!(msg(4), sequential, "worker error differs from sequential");
}

/// A default (empty) plan injects nothing: the armed-but-idle hook leaves
/// the pipeline bit-for-bit on its normal path.
#[test]
fn empty_fault_plan_is_inert() {
    let bin = matmul_program(4, 2);
    let opts = SessionOptions::new().fault_plan(FaultPlan::new());
    let mut dy = DynamicInstrumenter::create_with(bin, opts);
    let counter = dy.alloc_var(8);
    let pts = dy.find_points("matmul", PointKind::FuncEntry).unwrap();
    dy.insert(&pts, Snippet::increment(counter));
    dy.commit().unwrap();
    assert_eq!(dy.run_to_exit().unwrap(), 0);
    assert_eq!(dy.read_var(counter), Some(2));
    assert_eq!(dy.diagnostics().faults_injected, 0);
    assert!(dy
        .diagnostics()
        .to_json()
        .contains("\"faults\":{\"injected\":0}"));
}
