//! Fleet-scale dynamic instrumentation, end to end through the public
//! API: one [`FleetController`] must instrument N mutatees with the
//! exact bytes a sequential [`DynamicInstrumenter`] session delivers,
//! isolate injected faults to the targeted process, produce identical
//! results at every worker count, and survive a process dying in the
//! middle of a fleet-wide patch commit. The contract under test is
//! written down in `docs/FLEET.md`.

use rvdyn::telemetry::CollectSink;
use rvdyn::tools::{MemTracer, TraceOptions};
use rvdyn::{
    DynamicInstrumenter, Error, FaultPlan, FleetController, PointKind, ProfileOptions, Profiler,
    SessionOptions, Snippet, TelemetryEvent,
};
use rvdyn_asm::matmul_program;

/// Drive one sequential single-process session over the same binary and
/// snippet the fleet uses; returns (exit_code, counter, process) so
/// callers can compare memory against fleet processes.
fn sequential_reference() -> (i64, u64, DynamicInstrumenter) {
    let mut di = DynamicInstrumenter::create(matmul_program(8, 2));
    let c = di.alloc_var(8);
    let pts = di.find_points("matmul", PointKind::FuncEntry).unwrap();
    di.insert(&pts, Snippet::increment(c));
    di.commit().unwrap();
    let code = di.run_to_exit().unwrap();
    let counter = di.read_var(c).unwrap();
    (code, counter, di)
}

fn instrumented_fleet(n: usize, opts: SessionOptions) -> (FleetController, Vec<u32>, rvdyn::Var) {
    let mut fleet = FleetController::from_binary(matmul_program(8, 2), opts);
    let pids = fleet.spawn(n);
    let c = fleet.alloc_var(8);
    let pts = fleet.find_points("matmul", PointKind::FuncEntry).unwrap();
    fleet.insert(&pts, Snippet::increment(c));
    (fleet, pids, c)
}

/// The tentpole parity claim: a fleet of 100 processes ends up with
/// patch regions *bit-identical* to a sequential session's, in every
/// process, and every process computes the same result.
#[test]
fn fleet_of_100_matches_sequential_sessions_bit_for_bit() {
    let (seq_code, seq_counter, seq) = sequential_reference();
    assert_eq!(seq_code, 0);

    let (mut fleet, pids, c) = instrumented_fleet(100, SessionOptions::new());
    fleet.commit_all().unwrap();
    fleet.run_all();

    let regions = fleet.commit_regions().to_vec();
    assert!(!regions.is_empty(), "commit must deliver patch regions");
    for pid in &pids {
        assert!(
            matches!(fleet.result(*pid), Some(Ok(code)) if *code == seq_code),
            "pid {pid}: {:?}",
            fleet.result(*pid)
        );
        assert_eq!(fleet.read_var(*pid, c), Some(seq_counter), "pid {pid}");
        // Every delivered region must read back byte-identical to the
        // sequential process's memory at the same addresses.
        for (addr, bytes) in &regions {
            let fleet_bytes = fleet
                .with_process(*pid, |p| p.read_mem(*addr, bytes.len()).unwrap())
                .unwrap();
            let seq_bytes = seq.process().read_mem(*addr, bytes.len()).unwrap();
            assert_eq!(fleet_bytes, *bytes, "pid {pid} region {addr:#x} vs plan");
            assert_eq!(
                fleet_bytes, seq_bytes,
                "pid {pid} region {addr:#x} vs sequential"
            );
        }
    }

    let s = fleet.summary();
    assert_eq!(s.processes, 100);
    assert_eq!(s.processes_failed, 0);
    // One commit completion and at least one run completion per process.
    assert!(s.events_dispatched >= 200, "got {}", s.events_dispatched);
}

/// Fault isolation: a write-corruption fault plan targeted at exactly
/// one pid mid-fleet must surface as that pid's typed
/// `PatchVerifyFailed` — and the other N−1 processes commit, run, and
/// count as if nothing happened.
#[test]
fn targeted_fault_hits_one_process_and_spares_the_rest() {
    let (_, seq_counter, _) = sequential_reference();
    let (mut fleet, pids, c) = instrumented_fleet(8, SessionOptions::new());
    let victim = pids[3];
    // Write 0 is the data-area zero-fill; write 1 the first region.
    fleet
        .set_fault_plan(victim, FaultPlan::new().corrupt_write(1, 0))
        .unwrap();
    fleet.commit_all().unwrap();
    fleet.run_all();

    match fleet.result(victim) {
        Some(Err(Error::PatchVerifyFailed { addr })) => assert!(*addr > 0),
        other => panic!("victim must fail patch verification, got {other:?}"),
    }
    let s = fleet.summary();
    assert_eq!(s.processes_failed, 1);
    assert_eq!(s.faults_injected, 1);
    for pid in pids {
        if pid == victim {
            continue;
        }
        assert!(matches!(fleet.result(pid), Some(Ok(0))), "pid {pid}");
        assert_eq!(fleet.read_var(pid, c), Some(seq_counter), "pid {pid}");
        assert_eq!(
            fleet.process_diagnostics(pid).unwrap().faults_injected,
            0,
            "pid {pid} must see no injected faults"
        );
    }
    // The victim's per-process diagnostics carry the injection.
    assert_eq!(
        fleet.process_diagnostics(victim).unwrap().faults_injected,
        1
    );
}

/// Event-loop determinism: per-process results, counters, and the
/// dispatched-event total must be identical whether the fleet's back
/// half runs inline (threads=1, strictly deterministic dispatch order)
/// or over a 4-worker pool (arrival order may differ; outcomes may not).
#[test]
fn worker_count_does_not_change_any_observable_outcome() {
    let run = |threads: usize| {
        let (mut fleet, pids, c) = instrumented_fleet(12, SessionOptions::new().threads(threads));
        fleet.commit_all().unwrap();
        fleet.run_all();
        let s = fleet.summary();
        let per_pid: Vec<(u32, i64, u64, u64)> = pids
            .iter()
            .map(|pid| {
                let code = match fleet.result(*pid) {
                    Some(Ok(code)) => *code,
                    other => panic!("pid {pid}: {other:?}"),
                };
                let d = fleet.process_diagnostics(*pid).unwrap();
                (*pid, code, fleet.read_var(*pid, c).unwrap(), d.instret)
            })
            .collect();
        (per_pid, s.events_dispatched, s.processes_failed)
    };
    let (seq1, events1, failed1) = run(1);
    let (seq4, events4, failed4) = run(4);
    assert_eq!(seq1, seq4, "per-process outcomes must be thread-invariant");
    assert_eq!(events1, events4, "event totals must be thread-invariant");
    assert_eq!((failed1, failed4), (0, 0));
}

/// A process that exits *before* the fleet-wide commit reaches it is a
/// per-process `FleetProcessLost`, not a fleet failure: the commit job
/// detects the dead process, skips delivery, and the rest of the fleet
/// commits and runs normally.
#[test]
fn process_exit_during_patch_is_recovered_per_process() {
    let sink = CollectSink::new();
    let (mut fleet, pids, c) = instrumented_fleet(6, SessionOptions::new().telemetry(sink.clone()));
    let dead = pids[1];
    // Run the victim to exit through the debugger escape hatch while
    // the rest of the fleet is still stopped at entry.
    let code = fleet
        .with_process(dead, |p| loop {
            match p.cont().unwrap() {
                rvdyn::Event::Exited(code) => break code,
                _ => continue,
            }
        })
        .unwrap();
    assert_eq!(code, 0);

    fleet.commit_all().unwrap();
    fleet.run_all();

    match fleet.result(dead) {
        Some(Err(Error::FleetProcessLost { pid })) => assert_eq!(*pid, dead),
        other => panic!("expected FleetProcessLost, got {other:?}"),
    }
    for pid in pids {
        if pid == dead {
            continue;
        }
        assert!(matches!(fleet.result(pid), Some(Ok(0))), "pid {pid}");
        assert!(fleet.read_var(pid, c).unwrap() > 0, "pid {pid}");
    }
    let s = fleet.summary();
    assert_eq!(s.processes_failed, 1);
    // The failure is typed in telemetry too: exactly one FleetProcessFailed.
    let failed: Vec<u32> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::FleetProcessFailed { pid } => Some(*pid),
            _ => None,
        })
        .collect();
    assert_eq!(failed, vec![dead]);
}

/// Tool/fault interaction: a `FaultPlan` corrupting one process's patch
/// delivery must not perturb a single record of the other N−1 memory
/// traces. The victim surfaces its typed commit failure; every survivor
/// drains a trace identical to the uninstrumented interpreter oracle.
#[test]
fn fault_in_one_process_leaves_other_traces_intact() {
    let bin = matmul_program(5, 1);
    let mut fleet = FleetController::from_binary(bin.clone(), SessionOptions::new().threads(4));
    let pids = fleet.spawn(6);
    let tracer = MemTracer::plan_fleet(&mut fleet, &TraceOptions::default()).unwrap();
    let victim = pids[2];
    fleet
        .set_fault_plan(victim, FaultPlan::new().corrupt_write(1, 0))
        .unwrap();
    fleet.commit_all().unwrap();
    fleet.run_all();

    // The clean-run ground truth, from an uninstrumented machine.
    let site_set: std::collections::BTreeSet<u64> = tracer.pcs().into_iter().collect();
    let mut m = rvdyn_emu::load_binary(&bin);
    m.arm_mem_oracle();
    m.fuel = Some(50_000_000);
    assert!(matches!(m.run(), rvdyn::StopReason::Exited(0)));
    let expected: Vec<rvdyn::TraceRecord> = m
        .take_mem_oracle()
        .into_iter()
        .filter(|op| site_set.contains(&op.pc))
        .map(|op| rvdyn::TraceRecord {
            pc: op.pc,
            addr: op.addr,
            len: op.len,
            is_store: op.is_store,
        })
        .collect();
    assert!(!expected.is_empty());

    match fleet.result(victim) {
        Some(Err(Error::PatchVerifyFailed { .. })) => {}
        other => panic!("victim must fail its commit, got {other:?}"),
    }
    for pid in pids {
        if pid == victim {
            continue;
        }
        assert!(matches!(fleet.result(pid), Some(Ok(0))), "pid {pid}");
        let d = tracer.drain_fleet(&mut fleet, pid).unwrap();
        assert_eq!(d.dropped, 0, "pid {pid}");
        assert_eq!(d.records, expected, "pid {pid}: trace perturbed by fault");
    }
    assert_eq!(fleet.summary().processes_failed, 1);
}

/// Tool/fault interaction, profiler side: one process dying before the
/// fleet is sampled yields a typed per-pid error — and the other N−1
/// profiles are exactly the profiles an undisturbed fleet produces.
#[test]
fn dead_process_does_not_perturb_other_fleet_profiles() {
    let bin = matmul_program(5, 1);
    let profiler = Profiler::new(ProfileOptions {
        interval_cycles: 2_000,
        max_samples: 1 << 20,
    });

    // Reference: an undisturbed 1-process fleet's sample pcs.
    let mut ref_fleet = FleetController::from_binary(bin.clone(), SessionOptions::new());
    let ref_pid = ref_fleet.spawn(1)[0];
    let reference = profiler.sample_fleet(&mut ref_fleet).unwrap();
    let ref_pcs = &reference.per_process[&ref_pid].sample_pcs;
    assert!(!ref_pcs.is_empty());

    let mut fleet = FleetController::from_binary(bin, SessionOptions::new());
    let pids = fleet.spawn(4);
    let dead = pids[1];
    let code = fleet
        .with_process(dead, |p| loop {
            match p.cont().unwrap() {
                rvdyn::Event::Exited(code) => break code,
                _ => continue,
            }
        })
        .unwrap();
    assert_eq!(code, 0);

    let out = profiler.sample_fleet(&mut fleet).unwrap();
    assert!(
        matches!(out.outcomes.get(&dead), Some(Err(_))),
        "dead pid must surface a typed error, got {:?}",
        out.outcomes.get(&dead)
    );
    let mut live_samples = 0;
    for pid in pids {
        if pid == dead {
            continue;
        }
        assert!(matches!(out.outcomes.get(&pid), Some(Ok(0))), "pid {pid}");
        assert_eq!(
            &out.per_process[&pid].sample_pcs, ref_pcs,
            "pid {pid}: profile perturbed by the dead neighbour"
        );
        live_samples += out.per_process[&pid].samples;
    }
    assert_eq!(out.profile.samples, live_samples);
}
