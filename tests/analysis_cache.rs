//! The content-addressed analysis cache: keying is *semantic* (two
//! ELFs that decode to the same code, data and symbols share one cached
//! front half, whatever their section names, alignment padding or
//! non-loadable baggage), misses are *sensitive* (one byte of text is a
//! different program), eviction is bounded, and a warm session built
//! over a shared [`rvdyn::Analysis`] is bit-identical — in output bytes
//! and in telemetry-visible behaviour — to a cold `Session::open`.

mod common;

use common::{ProgramStrategy, Stmt};
use proptest::prelude::*;
use rvdyn::telemetry::CollectSink;
use rvdyn::{
    AnalysisCache, AnalysisKey, BinaryEditor, ParseOptions, PointKind, Session, SessionOptions,
    Snippet, TelemetryEvent,
};
use rvdyn_symtab::{Binary, Section};
use std::sync::Arc;

/// A fixed structured program used by the deterministic tests.
fn base_stmts() -> Vec<Stmt> {
    vec![
        Stmt::Block,
        Stmt::Loop(vec![Stmt::If(vec![Stmt::Block], vec![Stmt::Block])]),
        Stmt::Block,
    ]
}

/// Cosmetically reshape a binary without changing its semantics:
/// rename every section, change alignment (and therefore file
/// padding), reorder the section table, and bolt on a non-allocatable
/// note section. `Binary::parse` sees a very different file;
/// [`AnalysisKey`] must not.
fn cosmetic_variant(mut bin: Binary) -> Binary {
    for s in &mut bin.sections {
        s.name = format!(".renamed{}", s.name.replace('.', "_"));
        s.addralign *= 2;
    }
    bin.sections.reverse();
    bin.sections.push(Section {
        name: ".comment".to_string(),
        sh_type: rvdyn_symtab::elf::SHT_PROGBITS,
        flags: 0, // not SHF_ALLOC: never mapped, never hashed
        addr: 0,
        data: b"built by a different toolchain entirely".to_vec(),
        addralign: 1,
    });
    bin
}

#[test]
fn cosmetic_elf_variants_hit_the_same_cache_entry() {
    let base = common::stmt_program(&base_stmts(), 7);
    let variant = cosmetic_variant(base.clone());
    let elf_a = base.to_bytes().unwrap();
    let elf_b = variant.to_bytes().unwrap();
    assert_ne!(
        elf_a, elf_b,
        "the variant must be a genuinely different file"
    );

    let parse = ParseOptions::default();
    assert_eq!(
        AnalysisKey::of(&base, &parse),
        AnalysisKey::of(&variant, &parse),
        "cosmetic reshaping must not move the content key"
    );

    let cache = AnalysisCache::new(8);
    let s1 = Session::open_cached(&elf_a, SessionOptions::default(), &cache).unwrap();
    let s2 = Session::open_cached(&elf_b, SessionOptions::default(), &cache).unwrap();

    assert!(
        Arc::ptr_eq(s1.analysis(), s2.analysis()),
        "both sessions must share the one cached Analysis"
    );
    let stats = cache.stats();
    assert_eq!((stats.misses, stats.hits, stats.entries), (1, 1, 1));

    // The warm session did no front-half work at all...
    assert_eq!(s2.diagnostics().timings.parse_ns, 0);
    assert_eq!(s2.diagnostics().analysis_cache_hits, 1);
    // ...but still reports the shared CFG through its counters.
    assert_eq!(
        s2.diagnostics().functions_parsed,
        s1.diagnostics().functions_parsed
    );
}

#[test]
fn one_byte_text_mutation_misses() {
    let base = common::stmt_program(&base_stmts(), 7);

    // One-byte text mutation that stays decodable: the final `ret`
    // (jalr x0, ra, 0 = 0x00008067) becomes jalr x0, gp, 0
    // (0x00018067) — same opcode, different link register, one byte
    // apart in the image.
    let mut mutated = base.clone();
    let text = mutated
        .sections
        .iter_mut()
        .find(|s| s.is_code())
        .expect("text section");
    let pos = text
        .data
        .windows(4)
        .rposition(|w| w == [0x67, 0x80, 0x00, 0x00])
        .expect("a final ret in text");
    text.data[pos + 2] = 0x01;

    let parse = ParseOptions::default();
    assert_ne!(
        AnalysisKey::of(&base, &parse),
        AnalysisKey::of(&mutated, &parse),
        "one byte of text must move the content key"
    );

    let cache = AnalysisCache::new(8);
    let s1 =
        Session::open_cached(&base.to_bytes().unwrap(), SessionOptions::default(), &cache).unwrap();
    let s2 = Session::open_cached(
        &mutated.to_bytes().unwrap(),
        SessionOptions::default(),
        &cache,
    )
    .unwrap();

    assert!(!Arc::ptr_eq(s1.analysis(), s2.analysis()));
    let stats = cache.stats();
    assert_eq!((stats.misses, stats.hits, stats.entries), (2, 0, 2));
    assert_eq!(s2.diagnostics().analysis_cache_misses, 1);
    assert_eq!(s2.diagnostics().analysis_cache_hits, 0);
}

#[test]
fn cache_evicts_least_recently_used_at_capacity() {
    let elves: Vec<Vec<u8>> = (0..3)
        .map(|i| {
            common::stmt_program(&base_stmts(), 11 + 10 * i)
                .to_bytes()
                .unwrap()
        })
        .collect();

    let cache = AnalysisCache::new(2);
    let open = |elf: &[u8]| Session::open_cached(elf, SessionOptions::default(), &cache).unwrap();

    open(&elves[0]); // miss, {0}
    open(&elves[1]); // miss, {0,1}
    open(&elves[0]); // hit, refreshes 0
    open(&elves[2]); // miss, evicts 1 (LRU), {0,2}
    let s = open(&elves[0]); // hit: 0 must have survived the eviction
    assert_eq!(s.diagnostics().analysis_cache_hits, 1);
    open(&elves[1]); // miss again: 1 was the one evicted

    let stats = cache.stats();
    assert_eq!(stats.misses, 4, "0, 1, 2, then 1 again");
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.evictions, 2, "1 evicted by 2, then 2 evicted by 1");
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.capacity, 2);
}

#[test]
fn concurrent_sessions_share_one_cached_analysis() {
    let elf = common::stmt_program(&base_stmts(), 21).to_bytes().unwrap();
    let cache = AnalysisCache::new(4);

    let counters: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (elf, cache) = (&elf, &cache);
                scope.spawn(move || {
                    let mut ed =
                        BinaryEditor::open_cached(elf, SessionOptions::default(), cache).unwrap();
                    let c = ed.alloc_var(8);
                    let pts = ed.find_points("work", PointKind::FuncEntry).unwrap();
                    ed.insert(&pts, Snippet::increment(c));
                    let out = ed.instrument_and_run(100_000_000).unwrap();
                    assert_eq!(out.exit_code, 0);
                    out.read_u64(c.addr).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(
        counters.iter().all(|&c| c == 1),
        "every session saw one call"
    );
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, 8);
    assert_eq!(stats.entries, 1, "one binary, one resident analysis");
    assert!(stats.misses >= 1, "someone had to populate the cache");
}

/// Cold path: open the ELF from scratch at `threads`, instrument every
/// block of `work`, rewrite. Returns (bytes, telemetry, session).
fn cold_rewrite(elf: &[u8], threads: usize) -> (Vec<u8>, Vec<TelemetryEvent>, Session) {
    let sink = CollectSink::new();
    let mut s = Session::open(
        elf,
        SessionOptions::new()
            .threads(threads)
            .telemetry(sink.clone()),
    )
    .unwrap();
    let bytes = rewrite_work(&mut s);
    (bytes, sink.events(), s)
}

fn rewrite_work(s: &mut Session) -> Vec<u8> {
    let c = s.alloc_var(8);
    let pts = s.find_points("work", PointKind::BlockEntry).unwrap();
    s.insert(&pts, Snippet::increment(c));
    let patched = s.apply().unwrap();
    patched.binary.to_bytes().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any structured program, a warm session built from a shared
    /// cached analysis produces bit-identical output to a cold
    /// `Session::open`, at every thread count, with the same
    /// instrument-phase telemetry — while reporting *zero* front-half
    /// time of its own.
    #[test]
    fn warm_from_analysis_matches_cold_open(
        stmts in ProgramStrategy,
        seed in any::<u64>(),
    ) {
        let elf = common::stmt_program(&stmts, seed).to_bytes().unwrap();

        // One shared front half, computed once.
        let cache = AnalysisCache::new(1);
        let shared = Session::open_cached(&elf, SessionOptions::default(), &cache)
            .unwrap()
            .analysis()
            .clone();

        for threads in [1usize, 4] {
            let (cold_bytes, cold_events, cold) = cold_rewrite(&elf, threads);

            let sink = CollectSink::new();
            let mut warm = Session::from_analysis(
                shared.clone(),
                SessionOptions::new().threads(threads).telemetry(sink.clone()),
            );
            let warm_bytes = rewrite_work(&mut warm);

            prop_assert_eq!(&warm_bytes, &cold_bytes, "threads={}", threads);

            // Warm did no front-half work...
            prop_assert_eq!(warm.diagnostics().timings.open_ns, 0);
            prop_assert_eq!(warm.diagnostics().timings.parse_ns, 0);
            // ...yet is telemetry-indistinguishable from the cold
            // session past the open/parse stages, and reports the same
            // parse-shaped counters.
            prop_assert_eq!(
                warm.diagnostics().functions_parsed,
                cold.diagnostics().functions_parsed
            );
            prop_assert_eq!(
                warm.diagnostics().plans_built,
                cold.diagnostics().plans_built
            );
            let back_half = |evs: &[TelemetryEvent]| -> Vec<String> {
                evs.iter()
                    .filter(|e| {
                        matches!(
                            e,
                            TelemetryEvent::PlanBuilt { .. }
                                | TelemetryEvent::PointLowered { .. }
                                | TelemetryEvent::FunctionRelocated { .. }
                                | TelemetryEvent::SpringboardPlanted { .. }
                        )
                    })
                    .map(|e| format!("{e:?}"))
                    .collect()
            };
            prop_assert_eq!(back_half(&sink.events()), back_half(&cold_events));
        }
    }
}
