//! Differential tests pinning the cached (DBT) engine to the reference
//! interpreter: for any program — random reducible CFGs, the whole
//! mutatee suite, instrumented or not, at any fuel — the two engines
//! must agree on *every* architectural observable: registers, memory,
//! instruction count, the modelled cycle count, stdout, and the stop
//! reason (including the trap pc). This is the bit-identity contract of
//! `docs/EMULATOR.md` §"Cost-model bit-identity".

mod common;

use common::ProgramStrategy;
use proptest::prelude::*;
use rvdyn::{BinaryEditor, EmuEngine, PointKind, SessionOptions, Snippet};
use rvdyn_emu::{load_binary, StopReason};
use rvdyn_symtab::Binary;

/// Every observable the two engines must agree on, collected after a
/// run. Memory is the full final page image, so a single divergent byte
/// anywhere in the address space fails the comparison.
#[derive(Debug, PartialEq)]
struct Observables {
    stop: StopReason,
    pc: u64,
    gpr: [u64; 32],
    fpr: [u64; 32],
    fcsr: u64,
    icount: u64,
    cycles: u64,
    taken_transfers: u64,
    stdout: Vec<u8>,
    memory: Vec<(u64, Vec<u8>)>,
}

fn run_raw(bin: &Binary, engine: EmuEngine, fuel: u64) -> Observables {
    let mut m = load_binary(bin);
    m.engine = engine;
    m.fuel = Some(fuel);
    let stop = m.run();
    Observables {
        stop,
        pc: m.pc,
        gpr: m.gpr,
        fpr: m.fpr,
        fcsr: m.fcsr,
        icount: m.icount,
        cycles: m.cycles,
        taken_transfers: m.taken_transfers,
        stdout: m.stdout.clone(),
        memory: m.mem.pages().map(|(a, b)| (a, b.to_vec())).collect(),
    }
}

fn assert_engines_agree(bin: &Binary, fuel: u64, what: &str) {
    let i = run_raw(bin, EmuEngine::Interpreter, fuel);
    let c = run_raw(bin, EmuEngine::Cached, fuel);
    assert_eq!(i, c, "engines diverge on {what} (fuel {fuel})");
}

#[test]
fn mutatee_suite_is_engine_invariant() {
    let suite: Vec<(&str, Binary)> = vec![
        ("matmul", rvdyn_asm::matmul_program(8, 2)),
        ("fib", rvdyn_asm::fib_program(12)),
        ("switch", rvdyn_asm::switch_program(64)),
        ("switch_rel", rvdyn_asm::switch_rel_program(64)),
        ("deep", rvdyn_asm::deep_call_program(16)),
        ("memcpy", rvdyn_asm::memcpy_program()),
        ("atomics", rvdyn_asm::atomics_program(100)),
        ("indirect", rvdyn_asm::indirect_entry_program(32)),
        ("tiny", rvdyn_asm::tiny_function_program(32)),
        ("many", rvdyn_asm::many_functions_program(64)),
    ];
    for (name, bin) in suite {
        assert_engines_agree(&bin, 1_000_000_000, name);
    }
}

#[test]
fn partial_fuel_stops_at_the_same_state() {
    // FuelExhausted must land on the exact same pc / registers / cycle
    // count: the cached engine may not overrun a block boundary.
    let bin = rvdyn_asm::matmul_program(6, 1);
    for fuel in [1u64, 2, 3, 17, 100, 999, 5_000] {
        let i = run_raw(&bin, EmuEngine::Interpreter, fuel);
        assert_eq!(i.stop, StopReason::FuelExhausted, "fuel {fuel} too large");
        assert_engines_agree(&bin, fuel, "matmul mid-run");
    }
}

#[test]
fn trap_pcs_are_engine_invariant() {
    // A mutatee that faults mid-block must fault at the same pc with the
    // same machine state under both engines: a load from an unmapped
    // address buried between ordinary ALU instructions.
    use rvdyn_isa::{build, Op, Reg};
    use rvdyn_symtab::{Section, SHF_ALLOC, SHF_EXECINSTR};
    let base = 0x1_0000u64;
    let mut a = rvdyn_asm::Assembler::new(base);
    a.li(Reg::x(10), 5);
    a.addi(Reg::x(10), Reg::x(10), 1);
    a.li(Reg::x(6), 0x1999_0000);
    a.inst(build::i_type(Op::Ld, Reg::x(7), Reg::x(6), 0));
    a.li(Reg::x(17), 93);
    a.ecall();
    let code = a.finish().unwrap();
    let mut bin = rvdyn_asm::fib_program(1); // donor for entry/attrs shape
    bin.entry = base;
    bin.sections = vec![Section::progbits(
        ".text",
        base,
        SHF_ALLOC | SHF_EXECINSTR,
        code,
    )];
    bin.symbols.clear();
    let i = run_raw(&bin, EmuEngine::Interpreter, 1_000);
    assert!(
        matches!(i.stop, StopReason::MemFault { .. }),
        "expected a memory fault, got {:?}",
        i.stop
    );
    assert_engines_agree(&bin, 1_000, "faulting load");
}

#[test]
fn instrumented_runs_agree_across_engines_and_threads() {
    // The acceptance bar: instrumented binaries produce identical
    // (registers, memory, cycles, counts) on both engines at plan-phase
    // thread counts 1 and 4.
    let elf = rvdyn_asm::matmul_program(6, 2).to_bytes().unwrap();
    let mut baseline = None;
    for engine in [EmuEngine::Interpreter, EmuEngine::Cached] {
        for threads in [1usize, 4] {
            let mut ed = BinaryEditor::open_with(
                &elf,
                SessionOptions::new().threads(threads).engine(engine),
            )
            .unwrap();
            let bc = ed.count_blocks("matmul").unwrap();
            let r = ed.instrument_and_run(1_000_000_000).unwrap();
            let counts = ed.block_counts(&bc, &r).unwrap();
            let m = r.machine();
            let state = (
                r.exit_code,
                m.gpr,
                m.fpr,
                m.icount,
                m.cycles,
                m.stdout.clone(),
                m.mem
                    .pages()
                    .map(|(a, b)| (a, b.to_vec()))
                    .collect::<Vec<_>>(),
                counts,
            );
            match &baseline {
                None => baseline = Some(state),
                Some(b) => assert_eq!(
                    &state, b,
                    "instrumented run diverges at engine {engine:?} threads {threads}"
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random reducible CFGs: full-state agreement at full fuel and at
    /// a seed-derived partial fuel (stopping mid-program at an arbitrary
    /// instruction boundary).
    #[test]
    fn random_cfgs_are_engine_invariant(
        stmts in ProgramStrategy,
        seed in any::<u64>(),
    ) {
        let bin = common::stmt_program(&stmts, seed);
        let full = run_raw(&bin, EmuEngine::Interpreter, 1_000_000_000);
        prop_assert_eq!(full.stop, StopReason::Exited(0));
        let cached = run_raw(&bin, EmuEngine::Cached, 1_000_000_000);
        prop_assert_eq!(&full, &cached, "divergence at full fuel");

        // Stop somewhere strictly inside the run.
        if full.icount > 1 {
            let fuel = 1 + seed % (full.icount - 1);
            let i = run_raw(&bin, EmuEngine::Interpreter, fuel);
            let c = run_raw(&bin, EmuEngine::Cached, fuel);
            prop_assert_eq!(&i, &c, "divergence at fuel {}", fuel);
        }
    }

    /// Random CFGs, instrumented: block counts, counters, and the final
    /// machine state agree across engines (threads 1 and 4).
    #[test]
    fn random_instrumented_cfgs_are_engine_invariant(
        stmts in ProgramStrategy,
        seed in any::<u64>(),
    ) {
        let bin = common::stmt_program(&stmts, seed);
        let result_addr = bin.symbol_by_name("result").unwrap().value;
        let elf = bin.to_bytes().unwrap();
        let mut baseline = None;
        for engine in [EmuEngine::Interpreter, EmuEngine::Cached] {
            for threads in [1usize, 4] {
                let mut ed = BinaryEditor::open_with(
                    &elf,
                    SessionOptions::new().threads(threads).engine(engine),
                ).unwrap();
                let c = ed.alloc_var(8);
                let pts = ed.find_points("work", PointKind::BlockEntry).unwrap();
                ed.insert(&pts, Snippet::increment(c));
                let r = ed.instrument_and_run(1_000_000_000).unwrap();
                let state = (
                    r.exit_code,
                    r.read_u64(result_addr),
                    r.read_u64(c.addr),
                    r.icount,
                    r.cycles,
                );
                match &baseline {
                    None => baseline = Some(state),
                    Some(b) => prop_assert_eq!(&state, b,
                        "instrumented divergence at {:?} threads {}", engine, threads),
                }
            }
        }
    }
}
