//! Correctness of the optimal counter-placement pass
//! (`rvdyn_patch::placement`): reconstructed per-block counts must be
//! *identical* to every-block ground truth —
//!
//! 1. end to end on the emulator, on both the static (`rewrite`) and
//!    dynamic delivery paths (matmul, fib),
//! 2. on a deterministic pin of the matmul kernel's 11-block CFG
//!    (exactly 4 counters, at the three loop latches + the exit block),
//! 3. under proptest, over random reducible CFGs (structured seq/if/loop
//!    composition) with simulated executions, and over random matmul
//!    sizes on the emulator.

mod common;

use common::{ProgramStrategy, Stmt};
use proptest::prelude::*;
use rvdyn::telemetry::CollectSink;
use rvdyn::{
    plan_block_counters, BinaryEditor, CounterPlacement, CounterSite, DynamicInstrumenter,
    SessionOptions, TelemetryEvent,
};
use rvdyn_parse::block::{BasicBlock, Edge, EdgeKind};
use rvdyn_parse::Function;
use std::collections::BTreeMap;

fn optimal_opts() -> SessionOptions {
    SessionOptions::new().counter_placement(CounterPlacement::Optimal)
}

/// Closed-form per-call execution counts for matmul's 11 blocks in
/// address order (entry, i-header, i-body, j-header, j-body, k-header,
/// k-body, j-store, j-inc, i-inc, exit) — same counting as the
/// closed-form totals pinned in the seed's dynamic tests.
fn matmul_truth(n: u64, reps: u64) -> Vec<u64> {
    [
        1,
        n + 1,
        n,
        n * (n + 1),
        n * n,
        n * n * (n + 1),
        n * n * n,
        n * n,
        n * n,
        n,
        1,
    ]
    .iter()
    .map(|c| c * reps)
    .collect()
}

// --- deterministic pin of the matmul CFG -----------------------------------

#[test]
fn matmul_plan_pins_four_cold_counters() {
    let elf = rvdyn_asm::matmul_program(4, 1).to_bytes().unwrap();
    let ed = BinaryEditor::open(&elf).unwrap();
    let addr = ed.function_addr("matmul").unwrap();
    let f = &ed.code().functions[&addr];
    assert_eq!(f.blocks.len(), 11, "matmul is the paper's 11-block kernel");

    let plan = plan_block_counters(f).expect("matmul must be plannable");
    assert_eq!(plan.counters_placed(), 4, "cyclomatic number of the CFG");
    assert_eq!(plan.counters_elided(), 7);

    // Every site lands on a single-successor block (the three loop
    // latches and the function exit) — no branch-edge probes needed.
    let blocks: Vec<u64> = f.blocks.keys().copied().collect();
    let site_blocks: Vec<u64> = plan
        .sites
        .iter()
        .map(|s| match *s {
            CounterSite::Block { block } => block,
            other => panic!("expected a block-entry site, got {other:?}"),
        })
        .collect();
    // Address order: k-body (n³), j-inc (n²), i-inc (n), exit (1).
    assert_eq!(
        site_blocks,
        vec![blocks[6], blocks[8], blocks[9], blocks[10]]
    );

    // The reconstruction matrix recovers the closed form from the four
    // cold counts: with counters (n³·r, n²·r, n·r, r) the full 11-block
    // profile falls out exactly.
    let (n, reps) = (7u64, 3u64);
    let counters = [n * n * n * reps, n * n * reps, n * reps, reps];
    let counts = plan.reconstruct(&counters).unwrap();
    let truth = matmul_truth(n, reps);
    for (i, b) in blocks.iter().enumerate() {
        assert_eq!(counts[b], truth[i], "block {i} ({b:#x})");
    }
}

// --- end to end, static path ------------------------------------------------

#[test]
fn static_optimal_counts_match_every_block() {
    let (n, reps) = (6usize, 3usize);
    let elf = rvdyn_asm::matmul_program(n, reps).to_bytes().unwrap();

    // Ground truth: one counter per block.
    let mut ed = BinaryEditor::open(&elf).unwrap();
    let bc = ed.count_blocks("matmul").unwrap();
    assert!(!bc.is_optimal());
    let r = ed.instrument_and_run(1_000_000_000).unwrap();
    let truth = ed.block_counts(&bc, &r).unwrap();

    // Optimal placement on a fresh session over the same image.
    let sink = CollectSink::new();
    let mut ed = BinaryEditor::open_with(&elf, optimal_opts().telemetry(sink.clone())).unwrap();
    let bc = ed.count_blocks("matmul").unwrap();
    assert!(bc.is_optimal());
    assert_eq!(bc.counters_placed(), 4);
    assert_eq!(bc.blocks_covered(), 11);
    let r = ed.instrument_and_run(1_000_000_000).unwrap();
    let counts = ed.block_counts(&bc, &r).unwrap();

    assert_eq!(counts, truth, "reconstructed counts must match exactly");
    let expected: Vec<u64> = matmul_truth(n as u64, reps as u64);
    assert_eq!(counts.values().copied().collect::<Vec<_>>(), expected);

    // Diagnostics and telemetry tell the same story.
    let d = ed.diagnostics();
    assert_eq!(d.counters_placed, 4);
    assert_eq!(d.counters_elided, 7);
    assert_eq!(d.counts_reconstructed, 11);
    assert!(sink.events().iter().any(|e| matches!(
        e,
        TelemetryEvent::PlacementComputed {
            blocks: 11,
            sites: 4,
            ..
        }
    )));
    // Satellite: the static delivery now reports its region structure.
    assert!(d.patch_regions_written > 0);
}

#[test]
fn static_optimal_fib_matches_every_block() {
    // fib exercises call/call-fallthrough block shapes and recursion.
    let elf = rvdyn_asm::fib_program(9).to_bytes().unwrap();

    let mut ed = BinaryEditor::open(&elf).unwrap();
    let bc = ed.count_blocks("fib").unwrap();
    let r = ed.instrument_and_run(1_000_000_000).unwrap();
    let truth = ed.block_counts(&bc, &r).unwrap();

    let mut ed = BinaryEditor::open_with(&elf, optimal_opts()).unwrap();
    let bc = ed.count_blocks("fib").unwrap();
    let r = ed.instrument_and_run(1_000_000_000).unwrap();
    let counts = ed.block_counts(&bc, &r).unwrap();
    assert_eq!(counts, truth);
    // The entry block count is the fib call-tree size.
    let entry = ed.function_addr("fib").unwrap();
    assert!(counts[&entry] > 1);
}

// --- end to end, dynamic path ----------------------------------------------

#[test]
fn dynamic_optimal_counts_match_every_block() {
    let (n, reps) = (5usize, 2usize);

    let bin = rvdyn_asm::matmul_program(n, reps);
    let mut dy = DynamicInstrumenter::create(bin);
    let bc = dy.count_blocks("matmul").unwrap();
    dy.commit().unwrap();
    assert_eq!(dy.run_to_exit().unwrap(), 0);
    let truth = dy.block_counts(&bc).unwrap();

    let bin = rvdyn_asm::matmul_program(n, reps);
    let mut dy = DynamicInstrumenter::create_with(bin, optimal_opts());
    let bc = dy.count_blocks("matmul").unwrap();
    assert!(bc.is_optimal());
    dy.commit().unwrap();
    assert_eq!(dy.run_to_exit().unwrap(), 0);
    let counts = dy.block_counts(&bc).unwrap();

    assert_eq!(counts, truth);
    assert_eq!(
        counts.values().copied().collect::<Vec<_>>(),
        matmul_truth(n as u64, reps as u64)
    );
    assert_eq!(dy.diagnostics().counts_reconstructed, 11);
}

// --- proptest: random reducible CFGs ---------------------------------------

// The structured-program generator ([`Stmt`], [`ProgramStrategy`]) lives
// in `tests/common/mod.rs`, shared with the parallel-rewrite parity
// suite; the synthetic-Function lowering below stays local because only
// the placement math needs it.

struct Lowered {
    func: Function,
    /// Loop-header blocks, where `Taken` exits the loop (used to force
    /// termination in long simulated walks).
    headers: Vec<u64>,
}

fn lower(stmts: &[Stmt]) -> Lowered {
    struct B {
        blocks: BTreeMap<u64, Vec<Edge>>,
        headers: Vec<u64>,
        next: u64,
    }
    impl B {
        fn new_block(&mut self) -> u64 {
            let a = self.next;
            self.next += 4;
            self.blocks.insert(a, Vec::new());
            a
        }
        /// Lower a statement list; returns (entry, open exit block).
        fn seq(&mut self, stmts: &[Stmt]) -> (u64, u64) {
            let mut entry = None;
            let mut tail: Option<u64> = None;
            for s in stmts {
                let (e, x) = self.stmt(s);
                if let Some(t) = tail {
                    self.blocks
                        .get_mut(&t)
                        .unwrap()
                        .push(Edge::to(EdgeKind::Jump, e));
                }
                entry.get_or_insert(e);
                tail = Some(x);
            }
            (entry.unwrap(), tail.unwrap())
        }
        fn stmt(&mut self, s: &Stmt) -> (u64, u64) {
            match s {
                Stmt::Block => {
                    let b = self.new_block();
                    (b, b)
                }
                Stmt::If(a, b) => {
                    let cond = self.new_block();
                    let (ae, ax) = self.seq(a);
                    let (be, bx) = self.seq(b);
                    let join = self.new_block();
                    self.blocks.get_mut(&cond).unwrap().extend([
                        Edge::to(EdgeKind::Taken, ae),
                        Edge::to(EdgeKind::NotTaken, be),
                    ]);
                    for x in [ax, bx] {
                        self.blocks
                            .get_mut(&x)
                            .unwrap()
                            .push(Edge::to(EdgeKind::Jump, join));
                    }
                    (cond, join)
                }
                Stmt::Loop(body) => {
                    let header = self.new_block();
                    self.headers.push(header);
                    let (be, bx) = self.seq(body);
                    let after = self.new_block();
                    self.blocks.get_mut(&header).unwrap().extend([
                        Edge::to(EdgeKind::Taken, after),
                        Edge::to(EdgeKind::NotTaken, be),
                    ]);
                    self.blocks
                        .get_mut(&bx)
                        .unwrap()
                        .push(Edge::to(EdgeKind::Jump, header));
                    (header, after)
                }
            }
        }
    }
    let mut b = B {
        blocks: BTreeMap::new(),
        headers: Vec::new(),
        next: 0x1000,
    };
    let (entry, exit) = b.seq(stmts);
    b.blocks
        .get_mut(&exit)
        .unwrap()
        .push(Edge::out(EdgeKind::Return));
    let mut f = Function::new(entry);
    for (start, edges) in b.blocks {
        let mut inst = rvdyn_isa::build::nop();
        inst.address = start;
        f.blocks.insert(
            start,
            BasicBlock {
                start,
                end: start + 4,
                insts: vec![inst],
                edges,
            },
        );
    }
    Lowered {
        func: f,
        headers: b.headers,
    }
}

/// Execute `invocations` random walks over the CFG; return the true
/// per-block counts and the values each planned counter site would hold.
fn simulate(
    low: &Lowered,
    sites: &[CounterSite],
    seed: u64,
    invocations: u64,
) -> (BTreeMap<u64, u64>, Vec<u64>) {
    let f = &low.func;
    let mut rng = seed | 1;
    let mut flip = || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) & 1 == 0
    };
    let mut counts: BTreeMap<u64, u64> = f.blocks.keys().map(|&b| (b, 0)).collect();
    let mut taken: BTreeMap<u64, u64> = BTreeMap::new();
    let mut not_taken: BTreeMap<u64, u64> = BTreeMap::new();
    let mut steps = 0u64;
    for _ in 0..invocations {
        let mut cur = f.entry;
        loop {
            *counts.get_mut(&cur).unwrap() += 1;
            steps += 1;
            let b = &f.blocks[&cur];
            let intra: Vec<&Edge> = b
                .edges
                .iter()
                .filter(|e| e.kind.is_intraprocedural())
                .collect();
            if intra.is_empty() {
                break; // return block
            }
            if intra.len() == 1 {
                cur = intra[0].target.unwrap();
                continue;
            }
            // Conditional: coin flip, except that long walks force loop
            // headers to exit (Taken leaves the loop in this lowering).
            let take = if steps > 20_000 && low.headers.contains(&cur) {
                true
            } else {
                flip()
            };
            let kind = if take {
                EdgeKind::Taken
            } else {
                EdgeKind::NotTaken
            };
            *if take {
                taken.entry(cur).or_default()
            } else {
                not_taken.entry(cur).or_default()
            } += 1;
            cur = intra
                .iter()
                .find(|e| e.kind == kind)
                .unwrap()
                .target
                .unwrap();
        }
    }
    let counters = sites
        .iter()
        .map(|s| match *s {
            CounterSite::Block { block } => counts[&block],
            CounterSite::TakenEdge { block, .. } => taken.get(&block).copied().unwrap_or(0),
            CounterSite::NotTakenEdge { block, .. } => not_taken.get(&block).copied().unwrap_or(0),
        })
        .collect();
    (counts, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For any structured (reducible) CFG and any execution, the counts
    /// reconstructed from the placed counters equal the true counts of
    /// every block — the every-block ground truth.
    #[test]
    fn random_reducible_cfgs_reconstruct_exactly(
        stmts in ProgramStrategy,
        seed in any::<u64>(),
        invocations in 1u64..4,
    ) {
        let low = lower(&stmts);
        let Some(plan) = plan_block_counters(&low.func) else {
            // No saving over every-block for this shape — a legal
            // outcome (callers fall back), nothing to verify.
            return Ok(());
        };
        prop_assert!(plan.counters_placed() < low.func.blocks.len());
        let (truth, counters) = simulate(&low, &plan.sites, seed, invocations);
        let counts = plan.reconstruct(&counters).unwrap();
        prop_assert_eq!(counts, truth);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Both placement modes, run for real on the emulator over random
    /// matmul sizes, agree block for block.
    #[test]
    fn emulator_matmul_sizes_agree(n in 2usize..7, reps in 1usize..3) {
        let elf = rvdyn_asm::matmul_program(n, reps).to_bytes().unwrap();

        let mut ed = BinaryEditor::open(&elf).unwrap();
        let bc = ed.count_blocks("matmul").unwrap();
        let r = ed.instrument_and_run(1_000_000_000).unwrap();
        let truth = ed.block_counts(&bc, &r).unwrap();

        let mut ed = BinaryEditor::open_with(&elf, optimal_opts()).unwrap();
        let bc = ed.count_blocks("matmul").unwrap();
        prop_assert!(bc.is_optimal());
        let r = ed.instrument_and_run(1_000_000_000).unwrap();
        let counts = ed.block_counts(&bc, &r).unwrap();
        prop_assert_eq!(counts, truth);
    }
}
