//! Workspace-level integration: every component in one flow, exercising
//! both instrumentation variants of Figure 1 against the same mutatees
//! and cross-checking their results.

use rvdyn::{
    Binary, BinaryEditor, CodeObject, DynamicInstrumenter, ParseOptions, PointKind, RegAllocMode,
    SessionOptions, Snippet,
};

/// Closed-form dynamic block count of one matmul(n) call (11-block shape).
fn matmul_blocks(n: u64) -> u64 {
    1 + (n + 1) + n + n * (n + 1) + n * n + n * n * (n + 1) + n * n * n
        + 3 * n * n
        - n * n // B5 + B8 + B9 are n² each; simplify: n*n*3
        + n
        + 1
}

#[test]
fn figure1_static_and_dynamic_paths_agree_everywhere() {
    let n = 7usize;
    let reps = 3usize;

    // --- static (left path) ---
    let elf = rvdyn_asm::matmul_program(n, reps).to_bytes().unwrap();
    let mut ed = BinaryEditor::open(&elf).unwrap();
    let c_entry = ed.alloc_var(8);
    let c_block = ed.alloc_var(8);
    ed.insert(
        &ed.find_points("matmul", PointKind::FuncEntry).unwrap(),
        Snippet::increment(c_entry),
    );
    ed.insert(
        &ed.find_points("matmul", PointKind::BlockEntry).unwrap(),
        Snippet::increment(c_block),
    );
    let out = ed.rewrite().unwrap();
    let r = rvdyn::run_elf(&out, 2_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    let static_entry = r.read_u64(c_entry.addr).unwrap();
    let static_block = r.read_u64(c_block.addr).unwrap();

    // --- dynamic (right path, create variant) ---
    let bin = rvdyn_asm::matmul_program(n, reps);
    let mut dy = DynamicInstrumenter::create(bin);
    let d_entry = dy.alloc_var(8);
    let d_block = dy.alloc_var(8);
    dy.insert(
        &dy.find_points("matmul", PointKind::FuncEntry).unwrap(),
        Snippet::increment(d_entry),
    );
    dy.insert(
        &dy.find_points("matmul", PointKind::BlockEntry).unwrap(),
        Snippet::increment(d_block),
    );
    dy.commit().unwrap();
    assert_eq!(dy.run_to_exit().unwrap(), 0);

    assert_eq!(static_entry, reps as u64);
    assert_eq!(dy.read_var(d_entry), Some(static_entry));
    assert_eq!(dy.read_var(d_block), Some(static_block));
    assert_eq!(static_block, matmul_blocks(n as u64) * reps as u64);
}

#[test]
fn rewritten_binary_is_reinstrumentable() {
    // Instrument, write, reopen the REWRITTEN binary and instrument a
    // different function — the output of the rewriter is itself a valid
    // mutatee (a strong well-formedness check).
    let elf = rvdyn_asm::matmul_program(5, 2).to_bytes().unwrap();
    let mut ed1 = BinaryEditor::open(&elf).unwrap();
    let c1 = ed1.alloc_var(8);
    ed1.insert(
        &ed1.find_points("matmul", PointKind::FuncEntry).unwrap(),
        Snippet::increment(c1),
    );
    let once = ed1.rewrite().unwrap();

    let mut ed2 = BinaryEditor::open(&once).unwrap();
    // Use a disjoint patch area for the second round.
    ed2.set_layout(rvdyn::PatchLayout {
        patch_text: 0x18_0000,
        patch_data: 0x1C_0000,
    });
    let c2 = ed2.alloc_var(8);
    ed2.insert(
        &ed2.find_points("init_arrays", PointKind::FuncEntry)
            .unwrap(),
        Snippet::increment(c2),
    );
    let twice = ed2.rewrite().unwrap();

    let r = rvdyn::run_elf(&twice, 2_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    assert_eq!(
        r.read_u64(c1.addr),
        Some(2),
        "first-round counter still works"
    );
    assert_eq!(r.read_u64(c2.addr), Some(1), "second-round counter works");
}

#[test]
fn all_mutatees_instrument_and_run() {
    // Blanket coverage: per-block counters on the main worker function of
    // every mutatee in the suite; all must run to a clean exit with a
    // non-zero count.
    let cases: Vec<(Binary, &str)> = vec![
        (rvdyn_asm::matmul_program(4, 1), "matmul"),
        (rvdyn_asm::fib_program(7), "fib"),
        (rvdyn_asm::switch_program(12), "selector"),
        (rvdyn_asm::memcpy_program(), "copy"),
        (rvdyn_asm::tailcall_program(), "twice_plus1"),
    ];
    for (bin, func) in cases {
        let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
        let c = ed.alloc_var(8);
        let pts = ed
            .find_points(func, PointKind::BlockEntry)
            .unwrap_or_else(|e| panic!("{func}: {e}"));
        ed.insert(&pts, Snippet::increment(c));
        let out = ed.rewrite().unwrap_or_else(|e| panic!("{func}: {e}"));
        let r = rvdyn::run_elf(&out, 1_000_000_000).unwrap();
        assert_eq!(r.exit_code, 0, "{func} exit");
        assert!(r.read_u64(c.addr).unwrap() > 0, "{func} counted nothing");
    }
}

#[test]
fn conditional_snippet_filters_events() {
    // A conditional snippet: count only calls where a3 (the N argument)
    // exceeds a threshold — exercises If/Bin lowering against mutatee
    // register state.
    let bin = rvdyn_asm::matmul_program(6, 4);
    let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
    let c_all = ed.alloc_var(8);
    let c_big = ed.alloc_var(8);
    let pts = ed.find_points("matmul", PointKind::FuncEntry).unwrap();
    ed.insert(&pts, Snippet::increment(c_all));
    ed.insert(
        &pts,
        Snippet::If {
            cond: Box::new(Snippet::bin(
                rvdyn::BinaryOp::GtS,
                Snippet::ReadReg(rvdyn::Reg::x(13)), // a3 = N
                Snippet::Const(100),
            )),
            then_: Box::new(Snippet::increment(c_big)),
            else_: None,
        },
    );
    let out = ed.rewrite().unwrap();
    let r = rvdyn::run_elf(&out, 1_000_000_000).unwrap();
    assert_eq!(r.read_u64(c_all.addr), Some(4));
    assert_eq!(r.read_u64(c_big.addr), Some(0), "N=6 is never > 100");
}

#[test]
fn snippet_reading_mutatee_state_observes_arguments() {
    // Record the a0 argument of the final call into a variable.
    let bin = rvdyn_asm::fib_program(5);
    let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
    let last_arg = ed.alloc_var(8);
    let pts = ed.find_points("fib", PointKind::FuncEntry).unwrap();
    ed.insert(
        &pts,
        Snippet::WriteVar(last_arg, Box::new(Snippet::ReadReg(rvdyn::Reg::x(10)))),
    );
    let out = ed.rewrite().unwrap();
    let r = rvdyn::run_elf(&out, 1_000_000_000).unwrap();
    // The recursion bottoms out at fib(1) on the rightmost path; the last
    // recorded argument is small (0 or 1).
    let v = r.read_u64(last_arg.addr).unwrap();
    assert!(v <= 1, "last fib argument should be a base case, got {v}");
}

#[test]
fn stripped_binary_full_pipeline_with_gap_parsing() {
    // Strip the symbols, parse with gap parsing, instrument the function
    // found at the known matmul address (symbols are gone, so we address
    // it by entry).
    let mut bin = rvdyn_asm::matmul_program(5, 2);
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    bin.strip();
    let opts = ParseOptions {
        parse_gaps: true,
        ..Default::default()
    };
    let co = CodeObject::parse(&bin, &opts);
    assert!(co.functions.contains_key(&mm));

    let mut ins = rvdyn_patch::Instrumenter::new(&bin, &co);
    let c = ins.alloc_var(8);
    let pts = rvdyn::find_points(&co.functions[&mm], PointKind::FuncEntry);
    for p in pts {
        ins.insert(p, Snippet::increment(c));
    }
    let patched = ins.apply().unwrap();
    let r = rvdyn::editor::run_binary(&patched.binary, 1_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.read_u64(c.addr), Some(2));
}

#[test]
fn force_spill_mode_produces_correct_but_slower_binaries() {
    let bin = rvdyn_asm::matmul_program(6, 1);
    let mk = |mode: RegAllocMode| {
        let mut ed = BinaryEditor::from_binary(bin.clone(), SessionOptions::default());
        ed.set_mode(mode);
        let c = ed.alloc_var(8);
        ed.insert(
            &ed.find_points("matmul", PointKind::BlockEntry).unwrap(),
            Snippet::increment(c),
        );
        let out = ed.rewrite().unwrap();
        let r = rvdyn::run_elf(&out, 1_000_000_000).unwrap();
        (r.read_u64(c.addr).unwrap(), r.cycles)
    };
    let (count_dead, cycles_dead) = mk(RegAllocMode::DeadRegisters);
    let (count_spill, cycles_spill) = mk(RegAllocMode::ForceSpill);
    assert_eq!(count_dead, count_spill, "semantics must be identical");
    assert!(cycles_spill > cycles_dead, "spilling must cost cycles");
}

#[test]
fn call_snippet_invokes_mutatee_function_and_preserves_state() {
    // Instrument main's entry with a snippet that CALLS the mutatee's own
    // `double_it` (x*2) and stores the result — Dyninst's "calling
    // functions" snippet type (§2). The live caller-saved registers must
    // be preserved around the call, so the program's own result (12) must
    // be unchanged.
    let bin = rvdyn_asm::tailcall_program();
    let double_it = bin.symbol_by_name("double_it").unwrap().value;
    let result = bin.symbol_by_name("result").unwrap().value;

    let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
    let hook_out = ed.alloc_var(8);
    let pts = ed.find_points("main", PointKind::FuncEntry).unwrap();
    ed.insert(
        &pts,
        Snippet::WriteVar(
            hook_out,
            Box::new(Snippet::Call {
                target: double_it,
                args: vec![Snippet::Const(21)],
            }),
        ),
    );
    let out = ed.rewrite().unwrap();
    let r = rvdyn::run_elf(&out, 1_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.read_u64(hook_out.addr), Some(42), "call snippet must run");
    let v = r.read_u64(result).unwrap();
    assert_eq!(v, 12, "mutatee state corrupted by the call snippet");
}

#[test]
fn call_snippet_at_every_block_of_hot_function() {
    // Stress: a call snippet at every block of fib — deep save/restore
    // nesting while the mutatee itself recurses.
    let bin = rvdyn_asm::tailcall_program();
    let double_it = bin.symbol_by_name("double_it").unwrap().value;
    let result = bin.symbol_by_name("result").unwrap().value;
    let mut ed = BinaryEditor::from_binary(bin, SessionOptions::default());
    let acc = ed.alloc_var(8);
    let pts = ed.find_points("main", PointKind::BlockEntry).unwrap();
    ed.insert(
        &pts,
        Snippet::WriteVar(
            acc,
            Box::new(Snippet::bin(
                rvdyn::BinaryOp::Add,
                Snippet::ReadVar(acc),
                Snippet::Call {
                    target: double_it,
                    args: vec![Snippet::Const(1)],
                },
            )),
        ),
    );
    let out = ed.rewrite().unwrap();
    let r = rvdyn::run_elf(&out, 1_000_000_000).unwrap();
    assert_eq!(r.exit_code, 0);
    assert_eq!(r.read_u64(result), Some(12));
    // acc = 2 × number of executed blocks in main.
    let blocks = ed.find_points("main", PointKind::BlockEntry).unwrap().len() as u64;
    assert_eq!(r.read_u64(acc.addr), Some(2 * blocks));
}
