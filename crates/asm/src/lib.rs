//! # rvdyn-asm — assembler and mutatee program suite
//!
//! The paper's experiments run gcc-compiled C programs on RISC-V hardware.
//! This workspace has neither a RISC-V compiler nor hardware, so this crate
//! provides the substitute (documented in DESIGN.md §2): a small assembler
//! over `rvdyn-isa`'s instruction builders, and a suite of *program
//! builders* that emit complete, runnable ELF executables — most
//! importantly the matrix-multiply application of §4.1, constructed with
//! exactly the 11-basic-block multiply function and ~2M dynamically
//! executed blocks per call that the paper reports.
//!
//! The produced binaries are real ELF64/RISC-V files (with symbols,
//! `.riscv.attributes`, and program headers); they can be parsed by
//! ParseAPI, instrumented by PatchAPI, rewritten by SymtabAPI, and executed
//! by the `rvdyn-emu` substrate.

pub mod assembler;
pub mod programs;

pub use assembler::{AsmError, Assembler, Label};
pub use programs::{
    atomics_program, deep_call_program, fib_program, indirect_entry_program,
    many_functions_program, matmul_program, memcpy_program, nested_call_program, switch_program,
    switch_rel_program, tailcall_program, tiny_function_program, Layout,
};
