//! A single-pass assembler with label fixups.
//!
//! Instructions occupy fixed widths (4 bytes, or 2 for explicitly-emitted
//! compressed instructions), so label addresses are known as soon as they
//! are bound and all fixups resolve in [`Assembler::finish`].

use rvdyn_codegen::imm::load_imm;
use rvdyn_isa::build;
use rvdyn_isa::encode::{compress, encode32, EncodeError};
use rvdyn_isa::{Instruction, Op, Reg};
use std::fmt;

/// A code label. Created unbound ([`Assembler::label`]) and bound to the
/// current position with [`Assembler::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// `finish` was called while a label referenced by a fixup was unbound.
    UnboundLabel(usize),
    /// A resolved branch/jump displacement does not fit its format.
    OutOfRange {
        at: u64,
        target: u64,
        format: &'static str,
    },
    /// Instruction encoding failed.
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(i) => write!(f, "label {i} never bound"),
            AsmError::OutOfRange { at, target, format } => {
                write!(f, "{format} at {at:#x} cannot reach {target:#x}")
            }
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

enum Item {
    /// A plain instruction (4 bytes, or 2 if `compressed`).
    Inst(Instruction),
    /// B-format fixup.
    Branch {
        op: Op,
        rs1: Reg,
        rs2: Reg,
        label: Label,
    },
    /// `jal rd, label`.
    Jal { rd: Reg, label: Label },
    /// `auipc rd, %hi(label)` + `addi rd, rd, %lo(label)` (8 bytes).
    La { rd: Reg, label: Label },
}

impl Item {
    fn size(&self) -> u64 {
        match self {
            Item::Inst(i) => i.size as u64,
            Item::Branch { .. } | Item::Jal { .. } => 4,
            Item::La { .. } => 8,
        }
    }
}

/// The assembler.
pub struct Assembler {
    base: u64,
    items: Vec<(u64, Item)>,
    cursor: u64,
    labels: Vec<Option<u64>>,
}

impl Assembler {
    /// Start assembling at virtual address `base`.
    pub fn new(base: u64) -> Assembler {
        Assembler {
            base,
            items: Vec::new(),
            cursor: base,
            labels: Vec::new(),
        }
    }

    /// Current virtual address.
    pub fn here(&self) -> u64 {
        self.cursor
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `l` to the current position.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.cursor);
    }

    /// Create a label already bound here.
    pub fn here_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Resolved address of a label (after binding).
    pub fn label_addr(&self, l: Label) -> Option<u64> {
        self.labels[l.0]
    }

    fn push(&mut self, item: Item) {
        let at = self.cursor;
        self.cursor += item.size();
        self.items.push((at, item));
    }

    /// Emit a prebuilt instruction (4-byte encoding).
    pub fn inst(&mut self, i: Instruction) {
        debug_assert!(i.size == 4 || i.compressed.is_some());
        self.push(Item::Inst(i));
    }

    /// Emit an instruction in compressed (2-byte) form. Panics if no
    /// compressed encoding exists — callers choose compressible operands.
    pub fn c_inst(&mut self, mut i: Instruction) {
        let c = compress(&i).expect("instruction not compressible");
        i.size = 2;
        i.raw = c as u32;
        // Mark the compressed identity so encode() emits 2 bytes.
        if i.compressed.is_none() {
            i.compressed = Some(match rvdyn_isa::decode_c::decode_compressed(c, 0) {
                Ok(d) => d.compressed.unwrap(),
                Err(_) => unreachable!("compress produced undecodable bits"),
            });
        }
        self.push(Item::Inst(i));
    }

    // ---- label-fixup forms ----

    /// Conditional branch to a label.
    pub fn branch(&mut self, op: Op, rs1: Reg, rs2: Reg, label: Label) {
        debug_assert!(op.is_conditional_branch());
        self.push(Item::Branch {
            op,
            rs1,
            rs2,
            label,
        });
    }

    pub fn beq(&mut self, a: Reg, b: Reg, l: Label) {
        self.branch(Op::Beq, a, b, l);
    }

    pub fn bne(&mut self, a: Reg, b: Reg, l: Label) {
        self.branch(Op::Bne, a, b, l);
    }

    pub fn blt(&mut self, a: Reg, b: Reg, l: Label) {
        self.branch(Op::Blt, a, b, l);
    }

    pub fn bge(&mut self, a: Reg, b: Reg, l: Label) {
        self.branch(Op::Bge, a, b, l);
    }

    pub fn bltu(&mut self, a: Reg, b: Reg, l: Label) {
        self.branch(Op::Bltu, a, b, l);
    }

    pub fn bgeu(&mut self, a: Reg, b: Reg, l: Label) {
        self.branch(Op::Bgeu, a, b, l);
    }

    /// Unconditional jump (`jal x0`).
    pub fn jump(&mut self, l: Label) {
        self.push(Item::Jal {
            rd: Reg::X0,
            label: l,
        });
    }

    /// Call (`jal ra`).
    pub fn call(&mut self, l: Label) {
        self.push(Item::Jal {
            rd: Reg::X1,
            label: l,
        });
    }

    /// Tail call (`jal x0` to another function — §3.2.3).
    pub fn tail(&mut self, l: Label) {
        self.push(Item::Jal {
            rd: Reg::X0,
            label: l,
        });
    }

    /// Load the address of a label (`auipc`/`addi` pair).
    pub fn la(&mut self, rd: Reg, l: Label) {
        self.push(Item::La { rd, label: l });
    }

    // ---- common instruction sugar ----

    /// Load a 64-bit immediate (materialisation via CodeGenAPI).
    pub fn li(&mut self, rd: Reg, v: i64) {
        for i in load_imm(rd, v) {
            self.inst(i);
        }
    }

    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.inst(build::addi(rd, rs1, imm));
    }

    pub fn add(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.inst(build::add(rd, a, b));
    }

    pub fn sub(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.inst(build::sub(rd, a, b));
    }

    pub fn mul(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.inst(build::r_type(Op::Mul, rd, a, b));
    }

    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.inst(build::mv(rd, rs));
    }

    pub fn slli(&mut self, rd: Reg, rs: Reg, sh: i64) {
        self.inst(build::i_type(Op::Slli, rd, rs, sh));
    }

    pub fn ld(&mut self, rd: Reg, base: Reg, off: i64) {
        self.inst(build::ld(rd, base, off));
    }

    pub fn lw(&mut self, rd: Reg, base: Reg, off: i64) {
        self.inst(build::lw(rd, base, off));
    }

    pub fn lbu(&mut self, rd: Reg, base: Reg, off: i64) {
        self.inst(build::i_type(Op::Lbu, rd, base, off));
    }

    pub fn sd(&mut self, val: Reg, base: Reg, off: i64) {
        self.inst(build::sd(val, base, off));
    }

    pub fn sw(&mut self, val: Reg, base: Reg, off: i64) {
        self.inst(build::sw(val, base, off));
    }

    pub fn sb(&mut self, val: Reg, base: Reg, off: i64) {
        self.inst(build::s_type(Op::Sb, base, val, off));
    }

    pub fn fld(&mut self, rd: Reg, base: Reg, off: i64) {
        self.inst(build::fld(rd, base, off));
    }

    pub fn fsd(&mut self, val: Reg, base: Reg, off: i64) {
        self.inst(build::fsd(val, base, off));
    }

    pub fn fmadd_d(&mut self, rd: Reg, a: Reg, b: Reg, c: Reg) {
        self.inst(build::fma(Op::FmaddD, rd, a, b, c));
    }

    pub fn fadd_d(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.inst(build::f_type(Op::FaddD, rd, a, b));
    }

    pub fn fmul_d(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.inst(build::f_type(Op::FmulD, rd, a, b));
    }

    pub fn fsub_d(&mut self, rd: Reg, a: Reg, b: Reg) {
        self.inst(build::f_type(Op::FsubD, rd, a, b));
    }

    pub fn fcvt_d_l(&mut self, rd: Reg, rs: Reg) {
        self.inst(build::f_unary(Op::FcvtDL, rd, rs));
    }

    pub fn fmv_d_x(&mut self, rd: Reg, rs: Reg) {
        self.inst(build::f_unary(Op::FmvDX, rd, rs));
    }

    pub fn fmv_x_d(&mut self, rd: Reg, rs: Reg) {
        self.inst(build::f_unary(Op::FmvXD, rd, rs));
    }

    pub fn jalr(&mut self, rd: Reg, base: Reg, off: i64) {
        self.inst(build::jalr(rd, base, off));
    }

    pub fn ret(&mut self) {
        self.inst(build::ret());
    }

    pub fn ecall(&mut self) {
        self.inst(build::ecall());
    }

    pub fn ebreak(&mut self) {
        self.inst(build::ebreak());
    }

    pub fn nop(&mut self) {
        self.inst(build::nop());
    }

    /// Resolve all fixups and encode to bytes.
    pub fn finish(self) -> Result<Vec<u8>, AsmError> {
        let mut out = Vec::with_capacity((self.cursor - self.base) as usize);
        let resolve = |l: Label| -> Result<u64, AsmError> {
            self.labels[l.0].ok_or(AsmError::UnboundLabel(l.0))
        };
        for (at, item) in &self.items {
            match item {
                Item::Inst(i) => {
                    if i.size == 2 {
                        out.extend_from_slice(&(i.raw as u16).to_le_bytes());
                    } else {
                        out.extend_from_slice(&encode32(i)?.to_le_bytes());
                    }
                }
                Item::Branch {
                    op,
                    rs1,
                    rs2,
                    label,
                } => {
                    let target = resolve(*label)?;
                    let delta = target.wrapping_sub(*at) as i64;
                    if !(-4096..4096).contains(&delta) {
                        return Err(AsmError::OutOfRange {
                            at: *at,
                            target,
                            format: "B-format branch",
                        });
                    }
                    let i = build::b_type(*op, *rs1, *rs2, delta);
                    out.extend_from_slice(&encode32(&i)?.to_le_bytes());
                }
                Item::Jal { rd, label } => {
                    let target = resolve(*label)?;
                    let delta = target.wrapping_sub(*at) as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&delta) {
                        return Err(AsmError::OutOfRange {
                            at: *at,
                            target,
                            format: "jal",
                        });
                    }
                    let i = build::jal(*rd, delta);
                    out.extend_from_slice(&encode32(&i)?.to_le_bytes());
                }
                Item::La { rd, label } => {
                    let target = resolve(*label)?;
                    let (hi, lo) = rvdyn_codegen::imm::pcrel_parts(*at, target).ok_or(
                        AsmError::OutOfRange {
                            at: *at,
                            target,
                            format: "auipc",
                        },
                    )?;
                    let a = build::auipc(*rd, hi);
                    let b = build::addi(*rd, *rd, lo);
                    // The addi's pc is at+4 but %lo is relative to the
                    // auipc, which is exactly how the pair composes.
                    out.extend_from_slice(&encode32(&a)?.to_le_bytes());
                    out.extend_from_slice(&encode32(&b)?.to_le_bytes());
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_isa::decode::InstructionIter;
    use rvdyn_isa::ControlFlow;

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Assembler::new(0x1000);
        let top = a.here_label();
        let end = a.label();
        a.addi(Reg::x(10), Reg::x(10), 1);
        a.beq(Reg::x(10), Reg::x(11), end);
        a.jump(top);
        a.bind(end);
        a.ret();
        let code = a.finish().unwrap();
        let insts: Vec<_> = InstructionIter::new(&code, 0x1000)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(insts.len(), 4);
        match insts[1].control_flow() {
            ControlFlow::ConditionalBranch { target, .. } => assert_eq!(target, 0x100C),
            cf => panic!("{cf:?}"),
        }
        match insts[2].control_flow() {
            ControlFlow::DirectJump { target, .. } => assert_eq!(target, 0x1000),
            cf => panic!("{cf:?}"),
        }
    }

    #[test]
    fn la_resolves_pcrel() {
        let mut a = Assembler::new(0x1000);
        let data = a.label();
        a.la(Reg::x(10), data);
        a.ret();
        a.bind(data); // label points just past the code
        let addr = a.label_addr(data).unwrap();
        assert_eq!(addr, 0x100C);
        let code = a.finish().unwrap();
        // Execute auipc+addi via the reference evaluator.
        use rvdyn_isa::semantics::{eval_int, FlatMemory, IntState};
        let mut st = IntState::new(0x1000);
        let mut mem = FlatMemory::new(0, 8);
        let insts: Vec<_> = InstructionIter::new(&code, 0x1000)
            .map(|r| r.unwrap())
            .collect();
        st.pc = insts[0].address;
        eval_int(&insts[0], &mut st, &mut mem);
        st.pc = insts[1].address;
        eval_int(&insts[1], &mut st, &mut mem);
        assert_eq!(st.get(Reg::x(10)), addr);
    }

    #[test]
    fn unbound_label_rejected() {
        let mut a = Assembler::new(0);
        let l = a.label();
        a.jump(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn out_of_range_branch_rejected() {
        let mut a = Assembler::new(0);
        let far = a.label();
        a.beq(Reg::x(10), Reg::x(11), far);
        for _ in 0..2000 {
            a.nop();
        }
        a.bind(far);
        a.ret();
        assert!(matches!(a.finish(), Err(AsmError::OutOfRange { .. })));
    }

    #[test]
    fn compressed_instructions_halve_size() {
        let mut a = Assembler::new(0x1000);
        a.c_inst(build::addi(Reg::x(10), Reg::x(10), 1)); // c.addi
        a.c_inst(build::add(Reg::x(11), Reg::X0, Reg::x(10))); // c.mv
        assert_eq!(a.here(), 0x1004);
        a.ret();
        let code = a.finish().unwrap();
        assert_eq!(code.len(), 8);
        let insts: Vec<_> = InstructionIter::new(&code, 0x1000)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(insts[0].size, 2);
        assert_eq!(insts[1].size, 2);
        assert_eq!(insts[2].size, 4);
        assert_eq!(insts[1].op, Op::Add); // c.mv expands to add
    }

    #[test]
    fn li_various_widths() {
        let mut a = Assembler::new(0);
        a.li(Reg::x(10), 42);
        a.li(Reg::x(11), 0x12345678);
        a.li(Reg::x(12), 0x1234_5678_9ABC_DEF0);
        let code = a.finish().unwrap();
        use rvdyn_isa::semantics::{eval_int, FlatMemory, IntState};
        let mut st = IntState::new(0);
        let mut mem = FlatMemory::new(0, 8);
        for r in InstructionIter::new(&code, 0) {
            let i = r.unwrap();
            st.pc = i.address;
            eval_int(&i, &mut st, &mut mem);
        }
        assert_eq!(st.get(Reg::x(10)), 42);
        assert_eq!(st.get(Reg::x(11)), 0x12345678);
        assert_eq!(st.get(Reg::x(12)), 0x1234_5678_9ABC_DEF0);
    }
}
