//! The mutatee program suite (the gcc-compiled-application substitute,
//! DESIGN.md §2).
//!
//! Each builder returns a complete, loadable [`Binary`] with function
//! symbols and `.riscv.attributes`. The flagship is [`matmul_program`]: the
//! §4.1 application — a multiply function with **exactly 11 basic blocks**
//! and ~2M dynamically-executed blocks per call at N=100, called in a loop
//! from `main`, with `clock_gettime` samples before and after the loop and
//! the elapsed nanoseconds written to stdout.

use crate::assembler::{AsmError, Assembler};
use rvdyn_isa::{build, IsaProfile, Op, Reg};
use rvdyn_symtab::{
    Binary, RiscvAttributes, Section, Symbol, SymbolBinding, SymbolKind, SHF_ALLOC, SHF_EXECINSTR,
    SHF_WRITE,
};

/// Address-space layout shared by all mutatee programs.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    pub text: u64,
    pub rodata: u64,
    pub data: u64,
    pub bss: u64,
}

impl Default for Layout {
    fn default() -> Layout {
        Layout {
            text: 0x1_0000,
            rodata: 0x1_8000,
            data: 0x2_0000,
            bss: 0x3_0000,
        }
    }
}

/// Linux RISC-V syscall numbers used by the mutatees.
pub mod sysno {
    pub const WRITE: i64 = 64;
    pub const EXIT: i64 = 93;
    pub const CLOCK_GETTIME: i64 = 113;
}

const T0: Reg = Reg::X5;
const T1: Reg = Reg::x(6);
const T2: Reg = Reg::x(7);
const T3: Reg = Reg::x(28);
const T4: Reg = Reg::x(29);
const T5: Reg = Reg::x(30);
#[allow(dead_code)] // kept for program builders that need a 7th temp
const T6: Reg = Reg::x(31);
const S0: Reg = Reg::x(8);
const S1: Reg = Reg::x(9);
const A0: Reg = Reg::x(10);
const A1: Reg = Reg::x(11);
const A2: Reg = Reg::x(12);
const A3: Reg = Reg::x(13);
const A7: Reg = Reg::x(17);
const RA: Reg = Reg::X1;
const SP: Reg = Reg::X2;
const FT0: Reg = Reg::f(0);
const FT1: Reg = Reg::f(1);
const FT2: Reg = Reg::f(2);

struct Sym {
    name: String,
    addr: u64,
    size: u64,
    kind: SymbolKind,
}

fn finish_binary(
    a: Assembler,
    layout: Layout,
    mut syms: Vec<Sym>,
    rodata: Vec<u8>,
    data: Vec<u8>,
    bss_size: usize,
    profile: IsaProfile,
) -> Result<Binary, AsmError> {
    let code = a.finish()?;
    let mut sections = vec![Section::progbits(
        ".text",
        layout.text,
        SHF_ALLOC | SHF_EXECINSTR,
        code,
    )];
    if !rodata.is_empty() {
        sections.push(Section::progbits(
            ".rodata",
            layout.rodata,
            SHF_ALLOC,
            rodata,
        ));
    }
    if !data.is_empty() {
        sections.push(Section::progbits(
            ".data",
            layout.data,
            SHF_ALLOC | SHF_WRITE,
            data,
        ));
    }
    if bss_size > 0 {
        let mut bss =
            Section::progbits(".bss", layout.bss, SHF_ALLOC | SHF_WRITE, vec![0; bss_size]);
        bss.sh_type = rvdyn_symtab::elf::SHT_NOBITS;
        sections.push(bss);
    }
    syms.sort_by_key(|s| s.addr);
    let symbols = syms
        .into_iter()
        .map(|s| Symbol {
            name: s.name,
            value: s.addr,
            size: s.size,
            kind: s.kind,
            binding: SymbolBinding::Global,
        })
        .collect();
    Ok(Binary {
        entry: layout.text,
        e_flags: Binary::eflags_for(profile),
        e_type: rvdyn_symtab::elf::ET_EXEC,
        sections,
        symbols,
        attributes: Some(RiscvAttributes::for_profile(profile)),
    })
}

/// Emit the standard `_start`: call `main`, then `exit(a0)`.
/// Must be the first code so `entry == layout.text`.
fn emit_start(a: &mut Assembler, main: crate::assembler::Label) {
    a.call(main);
    a.li(A7, sysno::EXIT);
    a.ecall();
}

/// The §4.1 matrix-multiply application.
///
/// * `n` — matrix dimension (the paper uses 100).
/// * `reps` — how many times `main` calls the multiply function.
///
/// `main` samples `clock_gettime(CLOCK_MONOTONIC)` before and after the
/// call loop, stores the elapsed nanoseconds at the `result` data slot and
/// writes the 8 raw bytes to stdout. The `matmul` function has exactly 11
/// basic blocks; for `n = 100` one call executes ~2.05M blocks.
pub fn matmul_program(n: usize, reps: usize) -> Binary {
    let layout = Layout::default();
    let elems = n * n * 8;
    let addr_a = layout.bss;
    let addr_b = layout.bss + elems as u64;
    let addr_c = layout.bss + 2 * elems as u64;
    let ts0 = layout.data; // 16-byte timespec
    let ts1 = layout.data + 16;
    let result = layout.data + 32;

    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_init = a.label();
    let l_matmul = a.label();

    // _start
    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    // ---- main ----
    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -32);
    a.sd(RA, SP, 24);
    a.sd(S0, SP, 16);
    a.sd(S1, SP, 8);
    a.call(l_init);
    // clock_gettime(CLOCK_MONOTONIC=1, &ts0)
    a.li(A0, 1);
    a.li(A1, ts0 as i64);
    a.li(A7, sysno::CLOCK_GETTIME);
    a.ecall();
    // for (s1 = 0; s1 < reps; s1++) matmul(A, B, C, n)
    a.li(S0, reps as i64);
    a.li(S1, 0);
    let l_loop = a.here_label();
    let l_done = a.label();
    a.bge(S1, S0, l_done);
    a.li(A0, addr_a as i64);
    a.li(A1, addr_b as i64);
    a.li(A2, addr_c as i64);
    a.li(A3, n as i64);
    a.call(l_matmul);
    a.addi(S1, S1, 1);
    a.jump(l_loop);
    a.bind(l_done);
    a.li(A0, 1);
    a.li(A1, ts1 as i64);
    a.li(A7, sysno::CLOCK_GETTIME);
    a.ecall();
    // elapsed = (ts1.s - ts0.s) * 1e9 + (ts1.ns - ts0.ns)
    a.li(T0, ts0 as i64);
    a.li(T1, ts1 as i64);
    a.ld(T2, T0, 0);
    a.ld(T3, T1, 0);
    a.sub(T3, T3, T2);
    a.li(T4, 1_000_000_000);
    a.mul(T3, T3, T4);
    a.ld(T2, T0, 8);
    a.ld(T4, T1, 8);
    a.sub(T4, T4, T2);
    a.add(T3, T3, T4);
    a.li(T0, result as i64);
    a.sd(T3, T0, 0);
    // write(1, &result, 8)
    a.li(A0, 1);
    a.li(A1, result as i64);
    a.li(A2, 8);
    a.li(A7, sysno::WRITE);
    a.ecall();
    a.li(A0, 0);
    a.ld(RA, SP, 24);
    a.ld(S0, SP, 16);
    a.ld(S1, SP, 8);
    a.addi(SP, SP, 32);
    a.ret();
    let main_size = a.here() - main_addr;

    // ---- init_arrays: A[i][j] = i + j, B[i][j] = i - j ----
    a.bind(l_init);
    let init_addr = a.here();
    a.li(T0, 0); // i
    a.li(T2, addr_a as i64);
    a.li(T3, addr_b as i64);
    a.li(T5, n as i64);
    let l_i = a.here_label();
    let l_idone = a.label();
    a.bge(T0, T5, l_idone);
    a.li(T1, 0); // j
    let l_j = a.here_label();
    let l_jdone = a.label();
    a.bge(T1, T5, l_jdone);
    a.add(T4, T0, T1);
    a.fcvt_d_l(FT0, T4);
    a.fsd(FT0, T2, 0);
    a.sub(T4, T0, T1);
    a.fcvt_d_l(FT0, T4);
    a.fsd(FT0, T3, 0);
    // Compressed forms for the pointer/counter bumps: realistic RV64GC
    // code mixes widths inside blocks (§3.1.2).
    a.c_inst(build::addi(T2, T2, 8));
    a.c_inst(build::addi(T1, T1, 1));
    a.addi(T3, T3, 8);
    a.jump(l_j);
    a.bind(l_jdone);
    a.c_inst(build::addi(T0, T0, 1));
    a.jump(l_i);
    a.bind(l_idone);
    a.ret();
    let init_size = a.here() - init_addr;

    // ---- matmul(a0=A, a1=B, a2=C, a3=N): exactly 11 basic blocks ----
    //
    // The body is written the way gcc's *default optimization level*
    // (-O0, §4.1 "compiled … with the default optimization level")
    // generates it: every C variable lives in a stack slot and is
    // reloaded/spilled around each use. This matters for the §4.3
    // reproduction — the relative cost of a counter snippet depends on
    // how much memory traffic the uninstrumented blocks already do.
    //
    // Frame (80 bytes): 72 s0 | 56 sum | 48 A | 40 B | 32 C | 24 N
    //                   | 16 i | 8 j | 0 k
    a.bind(l_matmul);
    let mm_addr = a.here();
    // B1: prologue — spill arguments, i = 0
    a.addi(SP, SP, -80);
    a.sd(S0, SP, 72);
    a.sd(A0, SP, 48);
    a.sd(A1, SP, 40);
    a.sd(A2, SP, 32);
    a.sd(A3, SP, 24);
    a.sd(Reg::X0, SP, 16); // i = 0
    let l_ihead = a.label();
    let l_jhead = a.label();
    let l_khead = a.label();
    let l_store = a.label();
    let l_jinc = a.label();
    let l_iinc = a.label();
    let l_exit = a.label();
    a.jump(l_ihead);
    // B2: i-loop head — if (i >= N) goto exit
    a.bind(l_ihead);
    a.ld(T0, SP, 16);
    a.ld(T1, SP, 24);
    a.bge(T0, T1, l_exit);
    // B3: j = 0
    a.sd(Reg::X0, SP, 8);
    a.jump(l_jhead);
    // B4: j-loop head — if (j >= N) goto i-inc
    a.bind(l_jhead);
    a.ld(T0, SP, 8);
    a.ld(T1, SP, 24);
    a.bge(T0, T1, l_iinc);
    // B5: sum = 0.0; k = 0
    a.fmv_d_x(FT0, Reg::X0);
    a.fsd(FT0, SP, 56);
    a.sd(Reg::X0, SP, 0);
    a.jump(l_khead);
    // B6: k-loop head — if (k >= N) goto store
    a.bind(l_khead);
    a.ld(T0, SP, 0);
    a.ld(T1, SP, 24);
    a.bge(T0, T1, l_store);
    // B7: k-loop body — sum += A[i*N+k] * B[k*N+j], k++   (-O0 style:
    // recompute both addresses from the stack slots each iteration)
    a.ld(T0, SP, 16); // i
    a.ld(T1, SP, 24); // N
    a.mul(T2, T0, T1);
    a.ld(T3, SP, 0); // k
    a.add(T2, T2, T3);
    a.slli(T2, T2, 3);
    a.ld(T4, SP, 48); // A
    a.add(T4, T4, T2);
    a.fld(FT1, T4, 0);
    a.mul(T2, T3, T1); // k*N
    a.ld(T0, SP, 8); // j
    a.add(T2, T2, T0);
    a.slli(T2, T2, 3);
    a.ld(T4, SP, 40); // B
    a.add(T4, T4, T2);
    a.fld(FT2, T4, 0);
    a.fld(FT0, SP, 56);
    a.fmadd_d(FT0, FT1, FT2, FT0);
    a.fsd(FT0, SP, 56);
    a.ld(T0, SP, 0);
    a.c_inst(build::addi(T0, T0, 1));
    a.sd(T0, SP, 0);
    a.jump(l_khead);
    // B8: C[i*N+j] = sum
    a.bind(l_store);
    a.ld(T0, SP, 16);
    a.ld(T1, SP, 24);
    a.mul(T2, T0, T1);
    a.ld(T0, SP, 8);
    a.add(T2, T2, T0);
    a.slli(T2, T2, 3);
    a.ld(T4, SP, 32);
    a.add(T4, T4, T2);
    a.fld(FT0, SP, 56);
    a.fsd(FT0, T4, 0);
    a.jump(l_jinc);
    // B9: j++
    a.bind(l_jinc);
    a.ld(T0, SP, 8);
    a.c_inst(build::addi(T0, T0, 1));
    a.sd(T0, SP, 8);
    a.jump(l_jhead);
    // B10: i++
    a.bind(l_iinc);
    a.ld(T0, SP, 16);
    a.c_inst(build::addi(T0, T0, 1));
    a.sd(T0, SP, 16);
    a.jump(l_ihead);
    // B11: epilogue
    a.bind(l_exit);
    a.ld(S0, SP, 72);
    a.addi(SP, SP, 80);
    a.ret();
    let mm_size = a.here() - mm_addr;

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "init_arrays".into(),
            addr: init_addr,
            size: init_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "matmul".into(),
            addr: mm_addr,
            size: mm_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "ts0".into(),
            addr: ts0,
            size: 16,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "ts1".into(),
            addr: ts1,
            size: 16,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 8,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "mat_a".into(),
            addr: addr_a,
            size: elems as u64,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "mat_b".into(),
            addr: addr_b,
            size: elems as u64,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "mat_c".into(),
            addr: addr_c,
            size: elems as u64,
            kind: SymbolKind::Object,
        },
    ];
    finish_binary(
        a,
        layout,
        syms,
        Vec::new(),
        vec![0; 40],
        3 * elems,
        IsaProfile::rv64gc(),
    )
    .expect("matmul program assembles")
}

/// Recursive Fibonacci — exercises deep call stacks (StackwalkerAPI) and
/// call/return classification.
pub fn fib_program(n: u64) -> Binary {
    let layout = Layout::default();
    let result = layout.data;
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_fib = a.label();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -16);
    a.sd(RA, SP, 8);
    a.li(A0, n as i64);
    a.call(l_fib);
    a.li(T0, result as i64);
    a.sd(A0, T0, 0);
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 8);
    a.addi(SP, SP, 16);
    a.ret();
    let main_size = a.here() - main_addr;

    // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
    a.bind(l_fib);
    let fib_addr = a.here();
    a.addi(SP, SP, -32);
    a.sd(RA, SP, 24);
    a.sd(S0, SP, 16);
    a.sd(S1, SP, 8);
    let l_base = a.label();
    a.li(T0, 2);
    a.blt(A0, T0, l_base);
    a.mv(S0, A0);
    a.addi(A0, A0, -1);
    a.call(l_fib);
    a.mv(S1, A0);
    a.addi(A0, S0, -2);
    a.call(l_fib);
    a.add(A0, A0, S1);
    a.bind(l_base);
    a.ld(RA, SP, 24);
    a.ld(S0, SP, 16);
    a.ld(S1, SP, 8);
    a.addi(SP, SP, 32);
    a.ret();
    let fib_size = a.here() - fib_addr;

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "fib".into(),
            addr: fib_addr,
            size: fib_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 8,
            kind: SymbolKind::Object,
        },
    ];
    finish_binary(
        a,
        layout,
        syms,
        Vec::new(),
        vec![0; 8],
        0,
        IsaProfile::rv64gc(),
    )
    .expect("fib program assembles")
}

/// A switch implemented through a `.rodata` jump table reached by an
/// indirect `jalr` — the §3.2.3 jump-table analysis target.
///
/// `selector(x)` bounds-checks `x`, loads `table[x]` and jumps to it; the
/// four cases return 10/20/30/40 and out-of-range returns 0. `main` sums
/// `selector(i & 7)` for `i in 0..iters` and stores the sum.
pub fn switch_program(iters: u64) -> Binary {
    let layout = Layout::default();
    let result = layout.data;
    let table = layout.rodata;
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_sel = a.label();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    // main: s0 = sum, s1 = i
    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -32);
    a.sd(RA, SP, 24);
    a.sd(S0, SP, 16);
    a.sd(S1, SP, 8);
    a.li(S0, 0);
    a.li(S1, 0);
    let l_loop = a.here_label();
    let l_done = a.label();
    a.li(T0, iters as i64);
    a.bge(S1, T0, l_done);
    a.inst(build::i_type(Op::Andi, A0, S1, 7));
    a.call(l_sel);
    a.add(S0, S0, A0);
    a.addi(S1, S1, 1);
    a.jump(l_loop);
    a.bind(l_done);
    a.li(T0, result as i64);
    a.sd(S0, T0, 0);
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 24);
    a.ld(S0, SP, 16);
    a.ld(S1, SP, 8);
    a.addi(SP, SP, 32);
    a.ret();
    let main_size = a.here() - main_addr;

    // selector(a0): the jump-table dispatch.
    a.bind(l_sel);
    let sel_addr = a.here();
    let l_default = a.label();
    a.li(T0, 4);
    a.bgeu(A0, T0, l_default); // bounds check — the table has 4 entries
    a.slli(T1, A0, 3);
    a.li(T2, table as i64);
    a.add(T2, T2, T1);
    a.ld(T2, T2, 0);
    a.jalr(Reg::X0, T2, 0); // indirect jump through the table
    let l_case = [a.label(), a.label(), a.label(), a.label()];
    for (i, l) in l_case.iter().enumerate() {
        a.bind(*l);
        a.li(A0, (i as i64 + 1) * 10);
        a.ret();
    }
    a.bind(l_default);
    a.li(A0, 0);
    a.ret();
    let sel_size = a.here() - sel_addr;

    // The jump table: absolute 8-byte code addresses.
    let mut rodata = Vec::with_capacity(32);
    for l in l_case {
        rodata.extend_from_slice(&a.label_addr(l).unwrap().to_le_bytes());
    }

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "selector".into(),
            addr: sel_addr,
            size: sel_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "jump_table".into(),
            addr: table,
            size: 32,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 8,
            kind: SymbolKind::Object,
        },
    ];
    finish_binary(a, layout, syms, rodata, vec![0; 8], 0, IsaProfile::rv64gc())
        .expect("switch program assembles")
}

/// The ROADMAP springboard-clobber scenario as a mutatee: a function
/// (`spin`) whose *entry block* is also an indirect-jump target, with the
/// entry made of compressed instructions so an entry springboard
/// straddles more than one of them.
///
/// `spin(a0=n, a1=0)` bumps the visit counter `a1`, decrements `n`, and —
/// while `n > 0` — re-enters its own entry through a bounds-checked
/// `.rodata` jump table (both entries point at `spin`), the §3.2.3
/// resolvable-dispatch idiom. `main` calls `spin(iters, 0)` and stores
/// the visit count (`== iters`) at `result`. Instrumenting `spin`'s entry
/// therefore requires a redirect for *every* clobbered entry-block
/// address, on pain of the table jump landing in torn bytes.
pub fn indirect_entry_program(iters: u64) -> Binary {
    assert!(iters >= 1, "spin must be entered at least once");
    let layout = Layout::default();
    let result = layout.data;
    let table = layout.rodata;
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_spin = a.label();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -16);
    a.sd(RA, SP, 8);
    a.li(A0, iters as i64);
    a.li(A1, 0);
    a.call(l_spin);
    a.li(T0, result as i64);
    a.sd(A1, T0, 0);
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 8);
    a.addi(SP, SP, 16);
    a.ret();
    let main_size = a.here() - main_addr;

    // spin: entry block is two compressed instructions plus the exit
    // branch; the jump-table dispatch below re-enters at l_spin.
    a.bind(l_spin);
    let spin_addr = a.here();
    let l_done = a.label();
    a.c_inst(build::addi(A1, A1, 1)); // visit counter (c.addi, 2 bytes)
    a.c_inst(build::addi(A0, A0, -1)); // remaining budget (c.addi, 2 bytes)
    a.bge(Reg::X0, A0, l_done); // n <= 0: fall out
    a.inst(build::i_type(Op::Andi, T0, A0, 1));
    a.li(T1, 2);
    a.bgeu(T0, T1, l_done); // bounds check — the table has 2 entries
    a.slli(T1, T0, 3);
    a.li(T2, table as i64);
    a.add(T2, T2, T1);
    a.ld(T2, T2, 0);
    a.jalr(Reg::X0, T2, 0); // indirect jump back to spin's entry
    a.bind(l_done);
    a.ret();
    let spin_size = a.here() - spin_addr;

    // Both table entries target spin's entry block.
    let mut rodata = Vec::with_capacity(16);
    rodata.extend_from_slice(&spin_addr.to_le_bytes());
    rodata.extend_from_slice(&spin_addr.to_le_bytes());

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "spin".into(),
            addr: spin_addr,
            size: spin_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "jump_table".into(),
            addr: table,
            size: 16,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 8,
            kind: SymbolKind::Object,
        },
    ];
    finish_binary(a, layout, syms, rodata, vec![0; 8], 0, IsaProfile::rv64gc())
        .expect("indirect-entry program assembles")
}

/// The §3.1.2 worst case as a reusable mutatee: `tiny` is a real 2-byte
/// function (a single `c.j` tail call to `bump`), so instrumenting it
/// forces the 2-byte trap springboard and exercises the trap-redirect
/// runtime. `main` calls `tiny(i)` for `i in 0..iters` and stores
/// `Σ (i + 3)` at `result`.
pub fn tiny_function_program(iters: u64) -> Binary {
    let layout = Layout::default();
    let result = layout.data;
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_tiny = a.label();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    // main: s0 = iters, s1 = i, s2 = sum
    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -32);
    a.sd(RA, SP, 24);
    a.sd(S0, SP, 16);
    a.sd(S1, SP, 8);
    a.li(S0, iters as i64);
    a.li(S1, 0);
    a.mv(Reg::x(18), Reg::X0);
    let head = a.here_label();
    let done = a.label();
    a.bge(S1, S0, done);
    a.mv(A0, S1);
    a.call(l_tiny);
    a.add(Reg::x(18), Reg::x(18), A0);
    a.addi(S1, S1, 1);
    a.jump(head);
    a.bind(done);
    a.li(T0, result as i64);
    a.sd(Reg::x(18), T0, 0);
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 24);
    a.ld(S0, SP, 16);
    a.ld(S1, SP, 8);
    a.addi(SP, SP, 32);
    a.ret();
    let main_size = a.here() - main_addr;

    // tiny: exactly one compressed jump (2 bytes) — a tail call to the
    // immediately following function.
    a.bind(l_tiny);
    let tiny_addr = a.here();
    a.c_inst(build::jal(Reg::X0, 2));
    let tiny_size = a.here() - tiny_addr;
    debug_assert_eq!(tiny_size, 2, "tiny must be a 2-byte function");

    let bump_addr = a.here();
    a.addi(A0, A0, 3);
    a.ret();
    let bump_size = a.here() - bump_addr;

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "tiny".into(),
            addr: tiny_addr,
            size: tiny_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "bump".into(),
            addr: bump_addr,
            size: bump_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 8,
            kind: SymbolKind::Object,
        },
    ];
    finish_binary(a, layout, syms, vec![], vec![0; 8], 0, IsaProfile::rv64gc())
        .expect("tiny-function program assembles")
}

/// A tail-call pair: `twice_plus1` tail-calls `double_it` with `jal x0`
/// (§3.2.3 tail-call classification target).
pub fn tailcall_program() -> Binary {
    let layout = Layout::default();
    let result = layout.data;
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_f = a.label();
    let l_g = a.label();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -16);
    a.sd(RA, SP, 8);
    a.li(A0, 5);
    a.call(l_f);
    a.li(T0, result as i64);
    a.sd(A0, T0, 0);
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 8);
    a.addi(SP, SP, 16);
    a.ret();
    let main_size = a.here() - main_addr;

    // twice_plus1(x) = double_it(x + 1)  [tail call]
    a.bind(l_f);
    let f_addr = a.here();
    a.addi(A0, A0, 1);
    a.tail(l_g); // jal x0, g — a call in jump's clothing
    let f_size = a.here() - f_addr;

    // double_it(x) = x * 2
    a.bind(l_g);
    let g_addr = a.here();
    a.slli(A0, A0, 1);
    a.ret();
    let g_size = a.here() - g_addr;

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "twice_plus1".into(),
            addr: f_addr,
            size: f_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "double_it".into(),
            addr: g_addr,
            size: g_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 8,
            kind: SymbolKind::Object,
        },
    ];
    finish_binary(
        a,
        layout,
        syms,
        Vec::new(),
        vec![0; 8],
        0,
        IsaProfile::rv64gc(),
    )
    .expect("tailcall program assembles")
}

/// Byte-wise memcpy of a `.rodata` string into `.bss`, returning a
/// checksum — exercises byte loads/stores and bounds loops.
pub fn memcpy_program() -> Binary {
    let layout = Layout::default();
    let msg = b"rvdyn: binary instrumentation on RISC-V\n";
    let src = layout.rodata;
    let dst = layout.bss;
    let result = layout.data;

    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_copy = a.label();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -16);
    a.sd(RA, SP, 8);
    a.li(A0, src as i64);
    a.li(A1, dst as i64);
    a.li(A2, msg.len() as i64);
    a.call(l_copy);
    a.li(T0, result as i64);
    a.sd(A0, T0, 0);
    // write(1, dst, len) — observable output.
    a.li(A0, 1);
    a.li(A1, dst as i64);
    a.li(A2, msg.len() as i64);
    a.li(A7, sysno::WRITE);
    a.ecall();
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 8);
    a.addi(SP, SP, 16);
    a.ret();
    let main_size = a.here() - main_addr;

    // copy(src, dst, len) -> checksum
    a.bind(l_copy);
    let copy_addr = a.here();
    a.li(T0, 0); // index
    a.li(T3, 0); // checksum
    let l_loop = a.here_label();
    let l_done = a.label();
    a.bge(T0, A2, l_done);
    a.add(T1, A0, T0);
    a.lbu(T2, T1, 0);
    a.add(T1, A1, T0);
    a.sb(T2, T1, 0);
    a.add(T3, T3, T2);
    a.addi(T0, T0, 1);
    a.jump(l_loop);
    a.bind(l_done);
    a.mv(A0, T3);
    a.ret();
    let copy_size = a.here() - copy_addr;

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "copy".into(),
            addr: copy_addr,
            size: copy_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "message".into(),
            addr: src,
            size: msg.len() as u64,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 8,
            kind: SymbolKind::Object,
        },
    ];
    finish_binary(
        a,
        layout,
        syms,
        msg.to_vec(),
        vec![0; 8],
        msg.len(),
        IsaProfile::rv64gc(),
    )
    .expect("memcpy program assembles")
}

/// `descend(depth)` recurses to zero then executes `ebreak` — the
/// StackwalkerAPI test target: attach at the trap and walk `depth + 2`
/// frames.
pub fn deep_call_program(depth: u64) -> Binary {
    let layout = Layout::default();
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_desc = a.label();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -16);
    a.sd(RA, SP, 8);
    a.li(A0, depth as i64);
    a.call(l_desc);
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 8);
    a.addi(SP, SP, 16);
    a.ret();
    let main_size = a.here() - main_addr;

    a.bind(l_desc);
    let desc_addr = a.here();
    a.addi(SP, SP, -16);
    a.sd(RA, SP, 8);
    let l_leaf = a.label();
    a.beq(A0, Reg::X0, l_leaf);
    a.addi(A0, A0, -1);
    a.call(l_desc);
    let l_out = a.label();
    a.jump(l_out);
    a.bind(l_leaf);
    a.ebreak(); // the debugger stop
    a.bind(l_out);
    a.ld(RA, SP, 8);
    a.addi(SP, SP, 16);
    a.ret();
    let desc_size = a.here() - desc_addr;

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "descend".into(),
            addr: desc_addr,
            size: desc_size,
            kind: SymbolKind::Function,
        },
    ];
    finish_binary(
        a,
        layout,
        syms,
        Vec::new(),
        Vec::new(),
        0,
        IsaProfile::rv64gc(),
    )
    .expect("deep call program assembles")
}

/// Atomic-operations mutatee: exercises the A extension end to end
/// (LR/SC retry loop, AMO arithmetic) plus a `rdinstret` CSR read
/// (Zicsr). Computes, entirely with atomics:
///
/// * `result`     = Σ i for i in 0..iters  (via `amoadd.d`)
/// * `result+8`   = iters                  (via an LR/SC increment loop)
/// * `result+16`  = max of the sequence 7, 14, 21, …  (via `amomax.d`)
pub fn atomics_program(iters: u64) -> Binary {
    let layout = Layout::default();
    let result = layout.data;
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    a.bind(l_main);
    let main_addr = a.here();
    a.li(T0, result as i64); // &sum
    a.li(T1, result as i64 + 8); // &count
    a.li(T2, result as i64 + 16); // &max
    a.li(S0, iters as i64);
    a.li(S1, 0); // i
    let l_loop = a.here_label();
    let l_done = a.label();
    a.bge(S1, S0, l_done);
    // sum += i  (amoadd.d x0, s1, (t0))
    a.inst(build::r_type(Op::AmoAddD, Reg::X0, T0, S1));
    // count += 1 via an LR/SC retry loop.
    let l_retry = a.here_label();
    {
        let mut lr = build::i_type(Op::LrD, T3, T1, 0);
        lr.rs1 = Some(T1);
        lr.imm = 0;
        a.inst(lr);
    }
    a.addi(T3, T3, 1);
    a.inst(build::r_type(Op::ScD, T4, T1, T3));
    a.bne(T4, Reg::X0, l_retry); // sc failed → retry
                                 // max = max(max, i*7) (amomax.d)
    a.li(T5, 7);
    a.mul(T5, T5, S1);
    a.inst(build::r_type(Op::AmoMaxD, Reg::X0, T2, T5));
    a.addi(S1, S1, 1);
    a.jump(l_loop);
    a.bind(l_done);
    // Read retired-instruction count (rdinstret) into result+24 —
    // exercises Zicsr decode/execute.
    {
        let mut csr = build::i_type(Op::Csrrs, T3, Reg::X0, 0);
        csr.csr = Some(0xC02);
        a.inst(csr);
    }
    a.li(T4, result as i64 + 24);
    a.sd(T3, T4, 0);
    a.mv(A0, Reg::X0);
    a.ret();
    let main_size = a.here() - main_addr;

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 32,
            kind: SymbolKind::Object,
        },
    ];
    finish_binary(
        a,
        layout,
        syms,
        Vec::new(),
        vec![0; 32],
        0,
        IsaProfile::rv64gc(),
    )
    .expect("atomics program assembles")
}

/// As [`switch_program`] but with a gcc-style *relative* jump table:
/// 4-byte sign-extended offsets from the selector's entry, dispatched via
/// `lw` + `add` + `jalr` — the second table idiom ParseAPI recognises.
pub fn switch_rel_program(iters: u64) -> Binary {
    let layout = Layout::default();
    let result = layout.data;
    let table = layout.rodata;
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_sel = a.label();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -32);
    a.sd(RA, SP, 24);
    a.sd(S0, SP, 16);
    a.sd(S1, SP, 8);
    a.li(S0, 0);
    a.li(S1, 0);
    let l_loop = a.here_label();
    let l_done = a.label();
    a.li(T0, iters as i64);
    a.bge(S1, T0, l_done);
    a.inst(build::i_type(Op::Andi, A0, S1, 7));
    a.call(l_sel);
    a.add(S0, S0, A0);
    a.addi(S1, S1, 1);
    a.jump(l_loop);
    a.bind(l_done);
    a.li(T0, result as i64);
    a.sd(S0, T0, 0);
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 24);
    a.ld(S0, SP, 16);
    a.ld(S1, SP, 8);
    a.addi(SP, SP, 32);
    a.ret();
    let main_size = a.here() - main_addr;

    // selector(a0): relative-table dispatch.
    a.bind(l_sel);
    let sel_addr = a.here();
    let l_default = a.label();
    a.li(T0, 4);
    a.bgeu(A0, T0, l_default);
    a.slli(T1, A0, 2); // 4-byte entries
    a.li(T2, table as i64);
    a.add(T2, T2, T1);
    a.lw(T3, T2, 0); // sign-extended offset
    a.li(T4, sel_addr as i64); // the offsets' base: selector entry
    a.add(T3, T4, T3);
    a.jalr(Reg::X0, T3, 0);
    let l_case = [a.label(), a.label(), a.label(), a.label()];
    for (i, l) in l_case.iter().enumerate() {
        a.bind(*l);
        a.li(A0, (i as i64 + 1) * 10);
        a.ret();
    }
    a.bind(l_default);
    a.li(A0, 0);
    a.ret();
    let sel_size = a.here() - sel_addr;

    // The relative table: i32 offsets from sel_addr.
    let mut rodata = Vec::with_capacity(16);
    for l in l_case {
        let off = a.label_addr(l).unwrap() as i64 - sel_addr as i64;
        rodata.extend_from_slice(&(off as i32).to_le_bytes());
    }

    let syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "selector".into(),
            addr: sel_addr,
            size: sel_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "jump_table".into(),
            addr: table,
            size: 16,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 8,
            kind: SymbolKind::Object,
        },
    ];
    finish_binary(a, layout, syms, rodata, vec![0; 8], 0, IsaProfile::rv64gc())
        .expect("relative switch program assembles")
}

/// The parallel-rewrite stress mutatee: `n` small call-connected
/// functions plus a jump-table selector.
///
/// `main` first exercises `selector` (a bounds-checked absolute jump
/// table, the §3.2.3 resolvable-dispatch idiom) with indices 0, 1 and an
/// out-of-range 5, then calls `f_0`; each `f_i` runs a 4-iteration
/// counted loop that bumps `a0` and tail of the body calls `f_{i+1}`, so
/// instrumenting the binary means planning `n + 3` functions — enough
/// work to keep a worker pool busy. The accumulated value
/// `30 + 4 * n` lands at `result`; `main` returns 0.
pub fn many_functions_program(n: usize) -> Binary {
    assert!(n >= 1, "need at least one chained function");
    // Each f_i assembles to ~44 bytes; past ~1000 functions the default
    // layout's .text span (0x8000 bytes before .rodata) would overflow
    // into the later sections, so scale the layout to the function count.
    // Small n keeps the default layout, bit-identical to before.
    let mut layout = Layout::default();
    let text_cap = 48 * n as u64 + 0x1000;
    if layout.text + text_cap > layout.rodata {
        let base = (layout.text + text_cap + 0xFFF) & !0xFFF;
        layout.rodata = base;
        layout.data = base + 0x8000;
        layout.bss = base + 0x1_8000;
    }
    let result = layout.data;
    let table = layout.rodata;
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_sel = a.label();
    let l_f: Vec<_> = (0..n).map(|_| a.label()).collect();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    // main: sum the selector cases into s0, then feed it down the chain.
    a.bind(l_main);
    let main_addr = a.here();
    a.addi(SP, SP, -32);
    a.sd(RA, SP, 24);
    a.sd(S0, SP, 16);
    a.li(S0, 0);
    for idx in [0i64, 1, 5] {
        a.li(A0, idx);
        a.call(l_sel);
        a.add(S0, S0, A0);
    }
    a.mv(A0, S0);
    a.call(l_f[0]);
    a.li(T0, result as i64);
    a.sd(A0, T0, 0);
    a.mv(A0, Reg::X0);
    a.ld(RA, SP, 24);
    a.ld(S0, SP, 16);
    a.addi(SP, SP, 32);
    a.ret();
    let main_size = a.here() - main_addr;

    // selector(a0): the jump-table dispatch (as in `switch_program`).
    a.bind(l_sel);
    let sel_addr = a.here();
    let l_default = a.label();
    a.li(T0, 4);
    a.bgeu(A0, T0, l_default);
    a.slli(T1, A0, 3);
    a.li(T2, table as i64);
    a.add(T2, T2, T1);
    a.ld(T2, T2, 0);
    a.jalr(Reg::X0, T2, 0);
    let l_case = [a.label(), a.label(), a.label(), a.label()];
    for (i, l) in l_case.iter().enumerate() {
        a.bind(*l);
        a.li(A0, (i as i64 + 1) * 10);
        a.ret();
    }
    a.bind(l_default);
    a.li(A0, 0);
    a.ret();
    let sel_size = a.here() - sel_addr;

    // f_i(a0): a counted loop bumping a0, then call f_{i+1}.
    let mut f_syms = Vec::with_capacity(n);
    for i in 0..n {
        a.bind(l_f[i]);
        let f_addr = a.here();
        a.addi(SP, SP, -16);
        a.sd(RA, SP, 8);
        a.li(T0, 0);
        a.li(T1, 4);
        let l_loop = a.here_label();
        let l_done = a.label();
        a.bge(T0, T1, l_done);
        a.addi(A0, A0, 1);
        a.addi(T0, T0, 1);
        a.jump(l_loop);
        a.bind(l_done);
        if i + 1 < n {
            a.call(l_f[i + 1]);
        }
        a.ld(RA, SP, 8);
        a.addi(SP, SP, 16);
        a.ret();
        f_syms.push(Sym {
            name: format!("f_{i}"),
            addr: f_addr,
            size: a.here() - f_addr,
            kind: SymbolKind::Function,
        });
    }

    // The jump table: absolute 8-byte code addresses.
    let mut rodata = Vec::with_capacity(32);
    for l in l_case {
        rodata.extend_from_slice(&a.label_addr(l).unwrap().to_le_bytes());
    }

    let mut syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "selector".into(),
            addr: sel_addr,
            size: sel_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "jump_table".into(),
            addr: table,
            size: 32,
            kind: SymbolKind::Object,
        },
        Sym {
            name: "result".into(),
            addr: result,
            size: 8,
            kind: SymbolKind::Object,
        },
    ];
    syms.extend(f_syms);
    finish_binary(a, layout, syms, rodata, vec![0; 8], 0, IsaProfile::rv64gc())
        .expect("many-functions program assembles")
}

/// Nested-call mutatee for stackwalker ground truth: a chain of
/// `frames.len()` functions `g_0 → g_1 → … → g_{n-1}`, called from
/// `main`, whose leaf executes `ebreak` with every frame live — the
/// walker must recover the exact chain `g_{n-1}, …, g_0, main, _start`.
///
/// * `frames[i]` varies `g_i`'s frame size: the frame is
///   `32 + (frames[i] % 101) * 16` bytes, so random inputs exercise the
///   stack-height analysis across 32..=1632-byte frames (within `addi`'s
///   ±2048 immediate).
/// * `frame_pointers` selects the prologue style. `false` builds
///   sp-only frames (the common RISC-V compiler output the paper
///   highlights — only the stackwalker's `SpHeightStepper` can walk
///   them); `true` maintains the gcc `s0` chain (`[fp-8]=ra,
///   [fp-16]=caller s0`), so `FpStepper` alone recovers the same
///   frames. `main` uses the same style; its saved `s0` is `_start`'s
///   0, terminating the fp chain.
///
/// Every function also stores and reloads its argument through a stack
/// slot, giving the memory tracer deterministic per-frame traffic.
pub fn nested_call_program(frames: &[u16], frame_pointers: bool) -> Binary {
    assert!(!frames.is_empty(), "need at least one nested function");
    let n = frames.len();
    // ~64 bytes per function; scale .text like many_functions_program.
    let mut layout = Layout::default();
    let text_cap = 80 * n as u64 + 0x1000;
    if layout.text + text_cap > layout.rodata {
        let base = (layout.text + text_cap + 0xFFF) & !0xFFF;
        layout.rodata = base;
        layout.data = base + 0x8000;
        layout.bss = base + 0x1_8000;
    }
    let mut a = Assembler::new(layout.text);
    let l_main = a.label();
    let l_g: Vec<_> = (0..n).map(|_| a.label()).collect();

    let start_addr = a.here();
    emit_start(&mut a, l_main);
    let start_size = a.here() - start_addr;

    // 32-byte minimum: the body spills through `sp+0`, which must not
    // alias the saved-s0 slot at `size-16` when frame pointers are on.
    let frame_size = |v: u16| 32 + (v as i64 % 101) * 16;
    let prologue = |a: &mut Assembler, size: i64| {
        a.addi(SP, SP, -size);
        a.sd(RA, SP, size - 8);
        if frame_pointers {
            a.sd(S0, SP, size - 16);
            a.addi(S0, SP, size);
        }
    };
    let epilogue = |a: &mut Assembler, size: i64| {
        a.ld(RA, SP, size - 8);
        if frame_pointers {
            a.ld(S0, SP, size - 16);
        }
        a.addi(SP, SP, size);
        a.ret();
    };

    a.bind(l_main);
    let main_addr = a.here();
    // main gets a fixed 32-byte frame in the selected style, so the fp
    // chain (when enabled) extends through main and ends at _start's
    // zero s0.
    prologue(&mut a, 32);
    a.li(A0, 0);
    a.call(l_g[0]);
    a.mv(A0, Reg::X0);
    epilogue(&mut a, 32);
    let main_size = a.here() - main_addr;

    let mut g_syms = Vec::with_capacity(n);
    for (i, v) in frames.iter().enumerate() {
        a.bind(l_g[i]);
        let g_addr = a.here();
        let size = frame_size(*v);
        prologue(&mut a, size);
        // Deterministic per-frame memory traffic: spill the depth
        // argument, reload it, pass depth+1 down the chain.
        a.sd(A0, SP, 0);
        a.ld(T0, SP, 0);
        if i + 1 < n {
            a.addi(A0, T0, 1);
            a.call(l_g[i + 1]);
        } else {
            a.ebreak(); // the debugger stop, with all n frames live
        }
        epilogue(&mut a, size);
        g_syms.push(Sym {
            name: format!("g_{i}"),
            addr: g_addr,
            size: a.here() - g_addr,
            kind: SymbolKind::Function,
        });
    }

    let mut syms = vec![
        Sym {
            name: "_start".into(),
            addr: start_addr,
            size: start_size,
            kind: SymbolKind::Function,
        },
        Sym {
            name: "main".into(),
            addr: main_addr,
            size: main_size,
            kind: SymbolKind::Function,
        },
    ];
    syms.extend(g_syms);
    finish_binary(
        a,
        layout,
        syms,
        Vec::new(),
        Vec::new(),
        0,
        IsaProfile::rv64gc(),
    )
    .expect("nested call program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_isa::decode::InstructionIter;

    fn decodes_cleanly(bin: &Binary) -> usize {
        let text = bin.section_by_name(".text").unwrap();
        let mut n = 0;
        for r in InstructionIter::new(&text.data, text.addr) {
            r.unwrap_or_else(|e| panic!("undecodable instruction in mutatee: {e}"));
            n += 1;
        }
        n
    }

    #[test]
    fn matmul_program_is_wellformed() {
        let bin = matmul_program(8, 1);
        assert!(decodes_cleanly(&bin) > 50);
        assert_eq!(bin.entry, 0x1_0000);
        assert!(bin.symbol_by_name("matmul").is_some());
        assert!(bin.symbol_by_name("main").is_some());
        // ELF round-trip.
        let bytes = bin.to_bytes().unwrap();
        let re = Binary::parse(&bytes).unwrap();
        assert_eq!(re.profile(), IsaProfile::rv64gc());
        assert_eq!(
            re.symbol_by_name("matmul").unwrap().value,
            bin.symbol_by_name("matmul").unwrap().value
        );
    }

    #[test]
    fn matmul_contains_compressed_instructions() {
        let bin = matmul_program(8, 1);
        let text = bin.section_by_name(".text").unwrap();
        let has_c = InstructionIter::new(&text.data, text.addr)
            .any(|r| r.map(|i| i.size == 2).unwrap_or(false));
        assert!(has_c, "mutatee should exercise the C extension");
    }

    #[test]
    fn all_programs_build_and_decode() {
        for bin in [
            matmul_program(4, 1),
            fib_program(5),
            switch_program(16),
            tailcall_program(),
            memcpy_program(),
            deep_call_program(10),
            many_functions_program(8),
        ] {
            assert!(decodes_cleanly(&bin) > 5);
            let bytes = bin.to_bytes().unwrap();
            Binary::parse(&bytes).unwrap();
        }
    }

    #[test]
    fn many_functions_has_one_symbol_per_chained_function() {
        let bin = many_functions_program(16);
        for i in 0..16 {
            let s = bin.symbol_by_name(&format!("f_{i}")).unwrap();
            assert!(s.size > 0, "f_{i} has an extent");
        }
        assert!(bin.symbol_by_name("selector").is_some());
    }

    #[test]
    fn switch_table_entries_point_into_selector() {
        let bin = switch_program(4);
        let table = bin.section_by_name(".rodata").unwrap();
        let sel = bin.symbol_by_name("selector").unwrap();
        for chunk in table.data.chunks(8) {
            let addr = u64::from_le_bytes(chunk.try_into().unwrap());
            assert!(
                addr >= sel.value && addr < sel.value + sel.size,
                "table entry {addr:#x} outside selector"
            );
        }
    }
}
