//! Raw ELF64 little-endian structures and RISC-V specific constants.
//!
//! Only the subset needed for executables and relocatable RISC-V objects is
//! modelled; everything is implemented directly over byte slices (no
//! external parsing crates — the file-format layer is part of the port).

use crate::error::SymtabError;

pub const ELF_MAGIC: [u8; 4] = [0x7F, b'E', b'L', b'F'];
pub const ELFCLASS64: u8 = 2;
pub const ELFDATA2LSB: u8 = 1;
pub const EV_CURRENT: u8 = 1;
pub const ET_EXEC: u16 = 2;
pub const ET_DYN: u16 = 3;
pub const EM_RISCV: u16 = 243;

// RISC-V e_flags (psABI).
pub const EF_RISCV_RVC: u32 = 0x0001;
pub const EF_RISCV_FLOAT_ABI_MASK: u32 = 0x0006;
pub const EF_RISCV_FLOAT_ABI_SOFT: u32 = 0x0000;
pub const EF_RISCV_FLOAT_ABI_SINGLE: u32 = 0x0002;
pub const EF_RISCV_FLOAT_ABI_DOUBLE: u32 = 0x0004;

// Section types.
pub const SHT_NULL: u32 = 0;
pub const SHT_PROGBITS: u32 = 1;
pub const SHT_SYMTAB: u32 = 2;
pub const SHT_STRTAB: u32 = 3;
pub const SHT_NOBITS: u32 = 8;
pub const SHT_RISCV_ATTRIBUTES: u32 = 0x7000_0003;

// Program header types / flags.
pub const PT_LOAD: u32 = 1;
pub const PF_X: u32 = 1;
pub const PF_W: u32 = 2;
pub const PF_R: u32 = 4;

// Symbol info.
pub const STB_LOCAL: u8 = 0;
pub const STB_GLOBAL: u8 = 1;
pub const STB_WEAK: u8 = 2;
pub const STT_NOTYPE: u8 = 0;
pub const STT_OBJECT: u8 = 1;
pub const STT_FUNC: u8 = 2;
pub const STT_SECTION: u8 = 3;
pub const SHN_UNDEF: u16 = 0;
pub const SHN_ABS: u16 = 0xFFF1;

pub const EHDR_SIZE: usize = 64;
pub const PHDR_SIZE: usize = 56;
pub const SHDR_SIZE: usize = 64;
pub const SYM_SIZE: usize = 24;

/// ELF64 file header.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ehdr {
    pub e_type: u16,
    pub e_machine: u16,
    pub e_entry: u64,
    pub e_phoff: u64,
    pub e_shoff: u64,
    pub e_flags: u32,
    pub e_phnum: u16,
    pub e_shnum: u16,
    pub e_shstrndx: u16,
}

/// Read a little-endian scalar at `off`.
pub(crate) fn r_u16(b: &[u8], off: usize) -> Result<u16, SymtabError> {
    b.get(off..off + 2)
        .map(|s| u16::from_le_bytes([s[0], s[1]]))
        .ok_or(SymtabError::Truncated { offset: off })
}

pub(crate) fn r_u32(b: &[u8], off: usize) -> Result<u32, SymtabError> {
    b.get(off..off + 4)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        .ok_or(SymtabError::Truncated { offset: off })
}

pub(crate) fn r_u64(b: &[u8], off: usize) -> Result<u64, SymtabError> {
    b.get(off..off + 8)
        .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
        .ok_or(SymtabError::Truncated { offset: off })
}

impl Ehdr {
    /// Parse and validate the file header: magic, 64-bit, little-endian,
    /// RISC-V machine.
    pub fn parse(b: &[u8]) -> Result<Ehdr, SymtabError> {
        if b.len() < EHDR_SIZE {
            return Err(SymtabError::Truncated { offset: 0 });
        }
        if b[0..4] != ELF_MAGIC {
            return Err(SymtabError::NotElf);
        }
        if b[4] != ELFCLASS64 {
            return Err(SymtabError::UnsupportedClass(b[4]));
        }
        if b[5] != ELFDATA2LSB {
            return Err(SymtabError::UnsupportedEndianness(b[5]));
        }
        let e_machine = r_u16(b, 18)?;
        if e_machine != EM_RISCV {
            return Err(SymtabError::WrongMachine(e_machine));
        }
        Ok(Ehdr {
            e_type: r_u16(b, 16)?,
            e_machine,
            e_entry: r_u64(b, 24)?,
            e_phoff: r_u64(b, 32)?,
            e_shoff: r_u64(b, 40)?,
            e_flags: r_u32(b, 48)?,
            e_phnum: r_u16(b, 56)?,
            e_shnum: r_u16(b, 60)?,
            e_shstrndx: r_u16(b, 62)?,
        })
    }

    /// Serialise to the 64-byte header.
    pub fn emit(&self) -> [u8; EHDR_SIZE] {
        let mut b = [0u8; EHDR_SIZE];
        b[0..4].copy_from_slice(&ELF_MAGIC);
        b[4] = ELFCLASS64;
        b[5] = ELFDATA2LSB;
        b[6] = EV_CURRENT;
        // EI_OSABI = SYSV (0), padding zeroed.
        b[16..18].copy_from_slice(&self.e_type.to_le_bytes());
        b[18..20].copy_from_slice(&self.e_machine.to_le_bytes());
        b[20..24].copy_from_slice(&1u32.to_le_bytes()); // e_version
        b[24..32].copy_from_slice(&self.e_entry.to_le_bytes());
        b[32..40].copy_from_slice(&self.e_phoff.to_le_bytes());
        b[40..48].copy_from_slice(&self.e_shoff.to_le_bytes());
        b[48..52].copy_from_slice(&self.e_flags.to_le_bytes());
        b[52..54].copy_from_slice(&(EHDR_SIZE as u16).to_le_bytes()); // e_ehsize
        b[54..56].copy_from_slice(&(PHDR_SIZE as u16).to_le_bytes());
        b[56..58].copy_from_slice(&self.e_phnum.to_le_bytes());
        b[58..60].copy_from_slice(&(SHDR_SIZE as u16).to_le_bytes());
        b[60..62].copy_from_slice(&self.e_shnum.to_le_bytes());
        b[62..64].copy_from_slice(&self.e_shstrndx.to_le_bytes());
        b
    }
}

/// ELF64 program header.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Phdr {
    pub p_type: u32,
    pub p_flags: u32,
    pub p_offset: u64,
    pub p_vaddr: u64,
    pub p_filesz: u64,
    pub p_memsz: u64,
    pub p_align: u64,
}

impl Phdr {
    pub fn parse(b: &[u8], off: usize) -> Result<Phdr, SymtabError> {
        Ok(Phdr {
            p_type: r_u32(b, off)?,
            p_flags: r_u32(b, off + 4)?,
            p_offset: r_u64(b, off + 8)?,
            p_vaddr: r_u64(b, off + 16)?,
            // p_paddr at +24 ignored
            p_filesz: r_u64(b, off + 32)?,
            p_memsz: r_u64(b, off + 40)?,
            p_align: r_u64(b, off + 48)?,
        })
    }

    pub fn emit(&self) -> [u8; PHDR_SIZE] {
        let mut b = [0u8; PHDR_SIZE];
        b[0..4].copy_from_slice(&self.p_type.to_le_bytes());
        b[4..8].copy_from_slice(&self.p_flags.to_le_bytes());
        b[8..16].copy_from_slice(&self.p_offset.to_le_bytes());
        b[16..24].copy_from_slice(&self.p_vaddr.to_le_bytes());
        b[24..32].copy_from_slice(&self.p_vaddr.to_le_bytes()); // p_paddr
        b[32..40].copy_from_slice(&self.p_filesz.to_le_bytes());
        b[40..48].copy_from_slice(&self.p_memsz.to_le_bytes());
        b[48..56].copy_from_slice(&self.p_align.to_le_bytes());
        b
    }
}

/// ELF64 section header.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Shdr {
    pub sh_name: u32,
    pub sh_type: u32,
    pub sh_flags: u64,
    pub sh_addr: u64,
    pub sh_offset: u64,
    pub sh_size: u64,
    pub sh_link: u32,
    pub sh_info: u32,
    pub sh_addralign: u64,
    pub sh_entsize: u64,
}

impl Shdr {
    pub fn parse(b: &[u8], off: usize) -> Result<Shdr, SymtabError> {
        Ok(Shdr {
            sh_name: r_u32(b, off)?,
            sh_type: r_u32(b, off + 4)?,
            sh_flags: r_u64(b, off + 8)?,
            sh_addr: r_u64(b, off + 16)?,
            sh_offset: r_u64(b, off + 24)?,
            sh_size: r_u64(b, off + 32)?,
            sh_link: r_u32(b, off + 40)?,
            sh_info: r_u32(b, off + 44)?,
            sh_addralign: r_u64(b, off + 48)?,
            sh_entsize: r_u64(b, off + 56)?,
        })
    }

    pub fn emit(&self) -> [u8; SHDR_SIZE] {
        let mut b = [0u8; SHDR_SIZE];
        b[0..4].copy_from_slice(&self.sh_name.to_le_bytes());
        b[4..8].copy_from_slice(&self.sh_type.to_le_bytes());
        b[8..16].copy_from_slice(&self.sh_flags.to_le_bytes());
        b[16..24].copy_from_slice(&self.sh_addr.to_le_bytes());
        b[24..32].copy_from_slice(&self.sh_offset.to_le_bytes());
        b[32..40].copy_from_slice(&self.sh_size.to_le_bytes());
        b[40..44].copy_from_slice(&self.sh_link.to_le_bytes());
        b[44..48].copy_from_slice(&self.sh_info.to_le_bytes());
        b[48..56].copy_from_slice(&self.sh_addralign.to_le_bytes());
        b[56..64].copy_from_slice(&self.sh_entsize.to_le_bytes());
        b
    }
}

/// ELF64 symbol table entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElfSym {
    pub st_name: u32,
    pub st_info: u8,
    pub st_other: u8,
    pub st_shndx: u16,
    pub st_value: u64,
    pub st_size: u64,
}

impl ElfSym {
    pub fn parse(b: &[u8], off: usize) -> Result<ElfSym, SymtabError> {
        if b.len() < off + SYM_SIZE {
            return Err(SymtabError::Truncated { offset: off });
        }
        Ok(ElfSym {
            st_name: r_u32(b, off)?,
            st_info: b[off + 4],
            st_other: b[off + 5],
            st_shndx: r_u16(b, off + 6)?,
            st_value: r_u64(b, off + 8)?,
            st_size: r_u64(b, off + 16)?,
        })
    }

    pub fn emit(&self) -> [u8; SYM_SIZE] {
        let mut b = [0u8; SYM_SIZE];
        b[0..4].copy_from_slice(&self.st_name.to_le_bytes());
        b[4] = self.st_info;
        b[5] = self.st_other;
        b[6..8].copy_from_slice(&self.st_shndx.to_le_bytes());
        b[8..16].copy_from_slice(&self.st_value.to_le_bytes());
        b[16..24].copy_from_slice(&self.st_size.to_le_bytes());
        b
    }

    pub fn binding(&self) -> u8 {
        self.st_info >> 4
    }

    pub fn sym_type(&self) -> u8 {
        self.st_info & 0xF
    }

    pub fn info(binding: u8, typ: u8) -> u8 {
        (binding << 4) | (typ & 0xF)
    }
}

/// Read a NUL-terminated string from a string table.
pub(crate) fn read_strz(tab: &[u8], off: usize) -> Result<String, SymtabError> {
    let rest = tab
        .get(off..)
        .ok_or(SymtabError::Truncated { offset: off })?;
    let end = rest
        .iter()
        .position(|&c| c == 0)
        .ok_or(SymtabError::Truncated { offset: off })?;
    Ok(String::from_utf8_lossy(&rest[..end]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ehdr_round_trip() {
        let h = Ehdr {
            e_type: ET_EXEC,
            e_machine: EM_RISCV,
            e_entry: 0x10000,
            e_phoff: 64,
            e_shoff: 4096,
            e_flags: EF_RISCV_RVC | EF_RISCV_FLOAT_ABI_DOUBLE,
            e_phnum: 2,
            e_shnum: 7,
            e_shstrndx: 6,
        };
        let bytes = h.emit();
        let p = Ehdr::parse(&bytes).unwrap();
        assert_eq!(p, h);
    }

    #[test]
    fn ehdr_rejects_non_riscv() {
        let mut h = Ehdr {
            e_machine: EM_RISCV,
            ..Default::default()
        };
        h.e_machine = 62; // x86-64
        let bytes = h.emit();
        assert!(matches!(
            Ehdr::parse(&bytes),
            Err(SymtabError::WrongMachine(62))
        ));
    }

    #[test]
    fn ehdr_rejects_garbage() {
        assert!(Ehdr::parse(b"not an elf file, sorry.......").is_err());
        let mut b = [0u8; 64];
        b[0..4].copy_from_slice(&ELF_MAGIC);
        b[4] = 1; // 32-bit
        assert!(matches!(
            Ehdr::parse(&b),
            Err(SymtabError::UnsupportedClass(1))
        ));
    }

    #[test]
    fn phdr_shdr_sym_round_trip() {
        let p = Phdr {
            p_type: PT_LOAD,
            p_flags: PF_R | PF_X,
            p_offset: 0x1000,
            p_vaddr: 0x10000,
            p_filesz: 0x400,
            p_memsz: 0x400,
            p_align: 0x1000,
        };
        let b = p.emit();
        assert_eq!(Phdr::parse(&b, 0).unwrap(), p);

        let s = Shdr {
            sh_name: 11,
            sh_type: SHT_PROGBITS,
            sh_flags: 6,
            sh_addr: 0x10000,
            sh_offset: 0x1000,
            sh_size: 0x400,
            sh_link: 0,
            sh_info: 0,
            sh_addralign: 4,
            sh_entsize: 0,
        };
        let b = s.emit();
        assert_eq!(Shdr::parse(&b, 0).unwrap(), s);

        let y = ElfSym {
            st_name: 1,
            st_info: ElfSym::info(STB_GLOBAL, STT_FUNC),
            st_other: 0,
            st_shndx: 1,
            st_value: 0x10080,
            st_size: 0x40,
        };
        let b = y.emit();
        let py = ElfSym::parse(&b, 0).unwrap();
        assert_eq!(py, y);
        assert_eq!(py.binding(), STB_GLOBAL);
        assert_eq!(py.sym_type(), STT_FUNC);
    }

    #[test]
    fn strz_reading() {
        let tab = b"\0main\0matmul\0";
        assert_eq!(read_strz(tab, 1).unwrap(), "main");
        assert_eq!(read_strz(tab, 6).unwrap(), "matmul");
        assert_eq!(read_strz(tab, 0).unwrap(), "");
        assert!(read_strz(tab, 100).is_err());
    }
}
