//! SymtabAPI error type.

use std::fmt;

/// Errors raised while parsing or emitting ELF binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymtabError {
    /// File does not start with the ELF magic.
    NotElf,
    /// Not a 64-bit ELF.
    UnsupportedClass(u8),
    /// Not little-endian.
    UnsupportedEndianness(u8),
    /// `e_machine` is not EM_RISCV.
    WrongMachine(u16),
    /// File ends before a structure that should be present.
    Truncated { offset: usize },
    /// A header references a range outside the file.
    BadReference {
        what: &'static str,
        offset: u64,
        size: u64,
    },
    /// `.riscv.attributes` is present but malformed.
    BadAttributes(String),
    /// The binary has no loadable code.
    NoCode,
}

impl fmt::Display for SymtabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymtabError::NotElf => write!(f, "not an ELF file"),
            SymtabError::UnsupportedClass(c) => {
                write!(f, "unsupported ELF class {c} (need ELFCLASS64)")
            }
            SymtabError::UnsupportedEndianness(e) => {
                write!(f, "unsupported ELF endianness {e} (need little-endian)")
            }
            SymtabError::WrongMachine(m) => {
                write!(f, "e_machine {m} is not RISC-V (243)")
            }
            SymtabError::Truncated { offset } => {
                write!(f, "file truncated at offset {offset:#x}")
            }
            SymtabError::BadReference { what, offset, size } => {
                write!(
                    f,
                    "{what} references out-of-file range {offset:#x}+{size:#x}"
                )
            }
            SymtabError::BadAttributes(msg) => {
                write!(f, "malformed .riscv.attributes: {msg}")
            }
            SymtabError::NoCode => write!(f, "binary contains no executable code"),
        }
    }
}

impl std::error::Error for SymtabError {}
