//! # rvdyn-symtab — binary file format layer (SymtabAPI)
//!
//! The rvdyn equivalent of Dyninst's *SymtabAPI* (§3.2.1): an abstract
//! representation of how a program is structured and stored in an ELF file,
//! implemented from scratch for little-endian ELF64/RISC-V.
//!
//! RISC-V specific behaviour reproduced from the paper:
//!
//! * **`e_flags`** — `EF_RISCV_RVC` (compressed instructions present) and
//!   the float-ABI bits are extracted and exposed via
//!   [`Binary::profile`]. These are present in every RISC-V ELF.
//! * **`.riscv.attributes`** — the vendor attribute section is parsed (and
//!   emitted by the writer); its `Tag_RISCV_arch` string is the primary
//!   source of the mutatee's extension set. When the section is missing,
//!   the profile falls back to the `e_flags` heuristic, exactly as §3.2.1
//!   describes.
//!
//! The writer half ([`Binary::to_bytes`]) is what makes *static binary
//! rewriting* possible: PatchAPI produces a modified [`Binary`] and this
//! crate serialises it back to a loadable executable.

pub mod attributes;
pub mod elf;
pub mod error;
pub mod model;
pub mod reader;
pub mod writer;

pub use attributes::RiscvAttributes;
pub use error::SymtabError;
pub use model::{
    Binary, Section, Segment, Symbol, SymbolBinding, SymbolKind, SHF_ALLOC, SHF_EXECINSTR,
    SHF_WRITE,
};
pub use writer::{WriteRegion, WriteStats};
