//! ELF writer: [`Binary`] → bytes.
//!
//! Produces a fully loadable ELF64/RISC-V executable: program headers are
//! synthesised from the allocatable sections, a `.symtab`/`.strtab` pair is
//! emitted from the symbol list, and `.riscv.attributes` is written from
//! the attribute model. The static-rewriting path (Figure 1, left) is
//! `Binary::parse → instrument → Binary::to_bytes`.

use crate::elf::{self, Ehdr, ElfSym, Phdr, Shdr};
use crate::error::SymtabError;
use crate::model::{Binary, SymbolBinding, SymbolKind};

fn align_up(v: usize, a: usize) -> usize {
    debug_assert!(a.is_power_of_two());
    (v + a - 1) & !(a - 1)
}

/// A string table under construction.
#[derive(Default)]
struct StrTab {
    data: Vec<u8>,
}

impl StrTab {
    fn new() -> StrTab {
        StrTab { data: vec![0] } // index 0 = empty string
    }

    fn add(&mut self, s: &str) -> u32 {
        if s.is_empty() {
            return 0;
        }
        let off = self.data.len() as u32;
        self.data.extend_from_slice(s.as_bytes());
        self.data.push(0);
        off
    }
}

/// One contiguous allocatable span serialised into the output image —
/// the static path's equivalent of a coalesced dynamic patch region
/// (identical coalescing rule: adjacent same-permission sections merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRegion {
    /// Load address of the span.
    pub vaddr: u64,
    /// Bytes of file data emitted for the span.
    pub file_size: u64,
    /// In-memory size (≥ `file_size` when the span ends in NOBITS).
    pub mem_size: u64,
}

/// Serialisation statistics for one [`Binary::to_bytes_with_stats`] pass:
/// the per-region structure of the written image, mirroring the dynamic
/// commit's region counters so the static `rewrite` path can report
/// `patch_regions_written` too.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Contiguous allocatable spans, in address order (one per PT_LOAD).
    pub regions: Vec<WriteRegion>,
}

impl WriteStats {
    /// Number of contiguous spans serialised.
    pub fn regions_written(&self) -> usize {
        self.regions.len()
    }
}

impl Binary {
    /// Serialise this binary to a loadable ELF image.
    ///
    /// Layout: ehdr | phdrs | section data (aligned) | shdrs. Allocatable
    /// sections keep `file offset ≡ vaddr (mod 4096)` so PT_LOAD mapping is
    /// straightforward for any loader.
    pub fn to_bytes(&self) -> Result<Vec<u8>, SymtabError> {
        self.to_bytes_with_stats().map(|(bytes, _)| bytes)
    }

    /// As [`Binary::to_bytes`], also reporting the per-region structure
    /// of the written image ([`WriteStats`]): one [`WriteRegion`] per
    /// contiguous allocatable span (= PT_LOAD segment). This is what the
    /// static delivery path counts as `patch_regions_written`.
    pub fn to_bytes_with_stats(&self) -> Result<(Vec<u8>, WriteStats), SymtabError> {
        // Assemble the synthetic sections first.
        let mut strtab = StrTab::new();
        let mut syms: Vec<ElfSym> = vec![ElfSym::default()]; // null symbol
        let mut locals = 1u32;
        // ELF requires local symbols before globals.
        let mut ordered: Vec<&crate::model::Symbol> = self.symbols.iter().collect();
        ordered.sort_by_key(|s| matches!(s.binding, SymbolBinding::Global | SymbolBinding::Weak));
        for s in ordered {
            let typ = match s.kind {
                SymbolKind::Function => elf::STT_FUNC,
                SymbolKind::Object => elf::STT_OBJECT,
                SymbolKind::Section => elf::STT_SECTION,
                SymbolKind::NoType => elf::STT_NOTYPE,
            };
            let bind = match s.binding {
                SymbolBinding::Local => elf::STB_LOCAL,
                SymbolBinding::Global => elf::STB_GLOBAL,
                SymbolBinding::Weak => elf::STB_WEAK,
            };
            if bind == elf::STB_LOCAL {
                locals += 1;
            }
            // Find the section containing the symbol for st_shndx
            // (1-based over our section list, +0 for the null header).
            let shndx = self
                .sections
                .iter()
                .position(|sec| {
                    sec.contains(s.value) || (sec.addr == s.value && !sec.data.is_empty())
                })
                .map(|i| (i + 1) as u16)
                .unwrap_or(elf::SHN_ABS);
            syms.push(ElfSym {
                st_name: strtab.add(&s.name),
                st_info: ElfSym::info(bind, typ),
                st_other: 0,
                st_shndx: shndx,
                st_value: s.value,
                st_size: s.size,
            });
        }
        let symdata: Vec<u8> = syms.iter().flat_map(|s| s.emit()).collect();

        let attr_data = self.attributes.as_ref().map(|a| a.emit());

        // Full section list: user sections + .symtab/.strtab
        // (+ .riscv.attributes if not already a user section) + .shstrtab.
        struct OutSec {
            name: String,
            sh_type: u32,
            flags: u64,
            addr: u64,
            data: Vec<u8>,
            /// In-memory size; differs from data.len() for SHT_NOBITS
            /// (.bss occupies memory but no file bytes).
            mem_size: u64,
            addralign: u64,
            link: u32,
            info: u32,
            entsize: u64,
        }
        let mut out: Vec<OutSec> = Vec::new();
        let mut has_attr_section = false;
        for s in &self.sections {
            if s.name == ".riscv.attributes" {
                has_attr_section = true;
                // Re-emit from the parsed model if we have one (it may have
                // been updated), else pass the raw data through.
                let data = attr_data.clone().unwrap_or_else(|| s.data.clone());
                let mem_size = data.len() as u64;
                out.push(OutSec {
                    name: s.name.clone(),
                    sh_type: elf::SHT_RISCV_ATTRIBUTES,
                    flags: 0,
                    addr: 0,
                    data,
                    mem_size,
                    addralign: 1,
                    link: 0,
                    info: 0,
                    entsize: 0,
                });
                continue;
            }
            if s.name == ".symtab" || s.name == ".strtab" || s.name == ".shstrtab" {
                continue; // regenerated below
            }
            out.push(OutSec {
                name: s.name.clone(),
                sh_type: s.sh_type,
                flags: s.flags,
                addr: s.addr,
                data: if s.sh_type == elf::SHT_NOBITS {
                    Vec::new()
                } else {
                    s.data.clone()
                },
                mem_size: s.data.len() as u64,
                addralign: s.addralign.max(1),
                link: 0,
                info: 0,
                entsize: 0,
            });
        }
        if !has_attr_section {
            if let Some(data) = attr_data {
                let mem_size = data.len() as u64;
                out.push(OutSec {
                    name: ".riscv.attributes".into(),
                    sh_type: elf::SHT_RISCV_ATTRIBUTES,
                    flags: 0,
                    addr: 0,
                    data,
                    mem_size,
                    addralign: 1,
                    link: 0,
                    info: 0,
                    entsize: 0,
                });
            }
        }
        let strtab_index = out.len() + 2; // after .symtab
        let symdata_len = symdata.len() as u64;
        out.push(OutSec {
            name: ".symtab".into(),
            sh_type: elf::SHT_SYMTAB,
            flags: 0,
            addr: 0,
            data: symdata,
            mem_size: symdata_len,
            addralign: 8,
            link: strtab_index as u32,
            info: locals,
            entsize: elf::SYM_SIZE as u64,
        });
        let strtab_len = strtab.data.len() as u64;
        out.push(OutSec {
            name: ".strtab".into(),
            sh_type: elf::SHT_STRTAB,
            flags: 0,
            addr: 0,
            data: strtab.data,
            mem_size: strtab_len,
            addralign: 1,
            link: 0,
            info: 0,
            entsize: 0,
        });
        // .shstrtab built after names are final.
        let mut shstr = StrTab::new();
        let mut name_offs: Vec<u32> = out.iter().map(|s| shstr.add(&s.name)).collect();
        name_offs.push(shstr.add(".shstrtab"));
        let shstr_len = shstr.data.len() as u64;
        out.push(OutSec {
            name: ".shstrtab".into(),
            sh_type: elf::SHT_STRTAB,
            flags: 0,
            addr: 0,
            data: shstr.data,
            mem_size: shstr_len,
            addralign: 1,
            link: 0,
            info: 0,
            entsize: 0,
        });

        // Program headers from allocatable sections; each segment is one
        // contiguous written region, reported back to the caller.
        let segments = self.load_segments();
        let phnum = segments.len();
        let stats = WriteStats {
            regions: segments
                .iter()
                .map(|seg| WriteRegion {
                    vaddr: seg.vaddr,
                    file_size: seg.data.len() as u64,
                    mem_size: seg.memsz,
                })
                .collect(),
        };

        // Layout pass.
        let mut pos = elf::EHDR_SIZE + phnum * elf::PHDR_SIZE;
        let mut offsets = Vec::with_capacity(out.len());
        for s in &out {
            let align = if s.flags & crate::model::SHF_ALLOC != 0 {
                // Keep offset congruent to vaddr mod page size.
                pos = align_up(pos, 4096);
                let want = (s.addr % 4096) as usize;
                if pos % 4096 != want {
                    pos += want;
                }
                pos
            } else {
                pos = align_up(pos, s.addralign as usize);
                pos
            };
            offsets.push(align);
            pos = align + s.data.len();
        }
        let shoff = align_up(pos, 8);

        // Emit.
        let total = shoff + (out.len() + 1) * elf::SHDR_SIZE;
        let mut bytes = vec![0u8; total];

        let ehdr = Ehdr {
            e_type: if self.e_type == 0 {
                elf::ET_EXEC
            } else {
                self.e_type
            },
            e_machine: elf::EM_RISCV,
            e_entry: self.entry,
            e_phoff: if phnum > 0 { elf::EHDR_SIZE as u64 } else { 0 },
            e_shoff: shoff as u64,
            e_flags: self.e_flags,
            e_phnum: phnum as u16,
            e_shnum: (out.len() + 1) as u16,
            e_shstrndx: out.len() as u16, // .shstrtab is last
        };
        bytes[..elf::EHDR_SIZE].copy_from_slice(&ehdr.emit());

        // Program headers: locate each segment's file span via the section
        // that starts it.
        for (i, seg) in segments.iter().enumerate() {
            // Find the allocatable output section at this vaddr.
            let file_off = out
                .iter()
                .zip(&offsets)
                .filter(|(s, _)| s.flags & crate::model::SHF_ALLOC != 0)
                .find(|(s, _)| s.addr == seg.vaddr)
                .map(|(_, off)| *off as u64)
                .unwrap_or(0);
            let ph = Phdr {
                p_type: elf::PT_LOAD,
                p_flags: seg.flags,
                p_offset: file_off,
                p_vaddr: seg.vaddr,
                p_filesz: seg.data.len() as u64,
                p_memsz: seg.memsz,
                p_align: 4096,
            };
            let off = elf::EHDR_SIZE + i * elf::PHDR_SIZE;
            bytes[off..off + elf::PHDR_SIZE].copy_from_slice(&ph.emit());
        }

        // Section data.
        for (s, &off) in out.iter().zip(&offsets) {
            bytes[off..off + s.data.len()].copy_from_slice(&s.data);
        }

        // Section headers (null first).
        let mut hoff = shoff;
        bytes[hoff..hoff + elf::SHDR_SIZE].copy_from_slice(&Shdr::default().emit());
        hoff += elf::SHDR_SIZE;
        for (i, (s, &off)) in out.iter().zip(&offsets).enumerate() {
            let sh = Shdr {
                sh_name: name_offs[i],
                sh_type: s.sh_type,
                sh_flags: s.flags,
                sh_addr: s.addr,
                sh_offset: off as u64,
                sh_size: s.mem_size,
                sh_link: s.link,
                sh_info: s.info,
                sh_addralign: s.addralign,
                sh_entsize: s.entsize,
            };
            bytes[hoff..hoff + elf::SHDR_SIZE].copy_from_slice(&sh.emit());
            hoff += elf::SHDR_SIZE;
        }

        Ok((bytes, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::RiscvAttributes;
    use crate::model::{Section, Symbol, SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE};
    use rvdyn_isa::IsaProfile;

    fn sample() -> Binary {
        Binary {
            entry: 0x10000,
            e_flags: Binary::eflags_for(IsaProfile::rv64gc()),
            e_type: elf::ET_EXEC,
            sections: vec![
                Section::progbits(
                    ".text",
                    0x10000,
                    SHF_ALLOC | SHF_EXECINSTR,
                    0x0000_0073u32.to_le_bytes().to_vec(), // ecall
                ),
                Section::progbits(".data", 0x20000, SHF_ALLOC | SHF_WRITE, vec![42; 8]),
            ],
            symbols: vec![
                Symbol {
                    name: "_start".into(),
                    value: 0x10000,
                    size: 4,
                    kind: SymbolKind::Function,
                    binding: SymbolBinding::Global,
                },
                Symbol {
                    name: "local_helper".into(),
                    value: 0x10000,
                    size: 0,
                    kind: SymbolKind::NoType,
                    binding: SymbolBinding::Local,
                },
            ],
            attributes: Some(RiscvAttributes::for_profile(IsaProfile::rv64gc())),
        }
    }

    #[test]
    fn write_parse_round_trip() {
        let b = sample();
        let bytes = b.to_bytes().unwrap();
        let r = Binary::parse(&bytes).unwrap();
        assert_eq!(r.entry, b.entry);
        assert_eq!(r.e_flags, b.e_flags);
        assert_eq!(r.profile(), IsaProfile::rv64gc());
        let text = r.section_by_name(".text").unwrap();
        assert_eq!(text.addr, 0x10000);
        assert_eq!(text.data, b.sections[0].data);
        assert!(text.is_code());
        let s = r.symbol_by_name("_start").unwrap();
        assert_eq!(s.value, 0x10000);
        assert_eq!(s.kind, SymbolKind::Function);
        assert_eq!(
            r.symbol_by_name("local_helper").unwrap().binding,
            SymbolBinding::Local
        );
    }

    #[test]
    fn segments_loadable_and_page_congruent() {
        let bytes = sample().to_bytes().unwrap();
        let ehdr = Ehdr::parse(&bytes).unwrap();
        assert_eq!(ehdr.e_phnum, 2);
        for i in 0..ehdr.e_phnum as usize {
            let ph = Phdr::parse(&bytes, ehdr.e_phoff as usize + i * elf::PHDR_SIZE).unwrap();
            assert_eq!(ph.p_type, elf::PT_LOAD);
            assert_eq!(
                ph.p_offset % 4096,
                ph.p_vaddr % 4096,
                "segment {i} not page-congruent"
            );
            // File data must be in range.
            let end = ph.p_offset + ph.p_filesz;
            assert!(end as usize <= bytes.len());
        }
    }

    #[test]
    fn write_stats_report_one_region_per_segment() {
        let b = sample();
        let (bytes, stats) = b.to_bytes_with_stats().unwrap();
        let ehdr = Ehdr::parse(&bytes).unwrap();
        // sample() has .text and .data a page apart → two regions, in
        // address order, matching the PT_LOAD headers exactly.
        assert_eq!(stats.regions_written(), ehdr.e_phnum as usize);
        assert_eq!(stats.regions.len(), 2);
        assert_eq!(stats.regions[0].vaddr, 0x10000);
        assert_eq!(stats.regions[0].file_size, 4);
        assert_eq!(stats.regions[1].vaddr, 0x20000);
        assert_eq!(stats.regions[1].file_size, 8);
        assert!(stats.regions.iter().all(|r| r.mem_size >= r.file_size));
        // And the plain to_bytes path produces identical bytes.
        assert_eq!(bytes, b.to_bytes().unwrap());
    }

    #[test]
    fn attributes_survive_round_trip() {
        let mut b = sample();
        b.attributes.as_mut().unwrap().arch = Some("rv64imac_zicsr".into());
        let r = Binary::parse(&b.to_bytes().unwrap()).unwrap();
        assert_eq!(
            r.attributes.unwrap().arch.as_deref(),
            Some("rv64imac_zicsr")
        );
    }

    #[test]
    fn stripped_binary_round_trips() {
        let mut b = sample();
        b.strip();
        let r = Binary::parse(&b.to_bytes().unwrap()).unwrap();
        assert!(r.functions().is_empty());
        assert_eq!(r.entry, 0x10000);
    }
}
