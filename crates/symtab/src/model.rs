//! The abstract binary model exposed by SymtabAPI.

use crate::attributes::RiscvAttributes;
use crate::elf;
use rvdyn_isa::{Extension, ExtensionSet, IsaProfile, Xlen};

pub const SHF_WRITE: u64 = 0x1;
pub const SHF_ALLOC: u64 = 0x2;
pub const SHF_EXECINSTR: u64 = 0x4;

/// A named section with its data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    pub name: String,
    pub sh_type: u32,
    pub flags: u64,
    pub addr: u64,
    pub data: Vec<u8>,
    pub addralign: u64,
}

impl Section {
    /// Convenience constructor for an allocatable PROGBITS section.
    pub fn progbits(name: &str, addr: u64, flags: u64, data: Vec<u8>) -> Section {
        Section {
            name: name.to_string(),
            sh_type: elf::SHT_PROGBITS,
            flags,
            addr,
            data,
            addralign: if flags & SHF_EXECINSTR != 0 { 4 } else { 8 },
        }
    }

    pub fn is_code(&self) -> bool {
        self.sh_type == elf::SHT_PROGBITS
            && self.flags & SHF_ALLOC != 0
            && self.flags & SHF_EXECINSTR != 0
    }

    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.addr + self.data.len() as u64
    }
}

/// Symbol kind (subset of STT_*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    Function,
    Object,
    Section,
    NoType,
}

/// Symbol binding (subset of STB_*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolBinding {
    Local,
    Global,
    Weak,
}

/// A symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    pub name: String,
    pub value: u64,
    pub size: u64,
    pub kind: SymbolKind,
    pub binding: SymbolBinding,
}

/// A loadable segment (PT_LOAD view of the binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    pub vaddr: u64,
    pub data: Vec<u8>,
    /// Total in-memory size (≥ data.len(); the excess is zero-filled .bss).
    pub memsz: u64,
    pub flags: u32,
}

/// The parsed binary: SymtabAPI's top-level object.
#[derive(Debug, Clone, Default)]
pub struct Binary {
    pub entry: u64,
    pub e_flags: u32,
    pub e_type: u16,
    pub sections: Vec<Section>,
    pub symbols: Vec<Symbol>,
    /// `.riscv.attributes`, if present.
    pub attributes: Option<RiscvAttributes>,
}

impl Binary {
    /// The ISA profile of this binary (§3.2.1): prefer the
    /// `.riscv.attributes` arch string; fall back to the `e_flags`
    /// heuristic when the section is absent.
    pub fn profile(&self) -> IsaProfile {
        if let Some(p) = self.attributes.as_ref().and_then(|a| a.profile()) {
            return p;
        }
        self.profile_from_eflags()
    }

    /// Extension information derived from `e_flags` alone. `e_flags` only
    /// encodes the presence of compressed instructions and the float ABI,
    /// so the base I/M/A/Zicsr/Zifencei set is assumed — the same
    /// conservative fallback the paper describes for attribute-less
    /// binaries.
    pub fn profile_from_eflags(&self) -> IsaProfile {
        let mut exts = ExtensionSet::of(&[
            Extension::I,
            Extension::M,
            Extension::A,
            Extension::Zicsr,
            Extension::Zifencei,
        ]);
        let fabi = self.e_flags & elf::EF_RISCV_FLOAT_ABI_MASK;
        if fabi == elf::EF_RISCV_FLOAT_ABI_SINGLE || fabi == elf::EF_RISCV_FLOAT_ABI_DOUBLE {
            exts.insert(Extension::F);
        }
        if fabi == elf::EF_RISCV_FLOAT_ABI_DOUBLE {
            exts.insert(Extension::D);
        }
        if self.e_flags & elf::EF_RISCV_RVC != 0 {
            exts.insert(Extension::C);
        }
        IsaProfile {
            xlen: Xlen::Rv64,
            extensions: exts,
        }
    }

    /// Compute the canonical `e_flags` for a profile.
    pub fn eflags_for(profile: IsaProfile) -> u32 {
        let mut f = 0;
        if profile.has(Extension::C) {
            f |= elf::EF_RISCV_RVC;
        }
        if profile.has(Extension::D) {
            f |= elf::EF_RISCV_FLOAT_ABI_DOUBLE;
        } else if profile.has(Extension::F) {
            f |= elf::EF_RISCV_FLOAT_ABI_SINGLE;
        }
        f
    }

    pub fn section_by_name(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    pub fn section_by_name_mut(&mut self, name: &str) -> Option<&mut Section> {
        self.sections.iter_mut().find(|s| s.name == name)
    }

    /// All executable sections (code regions for ParseAPI).
    pub fn code_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections.iter().filter(|s| s.is_code())
    }

    /// Is `addr` inside any executable section? ParseAPI's jalr
    /// classification uses this "valid code region" test (§3.2.3).
    pub fn is_code_address(&self, addr: u64) -> bool {
        self.code_sections().any(|s| s.contains(addr))
    }

    /// Read `len` bytes at virtual address `addr` from section data.
    pub fn read_at(&self, addr: u64, len: usize) -> Option<&[u8]> {
        for s in &self.sections {
            if s.flags & SHF_ALLOC != 0 && s.contains(addr) {
                let off = (addr - s.addr) as usize;
                return s.data.get(off..off + len);
            }
        }
        None
    }

    /// Function symbols, sorted by address.
    pub fn functions(&self) -> Vec<&Symbol> {
        let mut v: Vec<&Symbol> = self
            .symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Function)
            .collect();
        v.sort_by_key(|s| s.value);
        v
    }

    /// The function symbol covering `addr`, if any.
    pub fn function_at(&self, addr: u64) -> Option<&Symbol> {
        self.symbols.iter().find(|s| {
            s.kind == SymbolKind::Function
                && addr >= s.value
                && (s.size == 0 && addr == s.value || addr < s.value + s.size)
        })
    }

    /// The symbol whose name matches exactly.
    pub fn symbol_by_name(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Drop all symbols (produce a stripped binary — used to exercise
    /// ParseAPI's symbol-less traversal + gap parsing).
    pub fn strip(&mut self) {
        self.symbols.clear();
    }

    /// Loadable segments, synthesised from allocatable sections. Adjacent
    /// sections with compatible permissions coalesce into one segment.
    pub fn load_segments(&self) -> Vec<Segment> {
        let mut alloc: Vec<&Section> = self
            .sections
            .iter()
            .filter(|s| s.flags & SHF_ALLOC != 0)
            .collect();
        alloc.sort_by_key(|s| s.addr);
        let mut segs: Vec<Segment> = Vec::new();
        for s in alloc {
            let flags = elf::PF_R
                | if s.flags & SHF_WRITE != 0 {
                    elf::PF_W
                } else {
                    0
                }
                | if s.flags & SHF_EXECINSTR != 0 {
                    elf::PF_X
                } else {
                    0
                };
            let (data, filesz) = if s.sh_type == elf::SHT_NOBITS {
                (Vec::new(), 0u64)
            } else {
                (s.data.clone(), s.data.len() as u64)
            };
            // NOBITS sections occupy memory but no file bytes; either way
            // the in-memory size is the model's data length.
            let memsz = s.data.len() as u64;
            if let Some(last) = segs.last_mut() {
                let end = last.vaddr + last.memsz;
                if last.flags == flags && s.addr >= end && s.addr - end < 0x1000 {
                    // Coalesce with zero padding.
                    let pad = (s.addr - last.vaddr) as usize - last.data.len();
                    last.data.extend(std::iter::repeat_n(0, pad));
                    last.data.extend_from_slice(&data);
                    last.memsz = (s.addr - last.vaddr) + memsz.max(filesz);
                    continue;
                }
            }
            segs.push(Segment {
                vaddr: s.addr,
                data,
                memsz: memsz.max(filesz),
                flags,
            });
        }
        segs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_binary() -> Binary {
        Binary {
            entry: 0x10000,
            e_flags: elf::EF_RISCV_RVC | elf::EF_RISCV_FLOAT_ABI_DOUBLE,
            e_type: elf::ET_EXEC,
            sections: vec![
                Section::progbits(".text", 0x10000, SHF_ALLOC | SHF_EXECINSTR, vec![0x13; 64]),
                Section::progbits(".rodata", 0x11000, SHF_ALLOC, vec![1, 2, 3, 4]),
                Section::progbits(".data", 0x12000, SHF_ALLOC | SHF_WRITE, vec![9; 16]),
            ],
            symbols: vec![
                Symbol {
                    name: "main".into(),
                    value: 0x10000,
                    size: 32,
                    kind: SymbolKind::Function,
                    binding: SymbolBinding::Global,
                },
                Symbol {
                    name: "helper".into(),
                    value: 0x10020,
                    size: 32,
                    kind: SymbolKind::Function,
                    binding: SymbolBinding::Local,
                },
            ],
            attributes: None,
        }
    }

    #[test]
    fn eflags_profile_fallback() {
        let b = mk_binary();
        let p = b.profile();
        assert!(p.has(Extension::C));
        assert!(p.has(Extension::F));
        assert!(p.has(Extension::D));
        assert!(p.has(Extension::M));
    }

    #[test]
    fn attributes_take_precedence() {
        let mut b = mk_binary();
        b.attributes = Some(RiscvAttributes {
            arch: Some("rv64imac".into()), // no F/D despite e_flags
            ..Default::default()
        });
        let p = b.profile();
        assert!(!p.has(Extension::F));
        assert!(p.has(Extension::C));
    }

    #[test]
    fn eflags_round_trip_from_profile() {
        let f = Binary::eflags_for(IsaProfile::rv64gc());
        assert_eq!(f, elf::EF_RISCV_RVC | elf::EF_RISCV_FLOAT_ABI_DOUBLE);
        let f = Binary::eflags_for(IsaProfile::rv64g());
        assert_eq!(f, elf::EF_RISCV_FLOAT_ABI_DOUBLE);
    }

    #[test]
    fn code_address_queries() {
        let b = mk_binary();
        assert!(b.is_code_address(0x10000));
        assert!(b.is_code_address(0x1003F));
        assert!(!b.is_code_address(0x10040));
        assert!(!b.is_code_address(0x11000)); // rodata is not code
    }

    #[test]
    fn function_lookup() {
        let b = mk_binary();
        assert_eq!(b.function_at(0x10005).unwrap().name, "main");
        assert_eq!(b.function_at(0x10020).unwrap().name, "helper");
        assert!(b.function_at(0x10080).is_none());
        let fns = b.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "main");
    }

    #[test]
    fn read_at_spans_sections() {
        let b = mk_binary();
        assert_eq!(b.read_at(0x11001, 2), Some(&[2u8, 3][..]));
        assert!(b.read_at(0x11003, 4).is_none()); // crosses end
    }

    #[test]
    fn load_segments_coalesce_by_permission() {
        let b = mk_binary();
        let segs = b.load_segments();
        // text (RX), rodata (R), data (RW) → three segments.
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].flags, elf::PF_R | elf::PF_X);
        assert_eq!(segs[1].flags, elf::PF_R);
        assert_eq!(segs[2].flags, elf::PF_R | elf::PF_W);
    }

    #[test]
    fn strip_removes_symbols() {
        let mut b = mk_binary();
        b.strip();
        assert!(b.functions().is_empty());
    }
}
