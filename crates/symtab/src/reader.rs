//! ELF reader: bytes → [`Binary`].

use crate::attributes::RiscvAttributes;
use crate::elf::{self, Ehdr, ElfSym, Shdr};
use crate::error::SymtabError;
use crate::model::{Binary, Section, Symbol, SymbolBinding, SymbolKind};

impl Binary {
    /// Parse an ELF64/RISC-V image.
    pub fn parse(bytes: &[u8]) -> Result<Binary, SymtabError> {
        let ehdr = Ehdr::parse(bytes)?;

        // Section headers.
        let mut shdrs = Vec::with_capacity(ehdr.e_shnum as usize);
        for i in 0..ehdr.e_shnum as usize {
            let off = ehdr.e_shoff as usize + i * elf::SHDR_SIZE;
            if off + elf::SHDR_SIZE > bytes.len() {
                return Err(SymtabError::Truncated { offset: off });
            }
            shdrs.push(Shdr::parse(bytes, off)?);
        }

        // Section name string table.
        let shstr: &[u8] = match shdrs.get(ehdr.e_shstrndx as usize) {
            Some(h) => section_bytes(bytes, h)?,
            None => &[],
        };

        let mut bin = Binary {
            entry: ehdr.e_entry,
            e_flags: ehdr.e_flags,
            e_type: ehdr.e_type,
            ..Default::default()
        };

        // Sections (skip index 0, the NULL section).
        let mut symtab_idx = None;
        for (idx, h) in shdrs.iter().enumerate() {
            if idx == 0 {
                continue;
            }
            let name = elf::read_strz(shstr, h.sh_name as usize).unwrap_or_default();
            let data = if h.sh_type == elf::SHT_NOBITS {
                vec![0u8; h.sh_size as usize]
            } else {
                section_bytes(bytes, h)?.to_vec()
            };
            if h.sh_type == elf::SHT_SYMTAB {
                symtab_idx = Some(idx);
            }
            if h.sh_type == elf::SHT_RISCV_ATTRIBUTES || name == ".riscv.attributes" {
                bin.attributes = Some(RiscvAttributes::parse(&data)?);
            }
            bin.sections.push(Section {
                name,
                sh_type: h.sh_type,
                flags: h.sh_flags,
                addr: h.sh_addr,
                data,
                addralign: h.sh_addralign,
            });
        }

        // Symbols.
        if let Some(si) = symtab_idx {
            let sh = &shdrs[si];
            let symdata = section_bytes(bytes, sh)?;
            let strtab = shdrs
                .get(sh.sh_link as usize)
                .map(|h| section_bytes(bytes, h))
                .transpose()?
                .unwrap_or(&[]);
            let count = symdata.len() / elf::SYM_SIZE;
            for i in 0..count {
                let sym = ElfSym::parse(symdata, i * elf::SYM_SIZE)?;
                if sym.st_name == 0 && sym.st_value == 0 && sym.st_size == 0 {
                    continue; // null / anonymous symbol
                }
                let name = elf::read_strz(strtab, sym.st_name as usize).unwrap_or_default();
                let kind = match sym.sym_type() {
                    elf::STT_FUNC => SymbolKind::Function,
                    elf::STT_OBJECT => SymbolKind::Object,
                    elf::STT_SECTION => SymbolKind::Section,
                    _ => SymbolKind::NoType,
                };
                let binding = match sym.binding() {
                    elf::STB_GLOBAL => SymbolBinding::Global,
                    elf::STB_WEAK => SymbolBinding::Weak,
                    _ => SymbolBinding::Local,
                };
                bin.symbols.push(Symbol {
                    name,
                    value: sym.st_value,
                    size: sym.st_size,
                    kind,
                    binding,
                });
            }
        }

        Ok(bin)
    }
}

fn section_bytes<'a>(bytes: &'a [u8], h: &Shdr) -> Result<&'a [u8], SymtabError> {
    if h.sh_type == elf::SHT_NOBITS {
        return Ok(&[]);
    }
    let start = h.sh_offset as usize;
    let end = start
        .checked_add(h.sh_size as usize)
        .ok_or(SymtabError::BadReference {
            what: "section",
            offset: h.sh_offset,
            size: h.sh_size,
        })?;
    bytes.get(start..end).ok_or(SymtabError::BadReference {
        what: "section",
        offset: h.sh_offset,
        size: h.sh_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_truncated_headers() {
        let mut h = Ehdr {
            e_type: elf::ET_EXEC,
            e_machine: elf::EM_RISCV,
            e_shoff: 64,
            e_shnum: 4,
            ..Default::default()
        };
        h.e_shstrndx = 0;
        let bytes = h.emit().to_vec();
        // Section headers point past EOF.
        assert!(matches!(
            Binary::parse(&bytes),
            Err(SymtabError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_section_data() {
        // Header + one shdr whose data is out of range.
        let ehdr = Ehdr {
            e_type: elf::ET_EXEC,
            e_machine: elf::EM_RISCV,
            e_shoff: 64,
            e_shnum: 2,
            e_shstrndx: 0,
            ..Default::default()
        };
        let mut bytes = ehdr.emit().to_vec();
        bytes.extend_from_slice(&Shdr::default().emit()); // null
        let bad = Shdr {
            sh_type: elf::SHT_PROGBITS,
            sh_offset: 0x10_0000,
            sh_size: 16,
            ..Default::default()
        };
        bytes.extend_from_slice(&bad.emit());
        assert!(matches!(
            Binary::parse(&bytes),
            Err(SymtabError::BadReference { .. })
        ));
    }
}
