//! `.riscv.attributes` section parsing and emission (§3.2.1).
//!
//! The RISC-V psABI defines a vendor attribute section carrying the
//! compatibility information a loader (or, here, an instrumenter) needs —
//! most importantly `Tag_RISCV_arch`, the canonical arch string listing
//! every extension the binary uses. SymtabAPI parses this section to learn
//! the mutatee's profile so CodeGenAPI never emits instructions the target
//! may not support.
//!
//! Wire format (same framing as ARM build attributes):
//!
//! ```text
//! 'A' (format version)
//! ┌ u32 subsection-length │ "riscv\0" vendor │
//! │  ┌ uleb tag=Tag_File(1) │ u32 sub-subsection-length │
//! │  │   (uleb tag, uleb value)      -- even tags
//! │  │   (uleb tag, NUL-terminated)  -- odd tags
//! ```

use crate::error::SymtabError;
use rvdyn_isa::IsaProfile;

/// Known attribute tags.
pub const TAG_FILE: u64 = 1;
pub const TAG_RISCV_STACK_ALIGN: u64 = 4;
pub const TAG_RISCV_ARCH: u64 = 5;
pub const TAG_RISCV_UNALIGNED_ACCESS: u64 = 6;

/// Parsed contents of `.riscv.attributes`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RiscvAttributes {
    /// `Tag_RISCV_arch` — canonical arch string, e.g.
    /// `rv64i2p1_m2p0_a2p1_f2p2_d2p2_c2p0`.
    pub arch: Option<String>,
    /// `Tag_RISCV_stack_align` in bytes (16 for the standard ABI).
    pub stack_align: Option<u64>,
    /// `Tag_RISCV_unaligned_access` — whether unaligned accesses are used.
    pub unaligned_access: Option<bool>,
    /// Tags we do not interpret, preserved for round-tripping.
    pub other: Vec<(u64, AttrValue)>,
}

/// An attribute value: integer (even tags) or string (odd tags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    Int(u64),
    Str(String),
}

/// Decode a ULEB128 value, returning (value, bytes consumed).
pub fn uleb_decode(b: &[u8]) -> Result<(u64, usize), SymtabError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in b.iter().enumerate() {
        if shift >= 64 {
            return Err(SymtabError::BadAttributes("uleb128 overflow".into()));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(SymtabError::BadAttributes("unterminated uleb128".into()))
}

/// Encode a value as ULEB128.
pub fn uleb_encode(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let mut byte = (v & 0x7F) as u8;
        v >>= 7;
        if v != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if v == 0 {
            break;
        }
    }
}

impl RiscvAttributes {
    /// Build the standard attributes for a profile (what our writer emits).
    pub fn for_profile(profile: IsaProfile) -> RiscvAttributes {
        RiscvAttributes {
            arch: Some(profile.arch_string()),
            stack_align: Some(16),
            unaligned_access: Some(false),
            other: Vec::new(),
        }
    }

    /// The ISA profile from the arch string, if present and parseable.
    pub fn profile(&self) -> Option<IsaProfile> {
        self.arch.as_deref()?.parse().ok()
    }

    /// Parse a `.riscv.attributes` section body.
    pub fn parse(data: &[u8]) -> Result<RiscvAttributes, SymtabError> {
        let bad = |m: &str| SymtabError::BadAttributes(m.to_string());
        if data.is_empty() {
            return Err(bad("empty section"));
        }
        if data[0] != b'A' {
            return Err(bad("bad format version byte"));
        }
        let mut attrs = RiscvAttributes::default();
        let mut pos = 1usize;
        while pos < data.len() {
            let len = crate::elf::r_u32(data, pos)? as usize;
            if len < 4 || pos + len > data.len() {
                return Err(bad("subsection length out of range"));
            }
            let sub = &data[pos..pos + len];
            // Vendor string follows the length.
            let vendor_end = sub[4..]
                .iter()
                .position(|&c| c == 0)
                .ok_or_else(|| bad("unterminated vendor name"))?;
            let vendor = &sub[4..4 + vendor_end];
            let mut body = &sub[4 + vendor_end + 1..];
            if vendor == b"riscv" {
                // Sub-subsections: tag uleb, u32 length (covering both).
                while !body.is_empty() {
                    let (tag, n) = uleb_decode(body)?;
                    if body.len() < n + 4 {
                        return Err(bad("truncated sub-subsection header"));
                    }
                    let sslen = u32::from_le_bytes([body[n], body[n + 1], body[n + 2], body[n + 3]])
                        as usize;
                    let hdr = n + 4;
                    if sslen < hdr || sslen > body.len() {
                        return Err(bad("sub-subsection length out of range"));
                    }
                    if tag == TAG_FILE {
                        attrs.parse_file_attrs(&body[hdr..sslen])?;
                    }
                    body = &body[sslen..];
                }
            }
            pos += len;
        }
        Ok(attrs)
    }

    fn parse_file_attrs(&mut self, mut b: &[u8]) -> Result<(), SymtabError> {
        while !b.is_empty() {
            let (tag, n) = uleb_decode(b)?;
            b = &b[n..];
            if tag & 1 == 1 {
                // Odd tags: NUL-terminated string.
                let end = b
                    .iter()
                    .position(|&c| c == 0)
                    .ok_or_else(|| SymtabError::BadAttributes("unterminated string attr".into()))?;
                let s = String::from_utf8_lossy(&b[..end]).into_owned();
                b = &b[end + 1..];
                match tag {
                    TAG_RISCV_ARCH => self.arch = Some(s),
                    _ => self.other.push((tag, AttrValue::Str(s))),
                }
            } else {
                let (v, n) = uleb_decode(b)?;
                b = &b[n..];
                match tag {
                    TAG_RISCV_STACK_ALIGN => self.stack_align = Some(v),
                    TAG_RISCV_UNALIGNED_ACCESS => self.unaligned_access = Some(v != 0),
                    _ => self.other.push((tag, AttrValue::Int(v))),
                }
            }
        }
        Ok(())
    }

    /// Serialise to section bytes.
    pub fn emit(&self) -> Vec<u8> {
        // File-scope attribute body.
        let mut body = Vec::new();
        if let Some(a) = self.stack_align {
            uleb_encode(TAG_RISCV_STACK_ALIGN, &mut body);
            uleb_encode(a, &mut body);
        }
        if let Some(arch) = &self.arch {
            uleb_encode(TAG_RISCV_ARCH, &mut body);
            body.extend_from_slice(arch.as_bytes());
            body.push(0);
        }
        if let Some(u) = self.unaligned_access {
            uleb_encode(TAG_RISCV_UNALIGNED_ACCESS, &mut body);
            uleb_encode(u as u64, &mut body);
        }
        for (tag, val) in &self.other {
            uleb_encode(*tag, &mut body);
            match val {
                AttrValue::Int(v) => uleb_encode(*v, &mut body),
                AttrValue::Str(s) => {
                    body.extend_from_slice(s.as_bytes());
                    body.push(0);
                }
            }
        }

        // Tag_File sub-subsection wrapping the body.
        let mut file_ss = Vec::new();
        uleb_encode(TAG_FILE, &mut file_ss);
        let ss_len = (file_ss.len() + 4 + body.len()) as u32;
        file_ss.extend_from_slice(&ss_len.to_le_bytes());
        file_ss.extend_from_slice(&body);

        // "riscv" vendor subsection.
        let sub_len = (4 + b"riscv\0".len() + file_ss.len()) as u32;
        let mut out = Vec::with_capacity(1 + sub_len as usize);
        out.push(b'A');
        out.extend_from_slice(&sub_len.to_le_bytes());
        out.extend_from_slice(b"riscv\0");
        out.extend_from_slice(&file_ss);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_isa::{Extension, IsaProfile};

    #[test]
    fn uleb_round_trip() {
        for v in [0u64, 1, 127, 128, 300, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            uleb_encode(v, &mut buf);
            let (d, n) = uleb_decode(&buf).unwrap();
            assert_eq!(d, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let a = RiscvAttributes::for_profile(IsaProfile::rv64gc());
        let bytes = a.emit();
        let b = RiscvAttributes::parse(&bytes).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.profile(), Some(IsaProfile::rv64gc()));
        assert_eq!(b.stack_align, Some(16));
    }

    #[test]
    fn parses_gcc_style_arch_strings() {
        let a = RiscvAttributes {
            arch: Some("rv64i2p1_m2p0_a2p1_f2p2_d2p2_c2p0_zicsr2p0_zifencei2p0".into()),
            ..Default::default()
        };
        let bytes = a.emit();
        let b = RiscvAttributes::parse(&bytes).unwrap();
        let p = b.profile().unwrap();
        assert!(p.has(Extension::C));
        assert!(p.has(Extension::D));
    }

    #[test]
    fn unknown_tags_preserved() {
        let a = RiscvAttributes {
            arch: Some("rv64gc".into()),
            other: vec![(8, AttrValue::Int(2)), (77, AttrValue::Str("x".into()))],
            ..Default::default()
        };
        let b = RiscvAttributes::parse(&a.emit()).unwrap();
        assert_eq!(b.other, a.other);
    }

    #[test]
    fn rejects_malformed() {
        assert!(RiscvAttributes::parse(&[]).is_err());
        assert!(RiscvAttributes::parse(b"B").is_err());
        // Truncated subsection length.
        assert!(RiscvAttributes::parse(b"A\xFF\x00\x00\x00riscv\x00").is_err());
        // Unterminated uleb.
        let mut good = RiscvAttributes::for_profile(IsaProfile::rv64gc()).emit();
        let n = good.len();
        good[n - 1] |= 0x80;
        assert!(RiscvAttributes::parse(&good).is_err());
    }

    #[test]
    fn foreign_vendor_subsections_skipped() {
        let riscv = RiscvAttributes::for_profile(IsaProfile::rv64g());
        let inner = riscv.emit();
        // Prepend a foreign-vendor subsection.
        let mut out = vec![b'A'];
        let foreign_body = b"acme\0junkdata";
        let len = (4 + foreign_body.len()) as u32;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(foreign_body);
        out.extend_from_slice(&inner[1..]); // skip its 'A'
        let b = RiscvAttributes::parse(&out).unwrap();
        assert_eq!(b.profile(), Some(IsaProfile::rv64g()));
    }
}
