//! Property tests: every well-formed binary model survives
//! `to_bytes ∘ parse` with its analysis-relevant content intact.

use proptest::prelude::*;
use rvdyn_symtab::{
    Binary, RiscvAttributes, Section, Symbol, SymbolBinding, SymbolKind, SHF_ALLOC, SHF_EXECINSTR,
    SHF_WRITE,
};

fn arb_symbol(max_addr: u64) -> impl Strategy<Value = Symbol> {
    (
        "[a-z_][a-z0-9_]{0,18}",
        0..max_addr,
        0u64..128,
        prop_oneof![
            Just(SymbolKind::Function),
            Just(SymbolKind::Object),
            Just(SymbolKind::NoType)
        ],
        prop_oneof![
            Just(SymbolBinding::Local),
            Just(SymbolBinding::Global),
            Just(SymbolBinding::Weak)
        ],
    )
        .prop_map(|(name, value, size, kind, binding)| Symbol {
            name,
            value: 0x1_0000 + (value & !1),
            size,
            kind,
            binding,
        })
}

fn arb_binary() -> impl Strategy<Value = Binary> {
    (
        proptest::collection::vec(any::<u8>(), 4..512),
        proptest::collection::vec(any::<u8>(), 0..256),
        proptest::collection::vec(arb_symbol(0x4000), 0..12),
        proptest::bool::ANY,
        0usize..4096,
    )
        .prop_map(|(text, data, symbols, with_attrs, bss)| {
            let mut sections = vec![Section::progbits(
                ".text",
                0x1_0000,
                SHF_ALLOC | SHF_EXECINSTR,
                text,
            )];
            if !data.is_empty() {
                sections.push(Section::progbits(
                    ".data",
                    0x2_0000,
                    SHF_ALLOC | SHF_WRITE,
                    data,
                ));
            }
            if bss > 0 {
                let mut b =
                    Section::progbits(".bss", 0x3_0000, SHF_ALLOC | SHF_WRITE, vec![0; bss]);
                b.sh_type = rvdyn_symtab::elf::SHT_NOBITS;
                sections.push(b);
            }
            Binary {
                entry: 0x1_0000,
                e_flags: 0x5, // RVC | FLOAT_ABI_DOUBLE
                e_type: rvdyn_symtab::elf::ET_EXEC,
                sections,
                symbols,
                attributes: with_attrs
                    .then(|| RiscvAttributes::for_profile(rvdyn_isa::IsaProfile::rv64gc())),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_round_trip(bin in arb_binary()) {
        let bytes = bin.to_bytes().unwrap();
        let re = Binary::parse(&bytes).unwrap();
        prop_assert_eq!(re.entry, bin.entry);
        prop_assert_eq!(re.e_flags, bin.e_flags);
        prop_assert_eq!(re.attributes.is_some(), bin.attributes.is_some());
        // Sections: every original allocatable section survives with its
        // address and content (NOBITS keeps size, loses no zeros).
        for s in &bin.sections {
            let rs = re.section_by_name(&s.name).unwrap();
            prop_assert_eq!(rs.addr, s.addr, "{}", &s.name);
            prop_assert_eq!(rs.data.len(), s.data.len(), "{}", &s.name);
            if s.sh_type != rvdyn_symtab::elf::SHT_NOBITS {
                prop_assert_eq!(&rs.data, &s.data, "{}", &s.name);
            }
        }
        // Symbols: same multiset of (name, value, size, kind, binding).
        let key = |s: &Symbol| {
            (s.name.clone(), s.value, s.size, format!("{:?}{:?}", s.kind, s.binding))
        };
        let mut a: Vec<_> = bin.symbols.iter().map(key).collect();
        let mut b: Vec<_> = re.symbols.iter().map(key).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // And the rewritten image re-serialises identically (fixpoint).
        let bytes2 = re.to_bytes().unwrap();
        let re2 = Binary::parse(&bytes2).unwrap();
        prop_assert_eq!(re2.sections.len(), re.sections.len());
    }

    #[test]
    fn parser_never_panics_on_mutated_elves(
        bin in arb_binary(),
        flips in proptest::collection::vec((any::<u32>(), any::<u8>()), 1..12),
    ) {
        // Bit-flip fuzzing of a valid ELF: parse must return Ok or Err,
        // never panic or hang.
        let mut bytes = bin.to_bytes().unwrap();
        for (pos, val) in flips {
            let n = bytes.len() as u32;
            bytes[(pos % n) as usize] ^= val;
        }
        let _ = Binary::parse(&bytes);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Binary::parse(&bytes);
    }
}
