//! Machine-readable instruction semantics (§3.2.4).
//!
//! The paper derives DataflowAPI's instruction semantics from the official
//! SAIL specification through a two-stage pipeline (SAIL → simplified JSON IR
//! → C++ semantic classes), deliberately stripping the error-handling detail
//! that matters to emulators but not to dataflow analysis.
//!
//! This module is the same architecture realised natively: every decoded
//! instruction maps to a list of [`MicroOp`]s over a small expression IR
//! ([`SemExpr`]) — the equivalent of the paper's simplified JSON layer.
//! Consumers:
//!
//! * DataflowAPI's backward slicing and constant propagation interpret the
//!   expressions symbolically;
//! * [`eval_int`] executes the integer subset concretely, and property tests
//!   cross-validate it against the independent fast interpreter in
//!   `rvdyn-emu` — the same role the SAIL-derived emulator plays for the
//!   paper's pipeline.
//!
//! Floating-point operations appear as opaque [`MicroOp::FpCompute`] nodes:
//! dataflow only needs their register def/use sets, which are exact.

use crate::inst::Instruction;
use crate::op::Op;
use crate::reg::Reg;

/// Binary operators of the semantic IR. All operate on 64-bit values;
/// `*W` variants narrow to 32 bits and sign-extend the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    SltS,
    SltU,
    Mul,
    MulH,
    MulHSU,
    MulHU,
    DivS,
    DivU,
    RemS,
    RemU,
    AddW,
    SubW,
    SllW,
    SrlW,
    SraW,
    MulW,
    DivSW,
    DivUW,
    RemSW,
    RemUW,
    MinS,
    MaxS,
    MinU,
    MaxU,
    MinSW,
    MaxSW,
    MinUW,
    MaxUW,
    SwapSecond,
}

/// Comparison operators for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    LtS,
    GeS,
    LtU,
    GeU,
}

/// A value expression over the pre-state of the instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemExpr {
    /// Value of a GPR in the pre-state (x0 reads as 0).
    Gpr(Reg),
    /// The instruction's own address.
    Pc,
    /// Constant.
    Imm(i64),
    /// Binary operation.
    Bin(BinOp, Box<SemExpr>, Box<SemExpr>),
}

impl SemExpr {
    pub fn gpr(r: Reg) -> SemExpr {
        SemExpr::Gpr(r)
    }

    pub fn imm(v: i64) -> SemExpr {
        SemExpr::Imm(v)
    }

    pub fn bin(op: BinOp, a: SemExpr, b: SemExpr) -> SemExpr {
        SemExpr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Registers this expression depends on.
    pub fn uses(&self, out: &mut crate::reg::RegSet) {
        match self {
            SemExpr::Gpr(r) => out.insert(*r),
            SemExpr::Bin(_, a, b) => {
                a.uses(out);
                b.uses(out);
            }
            _ => {}
        }
    }
}

/// One architectural effect of an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// `rd <- expr` over integer state.
    Write { rd: Reg, val: SemExpr },
    /// `rd <- sign/zero-extended load of `size` bytes at `addr``.
    Load {
        rd: Reg,
        addr: SemExpr,
        size: u8,
        sign_extend: bool,
    },
    /// Store `size` low bytes of `val` at `addr`.
    Store {
        addr: SemExpr,
        val: SemExpr,
        size: u8,
    },
    /// Transfer control to `target` (unconditionally if `cond` is `None`).
    SetPc {
        target: SemExpr,
        cond: Option<(CmpOp, SemExpr, SemExpr)>,
    },
    /// Atomic read-modify-write: `rd <- M[addr]; M[addr] <- rd ⊕ rs2`.
    Amo {
        rd: Reg,
        addr: SemExpr,
        src: SemExpr,
        op: BinOp,
        size: u8,
    },
    /// Opaque floating-point computation (exact def/use, abstract value).
    FpCompute { writes_gpr: Option<Reg> },
    /// Environment call.
    Syscall,
    /// Debug trap.
    Break,
    /// Memory ordering / CSR side effects we model as opaque.
    Opaque,
}

/// Produce the micro-op list for `inst`.
///
/// The list is a *complete* description of the architectural effect for the
/// integer subset (I, M, A address/AMO arithmetic, Zicsr modelled opaquely),
/// and a def/use-exact opaque node for F/D computations.
pub fn micro_ops(inst: &Instruction) -> Vec<MicroOp> {
    use BinOp as B;
    use Op as O;
    let rd = inst.rd;
    let rs1 = || SemExpr::gpr(inst.rs1.expect("rs1"));
    let rs2 = || SemExpr::gpr(inst.rs2.expect("rs2"));
    let imm = || SemExpr::imm(inst.imm);
    let wr = |val: SemExpr| -> Vec<MicroOp> {
        match rd {
            Some(r) if !r.is_zero() => vec![MicroOp::Write { rd: r, val }],
            _ => vec![],
        }
    };
    let alu_i = |op: BinOp| wr(SemExpr::bin(op, rs1(), imm()));
    let alu_r = |op: BinOp| wr(SemExpr::bin(op, rs1(), rs2()));

    match inst.op {
        O::Lui => wr(imm()),
        O::Auipc => wr(SemExpr::bin(B::Add, SemExpr::Pc, imm())),
        O::Addi => alu_i(B::Add),
        O::Slti => alu_i(B::SltS),
        O::Sltiu => alu_i(B::SltU),
        O::Xori => alu_i(B::Xor),
        O::Ori => alu_i(B::Or),
        O::Andi => alu_i(B::And),
        O::Slli => alu_i(B::Sll),
        O::Srli => alu_i(B::Srl),
        O::Srai => alu_i(B::Sra),
        O::Addiw => alu_i(B::AddW),
        O::Slliw => alu_i(B::SllW),
        O::Srliw => alu_i(B::SrlW),
        O::Sraiw => alu_i(B::SraW),
        O::Add => alu_r(B::Add),
        O::Sub => alu_r(B::Sub),
        O::Sll => alu_r(B::Sll),
        O::Slt => alu_r(B::SltS),
        O::Sltu => alu_r(B::SltU),
        O::Xor => alu_r(B::Xor),
        O::Srl => alu_r(B::Srl),
        O::Sra => alu_r(B::Sra),
        O::Or => alu_r(B::Or),
        O::And => alu_r(B::And),
        O::Addw => alu_r(B::AddW),
        O::Subw => alu_r(B::SubW),
        O::Sllw => alu_r(B::SllW),
        O::Srlw => alu_r(B::SrlW),
        O::Sraw => alu_r(B::SraW),
        O::Mul => alu_r(B::Mul),
        O::Mulh => alu_r(B::MulH),
        O::Mulhsu => alu_r(B::MulHSU),
        O::Mulhu => alu_r(B::MulHU),
        O::Div => alu_r(B::DivS),
        O::Divu => alu_r(B::DivU),
        O::Rem => alu_r(B::RemS),
        O::Remu => alu_r(B::RemU),
        O::Mulw => alu_r(B::MulW),
        O::Divw => alu_r(B::DivSW),
        O::Divuw => alu_r(B::DivUW),
        O::Remw => alu_r(B::RemSW),
        O::Remuw => alu_r(B::RemUW),
        O::Jal => {
            let mut v = wr(SemExpr::imm(inst.next_pc() as i64));
            v.push(MicroOp::SetPc {
                target: SemExpr::bin(B::Add, SemExpr::Pc, imm()),
                cond: None,
            });
            v
        }
        O::Jalr => {
            // The target must read the *pre-state* rs1 (rd may alias rs1,
            // as in `jalr ra, 0(ra)`), so the SetPc micro-op — which only
            // records the transfer — is emitted before the link write.
            let mut v = vec![MicroOp::SetPc {
                // target = (rs1 + imm) & !1
                target: SemExpr::bin(B::And, SemExpr::bin(B::Add, rs1(), imm()), SemExpr::imm(!1)),
                cond: None,
            }];
            v.extend(wr(SemExpr::imm(inst.next_pc() as i64)));
            v
        }
        O::Beq | O::Bne | O::Blt | O::Bge | O::Bltu | O::Bgeu => {
            let cmp = match inst.op {
                O::Beq => CmpOp::Eq,
                O::Bne => CmpOp::Ne,
                O::Blt => CmpOp::LtS,
                O::Bge => CmpOp::GeS,
                O::Bltu => CmpOp::LtU,
                _ => CmpOp::GeU,
            };
            vec![MicroOp::SetPc {
                target: SemExpr::bin(B::Add, SemExpr::Pc, imm()),
                cond: Some((cmp, rs1(), rs2())),
            }]
        }
        O::Lb | O::Lh | O::Lw | O::Ld | O::Lbu | O::Lhu | O::Lwu => {
            let (size, sx) = match inst.op {
                O::Lb => (1, true),
                O::Lh => (2, true),
                O::Lw => (4, true),
                O::Ld => (8, false),
                O::Lbu => (1, false),
                O::Lhu => (2, false),
                _ => (4, false),
            };
            match rd {
                Some(r) if !r.is_zero() => vec![MicroOp::Load {
                    rd: r,
                    addr: SemExpr::bin(B::Add, rs1(), imm()),
                    size,
                    sign_extend: sx,
                }],
                _ => vec![],
            }
        }
        O::Sb | O::Sh | O::Sw | O::Sd => {
            let size = match inst.op {
                O::Sb => 1,
                O::Sh => 2,
                O::Sw => 4,
                _ => 8,
            };
            vec![MicroOp::Store {
                addr: SemExpr::bin(B::Add, rs1(), imm()),
                val: rs2(),
                size,
            }]
        }
        O::LrW | O::LrD => {
            let size = if inst.op == O::LrW { 4 } else { 8 };
            match rd {
                Some(r) if !r.is_zero() => vec![MicroOp::Load {
                    rd: r,
                    addr: rs1(),
                    size,
                    sign_extend: size == 4,
                }],
                _ => vec![],
            }
        }
        O::ScW | O::ScD => {
            let size = if inst.op == O::ScW { 4 } else { 8 };
            // Single-threaded model: SC always succeeds (writes 0 to rd).
            let mut v = vec![MicroOp::Store {
                addr: rs1(),
                val: rs2(),
                size,
            }];
            if let Some(r) = rd {
                if !r.is_zero() {
                    v.push(MicroOp::Write {
                        rd: r,
                        val: SemExpr::imm(0),
                    });
                }
            }
            v
        }
        O::AmoSwapW
        | O::AmoAddW
        | O::AmoXorW
        | O::AmoAndW
        | O::AmoOrW
        | O::AmoMinW
        | O::AmoMaxW
        | O::AmoMinuW
        | O::AmoMaxuW
        | O::AmoSwapD
        | O::AmoAddD
        | O::AmoXorD
        | O::AmoAndD
        | O::AmoOrD
        | O::AmoMinD
        | O::AmoMaxD
        | O::AmoMinuD
        | O::AmoMaxuD => {
            let size = if inst.op.mnemonic().ends_with(".w") {
                4
            } else {
                8
            };
            let op = match inst.op {
                O::AmoSwapW | O::AmoSwapD => B::SwapSecond,
                O::AmoAddW | O::AmoAddD => B::Add,
                O::AmoXorW | O::AmoXorD => B::Xor,
                O::AmoAndW | O::AmoAndD => B::And,
                O::AmoOrW | O::AmoOrD => B::Or,
                O::AmoMinW => B::MinSW,
                O::AmoMinD => B::MinS,
                O::AmoMaxW => B::MaxSW,
                O::AmoMaxD => B::MaxS,
                O::AmoMinuW => B::MinUW,
                O::AmoMinuD => B::MinU,
                O::AmoMaxuW => B::MaxUW,
                _ => B::MaxU,
            };
            vec![MicroOp::Amo {
                rd: rd.unwrap_or(Reg::X0),
                addr: rs1(),
                src: rs2(),
                op,
                size,
            }]
        }
        O::Ecall => vec![MicroOp::Syscall],
        O::Ebreak => vec![MicroOp::Break],
        O::Fence | O::FenceI => vec![MicroOp::Opaque],
        O::Csrrw | O::Csrrs | O::Csrrc | O::Csrrwi | O::Csrrsi | O::Csrrci => {
            // CSR state is outside the dataflow register model; the GPR
            // write is the observable effect.
            match rd {
                Some(r) if !r.is_zero() => {
                    vec![
                        MicroOp::FpCompute {
                            writes_gpr: Some(r),
                        },
                        MicroOp::Opaque,
                    ]
                }
                _ => vec![MicroOp::Opaque],
            }
        }
        // Loads/stores of FP registers move bits, not values — they are
        // load/store micro-ops from dataflow's perspective, but the data
        // register is an FPR, outside the integer IR: model the address
        // dependency exactly and the data as opaque.
        O::Flw | O::Fld => vec![MicroOp::Load {
            rd: rd.expect("fp load rd"),
            addr: SemExpr::bin(B::Add, rs1(), imm()),
            size: if inst.op == O::Flw { 4 } else { 8 },
            sign_extend: false,
        }],
        O::Fsw | O::Fsd => vec![MicroOp::Store {
            addr: SemExpr::bin(B::Add, rs1(), imm()),
            val: SemExpr::gpr(inst.rs2.expect("fp store rs2")),
            size: if inst.op == O::Fsw { 4 } else { 8 },
        }],
        // All remaining F/D computations: exact def/use, opaque value.
        _ => {
            let writes_gpr = match rd {
                Some(r) if r.class() == crate::reg::RegClass::Gpr && !r.is_zero() => Some(r),
                _ => None,
            };
            vec![MicroOp::FpCompute { writes_gpr }]
        }
    }
}

/// Concrete integer state for [`eval_int`].
#[derive(Debug, Clone)]
pub struct IntState {
    pub pc: u64,
    pub gpr: [u64; 32],
}

impl IntState {
    pub fn new(pc: u64) -> IntState {
        IntState { pc, gpr: [0; 32] }
    }

    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        debug_assert_eq!(r.class(), crate::reg::RegClass::Gpr);
        if r.is_zero() {
            0
        } else {
            self.gpr[r.num() as usize]
        }
    }

    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        if !r.is_zero() && r.class() == crate::reg::RegClass::Gpr {
            self.gpr[r.num() as usize] = v;
        }
    }
}

/// Apply a binary operator. Shared by the micro-op evaluator and usable by
/// constant folding in DataflowAPI.
#[allow(clippy::manual_checked_ops)] // spec-mandated div-by-zero results
pub fn apply_bin(op: BinOp, a: u64, b: u64) -> u64 {
    let sw = |v: u64| v as i32 as i64 as u64; // sign-extend low 32
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Sll => a.wrapping_shl((b & 63) as u32),
        BinOp::Srl => a.wrapping_shr((b & 63) as u32),
        BinOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        BinOp::SltS => ((a as i64) < (b as i64)) as u64,
        BinOp::SltU => (a < b) as u64,
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::MulH => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        BinOp::MulHSU => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        BinOp::MulHU => (((a as u128) * (b as u128)) >> 64) as u64,
        BinOp::DivS => {
            if b == 0 {
                u64::MAX
            } else if a as i64 == i64::MIN && b as i64 == -1 {
                a
            } else {
                ((a as i64) / (b as i64)) as u64
            }
        }
        BinOp::DivU => {
            if b == 0 {
                u64::MAX
            } else {
                a / b
            }
        }
        BinOp::RemS => {
            if b == 0 {
                a
            } else if a as i64 == i64::MIN && b as i64 == -1 {
                0
            } else {
                ((a as i64) % (b as i64)) as u64
            }
        }
        BinOp::RemU => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        BinOp::AddW => sw(a.wrapping_add(b)),
        BinOp::SubW => sw(a.wrapping_sub(b)),
        BinOp::SllW => sw((a as u32).wrapping_shl((b & 31) as u32) as u64),
        BinOp::SrlW => sw((a as u32).wrapping_shr((b & 31) as u32) as u64),
        BinOp::SraW => sw(((a as i32).wrapping_shr((b & 31) as u32)) as u32 as u64),
        BinOp::MulW => sw(a.wrapping_mul(b)),
        BinOp::DivSW => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                u64::MAX
            } else if a == i32::MIN && b == -1 {
                a as i64 as u64
            } else {
                (a / b) as i64 as u64
            }
        }
        BinOp::DivUW => {
            let (a, b) = (a as u32, b as u32);
            if b == 0 {
                u64::MAX
            } else {
                sw((a / b) as u64)
            }
        }
        BinOp::RemSW => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                a as i64 as u64
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                (a % b) as i64 as u64
            }
        }
        BinOp::RemUW => {
            let (a, b) = (a as u32, b as u32);
            if b == 0 {
                a as i64 as u64
            } else {
                sw((a % b) as u64)
            }
        }
        BinOp::MinS => (a as i64).min(b as i64) as u64,
        BinOp::MaxS => (a as i64).max(b as i64) as u64,
        BinOp::MinU => a.min(b),
        BinOp::MaxU => a.max(b),
        BinOp::MinSW => sw(((a as i32).min(b as i32)) as u32 as u64),
        BinOp::MaxSW => sw(((a as i32).max(b as i32)) as u32 as u64),
        BinOp::MinUW => sw(((a as u32).min(b as u32)) as u64),
        BinOp::MaxUW => sw(((a as u32).max(b as u32)) as u64),
        BinOp::SwapSecond => b,
    }
}

/// Evaluate a comparison.
pub fn apply_cmp(op: CmpOp, a: u64, b: u64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::LtS => (a as i64) < (b as i64),
        CmpOp::GeS => (a as i64) >= (b as i64),
        CmpOp::LtU => a < b,
        CmpOp::GeU => a >= b,
    }
}

/// Evaluate an expression over a concrete state.
pub fn eval_expr(e: &SemExpr, st: &IntState) -> u64 {
    match e {
        SemExpr::Gpr(r) => st.get(*r),
        SemExpr::Pc => st.pc,
        SemExpr::Imm(v) => *v as u64,
        SemExpr::Bin(op, a, b) => apply_bin(*op, eval_expr(a, st), eval_expr(b, st)),
    }
}

/// Outcome of evaluating one instruction's micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalOutcome {
    /// Fall through to the next instruction.
    Next,
    /// Control transferred to this address.
    Jump(u64),
    /// Environment call.
    Syscall,
    /// Debug trap.
    Break,
    /// Instruction touches state outside the integer model (F/D value
    /// computation, CSR) — the caller must handle it natively.
    OutsideModel,
}

/// Execute the integer subset of an instruction via its micro-ops against a
/// concrete state and byte-addressed memory closure.
///
/// This is the reference interpreter derived from the semantics spec; the
/// fast interpreter in `rvdyn-emu` is validated against it.
pub fn eval_int(inst: &Instruction, st: &mut IntState, mem: &mut dyn MemoryBus) -> EvalOutcome {
    let ops = micro_ops(inst);
    let mut outcome = EvalOutcome::Next;
    for op in &ops {
        match op {
            MicroOp::Write { rd, val } => {
                let v = eval_expr(val, st);
                st.set(*rd, v);
            }
            MicroOp::Load {
                rd,
                addr,
                size,
                sign_extend,
            } => {
                if rd.class() != crate::reg::RegClass::Gpr {
                    return EvalOutcome::OutsideModel;
                }
                let a = eval_expr(addr, st);
                let raw = mem.load(a, *size);
                let v = if *sign_extend {
                    let shift = 64 - (*size as u32) * 8;
                    (((raw << shift) as i64) >> shift) as u64
                } else {
                    raw
                };
                st.set(*rd, v);
            }
            MicroOp::Store { addr, val, size } => {
                if let SemExpr::Gpr(r) = val {
                    if r.class() != crate::reg::RegClass::Gpr {
                        return EvalOutcome::OutsideModel;
                    }
                }
                let a = eval_expr(addr, st);
                let v = eval_expr(val, st);
                mem.store(a, *size, v);
            }
            MicroOp::Amo {
                rd,
                addr,
                src,
                op,
                size,
            } => {
                let a = eval_expr(addr, st);
                let old_raw = mem.load(a, *size);
                let old = if *size == 4 {
                    old_raw as u32 as i32 as i64 as u64
                } else {
                    old_raw
                };
                let srcv = eval_expr(src, st);
                let newv = apply_bin(*op, old, srcv);
                mem.store(a, *size, newv);
                st.set(*rd, old);
            }
            MicroOp::SetPc { target, cond } => {
                let take = match cond {
                    None => true,
                    Some((c, a, b)) => apply_cmp(*c, eval_expr(a, st), eval_expr(b, st)),
                };
                if take {
                    outcome = EvalOutcome::Jump(eval_expr(target, st));
                }
            }
            MicroOp::Syscall => return EvalOutcome::Syscall,
            MicroOp::Break => return EvalOutcome::Break,
            MicroOp::FpCompute { .. } | MicroOp::Opaque => return EvalOutcome::OutsideModel,
        }
    }
    outcome
}

/// Byte-addressed little-endian memory used by [`eval_int`].
pub trait MemoryBus {
    /// Load `size` (1/2/4/8) bytes at `addr`, zero-extended into a u64.
    fn load(&mut self, addr: u64, size: u8) -> u64;
    /// Store the low `size` bytes of `val` at `addr`.
    fn store(&mut self, addr: u64, size: u8, val: u64);
}

/// A trivial flat memory for tests.
pub struct FlatMemory {
    pub base: u64,
    pub bytes: Vec<u8>,
}

impl FlatMemory {
    pub fn new(base: u64, len: usize) -> FlatMemory {
        FlatMemory {
            base,
            bytes: vec![0; len],
        }
    }
}

impl MemoryBus for FlatMemory {
    fn load(&mut self, addr: u64, size: u8) -> u64 {
        let off = (addr - self.base) as usize;
        let mut v = [0u8; 8];
        v[..size as usize].copy_from_slice(&self.bytes[off..off + size as usize]);
        u64::from_le_bytes(v)
    }

    fn store(&mut self, addr: u64, size: u8, val: u64) {
        let off = (addr - self.base) as usize;
        self.bytes[off..off + size as usize].copy_from_slice(&val.to_le_bytes()[..size as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode32;

    fn run1(raw: u32, setup: impl FnOnce(&mut IntState)) -> (IntState, EvalOutcome) {
        let inst = decode32(raw, 0x1000).unwrap();
        let mut st = IntState::new(0x1000);
        setup(&mut st);
        let mut mem = FlatMemory::new(0x8000, 256);
        let out = eval_int(&inst, &mut st, &mut mem);
        (st, out)
    }

    #[test]
    fn addi_semantics() {
        let (st, out) = run1(0xFFD5_8513, |st| st.set(Reg::x(11), 10)); // addi a0,a1,-3
        assert_eq!(st.get(Reg::x(10)), 7);
        assert_eq!(out, EvalOutcome::Next);
    }

    #[test]
    fn auipc_semantics() {
        let (st, _) = run1(0x8000_0517, |_| {}); // auipc a0, -0x80000
        assert_eq!(st.get(Reg::x(10)), 0x1000u64.wrapping_sub(0x8000_0000));
    }

    #[test]
    fn branch_taken_and_not() {
        // beq a0, a1, +16
        let raw = (11 << 20) | (10 << 15) | (0b1000 << 8) | 0x63;
        let (_, out) = run1(raw, |st| {
            st.set(Reg::x(10), 5);
            st.set(Reg::x(11), 5);
        });
        assert_eq!(out, EvalOutcome::Jump(0x1010));
        let (_, out) = run1(raw, |st| {
            st.set(Reg::x(10), 5);
            st.set(Reg::x(11), 6);
        });
        assert_eq!(out, EvalOutcome::Next);
    }

    #[test]
    fn jalr_clears_low_bit_and_links() {
        // jalr ra, 3(a0)
        let raw = (3 << 20) | (10 << 15) | (1 << 7) | 0x67;
        let (st, out) = run1(raw, |st| st.set(Reg::x(10), 0x2000));
        assert_eq!(out, EvalOutcome::Jump(0x2002));
        assert_eq!(st.get(Reg::x(1)), 0x1004);
    }

    #[test]
    fn load_store_round_trip() {
        let inst_sd = decode32(
            (10 << 20) | (11 << 15) | (0b011 << 12) | 0x23, // sd a0, 0(a1)
            0,
        )
        .unwrap();
        let inst_ld = decode32(
            (11 << 15) | (0b011 << 12) | (12 << 7) | 0x03, // ld a2, 0(a1)
            0,
        )
        .unwrap();
        let mut st = IntState::new(0);
        st.set(Reg::x(10), 0xDEAD_BEEF_CAFE_F00D);
        st.set(Reg::x(11), 0x8010);
        let mut mem = FlatMemory::new(0x8000, 256);
        eval_int(&inst_sd, &mut st, &mut mem);
        eval_int(&inst_ld, &mut st, &mut mem);
        assert_eq!(st.get(Reg::x(12)), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn sign_extending_load() {
        let inst_sb = decode32((10 << 20) | (11 << 15) | 0x23, 0).unwrap(); // sb
        let inst_lb = decode32((11 << 15) | (12 << 7) | 0x03, 0).unwrap(); // lb
        let mut st = IntState::new(0);
        st.set(Reg::x(10), 0x80);
        st.set(Reg::x(11), 0x8000);
        let mut mem = FlatMemory::new(0x8000, 16);
        eval_int(&inst_sb, &mut st, &mut mem);
        eval_int(&inst_lb, &mut st, &mut mem);
        assert_eq!(st.get(Reg::x(12)) as i64, -128);
    }

    #[test]
    fn division_edge_cases_follow_spec() {
        assert_eq!(apply_bin(BinOp::DivS, 7, 0), u64::MAX);
        assert_eq!(apply_bin(BinOp::RemS, 7, 0), 7);
        assert_eq!(
            apply_bin(BinOp::DivS, i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64
        );
        assert_eq!(apply_bin(BinOp::RemS, i64::MIN as u64, (-1i64) as u64), 0);
        assert_eq!(apply_bin(BinOp::DivUW, 10, 0), u64::MAX);
    }

    #[test]
    fn mulh_correctness() {
        assert_eq!(
            apply_bin(BinOp::MulH, (-1i64) as u64, (-1i64) as u64),
            0 // (-1 * -1) >> 64 == 0
        );
        assert_eq!(apply_bin(BinOp::MulHU, u64::MAX, u64::MAX) as u128, {
            (u64::MAX as u128 * u64::MAX as u128) >> 64
        });
    }

    #[test]
    fn amo_add_word() {
        // amoadd.w a0, a1, (a2)
        let raw = (11 << 20) | (12 << 15) | (0b010 << 12) | (10 << 7) | 0x2F;
        let inst = decode32(raw, 0).unwrap();
        let mut st = IntState::new(0);
        st.set(Reg::x(11), 5);
        st.set(Reg::x(12), 0x8000);
        let mut mem = FlatMemory::new(0x8000, 16);
        mem.store(0x8000, 4, 0xFFFF_FFFF); // -1 as i32
        let out = eval_int(&inst, &mut st, &mut mem);
        assert_eq!(out, EvalOutcome::Next);
        assert_eq!(st.get(Reg::x(10)) as i64, -1); // old value, sign-extended
        assert_eq!(mem.load(0x8000, 4) as u32, 4); // -1 + 5
    }

    #[test]
    fn writes_of_jal_happen_before_jump_target_uses_old_rs1() {
        // jalr ra, 0(ra): the jump target must use the *old* ra.
        let raw = (1 << 15) | (1 << 7) | 0x67;
        let inst = decode32(raw, 0x1000).unwrap();
        let mut st = IntState::new(0x1000);
        st.set(Reg::x(1), 0x4000);
        let mut mem = FlatMemory::new(0, 16);
        let out = eval_int(&inst, &mut st, &mut mem);
        assert_eq!(out, EvalOutcome::Jump(0x4000));
        assert_eq!(st.get(Reg::x(1)), 0x1004);
    }
}
