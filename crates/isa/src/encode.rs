//! RV64GC instruction encoder — the code-emission substrate of CodeGenAPI.
//!
//! [`encode32`] produces the standard 4-byte encoding of an instruction;
//! [`compress`] opportunistically produces the 2-byte C-extension form when
//! one exists (§3.1.2). `decode ∘ encode = id` is enforced by property tests.

use crate::inst::Instruction;
use crate::op::Op;
use crate::reg::{Reg, RegClass};
use std::fmt;

/// Encoding failure: an operand does not fit the instruction format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Immediate/displacement outside the format's range.
    ImmOutOfRange { op: Op, imm: i64, bits: u32 },
    /// Immediate has alignment the format cannot express (e.g. odd branch
    /// offsets).
    Misaligned { op: Op, imm: i64 },
    /// Required operand missing from the instruction value.
    MissingOperand { op: Op, which: &'static str },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { op, imm, bits } => write!(
                f,
                "immediate {imm} does not fit in {bits} bits for {}",
                op.mnemonic()
            ),
            EncodeError::Misaligned { op, imm } => {
                write!(f, "immediate {imm} misaligned for {}", op.mnemonic())
            }
            EncodeError::MissingOperand { op, which } => {
                write!(f, "missing operand {which} for {}", op.mnemonic())
            }
        }
    }
}

impl std::error::Error for EncodeError {}

type R = Result<u32, EncodeError>;

fn need(r: Option<Reg>, op: Op, which: &'static str) -> Result<u32, EncodeError> {
    r.map(|x| x.num() as u32)
        .ok_or(EncodeError::MissingOperand { op, which })
}

fn check_simm(op: Op, imm: i64, bits: u32) -> Result<u64, EncodeError> {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    if imm < lo || imm > hi {
        return Err(EncodeError::ImmOutOfRange { op, imm, bits });
    }
    Ok((imm as u64) & ((1u64 << bits) - 1))
}

fn enc_r(opc: u32, f3: u32, f7: u32, rd: u32, rs1: u32, rs2: u32) -> u32 {
    (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc
}

fn enc_i(opc: u32, f3: u32, rd: u32, rs1: u32, imm12: u64) -> u32 {
    ((imm12 as u32) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc
}

fn enc_s(opc: u32, f3: u32, rs1: u32, rs2: u32, imm12: u64) -> u32 {
    let imm = imm12 as u32;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | ((imm & 0x1F) << 7) | opc
}

fn enc_b(opc: u32, f3: u32, rs1: u32, rs2: u32, imm13: u64) -> u32 {
    let imm = imm13 as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (f3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opc
}

fn enc_u(opc: u32, rd: u32, imm: u32) -> u32 {
    (imm & 0xFFFF_F000) | (rd << 7) | opc
}

fn enc_j(opc: u32, rd: u32, imm21: u64) -> u32 {
    let imm = imm21 as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (rd << 7)
        | opc
}

/// Encode the standard 32-bit form of `inst`.
pub fn encode32(inst: &Instruction) -> R {
    use crate::decode::*;
    use Op::*;
    let op = inst.op;
    let rd = || need(inst.rd, op, "rd");
    let rs1 = || need(inst.rs1, op, "rs1");
    let rs2 = || need(inst.rs2, op, "rs2");
    let rs3 = || need(inst.rs3, op, "rs3");
    let imm = inst.imm;

    let aligned2 = |imm: i64| -> Result<(), EncodeError> {
        if imm & 1 != 0 {
            Err(EncodeError::Misaligned { op, imm })
        } else {
            Ok(())
        }
    };

    Ok(match op {
        Lui | Auipc => {
            if imm & 0xFFF != 0 {
                return Err(EncodeError::Misaligned { op, imm });
            }
            if !(-(1i64 << 31)..(1i64 << 31)).contains(&imm) {
                return Err(EncodeError::ImmOutOfRange { op, imm, bits: 32 });
            }
            let opc = if op == Lui { OPC_LUI } else { OPC_AUIPC };
            enc_u(opc, rd()?, imm as u32)
        }
        Jal => {
            aligned2(imm)?;
            enc_j(OPC_JAL, rd()?, check_simm(op, imm, 21)?)
        }
        Jalr => enc_i(OPC_JALR, 0, rd()?, rs1()?, check_simm(op, imm, 12)?),
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            aligned2(imm)?;
            let f3 = match op {
                Beq => 0b000,
                Bne => 0b001,
                Blt => 0b100,
                Bge => 0b101,
                Bltu => 0b110,
                _ => 0b111,
            };
            enc_b(OPC_BRANCH, f3, rs1()?, rs2()?, check_simm(op, imm, 13)?)
        }
        Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu => {
            let f3 = match op {
                Lb => 0b000,
                Lh => 0b001,
                Lw => 0b010,
                Ld => 0b011,
                Lbu => 0b100,
                Lhu => 0b101,
                _ => 0b110,
            };
            enc_i(OPC_LOAD, f3, rd()?, rs1()?, check_simm(op, imm, 12)?)
        }
        Sb | Sh | Sw | Sd => {
            let f3 = match op {
                Sb => 0b000,
                Sh => 0b001,
                Sw => 0b010,
                _ => 0b011,
            };
            enc_s(OPC_STORE, f3, rs1()?, rs2()?, check_simm(op, imm, 12)?)
        }
        Addi | Slti | Sltiu | Xori | Ori | Andi => {
            let f3 = match op {
                Addi => 0b000,
                Slti => 0b010,
                Sltiu => 0b011,
                Xori => 0b100,
                Ori => 0b110,
                _ => 0b111,
            };
            enc_i(OPC_OP_IMM, f3, rd()?, rs1()?, check_simm(op, imm, 12)?)
        }
        Slli | Srli | Srai => {
            if !(0..64).contains(&imm) {
                return Err(EncodeError::ImmOutOfRange { op, imm, bits: 6 });
            }
            let (f3, hi) = match op {
                Slli => (0b001, 0),
                Srli => (0b101, 0),
                _ => (0b101, 0b010000u32),
            };
            enc_i(
                OPC_OP_IMM,
                f3,
                rd()?,
                rs1()?,
                ((hi << 6) | imm as u32) as u64,
            )
        }
        Addiw => enc_i(
            OPC_OP_IMM_32,
            0b000,
            rd()?,
            rs1()?,
            check_simm(op, imm, 12)?,
        ),
        Slliw | Srliw | Sraiw => {
            if !(0..32).contains(&imm) {
                return Err(EncodeError::ImmOutOfRange { op, imm, bits: 5 });
            }
            let (f3, f7) = match op {
                Slliw => (0b001, 0),
                Srliw => (0b101, 0),
                _ => (0b101, 0b0100000u32),
            };
            enc_i(
                OPC_OP_IMM_32,
                f3,
                rd()?,
                rs1()?,
                ((f7 << 5) | imm as u32) as u64,
            )
        }
        Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And | Mul | Mulh | Mulhsu | Mulhu
        | Div | Divu | Rem | Remu => {
            let (f7, f3) = match op {
                Add => (0b0000000, 0b000),
                Sub => (0b0100000, 0b000),
                Sll => (0b0000000, 0b001),
                Slt => (0b0000000, 0b010),
                Sltu => (0b0000000, 0b011),
                Xor => (0b0000000, 0b100),
                Srl => (0b0000000, 0b101),
                Sra => (0b0100000, 0b101),
                Or => (0b0000000, 0b110),
                And => (0b0000000, 0b111),
                Mul => (0b0000001, 0b000),
                Mulh => (0b0000001, 0b001),
                Mulhsu => (0b0000001, 0b010),
                Mulhu => (0b0000001, 0b011),
                Div => (0b0000001, 0b100),
                Divu => (0b0000001, 0b101),
                Rem => (0b0000001, 0b110),
                _ => (0b0000001, 0b111),
            };
            enc_r(OPC_OP, f3, f7, rd()?, rs1()?, rs2()?)
        }
        Addw | Subw | Sllw | Srlw | Sraw | Mulw | Divw | Divuw | Remw | Remuw => {
            let (f7, f3) = match op {
                Addw => (0b0000000, 0b000),
                Subw => (0b0100000, 0b000),
                Sllw => (0b0000000, 0b001),
                Srlw => (0b0000000, 0b101),
                Sraw => (0b0100000, 0b101),
                Mulw => (0b0000001, 0b000),
                Divw => (0b0000001, 0b100),
                Divuw => (0b0000001, 0b101),
                Remw => (0b0000001, 0b110),
                _ => (0b0000001, 0b111),
            };
            enc_r(OPC_OP_32, f3, f7, rd()?, rs1()?, rs2()?)
        }
        Fence | FenceI => {
            let f3 = if op == FenceI { 0b001 } else { 0b000 };
            let rdv = inst.rd.map(|r| r.num() as u32).unwrap_or(0);
            let rs1v = inst.rs1.map(|r| r.num() as u32).unwrap_or(0);
            ((inst.imm as u32 & 0xFFF) << 20)
                | (rs1v << 15)
                | (f3 << 12)
                | (rdv << 7)
                | OPC_MISC_MEM
        }
        Ecall => OPC_SYSTEM,
        Ebreak => (1 << 20) | OPC_SYSTEM,
        Csrrw | Csrrs | Csrrc | Csrrwi | Csrrsi | Csrrci => {
            let f3 = match op {
                Csrrw => 0b001,
                Csrrs => 0b010,
                Csrrc => 0b011,
                Csrrwi => 0b101,
                Csrrsi => 0b110,
                _ => 0b111,
            };
            let csr = inst
                .csr
                .ok_or(EncodeError::MissingOperand { op, which: "csr" })?
                as u32;
            let src = if f3 & 0b100 == 0 {
                rs1()?
            } else {
                if !(0..32).contains(&imm) {
                    return Err(EncodeError::ImmOutOfRange { op, imm, bits: 5 });
                }
                imm as u32
            };
            (csr << 20) | (src << 15) | (f3 << 12) | (rd()? << 7) | OPC_SYSTEM
        }
        LrW | ScW | AmoSwapW | AmoAddW | AmoXorW | AmoAndW | AmoOrW | AmoMinW | AmoMaxW
        | AmoMinuW | AmoMaxuW | LrD | ScD | AmoSwapD | AmoAddD | AmoXorD | AmoAndD | AmoOrD
        | AmoMinD | AmoMaxD | AmoMinuD | AmoMaxuD => {
            let (f5, f3) = match op {
                LrW => (0b00010, 0b010),
                ScW => (0b00011, 0b010),
                AmoSwapW => (0b00001, 0b010),
                AmoAddW => (0b00000, 0b010),
                AmoXorW => (0b00100, 0b010),
                AmoAndW => (0b01100, 0b010),
                AmoOrW => (0b01000, 0b010),
                AmoMinW => (0b10000, 0b010),
                AmoMaxW => (0b10100, 0b010),
                AmoMinuW => (0b11000, 0b010),
                AmoMaxuW => (0b11100, 0b010),
                LrD => (0b00010, 0b011),
                ScD => (0b00011, 0b011),
                AmoSwapD => (0b00001, 0b011),
                AmoAddD => (0b00000, 0b011),
                AmoXorD => (0b00100, 0b011),
                AmoAndD => (0b01100, 0b011),
                AmoOrD => (0b01000, 0b011),
                AmoMinD => (0b10000, 0b011),
                AmoMaxD => (0b10100, 0b011),
                AmoMinuD => (0b11000, 0b011),
                _ => (0b11100, 0b011),
            };
            let rs2v = if matches!(op, LrW | LrD) { 0 } else { rs2()? };
            let f7 = (f5 << 2) | ((inst.aq as u32) << 1) | inst.rl as u32;
            enc_r(OPC_AMO, f3, f7, rd()?, rs1()?, rs2v)
        }
        Flw | Fld => {
            let f3 = if op == Flw { 0b010 } else { 0b011 };
            enc_i(OPC_LOAD_FP, f3, rd()?, rs1()?, check_simm(op, imm, 12)?)
        }
        Fsw | Fsd => {
            let f3 = if op == Fsw { 0b010 } else { 0b011 };
            enc_s(OPC_STORE_FP, f3, rs1()?, rs2()?, check_simm(op, imm, 12)?)
        }
        FmaddS | FmsubS | FnmsubS | FnmaddS | FmaddD | FmsubD | FnmsubD | FnmaddD => {
            let opc = match op {
                FmaddS | FmaddD => OPC_MADD,
                FmsubS | FmsubD => OPC_MSUB,
                FnmsubS | FnmsubD => OPC_NMSUB,
                _ => OPC_NMADD,
            };
            let fmt = if op.extension() == crate::ext::Extension::D {
                0b01
            } else {
                0b00
            };
            (rs3()? << 27)
                | (fmt << 25)
                | (rs2()? << 20)
                | (rs1()? << 15)
                | ((inst.rm as u32) << 12)
                | (rd()? << 7)
                | opc
        }
        _ => return encode_fp(inst),
    })
}

/// OP-FP major opcode encodings.
fn encode_fp(inst: &Instruction) -> R {
    use crate::decode::OPC_OP_FP;
    use Op::*;
    let op = inst.op;
    let rd = need(inst.rd, op, "rd")?;
    let rs1 = need(inst.rs1, op, "rs1")?;
    let rm = inst.rm as u32;
    // (sel, fmt, f3: None => rm, rs2: None => register operand)
    let (sel, dbl, f3, rs2sel): (u32, bool, Option<u32>, Option<u32>) = match op {
        FaddS => (0b00000, false, None, None),
        FsubS => (0b00001, false, None, None),
        FmulS => (0b00010, false, None, None),
        FdivS => (0b00011, false, None, None),
        FaddD => (0b00000, true, None, None),
        FsubD => (0b00001, true, None, None),
        FmulD => (0b00010, true, None, None),
        FdivD => (0b00011, true, None, None),
        FsqrtS => (0b01011, false, None, Some(0)),
        FsqrtD => (0b01011, true, None, Some(0)),
        FsgnjS => (0b00100, false, Some(0b000), None),
        FsgnjnS => (0b00100, false, Some(0b001), None),
        FsgnjxS => (0b00100, false, Some(0b010), None),
        FsgnjD => (0b00100, true, Some(0b000), None),
        FsgnjnD => (0b00100, true, Some(0b001), None),
        FsgnjxD => (0b00100, true, Some(0b010), None),
        FminS => (0b00101, false, Some(0b000), None),
        FmaxS => (0b00101, false, Some(0b001), None),
        FminD => (0b00101, true, Some(0b000), None),
        FmaxD => (0b00101, true, Some(0b001), None),
        FcvtSD => (0b01000, false, None, Some(1)),
        FcvtDS => (0b01000, true, None, Some(0)),
        FcvtWS => (0b11000, false, None, Some(0)),
        FcvtWuS => (0b11000, false, None, Some(1)),
        FcvtLS => (0b11000, false, None, Some(2)),
        FcvtLuS => (0b11000, false, None, Some(3)),
        FcvtWD => (0b11000, true, None, Some(0)),
        FcvtWuD => (0b11000, true, None, Some(1)),
        FcvtLD => (0b11000, true, None, Some(2)),
        FcvtLuD => (0b11000, true, None, Some(3)),
        FcvtSW => (0b11010, false, None, Some(0)),
        FcvtSWu => (0b11010, false, None, Some(1)),
        FcvtSL => (0b11010, false, None, Some(2)),
        FcvtSLu => (0b11010, false, None, Some(3)),
        FcvtDW => (0b11010, true, None, Some(0)),
        FcvtDWu => (0b11010, true, None, Some(1)),
        FcvtDL => (0b11010, true, None, Some(2)),
        FcvtDLu => (0b11010, true, None, Some(3)),
        FmvXW => (0b11100, false, Some(0b000), Some(0)),
        FclassS => (0b11100, false, Some(0b001), Some(0)),
        FmvXD => (0b11100, true, Some(0b000), Some(0)),
        FclassD => (0b11100, true, Some(0b001), Some(0)),
        FmvWX => (0b11110, false, Some(0b000), Some(0)),
        FmvDX => (0b11110, true, Some(0b000), Some(0)),
        FeqS => (0b10100, false, Some(0b010), None),
        FltS => (0b10100, false, Some(0b001), None),
        FleS => (0b10100, false, Some(0b000), None),
        FeqD => (0b10100, true, Some(0b010), None),
        FltD => (0b10100, true, Some(0b001), None),
        FleD => (0b10100, true, Some(0b000), None),
        _ => {
            return Err(EncodeError::MissingOperand {
                op,
                which: "unsupported op",
            })
        }
    };
    let f7 = (sel << 2) | if dbl { 1 } else { 0 };
    let f3v = f3.unwrap_or(rm);
    let rs2v = match rs2sel {
        Some(s) => s,
        None => need(inst.rs2, op, "rs2")?,
    };
    Ok((f7 << 25) | (rs2v << 20) | (rs1 << 15) | (f3v << 12) | (rd << 7) | OPC_OP_FP)
}

/// Encode `inst` as bytes: the compressed form if `inst.compressed` is set
/// (error if the operands no longer fit), otherwise the 32-bit form.
pub fn encode(inst: &Instruction) -> Result<Vec<u8>, EncodeError> {
    if inst.compressed.is_some() {
        if let Some(c) = compress(inst) {
            return Ok(c.to_le_bytes().to_vec());
        }
        // Operands no longer fit the compressed form: fall back to 32-bit.
    }
    Ok(encode32(inst)?.to_le_bytes().to_vec())
}

/// Attempt to produce a 2-byte C-extension encoding of `inst`.
///
/// Returns `None` when no compressed form exists for its operands. Used by
/// CodeGenAPI when the target profile includes the C extension.
pub fn compress(inst: &Instruction) -> Option<u16> {
    use Op::*;
    let rdn = inst.rd.map(|r| r.num() as u16);
    let rs1n = inst.rs1.map(|r| r.num() as u16);
    let rs2n = inst.rs2.map(|r| r.num() as u16);
    let imm = inst.imm;
    let prime = |r: Option<Reg>| -> Option<u16> {
        let r = r?;
        let n = r.num();
        if (8..16).contains(&n) {
            Some((n - 8) as u16)
        } else {
            None
        }
    };
    let fits =
        |v: i64, bits: u32| -> bool { v >= -(1i64 << (bits - 1)) && v < (1i64 << (bits - 1)) };

    match inst.op {
        Addi => {
            let rd = rdn?;
            let rs1 = rs1n?;
            // Canonical sp-adjustment form first: `c.addi sp, imm` also
            // exists when imm fits 6 bits, but compilers emit c.addi16sp.
            if rd == 2 && rs1 == 2 && imm != 0 && imm % 16 == 0 && fits(imm, 10) {
                let u = (imm as u16) & 0x3FF;
                return Some(
                    (0b011 << 13)
                        | (((u >> 9) & 1) << 12)
                        | (2 << 7)
                        | (((u >> 4) & 1) << 6)
                        | (((u >> 6) & 1) << 5)
                        | (((u >> 7) & 3) << 3)
                        | (((u >> 5) & 1) << 2)
                        | 0b01,
                );
            }
            if rd == rs1 && fits(imm, 6) && (rd != 0 || imm == 0) {
                // c.addi (c.nop when rd==0, imm==0)
                let u = (imm as u16) & 0x3F;
                return Some((((u >> 5) & 1) << 12) | (rd << 7) | ((u & 0x1F) << 2) | 0b01);
            }
            if rs1 == 0 && rd != 0 && fits(imm, 6) {
                // c.li
                let u = (imm as u16) & 0x3F;
                return Some(
                    (0b010 << 13) | (((u >> 5) & 1) << 12) | (rd << 7) | ((u & 0x1F) << 2) | 0b01,
                );
            }
            if rs1 == 2 && imm > 0 && imm % 4 == 0 && imm < 1024 {
                if let Some(rdp) = prime(inst.rd) {
                    // c.addi4spn
                    let u = imm as u16;
                    return Some(
                        (((u >> 4) & 3) << 11)
                            | (((u >> 6) & 0xF) << 7)
                            | (((u >> 2) & 1) << 6)
                            | (((u >> 3) & 1) << 5)
                            | (rdp << 2),
                    );
                }
            }
            None
        }
        Addiw => {
            let rd = rdn?;
            if rd != 0 && rd == rs1n? && fits(imm, 6) {
                let u = (imm as u16) & 0x3F;
                return Some(
                    (0b001 << 13) | (((u >> 5) & 1) << 12) | (rd << 7) | ((u & 0x1F) << 2) | 0b01,
                );
            }
            None
        }
        Lui => {
            let rd = rdn?;
            // imm is the full shifted value; c.lui expresses imm[17:12].
            if rd != 0 && rd != 2 && imm != 0 && imm % 0x1000 == 0 && fits(imm, 18) {
                let hi = ((imm >> 12) as u16) & 0x3F;
                return Some(
                    (0b011 << 13) | (((hi >> 5) & 1) << 12) | (rd << 7) | ((hi & 0x1F) << 2) | 0b01,
                );
            }
            None
        }
        Add => {
            let rd = rdn?;
            let rs2 = rs2n?;
            if rd != 0 && rs2 != 0 {
                if rs1n? == 0 {
                    // c.mv
                    return Some((0b100 << 13) | (rd << 7) | (rs2 << 2) | 0b10);
                }
                if rs1n? == rd {
                    // c.add
                    return Some((0b100 << 13) | (1 << 12) | (rd << 7) | (rs2 << 2) | 0b10);
                }
            }
            None
        }
        Sub | Xor | Or | And | Subw | Addw => {
            let rdp = prime(inst.rd)?;
            if inst.rs1 != inst.rd {
                return None;
            }
            let rs2p = prime(inst.rs2)?;
            let (hi, f2) = match inst.op {
                Sub => (0, 0b00),
                Xor => (0, 0b01),
                Or => (0, 0b10),
                And => (0, 0b11),
                Subw => (1, 0b00),
                _ => (1, 0b01),
            };
            Some(
                (0b100u16 << 13)
                    | (hi << 12)
                    | (0b11 << 10)
                    | (rdp << 7)
                    | (f2 << 5)
                    | (rs2p << 2)
                    | 0b01,
            )
        }
        Andi => {
            let rdp = prime(inst.rd)?;
            if inst.rs1 != inst.rd || !fits(imm, 6) {
                return None;
            }
            let u = (imm as u16) & 0x3F;
            Some(
                (0b100u16 << 13)
                    | (((u >> 5) & 1) << 12)
                    | (0b10 << 10)
                    | (rdp << 7)
                    | ((u & 0x1F) << 2)
                    | 0b01,
            )
        }
        Slli => {
            let rd = rdn?;
            if rd != 0 && rs1n? == rd && (0..64).contains(&imm) && imm != 0 {
                let u = imm as u16;
                return Some((((u >> 5) & 1) << 12) | (rd << 7) | ((u & 0x1F) << 2) | 0b10);
            }
            None
        }
        Srli | Srai => {
            let rdp = prime(inst.rd)?;
            if inst.rs1 != inst.rd || !(0..64).contains(&imm) || imm == 0 {
                return None;
            }
            let f2 = if inst.op == Srli { 0b00 } else { 0b01 };
            let u = imm as u16;
            Some(
                (0b100u16 << 13)
                    | (((u >> 5) & 1) << 12)
                    | (f2 << 10)
                    | (rdp << 7)
                    | ((u & 0x1F) << 2)
                    | 0b01,
            )
        }
        Jal => {
            if rdn? != 0 || !fits(imm, 12) || imm & 1 != 0 {
                return None;
            }
            let u = (imm as u16) & 0xFFF;
            Some(
                (0b101u16 << 13)
                    | (((u >> 11) & 1) << 12)
                    | (((u >> 4) & 1) << 11)
                    | (((u >> 8) & 3) << 9)
                    | (((u >> 10) & 1) << 8)
                    | (((u >> 6) & 1) << 7)
                    | (((u >> 7) & 1) << 6)
                    | (((u >> 1) & 7) << 3)
                    | (((u >> 5) & 1) << 2)
                    | 0b01,
            )
        }
        Jalr => {
            let rs1 = rs1n?;
            if imm != 0 || rs1 == 0 {
                return None;
            }
            match rdn? {
                0 => Some((0b100u16 << 13) | (rs1 << 7) | 0b10), // c.jr
                1 => Some((0b100u16 << 13) | (1 << 12) | (rs1 << 7) | 0b10), // c.jalr
                _ => None,
            }
        }
        Beq | Bne => {
            let rs1p = prime(inst.rs1)?;
            if inst.rs2 != Some(Reg::X0) || !fits(imm, 9) || imm & 1 != 0 {
                return None;
            }
            let f3 = if inst.op == Beq { 0b110u16 } else { 0b111 };
            let u = (imm as u16) & 0x1FF;
            Some(
                (f3 << 13)
                    | (((u >> 8) & 1) << 12)
                    | (((u >> 3) & 3) << 10)
                    | (rs1p << 7)
                    | (((u >> 6) & 3) << 5)
                    | (((u >> 1) & 3) << 3)
                    | (((u >> 5) & 1) << 2)
                    | 0b01,
            )
        }
        Ebreak => Some((0b100u16 << 13) | (1 << 12) | 0b10),
        Lw | Ld | Fld | Sw | Sd | Fsd => compress_mem(inst),
        _ => None,
    }
}

/// Compressed load/store forms (both the sp-relative and "prime register"
/// variants).
fn compress_mem(inst: &Instruction) -> Option<u16> {
    use Op::*;
    let imm = inst.imm;
    let is_load = inst.op.is_load();
    let data = if is_load { inst.rd? } else { inst.rs2? };
    let base = inst.rs1?;
    let datan = data.num() as u16;

    // sp-relative forms require an x-class data register for lw/ld and work
    // for any register number.
    if base == Reg::X2 {
        match (inst.op, is_load) {
            (Lw, true) if datan != 0 && imm % 4 == 0 && (0..256).contains(&imm) => {
                let u = imm as u16;
                return Some(
                    (0b010u16 << 13)
                        | (((u >> 5) & 1) << 12)
                        | (datan << 7)
                        | (((u >> 2) & 7) << 4)
                        | (((u >> 6) & 3) << 2)
                        | 0b10,
                );
            }
            (Ld, true) | (Fld, true) if imm % 8 == 0 && (0..512).contains(&imm) => {
                if inst.op == Ld && datan == 0 {
                    return None;
                }
                let f3 = if inst.op == Ld { 0b011u16 } else { 0b001 };
                let u = imm as u16;
                return Some(
                    (f3 << 13)
                        | (((u >> 5) & 1) << 12)
                        | (datan << 7)
                        | (((u >> 3) & 3) << 5)
                        | (((u >> 6) & 7) << 2)
                        | 0b10,
                );
            }
            (Sw, false) if imm % 4 == 0 && (0..256).contains(&imm) => {
                let u = imm as u16;
                return Some(
                    (0b110u16 << 13)
                        | (((u >> 2) & 0xF) << 9)
                        | (((u >> 6) & 3) << 7)
                        | (datan << 2)
                        | 0b10,
                );
            }
            (Sd, false) | (Fsd, false) if imm % 8 == 0 && (0..512).contains(&imm) => {
                let f3 = if inst.op == Sd { 0b111u16 } else { 0b101 };
                let u = imm as u16;
                return Some(
                    (f3 << 13)
                        | (((u >> 3) & 7) << 10)
                        | (((u >> 6) & 7) << 7)
                        | (datan << 2)
                        | 0b10,
                );
            }
            _ => {}
        }
    }

    // Prime-register forms.
    let basen = base.num();
    if !(8..16).contains(&basen) || !(8..16).contains(&data.num()) {
        return None;
    }
    let bp = (basen - 8) as u16;
    let dp = (data.num() - 8) as u16;
    match inst.op {
        Lw | Sw if imm % 4 == 0 && (0..128).contains(&imm) => {
            let f3 = if is_load { 0b010u16 } else { 0b110 };
            let u = imm as u16;
            Some(
                (f3 << 13)
                    | (((u >> 3) & 7) << 10)
                    | (bp << 7)
                    | (((u >> 2) & 1) << 6)
                    | (((u >> 6) & 1) << 5)
                    | (dp << 2),
            )
        }
        Ld | Sd | Fld | Fsd if imm % 8 == 0 && (0..256).contains(&imm) => {
            let f3 = match inst.op {
                Ld => 0b011u16,
                Sd => 0b111,
                Fld => 0b001,
                _ => 0b101,
            };
            // Fld/Fsd data registers are FPRs; the check above used num()
            // which is class-agnostic, as the compressed format requires.
            if matches!(inst.op, Ld | Sd) && data.class() != RegClass::Gpr {
                return None;
            }
            let u = imm as u16;
            Some(
                (f3 << 13) | (((u >> 3) & 7) << 10) | (bp << 7) | (((u >> 6) & 3) << 5) | (dp << 2),
            )
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode, decode32};
    use crate::decode_c::decode_compressed;

    fn round_trip32(raw: u32) {
        let i = decode32(raw, 0x1000).unwrap();
        let re = encode32(&i).unwrap();
        assert_eq!(re, raw, "round-trip failed for {}", i.mnemonic());
    }

    #[test]
    fn round_trip_core_encodings() {
        for raw in [
            0xFFD5_8513u32, // addi a0, a1, -3
            0x1234_5537,    // lui a0, 0x12345
            0x8000_0517,    // auipc a0, -0x80000
            0x0080_00EF,    // jal ra, +8
            0x0000_0073,    // ecall
            0x0010_0073,    // ebreak
        ] {
            round_trip32(raw);
        }
    }

    #[test]
    fn compress_decompress_identity() {
        // Build addi a0, a0, 5 and verify the compressed round trip.
        let mut i = Instruction::new(0, 0, 4, Op::Addi);
        i.rd = Some(Reg::x(10));
        i.rs1 = Some(Reg::x(10));
        i.imm = 5;
        let c = compress(&i).expect("compressible");
        let d = decode_compressed(c, 0).unwrap();
        assert_eq!(d.op, Op::Addi);
        assert_eq!(d.rd, i.rd);
        assert_eq!(d.rs1, i.rs1);
        assert_eq!(d.imm, 5);
    }

    #[test]
    fn compress_cj_range() {
        let mut i = Instruction::new(0, 0, 4, Op::Jal);
        i.rd = Some(Reg::X0);
        i.imm = 2046;
        assert!(compress(&i).is_some());
        i.imm = 2048; // out of ±2 KiB
        assert!(compress(&i).is_none());
        i.imm = -2048;
        assert!(compress(&i).is_some());
        i.rd = Some(Reg::X1); // RV64 has no c.jal
        i.imm = 4;
        assert!(compress(&i).is_none());
    }

    #[test]
    fn compress_sp_loads() {
        let mut i = Instruction::new(0, 0, 4, Op::Ld);
        i.rd = Some(Reg::x(1));
        i.rs1 = Some(Reg::X2);
        i.imm = 504;
        let c = compress(&i).unwrap();
        let d = decode_compressed(c, 0).unwrap();
        assert_eq!(d.op, Op::Ld);
        assert_eq!(d.imm, 504);
        i.imm = 512;
        assert!(compress(&i).is_none());
    }

    #[test]
    fn compress_fsd_prime() {
        let mut i = Instruction::new(0, 0, 4, Op::Fsd);
        i.rs1 = Some(Reg::x(10));
        i.rs2 = Some(Reg::f(10));
        i.imm = 0;
        let c = compress(&i).unwrap();
        let d = decode_compressed(c, 0).unwrap();
        assert_eq!(d.op, Op::Fsd);
        assert_eq!(d.rs2, Some(Reg::f(10)));
    }

    #[test]
    fn branch_encoding_range_checks() {
        let mut i = Instruction::new(0, 0, 4, Op::Beq);
        i.rs1 = Some(Reg::x(10));
        i.rs2 = Some(Reg::x(11));
        i.imm = 4096; // beyond ±4 KiB
        assert!(matches!(
            encode32(&i),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
        i.imm = 3; // misaligned
        assert!(matches!(encode32(&i), Err(EncodeError::Misaligned { .. })));
        i.imm = 4094;
        assert!(encode32(&i).is_ok());
    }

    #[test]
    fn jal_range_checks() {
        let mut i = Instruction::new(0, 0, 4, Op::Jal);
        i.rd = Some(Reg::X0);
        i.imm = 1 << 20; // beyond ±1 MiB
        assert!(encode32(&i).is_err());
        i.imm = (1 << 20) - 2;
        assert!(encode32(&i).is_ok());
    }

    #[test]
    fn encode_honours_compressed_fallback() {
        // An instruction decoded as compressed but edited out of range must
        // re-encode as 32-bit.
        let mut i = decode(&0x0001u16.to_le_bytes(), 0).unwrap(); // c.nop
        i.imm = 1000; // no longer fits c.addi
        let bytes = encode(&i).unwrap();
        assert_eq!(bytes.len(), 4);
        let d = decode(&bytes, 0).unwrap();
        assert_eq!(d.op, Op::Addi);
        assert_eq!(d.imm, 1000);
    }

    #[test]
    fn fp_round_trips() {
        // fadd.d fa0, fa1, fa2 (rm=dyn)
        let raw = (0b0000001 << 25) | (12 << 20) | (11 << 15) | (0b111 << 12) | (10 << 7) | 0x53;
        round_trip32(raw);
        // fmadd.d
        let raw =
            (13 << 27) | (0b01 << 25) | (12 << 20) | (11 << 15) | (0b111 << 12) | (10 << 7) | 0x43;
        round_trip32(raw);
        // fcvt.d.l
        let raw = (0b1101001 << 25) | (2 << 20) | (11 << 15) | (0b111 << 12) | (10 << 7) | 0x53;
        round_trip32(raw);
    }
}
