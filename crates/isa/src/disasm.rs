//! Textual disassembly, in the style of `objdump -d` with ABI register
//! names. Used by the examples and for diagnostics throughout rvdyn.

use crate::inst::Instruction;
use crate::op::Op;
use std::fmt::Write as _;

/// Human name of a CSR number, when standard (used by the CSR forms).
pub fn csr_name(csr: u16) -> Option<&'static str> {
    Some(match csr {
        0x001 => "fflags",
        0x002 => "frm",
        0x003 => "fcsr",
        0xC00 => "cycle",
        0xC01 => "time",
        0xC02 => "instret",
        _ => return None,
    })
}

/// Render `inst` as assembler text (e.g. `addi a0, sp, 16` or
/// `bne a1, zero, 0x10432`). PC-relative targets are shown resolved.
pub fn format_instruction(inst: &Instruction) -> String {
    let mut s = String::with_capacity(32);
    s.push_str(inst.mnemonic());
    let pad = s.len().max(8);
    while s.len() < pad + 1 {
        s.push(' ');
    }

    let rd = inst.rd.map(|r| r.abi_name());
    let rs1 = inst.rs1.map(|r| r.abi_name());
    let rs2 = inst.rs2.map(|r| r.abi_name());

    match inst.op {
        Op::Lui | Op::Auipc => {
            let _ = write!(
                s,
                "{}, {:#x}",
                rd.unwrap(),
                (inst.imm as u64 >> 12) & 0xFFFFF
            );
        }
        Op::Jal => {
            let target = inst.address.wrapping_add(inst.imm as u64);
            let _ = write!(s, "{}, {:#x}", rd.unwrap(), target);
        }
        Op::Jalr => {
            let _ = write!(s, "{}, {}({})", rd.unwrap(), inst.imm, rs1.unwrap());
        }
        op if op.is_conditional_branch() => {
            let target = inst.address.wrapping_add(inst.imm as u64);
            let _ = write!(s, "{}, {}, {:#x}", rs1.unwrap(), rs2.unwrap(), target);
        }
        op if op.is_load() && !op.is_atomic() => {
            let _ = write!(s, "{}, {}({})", rd.unwrap(), inst.imm, rs1.unwrap());
        }
        op if op.is_store() && !op.is_atomic() => {
            let _ = write!(s, "{}, {}({})", rs2.unwrap(), inst.imm, rs1.unwrap());
        }
        op if op.is_atomic() => match (rd, rs2) {
            (Some(d), Some(v)) => {
                let _ = write!(s, "{}, {}, ({})", d, v, rs1.unwrap());
            }
            (Some(d), None) => {
                let _ = write!(s, "{}, ({})", d, rs1.unwrap());
            }
            _ => {}
        },
        Op::Ecall | Op::Ebreak | Op::Fence | Op::FenceI => {
            // no operands shown
            while s.ends_with(' ') {
                s.pop();
            }
        }
        Op::Csrrw | Op::Csrrs | Op::Csrrc => {
            let c = inst.csr.unwrap_or(0);
            match csr_name(c) {
                Some(n) => {
                    let _ = write!(s, "{}, {}, {}", rd.unwrap(), n, rs1.unwrap());
                }
                None => {
                    let _ = write!(s, "{}, {:#x}, {}", rd.unwrap(), c, rs1.unwrap());
                }
            }
        }
        Op::Csrrwi | Op::Csrrsi | Op::Csrrci => {
            let c = inst.csr.unwrap_or(0);
            match csr_name(c) {
                Some(n) => {
                    let _ = write!(s, "{}, {}, {}", rd.unwrap(), n, inst.imm);
                }
                None => {
                    let _ = write!(s, "{}, {:#x}, {}", rd.unwrap(), c, inst.imm);
                }
            }
        }
        Op::Slli | Op::Srli | Op::Srai | Op::Slliw | Op::Srliw | Op::Sraiw => {
            let _ = write!(s, "{}, {}, {}", rd.unwrap(), rs1.unwrap(), inst.imm);
        }
        Op::Addi | Op::Slti | Op::Sltiu | Op::Xori | Op::Ori | Op::Andi | Op::Addiw => {
            let _ = write!(s, "{}, {}, {}", rd.unwrap(), rs1.unwrap(), inst.imm);
        }
        _ => {
            // register-register forms (including FP)
            let mut parts: Vec<&str> = Vec::with_capacity(4);
            if let Some(r) = rd {
                parts.push(r);
            }
            if let Some(r) = rs1 {
                parts.push(r);
            }
            if let Some(r) = rs2 {
                parts.push(r);
            }
            let rs3 = inst.rs3.map(|r| r.abi_name());
            if let Some(r) = rs3 {
                parts.push(r);
            }
            let _ = write!(s, "{}", parts.join(", "));
        }
    }
    s
}

/// Disassemble a buffer to one line per instruction:
/// `address:  raw-bytes  mnemonic operands`.
pub fn disassemble(buf: &[u8], base: u64) -> String {
    let mut out = String::new();
    for item in crate::decode::InstructionIter::new(buf, base) {
        match item {
            Ok(i) => {
                let rawtxt = if i.size == 2 {
                    format!("{:04x}    ", i.raw as u16)
                } else {
                    format!("{:08x}", i.raw)
                };
                let _ = writeln!(
                    out,
                    "{:#10x}:  {}  {}",
                    i.address,
                    rawtxt,
                    format_instruction(&i)
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{:#10x}:  <invalid: {}>", e.address(), e);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode32;

    #[test]
    fn formats_common_forms() {
        let i = decode32(0xFFD5_8513, 0x1000).unwrap();
        assert_eq!(format_instruction(&i), "addi     a0, a1, -3");
        let i = decode32(0x0080_00EF, 0x1000).unwrap();
        assert_eq!(format_instruction(&i), "jal      ra, 0x1008");
        let i = decode32(0x0000_0073, 0).unwrap();
        assert_eq!(format_instruction(&i), "ecall");
    }

    #[test]
    fn formats_memory_ops() {
        let raw = (16 << 20) | (2 << 15) | (0b011 << 12) | (10 << 7) | 0x03; // ld a0,16(sp)
        let i = decode32(raw, 0).unwrap();
        assert_eq!(format_instruction(&i), "ld       a0, 16(sp)");
    }

    #[test]
    fn compressed_mnemonics_shown() {
        let i = crate::decode::decode(&0x0001u16.to_le_bytes(), 0).unwrap();
        assert!(format_instruction(&i).starts_with("c.nop"));
    }

    #[test]
    fn disassemble_stream() {
        let mut buf = vec![];
        buf.extend_from_slice(&0xFFD5_8513u32.to_le_bytes());
        buf.extend_from_slice(&0x0001u16.to_le_bytes());
        let text = disassemble(&buf, 0x1000);
        assert!(text.contains("addi"));
        assert!(text.contains("c.nop"));
        assert!(text.contains("0x1004"));
    }
}
