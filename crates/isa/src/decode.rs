//! RV64GC instruction decoder.
//!
//! Entry points: [`decode`] (one instruction from bytes), [`decode_at`]
//! (convenience taking a full buffer plus offset), and [`InstructionIter`]
//! (stream decoding, skipping nothing). 16-bit encodings are handled by
//! [`crate::decode_c`]; this module covers the 32-bit space.

use crate::decode_c::decode_compressed;
use crate::error::DecodeError;
use crate::inst::Instruction;
use crate::op::Op;
use crate::reg::Reg;

// Major opcode values (bits 6:0 of a 32-bit encoding).
pub(crate) const OPC_LOAD: u32 = 0b000_0011;
pub(crate) const OPC_LOAD_FP: u32 = 0b000_0111;
pub(crate) const OPC_MISC_MEM: u32 = 0b000_1111;
pub(crate) const OPC_OP_IMM: u32 = 0b001_0011;
pub(crate) const OPC_AUIPC: u32 = 0b001_0111;
pub(crate) const OPC_OP_IMM_32: u32 = 0b001_1011;
pub(crate) const OPC_STORE: u32 = 0b010_0011;
pub(crate) const OPC_STORE_FP: u32 = 0b010_0111;
pub(crate) const OPC_AMO: u32 = 0b010_1111;
pub(crate) const OPC_OP: u32 = 0b011_0011;
pub(crate) const OPC_LUI: u32 = 0b011_0111;
pub(crate) const OPC_OP_32: u32 = 0b011_1011;
pub(crate) const OPC_MADD: u32 = 0b100_0011;
pub(crate) const OPC_MSUB: u32 = 0b100_0111;
pub(crate) const OPC_NMSUB: u32 = 0b100_1011;
pub(crate) const OPC_NMADD: u32 = 0b100_1111;
pub(crate) const OPC_OP_FP: u32 = 0b101_0011;
pub(crate) const OPC_BRANCH: u32 = 0b110_0011;
pub(crate) const OPC_JALR: u32 = 0b110_0111;
pub(crate) const OPC_JAL: u32 = 0b110_1111;
pub(crate) const OPC_SYSTEM: u32 = 0b111_0011;

#[inline]
fn bits(raw: u32, hi: u32, lo: u32) -> u32 {
    (raw >> lo) & ((1u32 << (hi - lo + 1)) - 1)
}

#[inline]
fn rd_x(raw: u32) -> Reg {
    Reg::x(bits(raw, 11, 7) as u8)
}
#[inline]
fn rs1_x(raw: u32) -> Reg {
    Reg::x(bits(raw, 19, 15) as u8)
}
#[inline]
fn rs2_x(raw: u32) -> Reg {
    Reg::x(bits(raw, 24, 20) as u8)
}
#[inline]
fn rd_f(raw: u32) -> Reg {
    Reg::f(bits(raw, 11, 7) as u8)
}
#[inline]
fn rs1_f(raw: u32) -> Reg {
    Reg::f(bits(raw, 19, 15) as u8)
}
#[inline]
fn rs2_f(raw: u32) -> Reg {
    Reg::f(bits(raw, 24, 20) as u8)
}
#[inline]
fn rs3_f(raw: u32) -> Reg {
    Reg::f(bits(raw, 31, 27) as u8)
}

/// Sign-extend the low `width` bits of `v`.
#[inline]
pub(crate) fn sext(v: u32, width: u32) -> i64 {
    let shift = 64 - width;
    (((v as u64) << shift) as i64) >> shift
}

#[inline]
fn imm_i(raw: u32) -> i64 {
    sext(bits(raw, 31, 20), 12)
}

#[inline]
fn imm_s(raw: u32) -> i64 {
    sext((bits(raw, 31, 25) << 5) | bits(raw, 11, 7), 12)
}

#[inline]
fn imm_b(raw: u32) -> i64 {
    let v = (bits(raw, 31, 31) << 12)
        | (bits(raw, 7, 7) << 11)
        | (bits(raw, 30, 25) << 5)
        | (bits(raw, 11, 8) << 1);
    sext(v, 13)
}

#[inline]
fn imm_u(raw: u32) -> i64 {
    // Kept as the full shifted 32-bit value, sign-extended (RV64 semantics).
    sext(raw & 0xFFFF_F000, 32)
}

#[inline]
fn imm_j(raw: u32) -> i64 {
    let v = (bits(raw, 31, 31) << 20)
        | (bits(raw, 19, 12) << 12)
        | (bits(raw, 20, 20) << 11)
        | (bits(raw, 30, 21) << 1);
    sext(v, 21)
}

/// Decode a single instruction starting at `bytes[0]`, which the caller
/// asserts lives at `address`. Returns the instruction; its `size` tells
/// the caller how far to advance (2 or 4).
pub fn decode(bytes: &[u8], address: u64) -> Result<Instruction, DecodeError> {
    if bytes.len() < 2 {
        return Err(DecodeError::Truncated {
            address,
            have: bytes.len(),
            need: 2,
        });
    }
    let lo = u16::from_le_bytes([bytes[0], bytes[1]]);
    if lo & 0b11 != 0b11 {
        // 16-bit (compressed) encoding.
        return decode_compressed(lo, address);
    }
    if lo & 0b11100 == 0b11100 {
        // 48-bit+ encodings are reserved; we do not support them.
        return Err(DecodeError::Invalid {
            address,
            raw: lo as u32,
        });
    }
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated {
            address,
            have: bytes.len(),
            need: 4,
        });
    }
    let raw = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if raw == 0 || raw == 0xFFFF_FFFF {
        return Err(DecodeError::DefinedIllegal { address });
    }
    decode32(raw, address)
}

/// Decode at `offset` within `buf`, where `buf[0]` lives at `base`.
pub fn decode_at(buf: &[u8], base: u64, offset: usize) -> Result<Instruction, DecodeError> {
    decode(&buf[offset..], base + offset as u64)
}

/// Decode a 32-bit encoding.
pub fn decode32(raw: u32, address: u64) -> Result<Instruction, DecodeError> {
    let invalid = || DecodeError::Invalid { address, raw };
    let opcode = raw & 0x7F;
    let f3 = bits(raw, 14, 12);
    let f7 = bits(raw, 31, 25);
    let mut i;
    match opcode {
        OPC_LUI | OPC_AUIPC => {
            let op = if opcode == OPC_LUI {
                Op::Lui
            } else {
                Op::Auipc
            };
            i = Instruction::new(address, raw, 4, op);
            i.rd = Some(rd_x(raw));
            i.imm = imm_u(raw);
        }
        OPC_JAL => {
            i = Instruction::new(address, raw, 4, Op::Jal);
            i.rd = Some(rd_x(raw));
            i.imm = imm_j(raw);
        }
        OPC_JALR => {
            if f3 != 0 {
                return Err(invalid());
            }
            i = Instruction::new(address, raw, 4, Op::Jalr);
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_x(raw));
            i.imm = imm_i(raw);
        }
        OPC_BRANCH => {
            let op = match f3 {
                0b000 => Op::Beq,
                0b001 => Op::Bne,
                0b100 => Op::Blt,
                0b101 => Op::Bge,
                0b110 => Op::Bltu,
                0b111 => Op::Bgeu,
                _ => return Err(invalid()),
            };
            i = Instruction::new(address, raw, 4, op);
            i.rs1 = Some(rs1_x(raw));
            i.rs2 = Some(rs2_x(raw));
            i.imm = imm_b(raw);
        }
        OPC_LOAD => {
            let op = match f3 {
                0b000 => Op::Lb,
                0b001 => Op::Lh,
                0b010 => Op::Lw,
                0b011 => Op::Ld,
                0b100 => Op::Lbu,
                0b101 => Op::Lhu,
                0b110 => Op::Lwu,
                _ => return Err(invalid()),
            };
            i = Instruction::new(address, raw, 4, op);
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_x(raw));
            i.imm = imm_i(raw);
        }
        OPC_STORE => {
            let op = match f3 {
                0b000 => Op::Sb,
                0b001 => Op::Sh,
                0b010 => Op::Sw,
                0b011 => Op::Sd,
                _ => return Err(invalid()),
            };
            i = Instruction::new(address, raw, 4, op);
            i.rs1 = Some(rs1_x(raw));
            i.rs2 = Some(rs2_x(raw));
            i.imm = imm_s(raw);
        }
        OPC_OP_IMM => {
            i = Instruction::new(address, raw, 4, Op::Addi);
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_x(raw));
            match f3 {
                0b000 => i.op = Op::Addi,
                0b010 => i.op = Op::Slti,
                0b011 => i.op = Op::Sltiu,
                0b100 => i.op = Op::Xori,
                0b110 => i.op = Op::Ori,
                0b111 => i.op = Op::Andi,
                0b001 => {
                    // RV64: 6-bit shamt, funct6 must be 0.
                    if bits(raw, 31, 26) != 0 {
                        return Err(invalid());
                    }
                    i.op = Op::Slli;
                    i.imm = bits(raw, 25, 20) as i64;
                    return Ok(i);
                }
                0b101 => {
                    match bits(raw, 31, 26) {
                        0b000000 => i.op = Op::Srli,
                        0b010000 => i.op = Op::Srai,
                        _ => return Err(invalid()),
                    }
                    i.imm = bits(raw, 25, 20) as i64;
                    return Ok(i);
                }
                _ => return Err(invalid()),
            }
            i.imm = imm_i(raw);
        }
        OPC_OP_IMM_32 => {
            i = Instruction::new(address, raw, 4, Op::Addiw);
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_x(raw));
            match f3 {
                0b000 => {
                    i.op = Op::Addiw;
                    i.imm = imm_i(raw);
                }
                0b001 => {
                    if f7 != 0 {
                        return Err(invalid());
                    }
                    i.op = Op::Slliw;
                    i.imm = bits(raw, 24, 20) as i64;
                }
                0b101 => {
                    match f7 {
                        0b0000000 => i.op = Op::Srliw,
                        0b0100000 => i.op = Op::Sraiw,
                        _ => return Err(invalid()),
                    }
                    i.imm = bits(raw, 24, 20) as i64;
                }
                _ => return Err(invalid()),
            }
        }
        OPC_OP => {
            let op = match (f7, f3) {
                (0b0000000, 0b000) => Op::Add,
                (0b0100000, 0b000) => Op::Sub,
                (0b0000000, 0b001) => Op::Sll,
                (0b0000000, 0b010) => Op::Slt,
                (0b0000000, 0b011) => Op::Sltu,
                (0b0000000, 0b100) => Op::Xor,
                (0b0000000, 0b101) => Op::Srl,
                (0b0100000, 0b101) => Op::Sra,
                (0b0000000, 0b110) => Op::Or,
                (0b0000000, 0b111) => Op::And,
                (0b0000001, 0b000) => Op::Mul,
                (0b0000001, 0b001) => Op::Mulh,
                (0b0000001, 0b010) => Op::Mulhsu,
                (0b0000001, 0b011) => Op::Mulhu,
                (0b0000001, 0b100) => Op::Div,
                (0b0000001, 0b101) => Op::Divu,
                (0b0000001, 0b110) => Op::Rem,
                (0b0000001, 0b111) => Op::Remu,
                _ => return Err(invalid()),
            };
            i = Instruction::new(address, raw, 4, op);
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_x(raw));
            i.rs2 = Some(rs2_x(raw));
        }
        OPC_OP_32 => {
            let op = match (f7, f3) {
                (0b0000000, 0b000) => Op::Addw,
                (0b0100000, 0b000) => Op::Subw,
                (0b0000000, 0b001) => Op::Sllw,
                (0b0000000, 0b101) => Op::Srlw,
                (0b0100000, 0b101) => Op::Sraw,
                (0b0000001, 0b000) => Op::Mulw,
                (0b0000001, 0b100) => Op::Divw,
                (0b0000001, 0b101) => Op::Divuw,
                (0b0000001, 0b110) => Op::Remw,
                (0b0000001, 0b111) => Op::Remuw,
                _ => return Err(invalid()),
            };
            i = Instruction::new(address, raw, 4, op);
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_x(raw));
            i.rs2 = Some(rs2_x(raw));
        }
        OPC_MISC_MEM => {
            let op = match f3 {
                0b000 => Op::Fence,
                0b001 => Op::FenceI,
                _ => return Err(invalid()),
            };
            i = Instruction::new(address, raw, 4, op);
            // The pred/succ sets live in imm, and the (reserved, hint-only)
            // rd/rs1 fields are preserved so re-encoding is exact.
            i.imm = bits(raw, 31, 20) as i64;
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_x(raw));
        }
        OPC_SYSTEM => {
            match f3 {
                0b000 => {
                    let op = match bits(raw, 31, 20) {
                        0 => Op::Ecall,
                        1 => Op::Ebreak,
                        _ => return Err(invalid()),
                    };
                    if bits(raw, 19, 7) != 0 {
                        return Err(invalid());
                    }
                    i = Instruction::new(address, raw, 4, op);
                }
                0b001 | 0b010 | 0b011 | 0b101 | 0b110 | 0b111 => {
                    let op = match f3 {
                        0b001 => Op::Csrrw,
                        0b010 => Op::Csrrs,
                        0b011 => Op::Csrrc,
                        0b101 => Op::Csrrwi,
                        0b110 => Op::Csrrsi,
                        _ => Op::Csrrci,
                    };
                    i = Instruction::new(address, raw, 4, op);
                    i.rd = Some(rd_x(raw));
                    i.csr = Some(bits(raw, 31, 20) as u16);
                    if f3 & 0b100 == 0 {
                        i.rs1 = Some(rs1_x(raw));
                    } else {
                        // zimm: 5-bit unsigned immediate in the rs1 field.
                        i.imm = bits(raw, 19, 15) as i64;
                    }
                }
                _ => return Err(invalid()),
            }
        }
        OPC_AMO => {
            let width_d = match f3 {
                0b010 => false,
                0b011 => true,
                _ => return Err(invalid()),
            };
            let f5 = bits(raw, 31, 27);
            let op = match (f5, width_d) {
                (0b00010, false) => Op::LrW,
                (0b00011, false) => Op::ScW,
                (0b00001, false) => Op::AmoSwapW,
                (0b00000, false) => Op::AmoAddW,
                (0b00100, false) => Op::AmoXorW,
                (0b01100, false) => Op::AmoAndW,
                (0b01000, false) => Op::AmoOrW,
                (0b10000, false) => Op::AmoMinW,
                (0b10100, false) => Op::AmoMaxW,
                (0b11000, false) => Op::AmoMinuW,
                (0b11100, false) => Op::AmoMaxuW,
                (0b00010, true) => Op::LrD,
                (0b00011, true) => Op::ScD,
                (0b00001, true) => Op::AmoSwapD,
                (0b00000, true) => Op::AmoAddD,
                (0b00100, true) => Op::AmoXorD,
                (0b01100, true) => Op::AmoAndD,
                (0b01000, true) => Op::AmoOrD,
                (0b10000, true) => Op::AmoMinD,
                (0b10100, true) => Op::AmoMaxD,
                (0b11000, true) => Op::AmoMinuD,
                (0b11100, true) => Op::AmoMaxuD,
                _ => return Err(invalid()),
            };
            if matches!(op, Op::LrW | Op::LrD) && bits(raw, 24, 20) != 0 {
                return Err(invalid());
            }
            i = Instruction::new(address, raw, 4, op);
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_x(raw));
            if !matches!(op, Op::LrW | Op::LrD) {
                i.rs2 = Some(rs2_x(raw));
            }
            i.aq = bits(raw, 26, 26) != 0;
            i.rl = bits(raw, 25, 25) != 0;
        }
        OPC_LOAD_FP => {
            let op = match f3 {
                0b010 => Op::Flw,
                0b011 => Op::Fld,
                _ => return Err(invalid()),
            };
            i = Instruction::new(address, raw, 4, op);
            i.rd = Some(rd_f(raw));
            i.rs1 = Some(rs1_x(raw));
            i.imm = imm_i(raw);
        }
        OPC_STORE_FP => {
            let op = match f3 {
                0b010 => Op::Fsw,
                0b011 => Op::Fsd,
                _ => return Err(invalid()),
            };
            i = Instruction::new(address, raw, 4, op);
            i.rs1 = Some(rs1_x(raw));
            i.rs2 = Some(rs2_f(raw));
            i.imm = imm_s(raw);
        }
        OPC_MADD | OPC_MSUB | OPC_NMSUB | OPC_NMADD => {
            let fmt = bits(raw, 26, 25);
            let op = match (opcode, fmt) {
                (OPC_MADD, 0b00) => Op::FmaddS,
                (OPC_MSUB, 0b00) => Op::FmsubS,
                (OPC_NMSUB, 0b00) => Op::FnmsubS,
                (OPC_NMADD, 0b00) => Op::FnmaddS,
                (OPC_MADD, 0b01) => Op::FmaddD,
                (OPC_MSUB, 0b01) => Op::FmsubD,
                (OPC_NMSUB, 0b01) => Op::FnmsubD,
                (OPC_NMADD, 0b01) => Op::FnmaddD,
                _ => return Err(invalid()),
            };
            i = Instruction::new(address, raw, 4, op);
            i.rd = Some(rd_f(raw));
            i.rs1 = Some(rs1_f(raw));
            i.rs2 = Some(rs2_f(raw));
            i.rs3 = Some(rs3_f(raw));
            i.rm = f3 as u8;
        }
        OPC_OP_FP => return decode_fp(raw, address),
        _ => return Err(invalid()),
    }
    Ok(i)
}

/// OP-FP major opcode: computational, conversion, move, compare, classify.
fn decode_fp(raw: u32, address: u64) -> Result<Instruction, DecodeError> {
    let invalid = || DecodeError::Invalid { address, raw };
    let f7 = bits(raw, 31, 25);
    let f3 = bits(raw, 14, 12);
    let rs2n = bits(raw, 24, 20);
    let dbl = f7 & 1 == 1; // fmt bit: 0 = S, 1 = D
    let mut i = Instruction::new(address, raw, 4, Op::FaddS);
    i.rm = f3 as u8;
    let sel = f7 >> 2; // drop fmt bits
    match sel {
        0b00000 => {
            i.op = if dbl { Op::FaddD } else { Op::FaddS };
        }
        0b00001 => {
            i.op = if dbl { Op::FsubD } else { Op::FsubS };
        }
        0b00010 => {
            i.op = if dbl { Op::FmulD } else { Op::FmulS };
        }
        0b00011 => {
            i.op = if dbl { Op::FdivD } else { Op::FdivS };
        }
        0b01011 => {
            if rs2n != 0 {
                return Err(invalid());
            }
            i.op = if dbl { Op::FsqrtD } else { Op::FsqrtS };
            i.rd = Some(rd_f(raw));
            i.rs1 = Some(rs1_f(raw));
            return Ok(i);
        }
        0b00100 => {
            i.op = match (f3, dbl) {
                (0b000, false) => Op::FsgnjS,
                (0b001, false) => Op::FsgnjnS,
                (0b010, false) => Op::FsgnjxS,
                (0b000, true) => Op::FsgnjD,
                (0b001, true) => Op::FsgnjnD,
                (0b010, true) => Op::FsgnjxD,
                _ => return Err(invalid()),
            };
        }
        0b00101 => {
            i.op = match (f3, dbl) {
                (0b000, false) => Op::FminS,
                (0b001, false) => Op::FmaxS,
                (0b000, true) => Op::FminD,
                (0b001, true) => Op::FmaxD,
                _ => return Err(invalid()),
            };
        }
        0b01000 => {
            // fcvt.s.d / fcvt.d.s
            i.op = match (dbl, rs2n) {
                (false, 1) => Op::FcvtSD,
                (true, 0) => Op::FcvtDS,
                _ => return Err(invalid()),
            };
            i.rd = Some(rd_f(raw));
            i.rs1 = Some(rs1_f(raw));
            return Ok(i);
        }
        0b11000 => {
            // fcvt.{w,wu,l,lu}.{s,d}: FP -> int
            i.op = match (dbl, rs2n) {
                (false, 0) => Op::FcvtWS,
                (false, 1) => Op::FcvtWuS,
                (false, 2) => Op::FcvtLS,
                (false, 3) => Op::FcvtLuS,
                (true, 0) => Op::FcvtWD,
                (true, 1) => Op::FcvtWuD,
                (true, 2) => Op::FcvtLD,
                (true, 3) => Op::FcvtLuD,
                _ => return Err(invalid()),
            };
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_f(raw));
            return Ok(i);
        }
        0b11010 => {
            // fcvt.{s,d}.{w,wu,l,lu}: int -> FP
            i.op = match (dbl, rs2n) {
                (false, 0) => Op::FcvtSW,
                (false, 1) => Op::FcvtSWu,
                (false, 2) => Op::FcvtSL,
                (false, 3) => Op::FcvtSLu,
                (true, 0) => Op::FcvtDW,
                (true, 1) => Op::FcvtDWu,
                (true, 2) => Op::FcvtDL,
                (true, 3) => Op::FcvtDLu,
                _ => return Err(invalid()),
            };
            i.rd = Some(rd_f(raw));
            i.rs1 = Some(rs1_x(raw));
            return Ok(i);
        }
        0b11100 => {
            // fmv.x.{w,d} (f3=0) / fclass (f3=1): FP -> int
            if rs2n != 0 {
                return Err(invalid());
            }
            i.op = match (f3, dbl) {
                (0b000, false) => Op::FmvXW,
                (0b001, false) => Op::FclassS,
                (0b000, true) => Op::FmvXD,
                (0b001, true) => Op::FclassD,
                _ => return Err(invalid()),
            };
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_f(raw));
            return Ok(i);
        }
        0b11110 => {
            // fmv.{w,d}.x: int -> FP
            if rs2n != 0 || f3 != 0 {
                return Err(invalid());
            }
            i.op = if dbl { Op::FmvDX } else { Op::FmvWX };
            i.rd = Some(rd_f(raw));
            i.rs1 = Some(rs1_x(raw));
            return Ok(i);
        }
        0b10100 => {
            // comparisons: FP,FP -> int
            i.op = match (f3, dbl) {
                (0b010, false) => Op::FeqS,
                (0b001, false) => Op::FltS,
                (0b000, false) => Op::FleS,
                (0b010, true) => Op::FeqD,
                (0b001, true) => Op::FltD,
                (0b000, true) => Op::FleD,
                _ => return Err(invalid()),
            };
            i.rd = Some(rd_x(raw));
            i.rs1 = Some(rs1_f(raw));
            i.rs2 = Some(rs2_f(raw));
            return Ok(i);
        }
        _ => return Err(invalid()),
    }
    // Common F/F/F three-operand form.
    i.rd = Some(rd_f(raw));
    i.rs1 = Some(rs1_f(raw));
    i.rs2 = Some(rs2_f(raw));
    Ok(i)
}

/// Iterator over a contiguous code buffer, yielding instructions (or decode
/// errors) in address order. On an error it advances by the minimum unit
/// (2 bytes) so the stream can resynchronise — the behaviour ParseAPI's gap
/// parsing relies on.
pub struct InstructionIter<'a> {
    buf: &'a [u8],
    base: u64,
    pos: usize,
}

impl<'a> InstructionIter<'a> {
    pub fn new(buf: &'a [u8], base: u64) -> InstructionIter<'a> {
        InstructionIter { buf, base, pos: 0 }
    }

    /// Byte offset of the next decode position.
    pub fn offset(&self) -> usize {
        self.pos
    }
}

impl Iterator for InstructionIter<'_> {
    type Item = Result<Instruction, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let r = decode(&self.buf[self.pos..], self.base + self.pos as u64);
        match &r {
            Ok(i) => self.pos += i.size as usize,
            Err(_) => self.pos += 2,
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::ControlFlow;

    fn d32(raw: u32) -> Instruction {
        decode32(raw, 0x1000).unwrap()
    }

    #[test]
    fn decode_addi() {
        // addi a0, a1, -3  => imm=0xffd rs1=11(01011) f3=000 rd=10 op=0010011
        let raw = 0xFFD5_8513;
        let i = d32(raw);
        assert_eq!(i.op, Op::Addi);
        assert_eq!(i.rd, Some(Reg::x(10)));
        assert_eq!(i.rs1, Some(Reg::x(11)));
        assert_eq!(i.imm, -3);
    }

    #[test]
    fn decode_lui_auipc() {
        // lui a0, 0x12345
        let i = d32(0x1234_5537);
        assert_eq!(i.op, Op::Lui);
        assert_eq!(i.imm, 0x1234_5000);
        // auipc a0 with negative-looking upper imm sign-extends on RV64
        let i = d32(0x8000_0517);
        assert_eq!(i.op, Op::Auipc);
        assert_eq!(i.imm, -0x8000_0000);
    }

    #[test]
    fn decode_jal_and_target() {
        // jal ra, +8 : imm[20|10:1|11|19:12] -> 0x008000EF
        let i = decode32(0x0080_00EF, 0x1000).unwrap();
        assert_eq!(i.op, Op::Jal);
        assert_eq!(i.rd, Some(Reg::x(1)));
        assert_eq!(i.imm, 8);
        match i.control_flow() {
            ControlFlow::DirectJump { target, link } => {
                assert_eq!(target, 0x1008);
                assert_eq!(link, Reg::x(1));
            }
            cf => panic!("{cf:?}"),
        }
    }

    #[test]
    fn decode_jal_negative() {
        // jal x0, -4
        // imm=-4: bit20=1, bits10:1 = 0x3FE, bit11=1, bits19:12=0xFF
        let raw = (1 << 31) | (0x3FE << 21) | (1 << 20) | (0xFF << 12) | 0x6F;
        let i = decode32(raw, 0x1000).unwrap();
        assert_eq!(i.imm, -4);
    }

    #[test]
    fn decode_branch() {
        // beq a0, a1, +16
        // imm_b(16): bit4:1=1000 -> bits 11:8; rest zero
        let raw = ((11 << 20) | (10 << 15)) | (0b1000 << 8) | 0x63;
        let i = decode32(raw, 0).unwrap();
        assert_eq!(i.op, Op::Beq);
        assert_eq!(i.imm, 16);
    }

    #[test]
    fn decode_loads_stores() {
        // ld a0, 16(sp)
        let raw = (16 << 20) | (2 << 15) | (0b011 << 12) | (10 << 7) | 0x03;
        let i = d32(raw);
        assert_eq!(i.op, Op::Ld);
        assert_eq!(i.mem_access().unwrap().size, 8);
        // sd a0, -8(sp): imm=-8 = 0xFF8 -> hi 0b1111111, lo 0b11000
        let raw =
            (0b1111111 << 25) | (10 << 20) | (2 << 15) | (0b011 << 12) | (0b11000 << 7) | 0x23;
        let i = d32(raw);
        assert_eq!(i.op, Op::Sd);
        assert_eq!(i.imm, -8);
    }

    #[test]
    fn decode_shifts_rv64() {
        // slli a0, a0, 63
        let raw = (63 << 20) | (10 << 15) | (0b001 << 12) | (10 << 7) | 0x13;
        let i = d32(raw);
        assert_eq!(i.op, Op::Slli);
        assert_eq!(i.imm, 63);
        // srai a0, a0, 63
        let raw = (0b010000 << 26) | (63 << 20) | (10 << 15) | (0b101 << 12) | (10 << 7) | 0x13;
        let i = d32(raw);
        assert_eq!(i.op, Op::Srai);
        assert_eq!(i.imm, 63);
    }

    #[test]
    fn decode_m_extension() {
        // mul a0, a1, a2
        let raw = ((1 << 25) | (12 << 20) | (11 << 15)) | (10 << 7) | 0x33;
        let i = d32(raw);
        assert_eq!(i.op, Op::Mul);
        // divw a0, a1, a2
        let raw = (1 << 25) | (12 << 20) | (11 << 15) | (0b100 << 12) | (10 << 7) | 0x3B;
        let i = d32(raw);
        assert_eq!(i.op, Op::Divw);
    }

    #[test]
    fn decode_amo() {
        // amoadd.w.aq a0, a1, (a2)
        let raw = (1 << 26) | (11 << 20) | (12 << 15) | (0b010 << 12) | (10 << 7) | 0x2F;
        let i = d32(raw);
        assert_eq!(i.op, Op::AmoAddW);
        assert!(i.aq);
        assert!(!i.rl);
        // lr.d (a1)
        let raw = (0b00010 << 27) | (11 << 15) | (0b011 << 12) | (10 << 7) | 0x2F;
        let i = d32(raw);
        assert_eq!(i.op, Op::LrD);
        assert_eq!(i.rs2, None);
    }

    #[test]
    fn decode_fp_ops() {
        // fadd.d fa0, fa1, fa2
        let raw = (0b0000001 << 25) | (12 << 20) | (11 << 15) | (0b111 << 12) | (10 << 7) | 0x53;
        let i = d32(raw);
        assert_eq!(i.op, Op::FaddD);
        assert_eq!(i.rd, Some(Reg::f(10)));
        assert_eq!(i.rs1, Some(Reg::f(11)));
        // fcvt.d.l fa0, a1
        let raw = (0b1101001 << 25) | (2 << 20) | (11 << 15) | (0b111 << 12) | (10 << 7) | 0x53;
        let i = d32(raw);
        assert_eq!(i.op, Op::FcvtDL);
        assert_eq!(i.rs1, Some(Reg::x(11)));
        assert_eq!(i.rd, Some(Reg::f(10)));
        // fmv.x.d a0, fa0
        let raw = (0b1110001 << 25) | (10 << 15) | (10 << 7) | 0x53;
        let i = d32(raw);
        assert_eq!(i.op, Op::FmvXD);
        assert_eq!(i.rd, Some(Reg::x(10)));
        // feq.d a0, fa0, fa1
        let raw = (0b1010001 << 25) | (11 << 20) | (10 << 15) | (0b010 << 12) | (10 << 7) | 0x53;
        let i = d32(raw);
        assert_eq!(i.op, Op::FeqD);
        assert_eq!(i.rd, Some(Reg::x(10)));
    }

    #[test]
    fn decode_fma() {
        // fmadd.d fa0, fa1, fa2, fa3
        let raw =
            (13 << 27) | (0b01 << 25) | (12 << 20) | (11 << 15) | (0b111 << 12) | (10 << 7) | 0x43;
        let i = d32(raw);
        assert_eq!(i.op, Op::FmaddD);
        assert_eq!(i.rs3, Some(Reg::f(13)));
        assert_eq!(i.regs_read().len(), 3);
    }

    #[test]
    fn decode_system() {
        let i = d32(0x0000_0073);
        assert_eq!(i.op, Op::Ecall);
        let i = d32(0x0010_0073);
        assert_eq!(i.op, Op::Ebreak);
        // csrrs a0, fcsr(0x003), x0  (frcsr)
        let raw = (0x003 << 20) | (0b010 << 12) | (10 << 7) | 0x73;
        let i = d32(raw);
        assert_eq!(i.op, Op::Csrrs);
        assert_eq!(i.csr, Some(3));
    }

    #[test]
    fn defined_illegal_encodings() {
        assert!(matches!(
            decode(&[0, 0, 0, 0], 0),
            Err(DecodeError::DefinedIllegal { .. })
        ));
    }

    #[test]
    fn truncated() {
        assert!(matches!(
            decode(&[0x13], 0),
            Err(DecodeError::Truncated { .. })
        ));
        // A 32-bit encoding with only 2 bytes available.
        assert!(matches!(
            decode(&[0x13, 0x05], 0),
            Err(DecodeError::Truncated { need: 4, .. })
        ));
    }

    #[test]
    fn iterator_advances_and_resyncs() {
        // addi a0,a1,-3 ; then garbage 0xffff (invalid 16-bit), then c.nop
        let mut buf = vec![];
        buf.extend_from_slice(&0xFFD5_8513u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFF]); // defined-illegal 16-bit
        buf.extend_from_slice(&0x0001u16.to_le_bytes()); // c.nop
        let items: Vec<_> = InstructionIter::new(&buf, 0x1000).collect();
        assert_eq!(items.len(), 3);
        assert!(items[0].is_ok());
        assert!(items[1].is_err());
        assert!(items[2].is_ok());
        assert_eq!(items[2].as_ref().unwrap().address, 0x1006);
    }
}
