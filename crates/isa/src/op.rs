//! Operation enumeration for RV64GC.
//!
//! Compressed instructions decode to the same [`Op`] as their 32-bit
//! expansion (e.g. `c.addi` → [`Op::Addi`]); the original compressed
//! identity is kept in [`CompressedOp`] on the instruction.

use crate::ext::Extension;

/// The uniform (expanded) operation of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Op {
    // ---- RV64I ----
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Ld,
    Lbu,
    Lhu,
    Lwu,
    Sb,
    Sh,
    Sw,
    Sd,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    Fence,
    Ecall,
    Ebreak,
    // ---- Zifencei ----
    FenceI,
    // ---- Zicsr ----
    Csrrw,
    Csrrs,
    Csrrc,
    Csrrwi,
    Csrrsi,
    Csrrci,
    // ---- M ----
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
    // ---- A (W then D forms) ----
    LrW,
    ScW,
    AmoSwapW,
    AmoAddW,
    AmoXorW,
    AmoAndW,
    AmoOrW,
    AmoMinW,
    AmoMaxW,
    AmoMinuW,
    AmoMaxuW,
    LrD,
    ScD,
    AmoSwapD,
    AmoAddD,
    AmoXorD,
    AmoAndD,
    AmoOrD,
    AmoMinD,
    AmoMaxD,
    AmoMinuD,
    AmoMaxuD,
    // ---- F ----
    Flw,
    Fsw,
    FmaddS,
    FmsubS,
    FnmsubS,
    FnmaddS,
    FaddS,
    FsubS,
    FmulS,
    FdivS,
    FsqrtS,
    FsgnjS,
    FsgnjnS,
    FsgnjxS,
    FminS,
    FmaxS,
    FcvtWS,
    FcvtWuS,
    FcvtLS,
    FcvtLuS,
    FmvXW,
    FeqS,
    FltS,
    FleS,
    FclassS,
    FcvtSW,
    FcvtSWu,
    FcvtSL,
    FcvtSLu,
    FmvWX,
    // ---- D ----
    Fld,
    Fsd,
    FmaddD,
    FmsubD,
    FnmsubD,
    FnmaddD,
    FaddD,
    FsubD,
    FmulD,
    FdivD,
    FsqrtD,
    FsgnjD,
    FsgnjnD,
    FsgnjxD,
    FminD,
    FmaxD,
    FcvtSD,
    FcvtDS,
    FcvtWD,
    FcvtWuD,
    FcvtLD,
    FcvtLuD,
    FmvXD,
    FeqD,
    FltD,
    FleD,
    FclassD,
    FcvtDW,
    FcvtDWu,
    FcvtDL,
    FcvtDLu,
    FmvDX,
}

impl Op {
    /// Assembler mnemonic of the expanded (32-bit) form.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Lui => "lui",
            Auipc => "auipc",
            Jal => "jal",
            Jalr => "jalr",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Lb => "lb",
            Lh => "lh",
            Lw => "lw",
            Ld => "ld",
            Lbu => "lbu",
            Lhu => "lhu",
            Lwu => "lwu",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Sd => "sd",
            Addi => "addi",
            Slti => "slti",
            Sltiu => "sltiu",
            Xori => "xori",
            Ori => "ori",
            Andi => "andi",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Add => "add",
            Sub => "sub",
            Sll => "sll",
            Slt => "slt",
            Sltu => "sltu",
            Xor => "xor",
            Srl => "srl",
            Sra => "sra",
            Or => "or",
            And => "and",
            Addiw => "addiw",
            Slliw => "slliw",
            Srliw => "srliw",
            Sraiw => "sraiw",
            Addw => "addw",
            Subw => "subw",
            Sllw => "sllw",
            Srlw => "srlw",
            Sraw => "sraw",
            Fence => "fence",
            Ecall => "ecall",
            Ebreak => "ebreak",
            FenceI => "fence.i",
            Csrrw => "csrrw",
            Csrrs => "csrrs",
            Csrrc => "csrrc",
            Csrrwi => "csrrwi",
            Csrrsi => "csrrsi",
            Csrrci => "csrrci",
            Mul => "mul",
            Mulh => "mulh",
            Mulhsu => "mulhsu",
            Mulhu => "mulhu",
            Div => "div",
            Divu => "divu",
            Rem => "rem",
            Remu => "remu",
            Mulw => "mulw",
            Divw => "divw",
            Divuw => "divuw",
            Remw => "remw",
            Remuw => "remuw",
            LrW => "lr.w",
            ScW => "sc.w",
            AmoSwapW => "amoswap.w",
            AmoAddW => "amoadd.w",
            AmoXorW => "amoxor.w",
            AmoAndW => "amoand.w",
            AmoOrW => "amoor.w",
            AmoMinW => "amomin.w",
            AmoMaxW => "amomax.w",
            AmoMinuW => "amominu.w",
            AmoMaxuW => "amomaxu.w",
            LrD => "lr.d",
            ScD => "sc.d",
            AmoSwapD => "amoswap.d",
            AmoAddD => "amoadd.d",
            AmoXorD => "amoxor.d",
            AmoAndD => "amoand.d",
            AmoOrD => "amoor.d",
            AmoMinD => "amomin.d",
            AmoMaxD => "amomax.d",
            AmoMinuD => "amominu.d",
            AmoMaxuD => "amomaxu.d",
            Flw => "flw",
            Fsw => "fsw",
            FmaddS => "fmadd.s",
            FmsubS => "fmsub.s",
            FnmsubS => "fnmsub.s",
            FnmaddS => "fnmadd.s",
            FaddS => "fadd.s",
            FsubS => "fsub.s",
            FmulS => "fmul.s",
            FdivS => "fdiv.s",
            FsqrtS => "fsqrt.s",
            FsgnjS => "fsgnj.s",
            FsgnjnS => "fsgnjn.s",
            FsgnjxS => "fsgnjx.s",
            FminS => "fmin.s",
            FmaxS => "fmax.s",
            FcvtWS => "fcvt.w.s",
            FcvtWuS => "fcvt.wu.s",
            FcvtLS => "fcvt.l.s",
            FcvtLuS => "fcvt.lu.s",
            FmvXW => "fmv.x.w",
            FeqS => "feq.s",
            FltS => "flt.s",
            FleS => "fle.s",
            FclassS => "fclass.s",
            FcvtSW => "fcvt.s.w",
            FcvtSWu => "fcvt.s.wu",
            FcvtSL => "fcvt.s.l",
            FcvtSLu => "fcvt.s.lu",
            FmvWX => "fmv.w.x",
            Fld => "fld",
            Fsd => "fsd",
            FmaddD => "fmadd.d",
            FmsubD => "fmsub.d",
            FnmsubD => "fnmsub.d",
            FnmaddD => "fnmadd.d",
            FaddD => "fadd.d",
            FsubD => "fsub.d",
            FmulD => "fmul.d",
            FdivD => "fdiv.d",
            FsqrtD => "fsqrt.d",
            FsgnjD => "fsgnj.d",
            FsgnjnD => "fsgnjn.d",
            FsgnjxD => "fsgnjx.d",
            FminD => "fmin.d",
            FmaxD => "fmax.d",
            FcvtSD => "fcvt.s.d",
            FcvtDS => "fcvt.d.s",
            FcvtWD => "fcvt.w.d",
            FcvtWuD => "fcvt.wu.d",
            FcvtLD => "fcvt.l.d",
            FcvtLuD => "fcvt.lu.d",
            FmvXD => "fmv.x.d",
            FeqD => "feq.d",
            FltD => "flt.d",
            FleD => "fle.d",
            FclassD => "fclass.d",
            FcvtDW => "fcvt.d.w",
            FcvtDWu => "fcvt.d.wu",
            FcvtDL => "fcvt.d.l",
            FcvtDLu => "fcvt.d.lu",
            FmvDX => "fmv.d.x",
        }
    }

    /// Which extension defines this operation.
    pub fn extension(self) -> Extension {
        use Op::*;
        match self {
            FenceI => Extension::Zifencei,
            Csrrw | Csrrs | Csrrc | Csrrwi | Csrrsi | Csrrci => Extension::Zicsr,
            Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu | Mulw | Divw | Divuw | Remw
            | Remuw => Extension::M,
            LrW | ScW | AmoSwapW | AmoAddW | AmoXorW | AmoAndW | AmoOrW | AmoMinW | AmoMaxW
            | AmoMinuW | AmoMaxuW | LrD | ScD | AmoSwapD | AmoAddD | AmoXorD | AmoAndD | AmoOrD
            | AmoMinD | AmoMaxD | AmoMinuD | AmoMaxuD => Extension::A,
            Flw | Fsw | FmaddS | FmsubS | FnmsubS | FnmaddS | FaddS | FsubS | FmulS | FdivS
            | FsqrtS | FsgnjS | FsgnjnS | FsgnjxS | FminS | FmaxS | FcvtWS | FcvtWuS | FcvtLS
            | FcvtLuS | FmvXW | FeqS | FltS | FleS | FclassS | FcvtSW | FcvtSWu | FcvtSL
            | FcvtSLu | FmvWX => Extension::F,
            Fld | Fsd | FmaddD | FmsubD | FnmsubD | FnmaddD | FaddD | FsubD | FmulD | FdivD
            | FsqrtD | FsgnjD | FsgnjnD | FsgnjxD | FminD | FmaxD | FcvtSD | FcvtDS | FcvtWD
            | FcvtWuD | FcvtLD | FcvtLuD | FmvXD | FeqD | FltD | FleD | FclassD | FcvtDW
            | FcvtDWu | FcvtDL | FcvtDLu | FmvDX => Extension::D,
            _ => Extension::I,
        }
    }

    /// Conditional branch (B-format)?
    pub fn is_conditional_branch(self) -> bool {
        matches!(
            self,
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu
        )
    }

    /// Memory load (into an integer or FP register)?
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Op::Lb
                | Op::Lh
                | Op::Lw
                | Op::Ld
                | Op::Lbu
                | Op::Lhu
                | Op::Lwu
                | Op::Flw
                | Op::Fld
                | Op::LrW
                | Op::LrD
        )
    }

    /// Memory store?
    pub fn is_store(self) -> bool {
        matches!(
            self,
            Op::Sb | Op::Sh | Op::Sw | Op::Sd | Op::Fsw | Op::Fsd | Op::ScW | Op::ScD
        )
    }

    /// Atomic read-modify-write (AMO, LR or SC)?
    pub fn is_atomic(self) -> bool {
        self.extension() == Extension::A
    }
}

/// The original identity of a compressed (16-bit) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CompressedOp {
    CAddi4spn,
    CFld,
    CLw,
    CLd,
    CFsd,
    CSw,
    CSd,
    CNop,
    CAddi,
    CAddiw,
    CLi,
    CAddi16sp,
    CLui,
    CSrli,
    CSrai,
    CAndi,
    CSub,
    CXor,
    COr,
    CAnd,
    CSubw,
    CAddw,
    CJ,
    CBeqz,
    CBnez,
    CSlli,
    CFldsp,
    CLwsp,
    CLdsp,
    CJr,
    CMv,
    CEbreak,
    CJalr,
    CAdd,
    CFsdsp,
    CSwsp,
    CSdsp,
}

impl CompressedOp {
    /// Assembler mnemonic of the compressed form.
    pub fn mnemonic(self) -> &'static str {
        use CompressedOp::*;
        match self {
            CAddi4spn => "c.addi4spn",
            CFld => "c.fld",
            CLw => "c.lw",
            CLd => "c.ld",
            CFsd => "c.fsd",
            CSw => "c.sw",
            CSd => "c.sd",
            CNop => "c.nop",
            CAddi => "c.addi",
            CAddiw => "c.addiw",
            CLi => "c.li",
            CAddi16sp => "c.addi16sp",
            CLui => "c.lui",
            CSrli => "c.srli",
            CSrai => "c.srai",
            CAndi => "c.andi",
            CSub => "c.sub",
            CXor => "c.xor",
            COr => "c.or",
            CAnd => "c.and",
            CSubw => "c.subw",
            CAddw => "c.addw",
            CJ => "c.j",
            CBeqz => "c.beqz",
            CBnez => "c.bnez",
            CSlli => "c.slli",
            CFldsp => "c.fldsp",
            CLwsp => "c.lwsp",
            CLdsp => "c.ldsp",
            CJr => "c.jr",
            CMv => "c.mv",
            CEbreak => "c.ebreak",
            CJalr => "c.jalr",
            CAdd => "c.add",
            CFsdsp => "c.fsdsp",
            CSwsp => "c.swsp",
            CSdsp => "c.sdsp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_assignment() {
        assert_eq!(Op::Add.extension(), Extension::I);
        assert_eq!(Op::Mul.extension(), Extension::M);
        assert_eq!(Op::LrW.extension(), Extension::A);
        assert_eq!(Op::FaddS.extension(), Extension::F);
        assert_eq!(Op::FaddD.extension(), Extension::D);
        assert_eq!(Op::Csrrw.extension(), Extension::Zicsr);
        assert_eq!(Op::FenceI.extension(), Extension::Zifencei);
    }

    #[test]
    fn load_store_classification() {
        assert!(Op::Ld.is_load());
        assert!(Op::Fld.is_load());
        assert!(Op::LrD.is_load());
        assert!(!Op::Sd.is_load());
        assert!(Op::Sd.is_store());
        assert!(Op::Fsd.is_store());
        assert!(Op::ScW.is_store());
        assert!(!Op::Add.is_store());
    }

    #[test]
    fn branch_classification() {
        assert!(Op::Beq.is_conditional_branch());
        assert!(Op::Bgeu.is_conditional_branch());
        assert!(!Op::Jal.is_conditional_branch());
    }
}
