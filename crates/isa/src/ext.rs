//! ISA extensions and profiles (§3.1.1).
//!
//! RISC-V is extension-based: a *profile* is the set of extensions a
//! processor (or a binary) supports. rvdyn discovers the profile of a
//! mutatee from the ELF `e_flags` and the `.riscv.attributes` arch string
//! (SymtabAPI, §3.2.1), and CodeGenAPI consults it so instrumentation never
//! uses instructions the mutatee's processor may lack (§3.2.5).

use std::fmt;
use std::str::FromStr;

/// Base integer register width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Xlen {
    Rv32,
    Rv64,
}

impl Xlen {
    pub fn bits(self) -> u32 {
        match self {
            Xlen::Rv32 => 32,
            Xlen::Rv64 => 64,
        }
    }
}

/// A standard RISC-V extension relevant to RV64GC and its successors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Extension {
    /// Base integer instruction set.
    I = 0,
    /// Integer multiplication and division.
    M,
    /// Atomic instructions.
    A,
    /// Single-precision floating point.
    F,
    /// Double-precision floating point.
    D,
    /// Compressed (16-bit) instructions.
    C,
    /// Control and status register instructions.
    Zicsr,
    /// Instruction-fetch fence.
    Zifencei,
    /// Vector extension (RVA23; future work in the paper, recognised but not
    /// yet generated).
    V,
    /// Integer conditional operations (RVA23; recognised only).
    Zicond,
}

impl Extension {
    pub const ALL: [Extension; 10] = [
        Extension::I,
        Extension::M,
        Extension::A,
        Extension::F,
        Extension::D,
        Extension::C,
        Extension::Zicsr,
        Extension::Zifencei,
        Extension::V,
        Extension::Zicond,
    ];

    /// Canonical lower-case name used in arch strings.
    pub fn name(self) -> &'static str {
        match self {
            Extension::I => "i",
            Extension::M => "m",
            Extension::A => "a",
            Extension::F => "f",
            Extension::D => "d",
            Extension::C => "c",
            Extension::Zicsr => "zicsr",
            Extension::Zifencei => "zifencei",
            Extension::V => "v",
            Extension::Zicond => "zicond",
        }
    }
}

/// A set of extensions, as a small bitset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExtensionSet(u16);

impl ExtensionSet {
    pub const fn empty() -> ExtensionSet {
        ExtensionSet(0)
    }

    pub fn of(exts: &[Extension]) -> ExtensionSet {
        let mut s = ExtensionSet::empty();
        for &e in exts {
            s.insert(e);
        }
        s
    }

    /// The G ("general") shorthand: IMAFD + Zicsr + Zifencei.
    pub fn g() -> ExtensionSet {
        ExtensionSet::of(&[
            Extension::I,
            Extension::M,
            Extension::A,
            Extension::F,
            Extension::D,
            Extension::Zicsr,
            Extension::Zifencei,
        ])
    }

    /// GC: the profile Capstone (and this crate) fully supports (§3.2.2).
    pub fn gc() -> ExtensionSet {
        let mut s = ExtensionSet::g();
        s.insert(Extension::C);
        s
    }

    #[inline]
    pub fn insert(&mut self, e: Extension) {
        self.0 |= 1 << e as u8;
    }

    #[inline]
    pub fn remove(&mut self, e: Extension) {
        self.0 &= !(1 << e as u8);
    }

    #[inline]
    pub fn contains(self, e: Extension) -> bool {
        self.0 & (1 << e as u8) != 0
    }

    #[inline]
    pub fn is_superset_of(self, other: ExtensionSet) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn iter(self) -> impl Iterator<Item = Extension> {
        Extension::ALL
            .into_iter()
            .filter(move |&e| self.contains(e))
    }
}

impl fmt::Debug for ExtensionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A full ISA profile: base width plus extension set.
///
/// Parsed from/to canonical arch strings such as
/// `rv64imafdc_zicsr_zifencei` (which is RV64GC) as found in the
/// `.riscv.attributes` section's `Tag_RISCV_arch` attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IsaProfile {
    pub xlen: Xlen,
    pub extensions: ExtensionSet,
}

impl IsaProfile {
    /// RV64GC — the profile the paper's port targets.
    pub fn rv64gc() -> IsaProfile {
        IsaProfile {
            xlen: Xlen::Rv64,
            extensions: ExtensionSet::gc(),
        }
    }

    /// RV64G (no compressed instructions) — used to exercise the
    /// standard-jump-only code paths of PatchAPI.
    pub fn rv64g() -> IsaProfile {
        IsaProfile {
            xlen: Xlen::Rv64,
            extensions: ExtensionSet::g(),
        }
    }

    pub fn has(self, e: Extension) -> bool {
        self.extensions.contains(e)
    }

    /// Canonical arch string (`rv64imafdc_zicsr_zifencei` style). Single
    /// letter extensions are concatenated in canonical order; multi-letter
    /// (`z*`) extensions are appended with `_` separators, each with the
    /// standard `2p0`-style version suffix omitted for readability of our
    /// own output but accepted on input.
    pub fn arch_string(self) -> String {
        let mut s = match self.xlen {
            Xlen::Rv32 => String::from("rv32"),
            Xlen::Rv64 => String::from("rv64"),
        };
        for e in [
            Extension::I,
            Extension::M,
            Extension::A,
            Extension::F,
            Extension::D,
            Extension::C,
            Extension::V,
        ] {
            if self.extensions.contains(e) {
                s.push_str(e.name());
            }
        }
        for e in [Extension::Zicsr, Extension::Zifencei, Extension::Zicond] {
            if self.extensions.contains(e) {
                s.push('_');
                s.push_str(e.name());
            }
        }
        s
    }
}

/// Error parsing an arch string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchStringError(pub String);

impl fmt::Display for ArchStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid RISC-V arch string: {}", self.0)
    }
}

impl std::error::Error for ArchStringError {}

impl FromStr for IsaProfile {
    type Err = ArchStringError;

    /// Parse a `Tag_RISCV_arch`-style string, e.g.
    /// `rv64imafdc2p0_zicsr2p0_zifencei2p0` or `rv64gc`.
    ///
    /// Version suffixes (`2p1` etc.) are accepted and ignored; unknown
    /// multi-letter extensions are skipped (forward compatibility with the
    /// yearly ratification cadence the paper cites, §3.1.1); an unknown
    /// *single-letter* extension is also skipped, because single-letter
    /// extensions never affect decode correctness of the ones we do know.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let rest = if let Some(r) = lower.strip_prefix("rv64") {
            r
        } else if let Some(r) = lower.strip_prefix("rv32") {
            r
        } else {
            return Err(ArchStringError(s.to_string()));
        };
        let xlen = if lower.starts_with("rv64") {
            Xlen::Rv64
        } else {
            Xlen::Rv32
        };

        let mut exts = ExtensionSet::empty();
        for (i, part) in rest.split('_').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if i == 0 {
                // Single-letter extension run: "imafdc2p0" / "gc" ...
                let mut chars = part.chars().peekable();
                while let Some(ch) = chars.next() {
                    match ch {
                        'i' => exts.insert(Extension::I),
                        'e' => exts.insert(Extension::I), // RV32E base: treat as I
                        'g' => {
                            for e in ExtensionSet::g().iter() {
                                exts.insert(e);
                            }
                        }
                        'm' => exts.insert(Extension::M),
                        'a' => exts.insert(Extension::A),
                        'f' => exts.insert(Extension::F),
                        'd' => exts.insert(Extension::D),
                        'c' => exts.insert(Extension::C),
                        'v' => exts.insert(Extension::V),
                        '0'..='9' | 'p' => {
                            // version digits like "2p1": consume greedily
                        }
                        _ => {}
                    }
                    // Skip a full version suffix (digits 'p' digits) if next.
                    while matches!(chars.peek(), Some('0'..='9')) {
                        chars.next();
                        if chars.peek() == Some(&'p') {
                            chars.next();
                        }
                    }
                }
            } else {
                // Multi-letter extension, strip trailing version.
                let name: String = part
                    .chars()
                    .take_while(|c| c.is_ascii_alphabetic())
                    .collect();
                match name.as_str() {
                    "zicsr" => exts.insert(Extension::Zicsr),
                    "zifencei" => exts.insert(Extension::Zifencei),
                    "zicond" => exts.insert(Extension::Zicond),
                    // GCC emits each single-letter extension as its own
                    // underscore-separated, versioned part ("_m2p0").
                    "i" | "e" => exts.insert(Extension::I),
                    "g" => {
                        for e in ExtensionSet::g().iter() {
                            exts.insert(e);
                        }
                    }
                    "m" => exts.insert(Extension::M),
                    "a" => exts.insert(Extension::A),
                    "f" => exts.insert(Extension::F),
                    "d" => exts.insert(Extension::D),
                    "c" => exts.insert(Extension::C),
                    "v" => exts.insert(Extension::V),
                    _ => {} // unknown extension: ignore (forward compat)
                }
            }
        }
        if !exts.contains(Extension::I) {
            return Err(ArchStringError(format!("{s}: missing base ISA")));
        }
        Ok(IsaProfile {
            xlen,
            extensions: exts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rv64gc_canonical() {
        let p: IsaProfile = "rv64imafdc_zicsr_zifencei".parse().unwrap();
        assert_eq!(p, IsaProfile::rv64gc());
    }

    #[test]
    fn parse_gcc_style_with_versions() {
        let p: IsaProfile = "rv64i2p1_m2p0_a2p1_f2p2_d2p2_c2p0_zicsr2p0_zifencei2p0"
            .parse()
            .unwrap();
        assert!(p.has(Extension::I));
        assert!(p.has(Extension::M));
        assert!(p.has(Extension::A));
        assert!(p.has(Extension::F));
        assert!(p.has(Extension::D));
        assert!(p.has(Extension::C));
        assert!(p.has(Extension::Zicsr));
        assert!(p.has(Extension::Zifencei));
        assert_eq!(p.xlen, Xlen::Rv64);
    }

    #[test]
    fn parse_g_shorthand() {
        let p: IsaProfile = "rv64gc".parse().unwrap();
        assert_eq!(p, IsaProfile::rv64gc());
        let p: IsaProfile = "rv64g".parse().unwrap();
        assert_eq!(p, IsaProfile::rv64g());
    }

    #[test]
    fn unknown_extensions_ignored() {
        let p: IsaProfile = "rv64imac_zba_zbb_zbc".parse().unwrap();
        assert!(p.has(Extension::M));
        assert!(p.has(Extension::C));
        assert!(!p.has(Extension::F));
    }

    #[test]
    fn arch_string_round_trip() {
        let p = IsaProfile::rv64gc();
        let s = p.arch_string();
        assert_eq!(s, "rv64imafdc_zicsr_zifencei");
        let q: IsaProfile = s.parse().unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn reject_garbage() {
        assert!("x86_64".parse::<IsaProfile>().is_err());
        assert!("rv64".parse::<IsaProfile>().is_err()); // no base ISA
    }

    #[test]
    fn superset_check() {
        assert!(ExtensionSet::gc().is_superset_of(ExtensionSet::g()));
        assert!(!ExtensionSet::g().is_superset_of(ExtensionSet::gc()));
    }
}
