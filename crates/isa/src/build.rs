//! Convenience constructors for synthesising [`Instruction`] values.
//!
//! Shared by CodeGenAPI, the assembler and PatchAPI. All constructors
//! produce position-independent instruction *values*; addresses are
//! assigned (and PC-relative immediates checked) at encode/layout time.

use crate::inst::Instruction;
use crate::op::Op;
use crate::reg::Reg;

fn base(op: Op) -> Instruction {
    Instruction::new(0, 0, 4, op)
}

/// R-format: `op rd, rs1, rs2`.
pub fn r_type(op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> Instruction {
    let mut i = base(op);
    i.rd = Some(rd);
    i.rs1 = Some(rs1);
    i.rs2 = Some(rs2);
    i
}

/// I-format: `op rd, rs1, imm` (also loads: `op rd, imm(rs1)`).
pub fn i_type(op: Op, rd: Reg, rs1: Reg, imm: i64) -> Instruction {
    let mut i = base(op);
    i.rd = Some(rd);
    i.rs1 = Some(rs1);
    i.imm = imm;
    i
}

/// S-format store: `op rs2, imm(rs1)`.
pub fn s_type(op: Op, rs1: Reg, rs2: Reg, imm: i64) -> Instruction {
    let mut i = base(op);
    i.rs1 = Some(rs1);
    i.rs2 = Some(rs2);
    i.imm = imm;
    i
}

/// B-format branch: `op rs1, rs2, ±offset`.
pub fn b_type(op: Op, rs1: Reg, rs2: Reg, offset: i64) -> Instruction {
    let mut i = base(op);
    i.rs1 = Some(rs1);
    i.rs2 = Some(rs2);
    i.imm = offset;
    i
}

/// U-format: `op rd, imm` where `imm` is the already-shifted value.
pub fn u_type(op: Op, rd: Reg, imm: i64) -> Instruction {
    let mut i = base(op);
    i.rd = Some(rd);
    i.imm = imm;
    i
}

/// `jal rd, ±offset`.
pub fn jal(rd: Reg, offset: i64) -> Instruction {
    let mut i = base(Op::Jal);
    i.rd = Some(rd);
    i.imm = offset;
    i
}

/// `jalr rd, imm(rs1)`.
pub fn jalr(rd: Reg, rs1: Reg, imm: i64) -> Instruction {
    i_type(Op::Jalr, rd, rs1, imm)
}

pub fn addi(rd: Reg, rs1: Reg, imm: i64) -> Instruction {
    i_type(Op::Addi, rd, rs1, imm)
}

pub fn add(rd: Reg, rs1: Reg, rs2: Reg) -> Instruction {
    r_type(Op::Add, rd, rs1, rs2)
}

pub fn sub(rd: Reg, rs1: Reg, rs2: Reg) -> Instruction {
    r_type(Op::Sub, rd, rs1, rs2)
}

pub fn mv(rd: Reg, rs: Reg) -> Instruction {
    addi(rd, rs, 0)
}

pub fn nop() -> Instruction {
    addi(Reg::X0, Reg::X0, 0)
}

pub fn lui(rd: Reg, imm: i64) -> Instruction {
    u_type(Op::Lui, rd, imm)
}

pub fn auipc(rd: Reg, imm: i64) -> Instruction {
    u_type(Op::Auipc, rd, imm)
}

pub fn ld(rd: Reg, rs1: Reg, imm: i64) -> Instruction {
    i_type(Op::Ld, rd, rs1, imm)
}

pub fn lw(rd: Reg, rs1: Reg, imm: i64) -> Instruction {
    i_type(Op::Lw, rd, rs1, imm)
}

pub fn sd(rs2: Reg, rs1: Reg, imm: i64) -> Instruction {
    s_type(Op::Sd, rs1, rs2, imm)
}

pub fn sw(rs2: Reg, rs1: Reg, imm: i64) -> Instruction {
    s_type(Op::Sw, rs1, rs2, imm)
}

pub fn fld(rd: Reg, rs1: Reg, imm: i64) -> Instruction {
    i_type(Op::Fld, rd, rs1, imm)
}

pub fn fsd(rs2: Reg, rs1: Reg, imm: i64) -> Instruction {
    s_type(Op::Fsd, rs1, rs2, imm)
}

/// `ret` = `jalr x0, 0(ra)`.
pub fn ret() -> Instruction {
    jalr(Reg::X0, Reg::X1, 0)
}

pub fn ecall() -> Instruction {
    base(Op::Ecall)
}

pub fn ebreak() -> Instruction {
    base(Op::Ebreak)
}

/// FP three-operand with dynamic rounding mode.
pub fn f_type(op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> Instruction {
    let mut i = r_type(op, rd, rs1, rs2);
    i.rm = 0b111;
    i
}

/// FMA: `op rd, rs1, rs2, rs3` with dynamic rounding mode.
pub fn fma(op: Op, rd: Reg, rs1: Reg, rs2: Reg, rs3: Reg) -> Instruction {
    let mut i = f_type(op, rd, rs1, rs2);
    i.rs3 = Some(rs3);
    i
}

/// FP unary (fsqrt, fcvt, fmv, fclass) with dynamic rounding mode.
pub fn f_unary(op: Op, rd: Reg, rs1: Reg) -> Instruction {
    let mut i = base(op);
    i.rd = Some(rd);
    i.rs1 = Some(rs1);
    i.rm = 0b111;
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode32;

    #[test]
    fn builders_encode() {
        for i in [
            addi(Reg::x(10), Reg::x(2), 16),
            add(Reg::x(10), Reg::x(11), Reg::x(12)),
            ld(Reg::x(1), Reg::X2, 8),
            sd(Reg::x(1), Reg::X2, 8),
            jal(Reg::X1, 0x1000),
            jalr(Reg::X0, Reg::X1, 0),
            ret(),
            nop(),
            ecall(),
            fld(Reg::f(10), Reg::x(10), 0),
            f_type(Op::FaddD, Reg::f(0), Reg::f(1), Reg::f(2)),
            fma(Op::FmaddD, Reg::f(0), Reg::f(1), Reg::f(2), Reg::f(3)),
            f_unary(Op::FcvtDL, Reg::f(0), Reg::x(10)),
        ] {
            encode32(&i).unwrap_or_else(|e| panic!("{}: {e}", i.mnemonic()));
        }
    }

    #[test]
    fn ret_is_canonical_return() {
        assert!(ret().is_canonical_return());
    }
}
