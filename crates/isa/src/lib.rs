//! # rvdyn-isa — RISC-V instruction representation (InstructionAPI)
//!
//! This crate is the rvdyn equivalent of Dyninst's *InstructionAPI* together
//! with the instruction-level parts of *CodeGenAPI*: a from-scratch RV64GC
//! decoder, encoder, and machine-readable semantics for the I, M, A, F, D,
//! Zicsr, Zifencei and C extensions.
//!
//! The paper bases instruction parsing on Capstone ≥ v6.0.0-Alpha, which it
//! needed specifically for *operand read/write information*. This crate
//! provides the same facts natively:
//!
//! * [`Instruction::regs_read`] / [`Instruction::regs_written`] — exact
//!   register read/write sets, including implicit operands;
//! * [`Instruction::mem_access`] — memory operand with base register,
//!   displacement, access width and direction;
//! * [`Instruction::control_flow`] — abstract classification (branch, jump,
//!   call-shaped `jal`/`jalr`, trap) consumed by ParseAPI;
//! * [`semantics::micro_ops`] — a per-instruction micro-op list, the
//!   equivalent of the paper's SAIL → JSON → C++ semantics pipeline
//!   (§3.2.4), consumed by DataflowAPI and cross-validated against the
//!   emulator by property tests.
//!
//! Compressed (C-extension) instructions decode to the same uniform
//! [`Op`]/operand model as their 32-bit expansions, with the original
//! compressed identity retained in [`Instruction::compressed`] so that
//! instrumentation code can reason about the 2-byte footprint (§3.1.2).

pub mod build;
pub mod decode;
pub mod decode_c;
pub mod disasm;
pub mod encode;
pub mod error;
pub mod ext;
pub mod inst;
pub mod op;
pub mod reg;
pub mod semantics;

pub use decode::{decode, decode_at, InstructionIter};
pub use error::DecodeError;
pub use ext::{Extension, ExtensionSet, IsaProfile, Xlen};
pub use inst::{ControlFlow, Instruction, MemAccess, MemAccessKind};
pub use op::{CompressedOp, Op};
pub use reg::{Reg, RegClass, RegSet};

/// ABI link register (`ra` / `x1`).
pub const LINK_REG: Reg = Reg::X1;
/// Alternate link register (`t0` / `x5`), also recognised as a link register
/// by the RISC-V calling convention for millicode routines.
pub const ALT_LINK_REG: Reg = Reg::X5;
/// Stack pointer (`sp` / `x2`).
pub const SP: Reg = Reg::X2;
/// Frame pointer (`s0`/`fp` / `x8`) — note §3.2.7: many compilers use it as a
/// plain callee-saved register instead.
pub const FP: Reg = Reg::X8;
