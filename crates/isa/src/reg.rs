//! Register model: 32 integer registers, 32 floating-point registers, and
//! dense register sets used by the liveness analysis in DataflowAPI.

use std::fmt;

/// Register class: integer (`x`) or floating-point (`f`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// General-purpose integer registers `x0`–`x31`.
    Gpr,
    /// Floating-point registers `f0`–`f31`.
    Fpr,
}

/// A RISC-V architectural register.
///
/// Encoded as a single index: `0..32` are the integer registers, `32..64`
/// the floating-point registers. This dense encoding makes [`RegSet`] a
/// single `u64` bitset, which keeps liveness analysis allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    pub const X0: Reg = Reg(0);
    pub const X1: Reg = Reg(1);
    pub const X2: Reg = Reg(2);
    pub const X5: Reg = Reg(5);
    pub const X8: Reg = Reg(8);
    pub const X10: Reg = Reg(10);

    /// Integer register `x{n}`. Panics if `n >= 32`.
    #[inline]
    pub const fn x(n: u8) -> Reg {
        assert!(n < 32, "GPR index out of range");
        Reg(n)
    }

    /// Floating-point register `f{n}`. Panics if `n >= 32`.
    #[inline]
    pub const fn f(n: u8) -> Reg {
        assert!(n < 32, "FPR index out of range");
        Reg(32 + n)
    }

    /// Dense index in `0..64` (see [`RegSet`]).
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Construct from a dense index produced by [`Reg::index`].
    #[inline]
    pub const fn from_index(i: u8) -> Reg {
        assert!(i < 64, "register index out of range");
        Reg(i)
    }

    /// Register number within its class (`0..32`).
    #[inline]
    pub const fn num(self) -> u8 {
        self.0 & 31
    }

    #[inline]
    pub const fn class(self) -> RegClass {
        if self.0 < 32 {
            RegClass::Gpr
        } else {
            RegClass::Fpr
        }
    }

    /// True for `x0`, the hard-wired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// ABI mnemonic (`ra`, `sp`, `a0`, `fs3`, ...).
    pub fn abi_name(self) -> &'static str {
        const X: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        const F: [&str; 32] = [
            "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1",
            "fa2", "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
            "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
        ];
        match self.class() {
            RegClass::Gpr => X[self.num() as usize],
            RegClass::Fpr => F[self.num() as usize],
        }
    }

    /// True if this GPR is callee-saved under the standard calling convention
    /// (`sp`, `s0`–`s11`). Used by stack walking and codegen.
    pub fn is_callee_saved(self) -> bool {
        match self.class() {
            RegClass::Gpr => {
                matches!(self.num(), 2 | 8 | 9 | 18..=27)
            }
            RegClass::Fpr => matches!(self.num(), 8 | 9 | 18..=27),
        }
    }

    /// True if this register is caller-saved (temporaries and argument
    /// registers) — the pool dead-register allocation draws from first.
    pub fn is_caller_saved(self) -> bool {
        !self.is_callee_saved() && !self.is_zero()
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Gpr => write!(f, "x{}", self.num()),
            RegClass::Fpr => write!(f, "f{}", self.num()),
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// A set of registers as a 64-bit bitset (bits `0..32` GPRs, `32..64` FPRs).
///
/// All set operations are branch-free; DataflowAPI's liveness fixpoint
/// iterates these by the million.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(pub u64);

impl RegSet {
    pub const EMPTY: RegSet = RegSet(0);
    /// All registers, both classes. Note `x0` is deliberately excluded: it
    /// can be neither live nor dead in any useful sense.
    pub const ALL: RegSet = RegSet(!1u64);
    /// All integer registers except `x0`.
    pub const ALL_GPR: RegSet = RegSet(0xFFFF_FFFE);
    /// All floating-point registers.
    pub const ALL_FPR: RegSet = RegSet(0xFFFF_FFFF_0000_0000);

    #[inline]
    pub const fn empty() -> RegSet {
        RegSet(0)
    }

    #[inline]
    pub fn of(regs: &[Reg]) -> RegSet {
        let mut s = RegSet::empty();
        for &r in regs {
            s.insert(r);
        }
        s
    }

    #[inline]
    pub fn insert(&mut self, r: Reg) {
        // x0 never participates: writes to it are discarded, reads yield 0.
        if !r.is_zero() {
            self.0 |= 1u64 << r.index();
        }
    }

    #[inline]
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1u64 << r.index());
    }

    #[inline]
    pub const fn contains(self, r: Reg) -> bool {
        self.0 & (1u64 << r.index()) != 0
    }

    #[inline]
    pub const fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    #[inline]
    pub const fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    #[inline]
    pub const fn minus(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    #[inline]
    pub const fn complement(self) -> RegSet {
        RegSet(!self.0 & !1)
    }

    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterate the members in ascending dense-index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(Reg::from_index(i))
            }
        })
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> Self {
        let mut s = RegSet::empty();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_match_spec() {
        assert_eq!(Reg::x(0).abi_name(), "zero");
        assert_eq!(Reg::x(1).abi_name(), "ra");
        assert_eq!(Reg::x(2).abi_name(), "sp");
        assert_eq!(Reg::x(8).abi_name(), "s0");
        assert_eq!(Reg::x(10).abi_name(), "a0");
        assert_eq!(Reg::x(31).abi_name(), "t6");
        assert_eq!(Reg::f(10).abi_name(), "fa0");
        assert_eq!(Reg::f(31).abi_name(), "ft11");
    }

    #[test]
    fn dense_index_round_trip() {
        for i in 0..64u8 {
            let r = Reg::from_index(i);
            assert_eq!(r.index(), i);
            if i < 32 {
                assert_eq!(r.class(), RegClass::Gpr);
                assert_eq!(r.num(), i);
            } else {
                assert_eq!(r.class(), RegClass::Fpr);
                assert_eq!(r.num(), i - 32);
            }
        }
    }

    #[test]
    fn regset_excludes_x0() {
        let mut s = RegSet::empty();
        s.insert(Reg::x(0));
        assert!(s.is_empty());
        assert!(!RegSet::ALL.contains(Reg::x(0)));
    }

    #[test]
    fn regset_ops() {
        let a = RegSet::of(&[Reg::x(1), Reg::x(5), Reg::f(0)]);
        let b = RegSet::of(&[Reg::x(5), Reg::f(1)]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b).len(), 1);
        assert!(a.intersect(b).contains(Reg::x(5)));
        assert_eq!(a.minus(b).len(), 2);
        let members: Vec<Reg> = a.iter().collect();
        assert_eq!(members, vec![Reg::x(1), Reg::x(5), Reg::f(0)]);
    }

    #[test]
    fn callee_saved_classification() {
        assert!(Reg::x(2).is_callee_saved()); // sp
        assert!(Reg::x(8).is_callee_saved()); // s0
        assert!(Reg::x(18).is_callee_saved()); // s2
        assert!(!Reg::x(10).is_callee_saved()); // a0
        assert!(!Reg::x(5).is_callee_saved()); // t0
        assert!(Reg::f(9).is_callee_saved()); // fs1
        assert!(!Reg::f(0).is_callee_saved()); // ft0
    }

    #[test]
    fn complement_excludes_x0() {
        let s = RegSet::of(&[Reg::x(1)]);
        let c = s.complement();
        assert!(!c.contains(Reg::x(0)));
        assert!(!c.contains(Reg::x(1)));
        assert!(c.contains(Reg::x(2)));
        assert_eq!(c.len(), 62);
    }
}
