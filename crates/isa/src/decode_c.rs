//! C-extension (compressed, 16-bit) instruction decoder (§3.1.2).
//!
//! Every compressed instruction expands to a standard RV64 operation; the
//! decoder produces the expanded [`Op`] with `size == 2` and records the
//! original [`CompressedOp`] so PatchAPI can reason about 2-byte patch
//! footprints.

use crate::decode::sext;
use crate::error::DecodeError;
use crate::inst::Instruction;
use crate::op::{CompressedOp, Op};
use crate::reg::Reg;

#[inline]
fn bits16(raw: u16, hi: u16, lo: u16) -> u16 {
    (raw >> lo) & ((1u16 << (hi - lo + 1)) - 1)
}

/// `x8 + n` — the 3-bit "prime" register encoding used by most compressed
/// formats (maps to the most frequently used registers s0–a5).
#[inline]
fn xp(n: u16) -> Reg {
    Reg::x(8 + n as u8)
}

#[inline]
fn fp(n: u16) -> Reg {
    Reg::f(8 + n as u8)
}

/// Decode a 16-bit encoding at `address`.
pub fn decode_compressed(raw: u16, address: u64) -> Result<Instruction, DecodeError> {
    let invalid = || DecodeError::Invalid {
        address,
        raw: raw as u32,
    };
    if raw == 0 {
        return Err(DecodeError::DefinedIllegal { address });
    }
    let quadrant = raw & 0b11;
    let f3 = bits16(raw, 15, 13);
    let mut i = Instruction::new(address, raw as u32, 2, Op::Addi);

    match (quadrant, f3) {
        // ---------------- Quadrant 0 ----------------
        (0b00, 0b000) => {
            // c.addi4spn rd', sp, nzuimm
            let nzuimm = (bits16(raw, 12, 11) << 4)
                | (bits16(raw, 10, 7) << 6)
                | (bits16(raw, 6, 6) << 2)
                | (bits16(raw, 5, 5) << 3);
            if nzuimm == 0 {
                return Err(invalid());
            }
            i.op = Op::Addi;
            i.compressed = Some(CompressedOp::CAddi4spn);
            i.rd = Some(xp(bits16(raw, 4, 2)));
            i.rs1 = Some(Reg::X2);
            i.imm = nzuimm as i64;
        }
        (0b00, 0b001) => {
            // c.fld rd', uimm(rs1')
            let uimm = (bits16(raw, 12, 10) << 3) | (bits16(raw, 6, 5) << 6);
            i.op = Op::Fld;
            i.compressed = Some(CompressedOp::CFld);
            i.rd = Some(fp(bits16(raw, 4, 2)));
            i.rs1 = Some(xp(bits16(raw, 9, 7)));
            i.imm = uimm as i64;
        }
        (0b00, 0b010) => {
            let uimm =
                (bits16(raw, 12, 10) << 3) | (bits16(raw, 6, 6) << 2) | (bits16(raw, 5, 5) << 6);
            i.op = Op::Lw;
            i.compressed = Some(CompressedOp::CLw);
            i.rd = Some(xp(bits16(raw, 4, 2)));
            i.rs1 = Some(xp(bits16(raw, 9, 7)));
            i.imm = uimm as i64;
        }
        (0b00, 0b011) => {
            // c.ld (RV64)
            let uimm = (bits16(raw, 12, 10) << 3) | (bits16(raw, 6, 5) << 6);
            i.op = Op::Ld;
            i.compressed = Some(CompressedOp::CLd);
            i.rd = Some(xp(bits16(raw, 4, 2)));
            i.rs1 = Some(xp(bits16(raw, 9, 7)));
            i.imm = uimm as i64;
        }
        (0b00, 0b101) => {
            let uimm = (bits16(raw, 12, 10) << 3) | (bits16(raw, 6, 5) << 6);
            i.op = Op::Fsd;
            i.compressed = Some(CompressedOp::CFsd);
            i.rs1 = Some(xp(bits16(raw, 9, 7)));
            i.rs2 = Some(fp(bits16(raw, 4, 2)));
            i.imm = uimm as i64;
        }
        (0b00, 0b110) => {
            let uimm =
                (bits16(raw, 12, 10) << 3) | (bits16(raw, 6, 6) << 2) | (bits16(raw, 5, 5) << 6);
            i.op = Op::Sw;
            i.compressed = Some(CompressedOp::CSw);
            i.rs1 = Some(xp(bits16(raw, 9, 7)));
            i.rs2 = Some(xp(bits16(raw, 4, 2)));
            i.imm = uimm as i64;
        }
        (0b00, 0b111) => {
            let uimm = (bits16(raw, 12, 10) << 3) | (bits16(raw, 6, 5) << 6);
            i.op = Op::Sd;
            i.compressed = Some(CompressedOp::CSd);
            i.rs1 = Some(xp(bits16(raw, 9, 7)));
            i.rs2 = Some(xp(bits16(raw, 4, 2)));
            i.imm = uimm as i64;
        }

        // ---------------- Quadrant 1 ----------------
        (0b01, 0b000) => {
            // c.addi / c.nop
            let rd = bits16(raw, 11, 7) as u8;
            let imm = sext(((bits16(raw, 12, 12) << 5) | bits16(raw, 6, 2)) as u32, 6);
            i.op = Op::Addi;
            i.compressed = Some(if rd == 0 && imm == 0 {
                CompressedOp::CNop
            } else {
                CompressedOp::CAddi
            });
            i.rd = Some(Reg::x(rd));
            i.rs1 = Some(Reg::x(rd));
            i.imm = imm;
        }
        (0b01, 0b001) => {
            // c.addiw (RV64; rd != 0)
            let rd = bits16(raw, 11, 7) as u8;
            if rd == 0 {
                return Err(invalid());
            }
            i.op = Op::Addiw;
            i.compressed = Some(CompressedOp::CAddiw);
            i.rd = Some(Reg::x(rd));
            i.rs1 = Some(Reg::x(rd));
            i.imm = sext(((bits16(raw, 12, 12) << 5) | bits16(raw, 6, 2)) as u32, 6);
        }
        (0b01, 0b010) => {
            // c.li rd, imm  => addi rd, x0, imm
            let rd = bits16(raw, 11, 7) as u8;
            i.op = Op::Addi;
            i.compressed = Some(CompressedOp::CLi);
            i.rd = Some(Reg::x(rd));
            i.rs1 = Some(Reg::X0);
            i.imm = sext(((bits16(raw, 12, 12) << 5) | bits16(raw, 6, 2)) as u32, 6);
        }
        (0b01, 0b011) => {
            let rd = bits16(raw, 11, 7) as u8;
            if rd == 2 {
                // c.addi16sp
                let imm = sext(
                    ((bits16(raw, 12, 12) << 9)
                        | (bits16(raw, 6, 6) << 4)
                        | (bits16(raw, 5, 5) << 6)
                        | (bits16(raw, 4, 3) << 7)
                        | (bits16(raw, 2, 2) << 5)) as u32,
                    10,
                );
                if imm == 0 {
                    return Err(invalid());
                }
                i.op = Op::Addi;
                i.compressed = Some(CompressedOp::CAddi16sp);
                i.rd = Some(Reg::X2);
                i.rs1 = Some(Reg::X2);
                i.imm = imm;
            } else {
                // c.lui (rd != 0, 2; nzimm != 0)
                let imm = sext(
                    ((bits16(raw, 12, 12) as u32) << 17) | ((bits16(raw, 6, 2) as u32) << 12),
                    18,
                );
                if rd == 0 || imm == 0 {
                    return Err(invalid());
                }
                i.op = Op::Lui;
                i.compressed = Some(CompressedOp::CLui);
                i.rd = Some(Reg::x(rd));
                i.imm = imm;
            }
        }
        (0b01, 0b100) => {
            let f2 = bits16(raw, 11, 10);
            let rd = xp(bits16(raw, 9, 7));
            match f2 {
                0b00 | 0b01 => {
                    let shamt = ((bits16(raw, 12, 12) << 5) | bits16(raw, 6, 2)) as i64;
                    i.op = if f2 == 0 { Op::Srli } else { Op::Srai };
                    i.compressed = Some(if f2 == 0 {
                        CompressedOp::CSrli
                    } else {
                        CompressedOp::CSrai
                    });
                    i.rd = Some(rd);
                    i.rs1 = Some(rd);
                    i.imm = shamt;
                }
                0b10 => {
                    i.op = Op::Andi;
                    i.compressed = Some(CompressedOp::CAndi);
                    i.rd = Some(rd);
                    i.rs1 = Some(rd);
                    i.imm = sext(((bits16(raw, 12, 12) << 5) | bits16(raw, 6, 2)) as u32, 6);
                }
                _ => {
                    let rs2 = xp(bits16(raw, 4, 2));
                    let (op, c) = match (bits16(raw, 12, 12), bits16(raw, 6, 5)) {
                        (0, 0b00) => (Op::Sub, CompressedOp::CSub),
                        (0, 0b01) => (Op::Xor, CompressedOp::CXor),
                        (0, 0b10) => (Op::Or, CompressedOp::COr),
                        (0, 0b11) => (Op::And, CompressedOp::CAnd),
                        (1, 0b00) => (Op::Subw, CompressedOp::CSubw),
                        (1, 0b01) => (Op::Addw, CompressedOp::CAddw),
                        _ => return Err(invalid()),
                    };
                    i.op = op;
                    i.compressed = Some(c);
                    i.rd = Some(rd);
                    i.rs1 = Some(rd);
                    i.rs2 = Some(rs2);
                }
            }
        }
        (0b01, 0b101) => {
            // c.j => jal x0, imm
            let imm = sext(
                ((bits16(raw, 12, 12) << 11)
                    | (bits16(raw, 11, 11) << 4)
                    | (bits16(raw, 10, 9) << 8)
                    | (bits16(raw, 8, 8) << 10)
                    | (bits16(raw, 7, 7) << 6)
                    | (bits16(raw, 6, 6) << 7)
                    | (bits16(raw, 5, 3) << 1)
                    | (bits16(raw, 2, 2) << 5)) as u32,
                12,
            );
            i.op = Op::Jal;
            i.compressed = Some(CompressedOp::CJ);
            i.rd = Some(Reg::X0);
            i.imm = imm;
        }
        (0b01, 0b110) | (0b01, 0b111) => {
            // c.beqz / c.bnez rs1', imm
            let imm = sext(
                ((bits16(raw, 12, 12) << 8)
                    | (bits16(raw, 11, 10) << 3)
                    | (bits16(raw, 6, 5) << 6)
                    | (bits16(raw, 4, 3) << 1)
                    | (bits16(raw, 2, 2) << 5)) as u32,
                9,
            );
            i.op = if f3 == 0b110 { Op::Beq } else { Op::Bne };
            i.compressed = Some(if f3 == 0b110 {
                CompressedOp::CBeqz
            } else {
                CompressedOp::CBnez
            });
            i.rs1 = Some(xp(bits16(raw, 9, 7)));
            i.rs2 = Some(Reg::X0);
            i.imm = imm;
        }

        // ---------------- Quadrant 2 ----------------
        (0b10, 0b000) => {
            // c.slli rd, shamt (rd != 0)
            let rd = bits16(raw, 11, 7) as u8;
            if rd == 0 {
                return Err(invalid());
            }
            i.op = Op::Slli;
            i.compressed = Some(CompressedOp::CSlli);
            i.rd = Some(Reg::x(rd));
            i.rs1 = Some(Reg::x(rd));
            i.imm = ((bits16(raw, 12, 12) << 5) | bits16(raw, 6, 2)) as i64;
        }
        (0b10, 0b001) => {
            // c.fldsp
            let uimm =
                (bits16(raw, 12, 12) << 5) | (bits16(raw, 6, 5) << 3) | (bits16(raw, 4, 2) << 6);
            i.op = Op::Fld;
            i.compressed = Some(CompressedOp::CFldsp);
            i.rd = Some(Reg::f(bits16(raw, 11, 7) as u8));
            i.rs1 = Some(Reg::X2);
            i.imm = uimm as i64;
        }
        (0b10, 0b010) => {
            // c.lwsp (rd != 0)
            let rd = bits16(raw, 11, 7) as u8;
            if rd == 0 {
                return Err(invalid());
            }
            let uimm =
                (bits16(raw, 12, 12) << 5) | (bits16(raw, 6, 4) << 2) | (bits16(raw, 3, 2) << 6);
            i.op = Op::Lw;
            i.compressed = Some(CompressedOp::CLwsp);
            i.rd = Some(Reg::x(rd));
            i.rs1 = Some(Reg::X2);
            i.imm = uimm as i64;
        }
        (0b10, 0b011) => {
            // c.ldsp (RV64; rd != 0)
            let rd = bits16(raw, 11, 7) as u8;
            if rd == 0 {
                return Err(invalid());
            }
            let uimm =
                (bits16(raw, 12, 12) << 5) | (bits16(raw, 6, 5) << 3) | (bits16(raw, 4, 2) << 6);
            i.op = Op::Ld;
            i.compressed = Some(CompressedOp::CLdsp);
            i.rd = Some(Reg::x(rd));
            i.rs1 = Some(Reg::X2);
            i.imm = uimm as i64;
        }
        (0b10, 0b100) => {
            let rs1 = bits16(raw, 11, 7) as u8;
            let rs2 = bits16(raw, 6, 2) as u8;
            match (bits16(raw, 12, 12), rs1, rs2) {
                (0, r, 0) => {
                    // c.jr (rs1 != 0)
                    if r == 0 {
                        return Err(invalid());
                    }
                    i.op = Op::Jalr;
                    i.compressed = Some(CompressedOp::CJr);
                    i.rd = Some(Reg::X0);
                    i.rs1 = Some(Reg::x(r));
                    i.imm = 0;
                }
                (0, r, s) => {
                    // c.mv rd, rs2 => add rd, x0, rs2 (rd != 0 per spec;
                    // rd == 0 encodings are HINTs — reject as invalid here)
                    if r == 0 {
                        return Err(invalid());
                    }
                    i.op = Op::Add;
                    i.compressed = Some(CompressedOp::CMv);
                    i.rd = Some(Reg::x(r));
                    i.rs1 = Some(Reg::X0);
                    i.rs2 = Some(Reg::x(s));
                }
                (1, 0, 0) => {
                    i.op = Op::Ebreak;
                    i.compressed = Some(CompressedOp::CEbreak);
                }
                (1, r, 0) => {
                    // c.jalr => jalr ra, 0(rs1)
                    i.op = Op::Jalr;
                    i.compressed = Some(CompressedOp::CJalr);
                    i.rd = Some(Reg::X1);
                    i.rs1 = Some(Reg::x(r));
                    i.imm = 0;
                }
                (1, r, s) => {
                    // c.add rd, rs2 => add rd, rd, rs2 (rd != 0)
                    if r == 0 {
                        return Err(invalid());
                    }
                    i.op = Op::Add;
                    i.compressed = Some(CompressedOp::CAdd);
                    i.rd = Some(Reg::x(r));
                    i.rs1 = Some(Reg::x(r));
                    i.rs2 = Some(Reg::x(s));
                }
                _ => unreachable!(),
            }
        }
        (0b10, 0b101) => {
            // c.fsdsp
            let uimm = (bits16(raw, 12, 10) << 3) | (bits16(raw, 9, 7) << 6);
            i.op = Op::Fsd;
            i.compressed = Some(CompressedOp::CFsdsp);
            i.rs1 = Some(Reg::X2);
            i.rs2 = Some(Reg::f(bits16(raw, 6, 2) as u8));
            i.imm = uimm as i64;
        }
        (0b10, 0b110) => {
            // c.swsp
            let uimm = (bits16(raw, 12, 9) << 2) | (bits16(raw, 8, 7) << 6);
            i.op = Op::Sw;
            i.compressed = Some(CompressedOp::CSwsp);
            i.rs1 = Some(Reg::X2);
            i.rs2 = Some(Reg::x(bits16(raw, 6, 2) as u8));
            i.imm = uimm as i64;
        }
        (0b10, 0b111) => {
            // c.sdsp
            let uimm = (bits16(raw, 12, 10) << 3) | (bits16(raw, 9, 7) << 6);
            i.op = Op::Sd;
            i.compressed = Some(CompressedOp::CSdsp);
            i.rs1 = Some(Reg::X2);
            i.rs2 = Some(Reg::x(bits16(raw, 6, 2) as u8));
            i.imm = uimm as i64;
        }
        _ => return Err(invalid()),
    }
    Ok(i)
}

#[cfg(test)]
// Literals below are grouped by the C-format instruction fields
// (funct3 | imm | rs/rd | op), not by nibbles.
#[allow(clippy::unusual_byte_groupings)]
mod tests {
    use super::*;
    use crate::inst::ControlFlow;

    fn dc(raw: u16) -> Instruction {
        decode_compressed(raw, 0x2000).unwrap()
    }

    #[test]
    fn c_nop_and_addi() {
        let i = dc(0x0001);
        assert_eq!(i.compressed, Some(CompressedOp::CNop));
        assert_eq!(i.op, Op::Addi);
        assert_eq!(i.size, 2);
        // c.addi a0, -1 : rd=10, imm=-1 (bit12=1, bits6:2=11111)
        let raw = 0x0001 | (1 << 12) | (10 << 7) | (0x1F << 2);
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CAddi));
        assert_eq!(i.rd, Some(Reg::x(10)));
        assert_eq!(i.imm, -1);
    }

    #[test]
    fn c_li() {
        // c.li a0, 31
        let raw = 0b010_0_00000_00000_01u16 | (10 << 7) | (31 << 2);
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CLi));
        assert_eq!(i.op, Op::Addi);
        assert_eq!(i.rs1, Some(Reg::X0));
        assert_eq!(i.imm, 31);
    }

    #[test]
    fn c_lui_and_addi16sp() {
        // c.lui a1, 1 => imm = 0x1000
        let raw = 0b011_0_00000_00000_01u16 | (11 << 7) | (1 << 2);
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CLui));
        assert_eq!(i.imm, 0x1000);
        // c.addi16sp -16: imm=-16 => bits: imm[9]=1...
        // -16 = 0b11_1111_0000 (10 bits). imm[9]=1,imm[8:7]=11,imm[6]=1,imm[5]=1,imm[4]=1
        let raw = 0b011_0_00010_00000_01u16
            | (1 << 12)   // imm[9]
            | (1 << 6)    // imm[4]
            | (1 << 5)    // imm[6]
            | (0b11 << 3) // imm[8:7]
            | (1 << 2); // imm[5]
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CAddi16sp));
        assert_eq!(i.rd, Some(Reg::X2));
        assert_eq!(i.imm, -16);
    }

    #[test]
    fn c_addi4spn() {
        // c.addi4spn a0 (x10 = xp(2)), nzuimm=8 -> uimm[3]=1 (bit5)
        let raw = (1u16 << 5) | (2 << 2);
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CAddi4spn));
        assert_eq!(i.rd, Some(Reg::x(10)));
        assert_eq!(i.rs1, Some(Reg::X2));
        assert_eq!(i.imm, 8);
    }

    #[test]
    fn c_memory_forms() {
        // c.ld a2(xp(4)=x12 dest... careful: xp mapping), from 16(a0):
        // rd'=4 -> x12, rs1'=2 -> x10, uimm=16 -> uimm[4]=1 -> bit 11
        let raw = 0b011_0_00000_00000_00u16 | (1 << 11) | (2 << 7) | (4 << 2);
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CLd));
        assert_eq!(i.op, Op::Ld);
        assert_eq!(i.rd, Some(Reg::x(12)));
        assert_eq!(i.rs1, Some(Reg::x(10)));
        assert_eq!(i.imm, 16);
        // c.sdsp: sd s0, 0(sp)
        let raw = 0b111_0_00000_00000_10u16 | (8 << 2);
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CSdsp));
        assert_eq!(i.rs2, Some(Reg::x(8)));
        assert_eq!(i.rs1, Some(Reg::X2));
        // c.ldsp: ld ra, 8(sp): uimm[3]=1 -> bit 5
        let raw = 0b011_0_00000_00000_10u16 | (1 << 7) | (1 << 5);
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CLdsp));
        assert_eq!(i.rd, Some(Reg::X1));
        assert_eq!(i.imm, 8);
    }

    #[test]
    fn c_control_flow() {
        // c.j +4 : imm[3:1] bits 5:3 -> imm=4 => bit 4 (imm[2] is bit at
        // position 4 within 5:3 group). imm bits [3:1] at raw bits 5:3.
        let raw = 0b101_00000000010_01u16 | (0b010 << 3);
        let i = decode_compressed(raw & !0b10, 0x2000);
        // Construct properly: quadrant 01, f3=101, imm=4 -> bits5:3 = 010
        let raw = (0b101u16 << 13) | (0b010 << 3) | 0b01;
        let i2 = dc(raw);
        assert_eq!(i2.compressed, Some(CompressedOp::CJ));
        match i2.control_flow() {
            ControlFlow::DirectJump { target, link } => {
                assert_eq!(target, 0x2004);
                assert_eq!(link, Reg::X0);
            }
            cf => panic!("{cf:?}"),
        }
        let _ = i;
        // c.jr ra
        let raw = (0b100u16 << 13) | (1 << 7) | 0b10;
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CJr));
        assert!(i.is_canonical_return());
        // c.jalr a0
        let raw = (0b100u16 << 13) | (1 << 12) | (10 << 7) | 0b10;
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CJalr));
        assert!(i.is_call_shaped());
        // c.ebreak
        let raw = (0b100u16 << 13) | (1 << 12) | 0b10;
        let i = dc(raw);
        assert_eq!(i.op, Op::Ebreak);
    }

    #[test]
    fn c_beqz_negative_offset() {
        // c.bnez a0(xp(2)), -2 : imm=-2 -> 9-bit -2 = 0b1_1111_1110:
        // imm[8]=1 bit12, imm[7:6]=11 bits6:5, imm[5]=1 bit2, imm[4:3]=11 bits11:10, imm[2:1]=11 bits4:3
        let raw = (0b111u16 << 13)
            | (1 << 12)
            | (0b11 << 10)
            | (2 << 7)
            | (0b11 << 5)
            | (0b11 << 3)
            | (1 << 2)
            | 0b01;
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CBnez));
        assert_eq!(i.op, Op::Bne);
        assert_eq!(i.imm, -2);
        assert_eq!(i.rs2, Some(Reg::X0));
    }

    #[test]
    fn c_arith() {
        // c.sub s0, s1: rd'=0 (x8), rs2'=1 (x9)
        let raw = ((0b100u16 << 13) | (0b11 << 10)) | (1 << 2) | 0b01;
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CSub));
        assert_eq!(i.op, Op::Sub);
        assert_eq!(i.rd, Some(Reg::x(8)));
        assert_eq!(i.rs2, Some(Reg::x(9)));
        // c.addw
        let raw = (0b100u16 << 13) | (1 << 12) | (0b11 << 10) | (0b01 << 5) | 0b01;
        let i = dc(raw);
        assert_eq!(i.op, Op::Addw);
        assert_eq!(i.compressed, Some(CompressedOp::CAddw));
        // c.mv a0, a1
        let raw = (0b100u16 << 13) | (10 << 7) | (11 << 2) | 0b10;
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CMv));
        assert_eq!(i.rs2, Some(Reg::x(11)));
        // c.add a0, a1
        let raw = (0b100u16 << 13) | (1 << 12) | (10 << 7) | (11 << 2) | 0b10;
        let i = dc(raw);
        assert_eq!(i.compressed, Some(CompressedOp::CAdd));
        assert_eq!(i.rs1, Some(Reg::x(10)));
    }

    #[test]
    fn c_shifts() {
        // c.slli a0, 32: bit12 = shamt[5]
        let raw = (1 << 12) | (10 << 7) | 0b10;
        let i = dc(raw);
        assert_eq!(i.op, Op::Slli);
        assert_eq!(i.imm, 32);
        // c.srai s0, 1
        let raw = ((0b100u16 << 13) | (0b01 << 10)) | (1 << 2) | 0b01;
        let i = dc(raw);
        assert_eq!(i.op, Op::Srai);
        assert_eq!(i.imm, 1);
    }

    #[test]
    fn rejects_reserved() {
        // c.addi4spn with nzuimm == 0
        assert!(decode_compressed(0x0004, 0).is_err());
        // all-zero
        assert!(matches!(
            decode_compressed(0, 0),
            Err(DecodeError::DefinedIllegal { .. })
        ));
        // c.lwsp with rd == 0
        let raw = (0b010u16 << 13) | (1 << 12) | 0b10;
        assert!(decode_compressed(raw, 0).is_err());
    }
}
