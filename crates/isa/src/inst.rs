//! The decoded [`Instruction`] and its operand/classification queries.

use crate::op::{CompressedOp, Op};
use crate::reg::{Reg, RegSet};
use crate::{ALT_LINK_REG, LINK_REG};

/// A fully decoded RISC-V instruction.
///
/// Compressed instructions are decoded to the uniform expanded operand model
/// (`size == 2`, [`Instruction::compressed`] set); all analyses treat both
/// widths identically except where the byte footprint matters (PatchAPI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// Address this instruction was decoded at.
    pub address: u64,
    /// Original encoding bits (low 16 bits for compressed instructions).
    pub raw: u32,
    /// Encoded length in bytes: 2 or 4.
    pub size: u8,
    /// The (expanded) operation.
    pub op: Op,
    /// Destination register.
    pub rd: Option<Reg>,
    /// First source register.
    pub rs1: Option<Reg>,
    /// Second source register.
    pub rs2: Option<Reg>,
    /// Third source register (FMA only).
    pub rs3: Option<Reg>,
    /// Immediate operand, sign-extended to i64 where the format sign-extends.
    /// For shifts this is the shamt; for CSR-immediate forms the zimm.
    pub imm: i64,
    /// CSR number for Zicsr operations.
    pub csr: Option<u16>,
    /// FP rounding mode field (0b111 = dynamic).
    pub rm: u8,
    /// Atomic acquire bit.
    pub aq: bool,
    /// Atomic release bit.
    pub rl: bool,
    /// Original compressed identity, if this was a 16-bit encoding.
    pub compressed: Option<CompressedOp>,
}

impl Instruction {
    /// A blank instruction value with no operands set. Used by the decoder
    /// and by code generators that synthesise instructions field-by-field.
    pub fn new(address: u64, raw: u32, size: u8, op: Op) -> Instruction {
        Instruction {
            address,
            raw,
            size,
            op,
            rd: None,
            rs1: None,
            rs2: None,
            rs3: None,
            imm: 0,
            csr: None,
            rm: 0,
            aq: false,
            rl: false,
            compressed: None,
        }
    }

    /// Address of the next sequential instruction.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        self.address.wrapping_add(self.size as u64)
    }

    /// Mnemonic honouring the compressed form if present.
    pub fn mnemonic(&self) -> &'static str {
        match self.compressed {
            Some(c) => c.mnemonic(),
            None => self.op.mnemonic(),
        }
    }

    /// Registers read by this instruction, including implicit operands.
    ///
    /// `ecall` reads the syscall argument registers `a0`–`a7` (Linux
    /// convention) so liveness remains sound across system calls.
    pub fn regs_read(&self) -> RegSet {
        let mut s = RegSet::empty();
        match self.op {
            Op::Ecall => {
                for n in 10..=17 {
                    s.insert(Reg::x(n));
                }
                return s;
            }
            Op::Csrrwi | Op::Csrrsi | Op::Csrrci => return s,
            // fence rd/rs1 are reserved hint fields (preserved only for
            // exact re-encoding) — not architectural operands.
            Op::Fence | Op::FenceI => return s,
            _ => {}
        }
        if let Some(r) = self.rs1 {
            s.insert(r);
        }
        if let Some(r) = self.rs2 {
            s.insert(r);
        }
        if let Some(r) = self.rs3 {
            s.insert(r);
        }
        s
    }

    /// Registers written by this instruction, including implicit operands.
    ///
    /// `ecall` writes the syscall return register `a0`.
    pub fn regs_written(&self) -> RegSet {
        let mut s = RegSet::empty();
        match self.op {
            Op::Ecall => {
                s.insert(Reg::x(10));
                return s;
            }
            Op::Fence | Op::FenceI => return s, // hint fields only
            _ => {}
        }
        if let Some(r) = self.rd {
            s.insert(r);
        }
        s
    }

    /// The memory access performed, if any.
    pub fn mem_access(&self) -> Option<MemAccess> {
        let kind = if self.op.is_atomic() && !matches!(self.op, Op::LrW | Op::LrD) {
            if matches!(self.op, Op::ScW | Op::ScD) {
                MemAccessKind::Write
            } else {
                MemAccessKind::ReadWrite
            }
        } else if self.op.is_load() {
            MemAccessKind::Read
        } else if self.op.is_store() {
            MemAccessKind::Write
        } else {
            return None;
        };
        let size = match self.op {
            Op::Lb | Op::Lbu | Op::Sb => 1,
            Op::Lh | Op::Lhu | Op::Sh => 2,
            Op::Lw | Op::Lwu | Op::Sw | Op::Flw | Op::Fsw => 4,
            Op::Ld | Op::Sd | Op::Fld | Op::Fsd => 8,
            o if o.is_atomic() => {
                if o.mnemonic().ends_with(".w") {
                    4
                } else {
                    8
                }
            }
            _ => return None,
        };
        // AMO/LR/SC address is rs1 with zero displacement.
        let offset = if self.op.is_atomic() { 0 } else { self.imm };
        Some(MemAccess {
            base: self.rs1.expect("memory op has a base register"),
            offset,
            size,
            kind,
        })
    }

    /// Abstract control-flow classification (ParseAPI refines this using
    /// context — §3.2.3's six rules — because `jal`/`jalr` are multi-use).
    pub fn control_flow(&self) -> ControlFlow {
        match self.op {
            Op::Jal => ControlFlow::DirectJump {
                target: self.address.wrapping_add(self.imm as u64),
                link: self.rd.unwrap_or(Reg::X0),
            },
            Op::Jalr => ControlFlow::IndirectJump {
                base: self.rs1.unwrap_or(Reg::X0),
                offset: self.imm,
                link: self.rd.unwrap_or(Reg::X0),
            },
            op if op.is_conditional_branch() => ControlFlow::ConditionalBranch {
                target: self.address.wrapping_add(self.imm as u64),
                fallthrough: self.next_pc(),
            },
            Op::Ecall => ControlFlow::Syscall,
            Op::Ebreak => ControlFlow::Trap,
            _ => ControlFlow::None,
        }
    }

    /// Does this instruction end a basic block?
    pub fn is_block_terminator(&self) -> bool {
        !matches!(
            self.control_flow(),
            ControlFlow::None | ControlFlow::Syscall
        )
    }

    /// True if the link register of a `jal`/`jalr` marks this as
    /// call-shaped (rd is `ra` or the alternate link register `t0`).
    pub fn is_call_shaped(&self) -> bool {
        match self.control_flow() {
            ControlFlow::DirectJump { link, .. } | ControlFlow::IndirectJump { link, .. } => {
                link == LINK_REG || link == ALT_LINK_REG
            }
            _ => false,
        }
    }

    /// True if this looks like the canonical `ret` (`jalr x0, 0(ra)`).
    pub fn is_canonical_return(&self) -> bool {
        self.op == Op::Jalr
            && self.rd == Some(Reg::X0)
            && self.rs1 == Some(LINK_REG)
            && self.imm == 0
    }
}

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccessKind {
    Read,
    Write,
    /// Atomic read-modify-write.
    ReadWrite,
}

/// A memory operand: `offset(base)` with an access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    pub base: Reg,
    pub offset: i64,
    pub size: u8,
    pub kind: MemAccessKind,
}

/// Abstract control-flow effect of an instruction.
///
/// Deliberately *not* call/return/tail-call: RISC-V overloads `jal`/`jalr`
/// for all of those (§3.1.3), so the higher-level purpose is assigned by
/// ParseAPI's context-sensitive classification, not by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Falls through.
    None,
    /// B-format conditional branch.
    ConditionalBranch { target: u64, fallthrough: u64 },
    /// `jal`: pc-relative jump, writing `link` (possibly `x0`).
    DirectJump { target: u64, link: Reg },
    /// `jalr`: register-indirect jump, writing `link` (possibly `x0`).
    IndirectJump { base: Reg, offset: i64, link: Reg },
    /// `ecall` — control returns after the kernel services the call.
    Syscall,
    /// `ebreak` — debugger trap.
    Trap,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(op: Op) -> Instruction {
        Instruction::new(0x1000, 0, 4, op)
    }

    #[test]
    fn ecall_implicit_operands() {
        let i = mk(Op::Ecall);
        let reads = i.regs_read();
        assert_eq!(reads.len(), 8);
        assert!(reads.contains(Reg::x(10)));
        assert!(reads.contains(Reg::x(17)));
        let writes = i.regs_written();
        assert_eq!(writes.len(), 1);
        assert!(writes.contains(Reg::x(10)));
    }

    #[test]
    fn store_reads_both() {
        let mut i = mk(Op::Sd);
        i.rs1 = Some(Reg::x(2));
        i.rs2 = Some(Reg::x(10));
        i.imm = -16;
        assert_eq!(i.regs_read().len(), 2);
        assert!(i.regs_written().is_empty());
        let m = i.mem_access().unwrap();
        assert_eq!(m.base, Reg::x(2));
        assert_eq!(m.offset, -16);
        assert_eq!(m.size, 8);
        assert_eq!(m.kind, MemAccessKind::Write);
    }

    #[test]
    fn amo_is_read_write() {
        let mut i = mk(Op::AmoAddW);
        i.rd = Some(Reg::x(10));
        i.rs1 = Some(Reg::x(11));
        i.rs2 = Some(Reg::x(12));
        let m = i.mem_access().unwrap();
        assert_eq!(m.kind, MemAccessKind::ReadWrite);
        assert_eq!(m.size, 4);
        assert_eq!(m.offset, 0);
    }

    #[test]
    fn jal_classification() {
        let mut i = mk(Op::Jal);
        i.rd = Some(Reg::X1);
        i.imm = 0x100;
        assert!(i.is_call_shaped());
        assert!(i.is_block_terminator());
        match i.control_flow() {
            ControlFlow::DirectJump { target, link } => {
                assert_eq!(target, 0x1100);
                assert_eq!(link, Reg::X1);
            }
            cf => panic!("wrong classification: {cf:?}"),
        }
    }

    #[test]
    fn canonical_return() {
        let mut i = mk(Op::Jalr);
        i.rd = Some(Reg::X0);
        i.rs1 = Some(Reg::X1);
        i.imm = 0;
        assert!(i.is_canonical_return());
        assert!(!i.is_call_shaped());
    }

    #[test]
    fn branch_targets() {
        let mut i = mk(Op::Beq);
        i.rs1 = Some(Reg::x(10));
        i.rs2 = Some(Reg::x(11));
        i.imm = -8;
        match i.control_flow() {
            ControlFlow::ConditionalBranch {
                target,
                fallthrough,
            } => {
                assert_eq!(target, 0x0FF8);
                assert_eq!(fallthrough, 0x1004);
            }
            cf => panic!("wrong classification: {cf:?}"),
        }
    }

    #[test]
    fn writes_to_x0_are_invisible() {
        let mut i = mk(Op::Jal);
        i.rd = Some(Reg::X0);
        i.imm = 16;
        assert!(i.regs_written().is_empty());
        assert!(!i.is_call_shaped());
    }
}
