//! Decode errors.

use std::fmt;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes available than the instruction length requires.
    Truncated {
        address: u64,
        have: usize,
        need: usize,
    },
    /// The encoding does not correspond to any supported RV64GC instruction.
    Invalid { address: u64, raw: u32 },
    /// The all-zero / all-ones guard encodings, defined illegal by the spec.
    DefinedIllegal { address: u64 },
}

impl DecodeError {
    pub fn address(&self) -> u64 {
        match *self {
            DecodeError::Truncated { address, .. }
            | DecodeError::Invalid { address, .. }
            | DecodeError::DefinedIllegal { address } => address,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Truncated {
                address,
                have,
                need,
            } => write!(
                f,
                "truncated instruction at {address:#x}: have {have} bytes, need {need}"
            ),
            DecodeError::Invalid { address, raw } => {
                write!(f, "invalid encoding {raw:#010x} at {address:#x}")
            }
            DecodeError::DefinedIllegal { address } => {
                write!(f, "defined-illegal encoding at {address:#x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}
