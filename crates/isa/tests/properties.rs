//! Property-based tests for the decoder/encoder/semantics triangle.
//!
//! The key invariants:
//! 1. `decode ∘ encode ∘ decode = decode` over the whole 32-bit space
//!    (semantic round-trip — re-encoding a decoded instruction preserves
//!    its meaning even when the original encoding was non-canonical).
//! 2. Compressed encodings round-trip through `compress`.
//! 3. The operand read/write sets reported by InstructionAPI agree with the
//!    def/use sets derivable from the semantics micro-ops (the fact the
//!    paper needed Capstone ≥ 6.0.0-Alpha for).

use proptest::prelude::*;
use rvdyn_isa::decode::{decode, decode32};
use rvdyn_isa::decode_c::decode_compressed;
use rvdyn_isa::encode::{compress, encode, encode32};
use rvdyn_isa::semantics::{micro_ops, MicroOp, SemExpr};
use rvdyn_isa::{Instruction, Op, Reg, RegSet};

/// Compare two instructions for semantic equality (ignoring raw bits, size
/// and compressed identity).
fn sem_eq(a: &Instruction, b: &Instruction) -> bool {
    a.op == b.op
        && a.rd == b.rd
        && a.rs1 == b.rs1
        && a.rs2 == b.rs2
        && a.rs3 == b.rs3
        && a.imm == b.imm
        && a.csr == b.csr
        && a.aq == b.aq
        && a.rl == b.rl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn decode_encode_decode_is_decode_32bit(raw in any::<u32>()) {
        // Force a 32-bit encoding shape.
        let raw = (raw | 0b11) & !0b11100 | (raw & !0b11111) | 0b11;
        if let Ok(i) = decode32(raw, 0x1000) {
            let re = encode32(&i).unwrap_or_else(|e| {
                panic!("decoded {} but failed to re-encode: {e}", i.mnemonic())
            });
            let i2 = decode32(re, 0x1000)
                .unwrap_or_else(|e| panic!("re-encoding of {} undecodable: {e}", i.mnemonic()));
            prop_assert!(sem_eq(&i, &i2), "{:?} != {:?}", i, i2);
        }
    }

    #[test]
    fn compressed_round_trip(raw in any::<u16>()) {
        if raw & 0b11 == 0b11 {
            return Ok(()); // not a compressed encoding
        }
        if let Ok(i) = decode_compressed(raw, 0x2000) {
            // Either the canonical compressor reproduces the bits, or the
            // instruction was a HINT-adjacent form: then the 32-bit encoding
            // must carry identical semantics.
            match compress(&i) {
                Some(c) => {
                    // The compressor is canonical, but a few encodings have
                    // equally-valid compressed aliases (e.g. `c.addi sp,-16`
                    // vs `c.addi16sp -16`); require semantic equality.
                    let i2 = decode_compressed(c, 0x2000).unwrap();
                    prop_assert!(sem_eq(&i, &i2), "compress alias mismatch for {}", i.mnemonic());
                }
                None => {
                    let re = encode32(&i).unwrap();
                    let i2 = decode32(re, 0x2000).unwrap();
                    prop_assert!(sem_eq(&i, &i2));
                }
            }
        }
    }

    #[test]
    fn encode_any_decoded_instruction(raw in any::<u32>()) {
        if let Ok(i) = decode(&raw.to_le_bytes(), 0x1000) {
            let bytes = encode(&i).unwrap();
            // Compressed instructions stay 2 bytes when a canonical
            // compressed form exists (HINT forms legitimately widen to 4).
            let expect = if i.compressed.is_some() && compress(&i).is_some() { 2 } else { 4 };
            prop_assert_eq!(bytes.len(), expect);
            let i2 = decode(&bytes, 0x1000).unwrap();
            prop_assert!(sem_eq(&i, &i2));
        }
    }

    #[test]
    fn reported_rw_sets_agree_with_semantics(raw in any::<u32>()) {
        let Ok(i) = decode(&raw.to_le_bytes(), 0x1000) else { return Ok(()) };
        // Skip ops whose semantics are modelled opaquely.
        let ops = micro_ops(&i);
        let opaque = ops.iter().any(|o| matches!(o, MicroOp::FpCompute { .. } | MicroOp::Opaque | MicroOp::Syscall | MicroOp::Break));
        if opaque {
            return Ok(());
        }
        let mut sem_reads = RegSet::empty();
        let mut sem_writes = RegSet::empty();
        for op in &ops {
            match op {
                MicroOp::Write { rd, val } => {
                    val.uses(&mut sem_reads);
                    sem_writes.insert(*rd);
                }
                MicroOp::Load { rd, addr, .. } => {
                    addr.uses(&mut sem_reads);
                    sem_writes.insert(*rd);
                }
                MicroOp::Store { addr, val, .. } => {
                    addr.uses(&mut sem_reads);
                    val.uses(&mut sem_reads);
                }
                MicroOp::SetPc { target, cond } => {
                    target.uses(&mut sem_reads);
                    if let Some((_, a, b)) = cond {
                        a.uses(&mut sem_reads);
                        b.uses(&mut sem_reads);
                    }
                }
                MicroOp::Amo { rd, addr, src, .. } => {
                    addr.uses(&mut sem_reads);
                    src.uses(&mut sem_reads);
                    sem_writes.insert(*rd);
                }
                _ => {}
            }
        }
        // The decoder's sets must cover the semantic sets; they may
        // over-report reads only when the write target is x0 (the whole
        // instruction is architecturally a no-op then).
        prop_assert_eq!(sem_reads.minus(i.regs_read()), RegSet::empty(),
            "semantic reads not reported for {}", i.mnemonic());
        if i.rd != Some(Reg::X0) {
            prop_assert_eq!(i.regs_read(), sem_reads, "read set mismatch for {}", i.mnemonic());
        }
        prop_assert_eq!(i.regs_written(), sem_writes, "write set mismatch for {}", i.mnemonic());
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..8)) {
        let _ = decode(&bytes, 0xFFFF_FFFF_FFFF_FFF0);
    }

    #[test]
    fn jal_targets_match_imm(addr in any::<u32>().prop_map(|a| (a as u64) & !1), off in -(1i64 << 20)..(1i64 << 20)) {
        let off = off & !1;
        let mut i = Instruction::new(addr, 0, 4, Op::Jal);
        i.rd = Some(Reg::X1);
        i.imm = off;
        let raw = encode32(&i).unwrap();
        let d = decode32(raw, addr).unwrap();
        prop_assert_eq!(d.imm, off);
        match d.control_flow() {
            rvdyn_isa::ControlFlow::DirectJump { target, .. } => {
                prop_assert_eq!(target, addr.wrapping_add(off as u64));
            }
            _ => prop_assert!(false),
        }
    }
}

#[test]
fn sem_expr_uses_collects_all() {
    let e = SemExpr::bin(
        rvdyn_isa::semantics::BinOp::Add,
        SemExpr::gpr(Reg::x(5)),
        SemExpr::bin(
            rvdyn_isa::semantics::BinOp::Xor,
            SemExpr::gpr(Reg::x(6)),
            SemExpr::imm(3),
        ),
    );
    let mut s = RegSet::empty();
    e.uses(&mut s);
    assert_eq!(s, RegSet::of(&[Reg::x(5), Reg::x(6)]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// The disassembler must render every decodable encoding without
    /// panicking, and never produce an empty string.
    #[test]
    fn disassembly_total_over_decodable_space(raw in any::<u32>()) {
        for bytes in [&raw.to_le_bytes()[..], &raw.to_le_bytes()[..2]] {
            if let Ok(i) = decode(bytes, 0x1000) {
                let text = rvdyn_isa::disasm::format_instruction(&i);
                prop_assert!(!text.is_empty());
                prop_assert!(text.starts_with(i.mnemonic()));
            }
        }
    }
}
