//! The translation-cached execution engine (DBT back end).
//!
//! A straight decode-dispatch interpreter pays a fetch, a decode-cache
//! probe and a giant opcode match for every retired instruction. Real
//! dynamic binary translators (MAMBO-V on RISC-V, DynamoRIO, Dyninst's
//! own dynamic path) amortise that cost by translating *basic blocks*
//! once, caching the result, and chaining blocks together so straight
//! line and loop execution never returns to the dispatcher.
//!
//! This module is that engine for `rvdyn-emu`, with the full contract
//! written down in `docs/EMULATOR.md`:
//!
//! * **Translate** — on first execution of a pc, decode straight-line
//!   instructions up to the next control transfer (or a size cap) into a
//!   `DecodedBlock` of pre-lowered `Step`s; hot RV64GC opcodes get
//!   specialised step kinds, everything else falls back to the shared
//!   semantic core (`crate::exec`) so the two engines cannot drift.
//!   Unconditional direct jumps (`jal x0`) are followed at translation
//!   time, fusing a loop body and its header into one *superblock* so
//!   the hot path of a loop is a single self-chaining block.
//! * **Cache** — blocks live in a slot vector indexed by a pc→slot map;
//!   dead slots are recycled through a free list.
//! * **Chain** — a block ending in a direct branch remembers the slot of
//!   its taken/fallthrough successor, validated against the cache
//!   *generation*, so loops run block-to-block without map lookups.
//! * **Invalidate** — any write into executable text (a debugger
//!   `write_mem`, a dynamic springboard patch, a `FaultPlan` corruption,
//!   or the mutatee's own stores) kills every overlapping block and bumps
//!   the generation, severing all chain links at once. The next
//!   execution re-decodes from current bytes.
//!
//! The engine is **bit-identical** to the interpreter: same architectural
//! state, same retired-instruction counts, same modelled cycles, same
//! trap pcs, same fault addresses — pinned by the differential suite in
//! `tests/engine_diff.rs`.

use crate::cost::CostModel;
use crate::machine::{Machine, StopReason, STACK_SIZE, STACK_TOP};
use rvdyn_isa::{Instruction, Op};

use std::collections::HashMap;

/// Which back end [`Machine::run`] executes on.
///
/// Both engines are observationally identical (state, cycles, traps);
/// `Cached` is the fast one. The default comes from the `RVDYN_EMU`
/// environment variable so every existing test and tool can be flipped
/// onto either engine without code changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmuEngine {
    /// Decode-dispatch interpretation, one instruction at a time.
    #[default]
    Interpreter,
    /// Decoded-basic-block translation cache with direct-branch chaining.
    Cached,
}

impl EmuEngine {
    /// Engine selected by the `RVDYN_EMU` environment variable:
    /// `cached` (case-insensitive) picks [`EmuEngine::Cached`], anything
    /// else — including unset — picks [`EmuEngine::Interpreter`].
    pub fn from_env() -> EmuEngine {
        match std::env::var("RVDYN_EMU") {
            Ok(v) if v.eq_ignore_ascii_case("cached") => EmuEngine::Cached,
            _ => EmuEngine::Interpreter,
        }
    }

    /// Stable lower-case label (telemetry / JSON / CLI).
    pub fn label(&self) -> &'static str {
        match self {
            EmuEngine::Interpreter => "interpreter",
            EmuEngine::Cached => "cached",
        }
    }
}

/// Engine lifecycle events, buffered by the translation cache and
/// drained via [`Machine::take_emu_events`] for telemetry sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuEvent {
    /// A basic block was decoded into the translation cache.
    BlockTranslated {
        /// Entry pc of the block.
        pc: u64,
        /// Number of instructions translated into the block.
        insts: usize,
    },
    /// A cached block was invalidated by a write into its byte range.
    BlockInvalidated {
        /// Entry pc of the killed block.
        pc: u64,
    },
}

/// Cap on buffered [`EmuEvent`]s; counters stay exact past the cap.
const EVENT_CAP: usize = 65_536;

/// Blocks stop growing after this many instructions even without a
/// control transfer (keeps the fuel pre-check cheap and bounds the cost
/// of an invalidation-triggered partial re-execution).
const MAX_BLOCK_STEPS: usize = 64;

/// Cap on the byte span `[lo, hi)` a superblock may cover. Following an
/// unconditional jump stops when it would stretch the span past this,
/// keeping the invalidation overlap check and the coherence-witness
/// snapshot cheap.
const MAX_SPAN: u64 = 4096;

/// A chain edge to a successor block, valid only while the cache
/// generation still equals `gen` (any invalidation bumps the generation
/// and thereby severs every link in one step).
#[derive(Debug, Clone, Copy)]
struct ChainLink {
    slot: u32,
    generation: u64,
}

/// One translated basic block (or superblock): pre-lowered steps plus
/// chaining state. A block that followed an unconditional jump covers a
/// byte *span* `[lo, hi)` that may start before its entry pc; the span
/// is what invalidation overlap-checks against.
#[derive(Default)]
pub(crate) struct DecodedBlock {
    /// Entry pc.
    pc: u64,
    /// Lowest byte address covered by any translated instruction.
    lo: u64,
    /// One past the highest byte covered by any translated instruction.
    hi: u64,
    /// The fall-through pc if execution runs off the end of `steps`
    /// (the decode cursor where translation stopped).
    fall: u64,
    /// Pre-lowered instructions, in execution order.
    steps: Vec<Step>,
    /// Guest instructions the whole block retires when it runs to its
    /// terminator — `steps.len()` before the superinstruction peephole
    /// merged fused groups. The dispatcher's fuel check uses this, not
    /// the (smaller) step count.
    insts: u64,
    /// Retired-instruction total over `steps[..len-1]` (all but the
    /// last step). The hot exit paths — terminator arms and the
    /// fall-off-the-end path — add these block totals in O(1) instead
    /// of accumulating per step; rare early exits (faults, fallbacks,
    /// self-invalidating stores) recompute an exact prefix on demand.
    pre_icnt: u64,
    /// Modelled-cycle total over `steps[..len-1]`, using each step's
    /// effective cost ([`Step::eff_cost`]).
    pre_cyc: u64,
    /// Taken-transfer total over `steps[..len-1]` (followed jumps).
    pre_taken: u64,
    /// Conservative upper bound on the cycles one full pass of this
    /// block can charge (each step's worst-case cost, plus the trap
    /// round trip for fallback steps that may resolve a redirect). The
    /// [`Machine::stop_at_cycles`] pre-check uses it: a block is only
    /// entered when even its worst case cannot cross the limit, so the
    /// stop always lands on the interpreter's exact pc.
    cyc_ub: u64,
    /// Direct successors: `[0]` = taken edge, `[1]` = fallthrough.
    chain: [Option<ChainLink>; 2],
    /// Source bytes at translation time (the coherence witness checked
    /// when [`Machine::verify_translations`] is armed).
    bytes: Vec<u8>,
    /// Set when an invalidation killed this block; the slot is on the
    /// free list and the map entry is gone.
    dead: bool,
}

/// The decoded-basic-block cache: slots, pc index, free list, the
/// generation counter, and the engine's diagnostics counters.
#[derive(Default)]
pub(crate) struct TranslationCache {
    map: HashMap<u64, u32>,
    blocks: Vec<DecodedBlock>,
    free: Vec<u32>,
    /// Bumped on every invalidation and flush; chain links and (pc,
    /// generation) cache keys are only valid at the generation they were
    /// created in.
    pub(crate) generation: u64,
    /// Total blocks ever translated (diagnostics `emu.blocks_translated`).
    pub(crate) blocks_translated: u64,
    /// Total blocks killed by text writes (diagnostics `emu.invalidations`).
    pub(crate) invalidations: u64,
    /// Total chain links installed (diagnostics `emu.chain_links`).
    pub(crate) chain_links: u64,
    /// Buffered lifecycle events (bounded by [`EVENT_CAP`]).
    pub(crate) events: Vec<EmuEvent>,
}

impl TranslationCache {
    #[inline]
    fn lookup(&self, pc: u64) -> Option<u32> {
        self.map.get(&pc).copied()
    }

    /// Kill every live block overlapping `[addr, addr+len)`. Any kill
    /// bumps the generation, severing all chain links cache-wide.
    pub(crate) fn kill_range(&mut self, addr: u64, len: u64) {
        if self.map.is_empty() {
            return;
        }
        let hi = addr + len;
        let mut killed = false;
        for (i, b) in self.blocks.iter_mut().enumerate() {
            if !b.dead && b.lo < hi && b.hi > addr {
                b.dead = true;
                b.steps = Vec::new();
                b.bytes = Vec::new();
                self.map.remove(&b.pc);
                self.free.push(i as u32);
                self.invalidations += 1;
                if self.events.len() < EVENT_CAP {
                    self.events.push(EmuEvent::BlockInvalidated { pc: b.pc });
                }
                killed = true;
            }
        }
        if killed {
            self.generation += 1;
        }
    }

    /// Drop every block (code region moved/resized). Not counted as
    /// invalidations — nothing was overwritten, the address space
    /// changed shape.
    pub(crate) fn flush(&mut self) {
        self.map.clear();
        self.blocks.clear();
        self.free.clear();
        self.generation += 1;
    }
}

/// Sign-extend the low 32 bits (the RV64 `*W` result rule).
#[inline]
fn sw(v: u64) -> u64 {
    v as i32 as i64 as u64
}

/// NaN-box a 32-bit float payload into a 64-bit FPR image.
#[inline]
fn nan_box32(v: u32) -> u64 {
    0xFFFF_FFFF_0000_0000 | v as u64
}

/// Flat micro-opcode of a [`Step`]: one single-level jump-table dispatch
/// per retired instruction, operands in fixed [`Step`] fields. Load and
/// store *widths* are folded into the opcode so the paged-memory fast
/// path const-folds to a fixed-width access after inlining. Hot RV64GC
/// opcodes get direct variants; everything else is [`UopK::Fallback`],
/// which runs the decoded instruction through the shared semantic core
/// ([`Machine::exec`]) — the same code path the interpreter uses, so
/// cold-op semantics are shared by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UopK {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    Mul,
    Mulw,
    /// Fused superinstructions, built by the translation-time peephole
    /// ([`fuse_steps`]): one dispatch retires two or three guest
    /// instructions. Only the head (a load) can fault, and it faults
    /// before any architectural state changes, so a fused group's
    /// early-exit behaviour is exactly the unfused head's. `ld rd,
    /// imm(rs1)` then `add d, x, rd` (either operand order).
    LdAdd,
    /// `ld rd, imm(rs1)` then `mul d, x, rd` (either operand order).
    LdMul,
    /// `ld rd, imm(rs1)` then `addi d, rd, imm2`.
    LdAddi,
    /// The `-O0` read-modify-write triad: `ld rd, imm(rs1)`, `addi rd,
    /// rd, imm2`, `sd rd, imm(rs1)`. The store re-uses the head's
    /// already-faulted-in address, so it can never fault.
    LdAddiSd,
    /// The `-O0` address-index triad: `ld rd, imm(rs1)`, `add d, x,
    /// rd`, `slli d, d, imm2` (d/x in `rs2`/`rs3`).
    LdAddSlli,
    /// `fld rd, imm(rs1)` then an *independent* `mul d, x, y` (d/x in
    /// `rs2`/`rs3`, y in `imm2`) — legal for any operands because the
    /// integer tail and the FP head touch disjoint state.
    FldMul,
    /// `fld rd, imm(rs1)` then `fmadd.d rd, rs2, rs3, rd`.
    FldFmadd,
    /// The FP accumulate triad: `fld rd, imm(rs1)`, `fmadd.d rd, rs2,
    /// rs3, rd`, `fsd rd, imm(rs1)`.
    FldFmaddFsd,
    /// Load a pre-computed constant (`lui`, and `auipc` folded at
    /// translation time since the instruction address is static).
    Li,
    Lb,
    Lh,
    Lw,
    Ld,
    Lbu,
    Lhu,
    Lwu,
    Sb,
    Sh,
    Sw,
    Sd,
    Fld,
    Flw,
    Fsd,
    Fsw,
    FaddD,
    FsubD,
    FmulD,
    FdivD,
    FmaddD,
    FmsubD,
    FnmsubD,
    FnmaddD,
    /// Conditional branches; always the last step of their block.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    /// Direct jump-and-link; always the last step of its block.
    Jal,
    /// Indirect jump-and-link; always the last step of its block.
    Jalr,
    /// A `jal x0` followed at translation time: the next step in this
    /// block *is* the jump target, so retiring it charges the taken-jump
    /// cost and counts the transfer (superblock fusion) — all of which
    /// is folded into the block's precomputed totals, so the arm itself
    /// is empty.
    JumpThrough,
    /// Run the boxed decoded instruction through [`Machine::exec`].
    /// Architectural accumulators are brought exactly up to date first
    /// so CSR reads and syscalls observe precise state.
    Fallback,
}

/// One pre-lowered instruction: a flat [`UopK`] plus its operands and
/// static metadata — guest pc, encoded size, and the cycle costs charged
/// on retire (pre-computed from the cost model at translation time; the
/// model is configuration, set before execution).
struct Step {
    kind: UopK,
    rd: u8,
    rs1: u8,
    rs2: u8,
    rs3: u8,
    /// Encoded instruction size in bytes (2 or 4).
    size: u8,
    cost: u32,
    cost_taken: u32,
    /// Guest pc of this instruction.
    addr: u64,
    /// Immediate; also the folded constant for [`UopK::Li`] and the
    /// static target for branches and [`UopK::Jal`].
    imm: i64,
    /// Second immediate of a fused superinstruction (`addi` tail).
    imm2: i32,
    /// Guest instructions this step retires (1, or 2-3 when fused).
    /// `cost` and `size` are group totals for fused steps.
    ic: u8,
    /// The decoded instruction, present only for [`UopK::Fallback`].
    fb: Option<Box<Instruction>>,
}

impl Step {
    /// The cycles this step charges when it retires mid-block (its
    /// not-taken cost, except a followed jump charges its taken cost).
    #[inline]
    fn eff_cost(&self) -> u64 {
        if self.kind == UopK::JumpThrough {
            self.cost_taken as u64
        } else {
            self.cost as u64
        }
    }
}

/// How a block handed control back.
enum BlockExit {
    /// Continue at `self.pc` through the dispatcher (indirect jump,
    /// redirect, or a self-invalidation mid-block).
    Dispatch,
    /// Continue at `self.pc` == `target`; the edge is a direct one and
    /// may be chained through `chain[idx]`.
    Chained { idx: usize, target: u64 },
    /// Execution is over.
    Stop(StopReason),
}

/// The translation-time superinstruction peephole: merge hot adjacent
/// pairs and read-modify-write triads into one [`Step`] so the executor
/// pays one dispatch for two or three retired instructions — with no
/// runtime feasibility checks, because every condition (operand overlap,
/// same store-back slot, stable base register) is proven here, once.
/// Fused heads carry group totals in `cost`/`size` and their retire
/// count in `ic`, which is all the block accounting needs.
fn fuse_steps(steps: &mut Vec<Step>) {
    let n = steps.len();
    let mut skip = vec![false; n];
    let mut i = 0;
    while i + 1 < n {
        let l = &steps[i];
        let m = &steps[i + 1];
        let (lk, lrd, lrs1, limm) = (l.kind, l.rd, l.rs1, l.imm);
        let (mk, mrd, mrs1, mrs2, mrs3, mimm) = (m.kind, m.rd, m.rs1, m.rs2, m.rs3, m.imm);
        let (mcost, msize) = (m.cost, m.size);
        // Triads first (they subsume the pair patterns).
        if i + 2 < n {
            let s = &steps[i + 2];
            if lk == UopK::Ld
                && mk == UopK::Addi
                && mrd == lrd
                && mrs1 == lrd
                && lrd != 0
                && lrd != lrs1
                && s.kind == UopK::Sd
                && s.rs1 == lrs1
                && s.imm == limm
                && s.rs2 == lrd
            {
                let (scost, ssize) = (s.cost, s.size);
                let h = &mut steps[i];
                h.kind = UopK::LdAddiSd;
                h.imm2 = mimm as i32;
                h.ic = 3;
                h.cost += mcost + scost;
                h.size += msize + ssize;
                skip[i + 1] = true;
                skip[i + 2] = true;
                i += 3;
                continue;
            }
            if lk == UopK::Ld
                && mk == UopK::Add
                && (mrs1 == lrd || mrs2 == lrd)
                && s.kind == UopK::Slli
                && s.rd == mrd
                && s.rs1 == mrd
            {
                let (scost, ssize, simm) = (s.cost, s.size, s.imm);
                let h = &mut steps[i];
                h.kind = UopK::LdAddSlli;
                h.rs2 = mrd;
                h.rs3 = if mrs1 == lrd { mrs2 } else { mrs1 };
                h.imm2 = simm as i32;
                h.ic = 3;
                h.cost += mcost + scost;
                h.size += msize + ssize;
                skip[i + 1] = true;
                skip[i + 2] = true;
                i += 3;
                continue;
            }
            if lk == UopK::Fld
                && mk == UopK::FmaddD
                && mrd == lrd
                && mrs3 == lrd
                && s.kind == UopK::Fsd
                && s.rs1 == lrs1
                && s.imm == limm
                && s.rs2 == lrd
            {
                let (scost, ssize) = (s.cost, s.size);
                let h = &mut steps[i];
                h.kind = UopK::FldFmaddFsd;
                h.rs2 = mrs1;
                h.rs3 = mrs2;
                h.ic = 3;
                h.cost += mcost + scost;
                h.size += msize + ssize;
                skip[i + 1] = true;
                skip[i + 2] = true;
                i += 3;
                continue;
            }
        }
        // Pairs: the tail must read the loaded register, so its operands
        // fit in the head's free fields.
        let fused = if lk == UopK::Ld && mk == UopK::Add && (mrs1 == lrd || mrs2 == lrd) {
            Some((UopK::LdAdd, if mrs1 == lrd { mrs2 } else { mrs1 }, 0i32))
        } else if lk == UopK::Ld && mk == UopK::Mul && (mrs1 == lrd || mrs2 == lrd) {
            Some((UopK::LdMul, if mrs1 == lrd { mrs2 } else { mrs1 }, 0))
        } else if lk == UopK::Ld && mk == UopK::Addi && mrs1 == lrd {
            Some((UopK::LdAddi, 0, mimm as i32))
        } else if lk == UopK::Fld && mk == UopK::FmaddD && mrd == lrd && mrs3 == lrd {
            Some((UopK::FldFmadd, 0, 0))
        } else if lk == UopK::Fld && mk == UopK::Mul {
            // d in rs2, x in rs3, y in imm2.
            Some((UopK::FldMul, mrs1, mrs2 as i32))
        } else {
            None
        };
        if let Some((kind, x, imm2)) = fused {
            let h = &mut steps[i];
            h.kind = kind;
            match kind {
                UopK::FldFmadd => {
                    h.rs2 = mrs1;
                    h.rs3 = mrs2;
                }
                _ => {
                    h.rs2 = mrd;
                    h.rs3 = x;
                    h.imm2 = imm2;
                }
            }
            h.ic = 2;
            h.cost += mcost;
            h.size += msize;
            skip[i + 1] = true;
            i += 2;
            continue;
        }
        i += 1;
    }
    let mut k = 0;
    steps.retain(|_| {
        let keep = !skip[k];
        k += 1;
        keep
    });
}

#[inline]
fn is_terminator(op: Op) -> bool {
    matches!(
        op,
        Op::Jal
            | Op::Jalr
            | Op::Beq
            | Op::Bne
            | Op::Blt
            | Op::Bge
            | Op::Bltu
            | Op::Bgeu
            | Op::Ecall
            | Op::Ebreak
    )
}

/// Lower one decoded instruction into a [`Step`].
fn compile_step(inst: &Instruction, pc: u64, cost: &CostModel) -> Step {
    use Op::*;
    let mut s = Step {
        kind: UopK::Fallback,
        rd: inst.rd.map_or(0, |r| r.num()),
        rs1: inst.rs1.map_or(0, |r| r.num()),
        rs2: inst.rs2.map_or(0, |r| r.num()),
        rs3: inst.rs3.map_or(0, |r| r.num()),
        size: inst.size,
        cost: cost.cycles_for(inst, false) as u32,
        cost_taken: cost.cycles_for(inst, true) as u32,
        addr: pc,
        imm: inst.imm,
        imm2: 0,
        ic: 1,
        fb: None,
    };
    s.kind = match inst.op {
        Lui => UopK::Li,
        Auipc => {
            // Fold the pc-relative constant at translation time.
            s.imm = inst.address.wrapping_add(inst.imm as u64) as i64;
            UopK::Li
        }
        Addi => UopK::Addi,
        Slti => UopK::Slti,
        Sltiu => UopK::Sltiu,
        Xori => UopK::Xori,
        Ori => UopK::Ori,
        Andi => UopK::Andi,
        Slli => UopK::Slli,
        Srli => UopK::Srli,
        Srai => UopK::Srai,
        Addiw => UopK::Addiw,
        Slliw => UopK::Slliw,
        Srliw => UopK::Srliw,
        Sraiw => UopK::Sraiw,
        Add => UopK::Add,
        Sub => UopK::Sub,
        Sll => UopK::Sll,
        Slt => UopK::Slt,
        Sltu => UopK::Sltu,
        Xor => UopK::Xor,
        Srl => UopK::Srl,
        Sra => UopK::Sra,
        Or => UopK::Or,
        And => UopK::And,
        Addw => UopK::Addw,
        Subw => UopK::Subw,
        Sllw => UopK::Sllw,
        Srlw => UopK::Srlw,
        Sraw => UopK::Sraw,
        Mul => UopK::Mul,
        Mulw => UopK::Mulw,
        Lb => UopK::Lb,
        Lh => UopK::Lh,
        Lw => UopK::Lw,
        Ld => UopK::Ld,
        Lbu => UopK::Lbu,
        Lhu => UopK::Lhu,
        Lwu => UopK::Lwu,
        Sb => UopK::Sb,
        Sh => UopK::Sh,
        Sw => UopK::Sw,
        Sd => UopK::Sd,
        Fld => UopK::Fld,
        Flw => UopK::Flw,
        Fsd => UopK::Fsd,
        Fsw => UopK::Fsw,
        FaddD => UopK::FaddD,
        FsubD => UopK::FsubD,
        FmulD => UopK::FmulD,
        FdivD => UopK::FdivD,
        FmaddD => UopK::FmaddD,
        FmsubD => UopK::FmsubD,
        FnmsubD => UopK::FnmsubD,
        FnmaddD => UopK::FnmaddD,
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            s.imm = inst.address.wrapping_add(inst.imm as u64) as i64;
            match inst.op {
                Beq => UopK::Beq,
                Bne => UopK::Bne,
                Blt => UopK::Blt,
                Bge => UopK::Bge,
                Bltu => UopK::Bltu,
                _ => UopK::Bgeu,
            }
        }
        Jal => {
            s.imm = inst.address.wrapping_add(inst.imm as u64) as i64;
            UopK::Jal
        }
        Jalr => UopK::Jalr,
        Fence | FenceI => {
            // A fence is architecturally a no-op here: lower it to
            // `addi x0, x0, 0` so it costs one int_alu cycle like the
            // interpreter charges.
            s.rd = 0;
            s.rs1 = 0;
            s.imm = 0;
            UopK::Addi
        }
        _ => {
            s.fb = Some(Box::new(*inst));
            UopK::Fallback
        }
    };
    s
}

impl Machine {
    /// The cached engine's top-level loop: dispatch → (translate) →
    /// execute → chain, bit-identical to repeated [`Machine::step`].
    pub(crate) fn run_cached(&mut self) -> StopReason {
        loop {
            if let Some(fuel) = self.fuel {
                if self.icount >= fuel {
                    return StopReason::FuelExhausted;
                }
            }
            if let Some(limit) = self.stop_at_cycles {
                if self.cycles >= limit {
                    return StopReason::CycleLimit { pc: self.pc };
                }
            }
            let pc = self.pc;
            // Out-of-region pcs are never cached — exactly the rule the
            // interpreter's per-address decode cache uses — so they are
            // single-stepped, keeping coherence behaviour identical.
            if pc < self.code_base || pc >= self.code_end {
                if let Some(r) = self.step() {
                    return r;
                }
                continue;
            }
            let mut slot = match self.tcache.lookup(pc) {
                Some(s) => s,
                None => match self.translate_block(pc) {
                    Ok(s) => s,
                    Err(r) => return r,
                },
            };
            // Inner chained loop: direct branches hop block-to-block
            // without touching the dispatcher or the pc map.
            loop {
                let nsteps = self.tcache.blocks[slot as usize].insts as usize;
                if let Some(fuel) = self.fuel {
                    let left = fuel.saturating_sub(self.icount);
                    if left == 0 {
                        return StopReason::FuelExhausted;
                    }
                    if (left as usize) < nsteps {
                        // Near the fuel edge: interpret one instruction
                        // so exhaustion lands on the exact same pc.
                        if let Some(r) = self.step() {
                            return r;
                        }
                        break;
                    }
                }
                if let Some(limit) = self.stop_at_cycles {
                    if self.cycles >= limit {
                        return StopReason::CycleLimit { pc: self.pc };
                    }
                    let ub = self.tcache.blocks[slot as usize].cyc_ub;
                    if self.cycles.saturating_add(ub) >= limit {
                        // Near the cycle edge: interpret one instruction
                        // so the sample stop lands on the exact same pc
                        // (the same rule as the fuel edge above).
                        if let Some(r) = self.step() {
                            return r;
                        }
                        break;
                    }
                }
                match self.exec_block(slot) {
                    BlockExit::Stop(r) => return r,
                    BlockExit::Dispatch => break,
                    BlockExit::Chained { idx, target } => {
                        let generation = self.tcache.generation;
                        let b = &self.tcache.blocks[slot as usize];
                        if b.dead {
                            break;
                        }
                        if let Some(l) = b.chain[idx] {
                            if l.generation == generation {
                                slot = l.slot;
                                continue;
                            }
                        }
                        match self.tcache.lookup(target) {
                            Some(next) => {
                                self.tcache.blocks[slot as usize].chain[idx] = Some(ChainLink {
                                    slot: next,
                                    generation,
                                });
                                self.tcache.chain_links += 1;
                                slot = next;
                            }
                            // Successor not translated yet: let the
                            // dispatcher translate it; the link is
                            // installed the next time this edge fires.
                            None => break,
                        }
                    }
                }
            }
        }
    }

    /// Decode a basic block starting at `entry` (which must lie in the
    /// code region) into the cache. Errors on the *first* instruction
    /// surface exactly as the interpreter would surface them; a decode
    /// error later just ends the block early, so the error surfaces when
    /// execution actually reaches that pc.
    fn translate_block(&mut self, entry: u64) -> Result<u32, StopReason> {
        let mut steps = Vec::new();
        let mut pc = entry;
        let mut lo = entry;
        let mut hi = entry;
        while pc >= self.code_base && pc < self.code_end {
            let inst = match self.fetch(pc) {
                Ok(i) => i,
                Err(r) => {
                    if steps.is_empty() {
                        return Err(r);
                    }
                    break;
                }
            };
            let next = pc + inst.size as u64;
            lo = lo.min(pc);
            hi = hi.max(next);
            // Superblock fusion: follow an unconditional direct jump at
            // translation time, so a loop body and its header become one
            // block — as long as the target stays in-region and the byte
            // span stays small enough for cheap invalidation checks.
            if inst.op == Op::Jal && inst.rd.map_or(0, |r| r.num()) == 0 {
                let target = inst.address.wrapping_add(inst.imm as u64);
                let span_ok = hi.max(target) - lo.min(target) <= MAX_SPAN;
                if target >= self.code_base
                    && target < self.code_end
                    && span_ok
                    && steps.len() + 1 < MAX_BLOCK_STEPS
                {
                    let mut st = compile_step(&inst, pc, &self.cost);
                    st.kind = UopK::JumpThrough;
                    steps.push(st);
                    pc = target;
                    continue;
                }
            }
            let term = is_terminator(inst.op);
            steps.push(compile_step(&inst, pc, &self.cost));
            pc = next;
            if term || steps.len() >= MAX_BLOCK_STEPS {
                break;
            }
        }
        debug_assert!(!steps.is_empty(), "translate_block called out of region");
        let bytes = self
            .mem
            .read_bytes(lo, (hi - lo) as usize)
            .unwrap_or_default();
        let insts = steps.len();
        fuse_steps(&mut steps);
        let mut pre_icnt = 0u64;
        let mut pre_cyc = 0u64;
        let mut pre_taken = 0u64;
        for st in &steps[..steps.len() - 1] {
            pre_icnt += st.ic as u64;
            pre_cyc += st.eff_cost();
            if st.kind == UopK::JumpThrough {
                pre_taken += 1;
            }
        }
        let mut cyc_ub = 0u64;
        for st in &steps {
            let mut ub = st.cost.max(st.cost_taken) as u64;
            if st.kind == UopK::Fallback {
                ub = ub.max(self.cost.trap_redirect);
            }
            cyc_ub += ub;
        }
        let block = DecodedBlock {
            pc: entry,
            lo,
            hi,
            fall: pc,
            steps,
            insts: insts as u64,
            pre_icnt,
            pre_cyc,
            pre_taken,
            cyc_ub,
            chain: [None, None],
            bytes,
            dead: false,
        };
        let slot = match self.tcache.free.pop() {
            Some(s) => {
                self.tcache.blocks[s as usize] = block;
                s
            }
            None => {
                self.tcache.blocks.push(block);
                (self.tcache.blocks.len() - 1) as u32
            }
        };
        self.tcache.map.insert(entry, slot);
        self.tcache.blocks_translated += 1;
        if self.tcache.events.len() < EVENT_CAP {
            self.tcache
                .events
                .push(EmuEvent::BlockTranslated { pc: entry, insts });
        }
        Ok(slot)
    }

    /// Execute one cached block. Steps are moved out of the slot for the
    /// duration (and restored unless the block killed itself), so an
    /// invalidation fired by one of its own stores is safe.
    fn exec_block(&mut self, slot: u32) -> BlockExit {
        let generation0 = self.tcache.generation;
        if self.verify_translations {
            let (entry, lo, len) = {
                let b = &self.tcache.blocks[slot as usize];
                (b.pc, b.lo, b.bytes.len())
            };
            let ok = match self.mem.read_bytes(lo, len) {
                Ok(cur) => cur == self.tcache.blocks[slot as usize].bytes,
                Err(_) => false,
            };
            if !ok {
                return BlockExit::Stop(StopReason::CacheIncoherent { pc: entry });
            }
        }
        let (steps, bend, pre, entry, insts, cyc_ub) = {
            let b = &mut self.tcache.blocks[slot as usize];
            (
                std::mem::take(&mut b.steps),
                b.fall,
                (b.pre_icnt, b.pre_cyc, b.pre_taken),
                b.pc,
                b.insts,
                b.cyc_ub,
            )
        };
        // Tight-loop fast path: a block whose taken or fallthrough edge
        // targets its own entry (e.g. a fused loop body) re-runs here
        // without bouncing through the chained dispatcher — no slot
        // re-index, no chain-link validation, no steps take/restore per
        // iteration. The re-entry conditions mirror the dispatcher's:
        // the cache generation is unchanged (so this block is provably
        // still live) and enough fuel remains for a full pass.
        let mut self_linked = [false, false];
        let exit = loop {
            let e = self.run_steps(&steps, bend, generation0, pre);
            if let BlockExit::Chained { idx, target } = e {
                if target == entry
                    && self.tcache.generation == generation0
                    && self
                        .fuel
                        .is_none_or(|f| f.saturating_sub(self.icount) >= insts)
                    && self
                        .stop_at_cycles
                        .is_none_or(|limit| self.cycles.saturating_add(cyc_ub) < limit)
                {
                    // Record the self-edge as a chain link (once), so
                    // the emu.chain_links diagnostic still counts it.
                    if !self_linked[idx] {
                        self_linked[idx] = true;
                        let b = &mut self.tcache.blocks[slot as usize];
                        if b.chain[idx].is_none() {
                            b.chain[idx] = Some(ChainLink {
                                slot,
                                generation: generation0,
                            });
                            self.tcache.chain_links += 1;
                        }
                    }
                    continue;
                }
            }
            break e;
        };
        let b = &mut self.tcache.blocks[slot as usize];
        if !b.dead {
            b.steps = steps;
        }
        exit
    }

    /// Credit the architectural counters for `steps[from..to]` exactly —
    /// the cold companion of the precomputed block totals, used by rare
    /// mid-block exits (faults, fallbacks, self-invalidating stores).
    #[cold]
    fn credit_range(&mut self, steps: &[Step], from: usize, to: usize) {
        for st in &steps[from..to] {
            self.icount += st.ic as u64;
            self.cycles += st.eff_cost();
            if st.kind == UopK::JumpThrough {
                self.taken_transfers += 1;
            }
        }
    }

    /// The block body executor. The hot loop does *no* per-step counter
    /// bookkeeping: each block's retired-instruction / cycle / transfer
    /// totals are precomputed at translation time and added in O(1) at
    /// the hot exits (the terminator arms and the fall-off-the-end
    /// path), while rare early exits — faults, fallback steps, a store
    /// that invalidates its own block — recompute the exact prefix on
    /// demand via [`Machine::credit_range`]. Architectural state is
    /// therefore exactly up to date before anything that can observe it
    /// (Fallback steps — CSR reads, syscalls — and every exit), which is
    /// what makes the cached engine bit-identical to the interpreter.
    fn run_steps(
        &mut self,
        steps: &[Step],
        bend: u64,
        generation0: u64,
        pre: (u64, u64, u64),
    ) -> BlockExit {
        // First step index whose retirement has not been credited yet.
        // 0 means the precomputed block totals apply; a mid-block
        // fallback bumps it past everything it settled itself.
        let mut acct_from = 0usize;
        for (idx, st) in steps.iter().enumerate() {
            let rs1v = self.gpr[(st.rs1 & 31) as usize];
            // Demand-grow the stack exactly like the interpreter's fault
            // retry: map the page and redo the access.
            macro_rules! mem_retry {
                ($op:expr) => {{
                    loop {
                        match $op {
                            Ok(v) => break v,
                            Err(f) => {
                                if f.addr >= STACK_TOP - STACK_SIZE && f.addr < STACK_TOP {
                                    self.mem.map(f.addr & !0xFFF, 0x1000);
                                    continue;
                                }
                                self.credit_range(steps, acct_from, idx);
                                self.pc = st.addr;
                                return BlockExit::Stop(StopReason::MemFault {
                                    pc: st.addr,
                                    addr: f.addr,
                                    write: f.write,
                                });
                            }
                        }
                    }
                }};
            }
            // Settle everything before this (terminal) step: the block
            // totals in O(1) on the hot path, an exact cold prefix sum
            // after a mid-block fallback.
            macro_rules! settle_pre {
                () => {{
                    debug_assert_eq!(idx + 1, steps.len(), "terminator must end the block");
                    if acct_from == 0 {
                        self.icount += pre.0;
                        self.cycles += pre.1;
                        self.taken_transfers += pre.2;
                    } else {
                        self.credit_range(steps, acct_from, idx);
                    }
                }};
            }
            macro_rules! wr {
                ($v:expr) => {{
                    let v = $v;
                    if st.rd != 0 {
                        self.gpr[(st.rd & 31) as usize] = v;
                    }
                }};
            }
            macro_rules! store_arm {
                ($sz:expr) => {{
                    let addr = rs1v.wrapping_add(st.imm as u64);
                    let val = self.gpr[(st.rs2 & 31) as usize];
                    mem_retry!(self.mem.store(addr, $sz, val));
                    self.invalidate(addr, $sz as u64);
                    if self.tcache.generation != generation0 {
                        // The store landed in translated text (possibly
                        // this very block): credit everything retired so
                        // far — the store included — and re-dispatch at
                        // the next instruction so stale steps never run.
                        self.credit_range(steps, acct_from, idx + 1);
                        self.pc = st.addr.wrapping_add(st.size as u64);
                        return BlockExit::Dispatch;
                    }
                }};
            }
            let imm = st.imm;
            match st.kind {
                UopK::Addi => wr!(rs1v.wrapping_add(imm as u64)),
                UopK::Slti => wr!(((rs1v as i64) < imm) as u64),
                UopK::Sltiu => wr!((rs1v < imm as u64) as u64),
                UopK::Xori => wr!(rs1v ^ imm as u64),
                UopK::Ori => wr!(rs1v | imm as u64),
                UopK::Andi => wr!(rs1v & imm as u64),
                UopK::Slli => wr!(rs1v.wrapping_shl(imm as u32)),
                UopK::Srli => wr!(rs1v.wrapping_shr(imm as u32)),
                UopK::Srai => wr!(((rs1v as i64) >> (imm as u32)) as u64),
                UopK::Addiw => wr!(sw(rs1v.wrapping_add(imm as u64))),
                UopK::Slliw => wr!(sw((rs1v as u32).wrapping_shl(imm as u32) as u64)),
                UopK::Srliw => wr!(sw(((rs1v as u32) >> (imm as u32)) as u64)),
                UopK::Sraiw => wr!(sw((((rs1v as i32) >> (imm as u32)) as u32) as u64)),
                UopK::Add => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(rs1v.wrapping_add(b));
                }
                UopK::Sub => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(rs1v.wrapping_sub(b));
                }
                UopK::Sll => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(rs1v.wrapping_shl((b & 63) as u32));
                }
                UopK::Slt => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(((rs1v as i64) < (b as i64)) as u64);
                }
                UopK::Sltu => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!((rs1v < b) as u64);
                }
                UopK::Xor => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(rs1v ^ b);
                }
                UopK::Srl => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(rs1v.wrapping_shr((b & 63) as u32));
                }
                UopK::Sra => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(((rs1v as i64) >> ((b & 63) as u32)) as u64);
                }
                UopK::Or => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(rs1v | b);
                }
                UopK::And => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(rs1v & b);
                }
                UopK::Addw => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(sw(rs1v.wrapping_add(b)));
                }
                UopK::Subw => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(sw(rs1v.wrapping_sub(b)));
                }
                UopK::Sllw => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(sw(((rs1v as u32) << (b & 31)) as u64));
                }
                UopK::Srlw => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(sw(((rs1v as u32) >> (b & 31)) as u64));
                }
                UopK::Sraw => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(sw((((rs1v as i32) >> (b & 31)) as u32) as u64));
                }
                UopK::Mul => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(rs1v.wrapping_mul(b));
                }
                UopK::Mulw => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    wr!(sw(rs1v.wrapping_mul(b)));
                }
                UopK::Li => wr!(imm as u64),
                UopK::Lb => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 1));
                    wr!(raw as u8 as i8 as i64 as u64);
                }
                UopK::Lh => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 2));
                    wr!(raw as u16 as i16 as i64 as u64);
                }
                UopK::Lw => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 4));
                    wr!(raw as u32 as i32 as i64 as u64);
                }
                UopK::Ld => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    wr!(mem_retry!(self.mem.load(addr, 8)));
                }
                UopK::Lbu => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    wr!(mem_retry!(self.mem.load(addr, 1)));
                }
                UopK::Lhu => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    wr!(mem_retry!(self.mem.load(addr, 2)));
                }
                UopK::Lwu => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    wr!(mem_retry!(self.mem.load(addr, 4)));
                }
                UopK::Sb => store_arm!(1),
                UopK::Sh => store_arm!(2),
                UopK::Sw => store_arm!(4),
                UopK::Sd => store_arm!(8),
                UopK::Fld => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    self.fpr[(st.rd & 31) as usize] = mem_retry!(self.mem.load(addr, 8));
                }
                UopK::Flw => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 4));
                    self.fpr[(st.rd & 31) as usize] = nan_box32(raw as u32);
                }
                UopK::Fsd => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let v = self.fpr[(st.rs2 & 31) as usize];
                    // Deliberately no invalidation: the interpreter's
                    // `fsd`/`fsw` path doesn't invalidate either (a
                    // documented, bug-compatible hazard; docs/EMULATOR.md).
                    mem_retry!(self.mem.store(addr, 8, v));
                }
                UopK::Fsw => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let v = self.fpr[(st.rs2 & 31) as usize];
                    mem_retry!(self.mem.store(addr, 4, v as u32 as u64));
                }
                // Fused superinstructions: the head load faults (if at
                // all) before any state changes, so the early-exit paths
                // are exactly the unfused head's; the tail is plain
                // register arithmetic and cannot fault.
                UopK::LdAdd => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 8));
                    wr!(raw);
                    let v = self.gpr[(st.rs3 & 31) as usize]
                        .wrapping_add(self.gpr[(st.rd & 31) as usize]);
                    if st.rs2 != 0 {
                        self.gpr[(st.rs2 & 31) as usize] = v;
                    }
                }
                UopK::LdMul => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 8));
                    wr!(raw);
                    let v = self.gpr[(st.rs3 & 31) as usize]
                        .wrapping_mul(self.gpr[(st.rd & 31) as usize]);
                    if st.rs2 != 0 {
                        self.gpr[(st.rs2 & 31) as usize] = v;
                    }
                }
                UopK::LdAddi => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 8));
                    wr!(raw);
                    let v = self.gpr[(st.rd & 31) as usize].wrapping_add(st.imm2 as i64 as u64);
                    if st.rs2 != 0 {
                        self.gpr[(st.rs2 & 31) as usize] = v;
                    }
                }
                UopK::LdAddiSd => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 8));
                    // rd != 0 is a fusion precondition.
                    let v = raw.wrapping_add(st.imm2 as i64 as u64);
                    self.gpr[(st.rd & 31) as usize] = v;
                    // The store-back targets the address the load just
                    // faulted in, same width — it cannot fail.
                    let r = self.mem.store(addr, 8, v);
                    debug_assert!(r.is_ok(), "store-back to a just-loaded address");
                    let _ = r;
                    self.invalidate(addr, 8);
                    if self.tcache.generation != generation0 {
                        self.credit_range(steps, acct_from, idx + 1);
                        self.pc = st.addr.wrapping_add(st.size as u64);
                        return BlockExit::Dispatch;
                    }
                }
                UopK::LdAddSlli => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 8));
                    wr!(raw);
                    let t = self.gpr[(st.rs3 & 31) as usize]
                        .wrapping_add(self.gpr[(st.rd & 31) as usize]);
                    let v = t.wrapping_shl(st.imm2 as u32);
                    if st.rs2 != 0 {
                        self.gpr[(st.rs2 & 31) as usize] = v;
                    }
                }
                UopK::FldMul => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 8));
                    self.fpr[(st.rd & 31) as usize] = raw;
                    let v = self.gpr[(st.rs3 & 31) as usize]
                        .wrapping_mul(self.gpr[(st.imm2 & 31) as usize]);
                    if st.rs2 != 0 {
                        self.gpr[(st.rs2 & 31) as usize] = v;
                    }
                }
                UopK::FldFmadd => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 8));
                    self.fpr[(st.rd & 31) as usize] = raw;
                    let a = f64::from_bits(self.fpr[(st.rs2 & 31) as usize]);
                    let b = f64::from_bits(self.fpr[(st.rs3 & 31) as usize]);
                    self.fpr[(st.rd & 31) as usize] = a.mul_add(b, f64::from_bits(raw)).to_bits();
                }
                UopK::FldFmaddFsd => {
                    let addr = rs1v.wrapping_add(imm as u64);
                    let raw = mem_retry!(self.mem.load(addr, 8));
                    self.fpr[(st.rd & 31) as usize] = raw;
                    let a = f64::from_bits(self.fpr[(st.rs2 & 31) as usize]);
                    let b = f64::from_bits(self.fpr[(st.rs3 & 31) as usize]);
                    let v = a.mul_add(b, f64::from_bits(raw)).to_bits();
                    self.fpr[(st.rd & 31) as usize] = v;
                    let r = self.mem.store(addr, 8, v);
                    debug_assert!(r.is_ok(), "store-back to a just-loaded address");
                    let _ = r;
                    // No invalidation, matching the interpreter's `fsd`
                    // (see the UopK::Fsd arm).
                }
                UopK::FaddD | UopK::FsubD | UopK::FmulD | UopK::FdivD => {
                    let a = f64::from_bits(self.fpr[(st.rs1 & 31) as usize]);
                    let b = f64::from_bits(self.fpr[(st.rs2 & 31) as usize]);
                    let v = match st.kind {
                        UopK::FaddD => a + b,
                        UopK::FsubD => a - b,
                        UopK::FmulD => a * b,
                        _ => a / b,
                    };
                    self.fpr[(st.rd & 31) as usize] = v.to_bits();
                }
                UopK::FmaddD | UopK::FmsubD | UopK::FnmsubD | UopK::FnmaddD => {
                    let a = f64::from_bits(self.fpr[(st.rs1 & 31) as usize]);
                    let b = f64::from_bits(self.fpr[(st.rs2 & 31) as usize]);
                    let c = f64::from_bits(self.fpr[(st.rs3 & 31) as usize]);
                    let v = match st.kind {
                        UopK::FmaddD => a.mul_add(b, c),
                        UopK::FmsubD => a.mul_add(b, -c),
                        UopK::FnmsubD => (-a).mul_add(b, c),
                        _ => (-a).mul_add(b, -c),
                    };
                    self.fpr[(st.rd & 31) as usize] = v.to_bits();
                }
                UopK::Beq | UopK::Bne | UopK::Blt | UopK::Bge | UopK::Bltu | UopK::Bgeu => {
                    let b = self.gpr[(st.rs2 & 31) as usize];
                    let take = match st.kind {
                        UopK::Beq => rs1v == b,
                        UopK::Bne => rs1v != b,
                        UopK::Blt => (rs1v as i64) < (b as i64),
                        UopK::Bge => (rs1v as i64) >= (b as i64),
                        UopK::Bltu => rs1v < b,
                        _ => rs1v >= b,
                    };
                    settle_pre!();
                    self.icount += 1;
                    if take {
                        self.taken_transfers += 1;
                        self.cycles += st.cost_taken as u64;
                        let target = imm as u64;
                        self.pc = target;
                        return BlockExit::Chained { idx: 0, target };
                    }
                    let next = st.addr.wrapping_add(st.size as u64);
                    self.cycles += st.cost as u64;
                    self.pc = next;
                    return BlockExit::Chained {
                        idx: 1,
                        target: next,
                    };
                }
                UopK::Jal => {
                    settle_pre!();
                    wr!(st.addr.wrapping_add(st.size as u64));
                    self.icount += 1;
                    self.taken_transfers += 1;
                    self.cycles += st.cost_taken as u64;
                    let target = imm as u64;
                    self.pc = target;
                    return BlockExit::Chained { idx: 0, target };
                }
                UopK::Jalr => {
                    settle_pre!();
                    // Target before link: `jalr rd, rs1` may have rd == rs1.
                    let target = rs1v.wrapping_add(imm as u64) & !1;
                    wr!(st.addr.wrapping_add(st.size as u64));
                    self.icount += 1;
                    self.taken_transfers += 1;
                    self.cycles += st.cost_taken as u64;
                    self.pc = target;
                    return BlockExit::Dispatch;
                }
                UopK::JumpThrough => {
                    // Accounted for in the block's precomputed totals;
                    // the next step is the jump target by construction.
                }
                UopK::Fallback => {
                    // Bring the architectural counters exactly up to
                    // date: the instruction may read a CSR or make a
                    // syscall that observes them.
                    self.credit_range(steps, acct_from, idx);
                    self.pc = st.addr;
                    let inst = st.fb.as_deref().expect("fallback step without instruction");
                    loop {
                        match self.exec(inst) {
                            Ok(crate::exec::Effect::Next) => {
                                self.pc = st.addr.wrapping_add(st.size as u64);
                                self.icount += 1;
                                self.cycles += st.cost as u64;
                                break;
                            }
                            Ok(crate::exec::Effect::Jump(t)) => {
                                self.pc = t;
                                self.taken_transfers += 1;
                                self.icount += 1;
                                self.cycles += st.cost_taken as u64;
                                return BlockExit::Dispatch;
                            }
                            Ok(crate::exec::Effect::Stop(r)) => {
                                if let StopReason::Break(at) = r {
                                    if self.trap_redirects.contains_key(&at)
                                        && self.resolve_redirect(at)
                                    {
                                        return BlockExit::Dispatch;
                                    }
                                }
                                if let StopReason::Exited(_) = r {
                                    self.icount += 1;
                                    self.cycles += st.cost as u64;
                                }
                                return BlockExit::Stop(r);
                            }
                            Err(f) => {
                                if f.addr >= STACK_TOP - STACK_SIZE && f.addr < STACK_TOP {
                                    self.mem.map(f.addr & !0xFFF, 0x1000);
                                    continue;
                                }
                                return BlockExit::Stop(StopReason::MemFault {
                                    pc: st.addr,
                                    addr: f.addr,
                                    write: f.write,
                                });
                            }
                        }
                    }
                    if self.tcache.generation != generation0 {
                        // A cold-path store invalidated translated text:
                        // same abort rule as the specialised store.
                        return BlockExit::Dispatch;
                    }
                    // This step settled its own accounting.
                    acct_from = idx + 1;
                }
            }
        }
        // Fell off the end of a size-capped block (or past an inline
        // syscall): fall through to the next pc, chainable as edge 1.
        let n = steps.len();
        if acct_from < n {
            if acct_from == 0 {
                self.icount += pre.0;
                self.cycles += pre.1;
                self.taken_transfers += pre.2;
            } else {
                self.credit_range(steps, acct_from, n - 1);
            }
            let last = &steps[n - 1];
            self.icount += last.ic as u64;
            self.cycles += last.eff_cost();
            if last.kind == UopK::JumpThrough {
                self.taken_transfers += 1;
            }
        }
        self.pc = bend;
        BlockExit::Chained {
            idx: 1,
            target: bend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EXIT_SYSCALL;
    use rvdyn_isa::encode::encode32;
    use rvdyn_isa::{build, Reg};

    fn machine_with(code: &[u8], base: u64, engine: EmuEngine) -> Machine {
        let mut m = Machine::new();
        m.engine = engine;
        m.mem.write_bytes(base, code);
        m.set_code_region(base, code.len() as u64);
        m.pc = base;
        m
    }

    fn asm(insts: &[Instruction]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in insts {
            out.extend_from_slice(&encode32(i).unwrap().to_le_bytes());
        }
        out
    }

    /// A loop: x5 = 0; do { x5 += 1 } while (x5 != x6); exit(x5).
    fn loop_program(n: i64) -> Vec<u8> {
        asm(&[
            build::addi(Reg::x(5), Reg::X0, 0),
            build::addi(Reg::x(6), Reg::X0, n),
            build::addi(Reg::x(5), Reg::x(5), 1),
            build::b_type(Op::Bne, Reg::x(5), Reg::x(6), -4),
            build::add(Reg::x(10), Reg::X0, Reg::x(5)),
            build::addi(Reg::x(17), Reg::X0, EXIT_SYSCALL as i64),
            build::ecall(),
        ])
    }

    #[test]
    fn engines_agree_on_a_loop() {
        let code = loop_program(100);
        let mut a = machine_with(&code, 0x1000, EmuEngine::Interpreter);
        let mut b = machine_with(&code, 0x1000, EmuEngine::Cached);
        let ra = a.run();
        let rb = b.run();
        assert_eq!(ra, rb);
        assert_eq!(ra, StopReason::Exited(100));
        assert_eq!(a.icount, b.icount);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.gpr, b.gpr);
        assert_eq!(a.taken_transfers, b.taken_transfers);
        assert!(b.emu_blocks_translated() > 0);
        assert!(b.emu_chain_links() > 0, "loop back-edge must chain");
    }

    #[test]
    fn fuel_exhaustion_is_engine_invariant() {
        let code = loop_program(2000);
        for fuel in [1u64, 2, 3, 7, 50, 999] {
            let mut a = machine_with(&code, 0x1000, EmuEngine::Interpreter);
            let mut b = machine_with(&code, 0x1000, EmuEngine::Cached);
            a.fuel = Some(fuel);
            b.fuel = Some(fuel);
            assert_eq!(a.run(), StopReason::FuelExhausted);
            assert_eq!(b.run(), StopReason::FuelExhausted);
            assert_eq!(a.icount, b.icount, "fuel={fuel}");
            assert_eq!(a.cycles, b.cycles, "fuel={fuel}");
            assert_eq!(a.pc, b.pc, "fuel={fuel}");
            assert_eq!(a.gpr, b.gpr, "fuel={fuel}");
        }
    }

    #[test]
    fn self_modifying_store_forces_redecode() {
        // The program overwrites its *own* upcoming instruction: the
        // store kills the current block mid-flight and execution must
        // resume on fresh bytes in both engines.
        //
        //   0x1000  lui  x6, 0x1000     ; x6 = code base
        //   0x1004  lw   x7, 24(x6)     ; x7 = encoding of "addi x10,x10,9"
        //   0x1008  sw   x7, 12(x6)     ; overwrite the addi below
        //   0x100C  addi x10, x10, 1    ; replaced mid-block!
        //   0x1010  addi x17, x0, 93
        //   0x1014  ecall               ; exit(x10)
        //   0x1018  <patch word>        ; data, never executed
        let patch = build::addi(Reg::x(10), Reg::x(10), 9);
        let insts = [
            build::lui(Reg::x(6), 0x1000),
            build::i_type(Op::Lw, Reg::x(7), Reg::x(6), 24),
            build::s_type(Op::Sw, Reg::x(6), Reg::x(7), 12),
            build::addi(Reg::x(10), Reg::x(10), 1),
            build::addi(Reg::x(17), Reg::X0, EXIT_SYSCALL as i64),
            build::ecall(),
            patch,
        ];
        let code = asm(&insts);
        let mut a = machine_with(&code, 0x1000, EmuEngine::Interpreter);
        let mut b = machine_with(&code, 0x1000, EmuEngine::Cached);
        let ra = a.run();
        let rb = b.run();
        assert_eq!(ra, StopReason::Exited(9), "interpreter must see the patch");
        assert_eq!(rb, StopReason::Exited(9), "cached engine must re-decode");
        assert_eq!(a.icount, b.icount);
        assert_eq!(a.cycles, b.cycles);
        assert!(b.emu_invalidations() > 0, "the store must kill the block");
    }

    #[test]
    fn write_mem_invalidates_hot_block() {
        // Run a block to make it hot, patch it via the debug interface,
        // re-run: the cached engine must execute the new bytes.
        let code = asm(&[build::addi(Reg::x(10), Reg::x(10), 1), build::ebreak()]);
        let mut m = machine_with(&code, 0x1000, EmuEngine::Cached);
        assert_eq!(m.run(), StopReason::Break(0x1004));
        assert_eq!(m.gpr[10], 1);
        let before = m.emu_blocks_translated();
        assert!(before > 0);
        let patch = encode32(&build::addi(Reg::x(10), Reg::x(10), 7)).unwrap();
        m.write_mem(0x1000, &patch.to_le_bytes());
        assert!(m.emu_invalidations() > 0);
        m.pc = 0x1000;
        assert_eq!(m.run(), StopReason::Break(0x1004));
        assert_eq!(m.gpr[10], 8, "patched instruction must execute");
        assert!(m.emu_blocks_translated() > before, "block was re-decoded");
    }

    #[test]
    fn verify_translations_catches_incoherent_text() {
        // Scribble on cached text *behind* the debug interface (straight
        // into memory, no invalidation) — the verifier must trip.
        let code = asm(&[build::addi(Reg::x(10), Reg::x(10), 1), build::ebreak()]);
        let mut m = machine_with(&code, 0x1000, EmuEngine::Cached);
        m.verify_translations = true;
        assert_eq!(m.run(), StopReason::Break(0x1004));
        let patch = encode32(&build::addi(Reg::x(10), Reg::x(10), 7)).unwrap();
        m.mem.write_bytes(0x1000, &patch.to_le_bytes()); // bypasses invalidation
        m.pc = 0x1000;
        assert_eq!(m.run(), StopReason::CacheIncoherent { pc: 0x1000 });
    }

    #[test]
    fn redirects_resolve_identically() {
        // ebreak with a trap-table redirect: both engines must follow it
        // and charge the same redirect cost.
        let code = asm(&[
            build::addi(Reg::x(5), Reg::x(5), 1),
            build::ebreak(),
            build::addi(Reg::x(10), Reg::X0, 55),
            build::addi(Reg::x(17), Reg::X0, EXIT_SYSCALL as i64),
            build::ecall(),
        ]);
        for engine in [EmuEngine::Interpreter, EmuEngine::Cached] {
            let mut m = machine_with(&code, 0x1000, engine);
            m.trap_redirects.insert(0x1004, 0x1008);
            assert_eq!(m.run(), StopReason::Exited(55), "{}", engine.label());
        }
        let mut a = machine_with(&code, 0x1000, EmuEngine::Interpreter);
        a.trap_redirects.insert(0x1004, 0x1008);
        let mut b = machine_with(&code, 0x1000, EmuEngine::Cached);
        b.trap_redirects.insert(0x1004, 0x1008);
        a.run();
        b.run();
        assert_eq!(a.icount, b.icount);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.taken_transfers, b.taken_transfers);
    }

    #[test]
    fn from_env_parses_cached() {
        assert_eq!(EmuEngine::default(), EmuEngine::Interpreter);
        assert_eq!(EmuEngine::Interpreter.label(), "interpreter");
        assert_eq!(EmuEngine::Cached.label(), "cached");
    }
}
