//! Load a SymtabAPI [`Binary`] into a fresh machine (the "spawn" half of
//! Figure 1's dynamic-instrumentation path).

use crate::machine::Machine;
use rvdyn_symtab::Binary;

/// Create a machine with the binary's loadable segments mapped, the
/// decoded-instruction cache covering all executable sections, and the pc
/// at the entry point.
pub fn load_binary(bin: &Binary) -> Machine {
    let mut m = Machine::new();
    for seg in bin.load_segments() {
        m.mem
            .map(seg.vaddr, seg.memsz.max(seg.data.len() as u64).max(1));
        if !seg.data.is_empty() {
            m.mem.write_bytes(seg.vaddr, &seg.data);
        }
    }
    // Register executable ranges for the icache.
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for s in bin.code_sections() {
        lo = lo.min(s.addr);
        hi = hi.max(s.addr + s.data.len() as u64);
    }
    if lo < hi {
        m.set_code_region(lo, hi - lo);
    }
    // Trap-table springboards emitted by the rewriter (.rvdyn.traps):
    // pairs of little-endian u64 (from, to). On hardware the rewriter
    // would install a SIGTRAP handler; here the machine applies the
    // redirect directly.
    if let Some(s) = bin.section_by_name(".rvdyn.traps") {
        for pair in s.data.chunks_exact(16) {
            let from = u64::from_le_bytes(pair[..8].try_into().unwrap());
            let to = u64::from_le_bytes(pair[8..].try_into().unwrap());
            m.trap_redirects.insert(from, to);
        }
    }
    m.pc = bin.entry;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::StopReason;
    use rvdyn_asm::{
        fib_program, matmul_program, memcpy_program, switch_program, tailcall_program,
    };

    #[test]
    fn fib_runs_to_completion() {
        let bin = fib_program(10);
        let mut m = load_binary(&bin);
        m.fuel = Some(10_000_000);
        assert_eq!(m.run(), StopReason::Exited(0));
        // fib(10) = 55 stored at `result`.
        let result = bin.symbol_by_name("result").unwrap().value;
        assert_eq!(m.mem.load(result, 8).unwrap(), 55);
    }

    #[test]
    fn matmul_computes_correct_product() {
        let n = 6usize;
        let bin = matmul_program(n, 1);
        let mut m = load_binary(&bin);
        m.fuel = Some(50_000_000);
        assert_eq!(m.run(), StopReason::Exited(0));
        // A[i][j] = i+j, B[i][j] = i-j; C = A×B computed on the host for
        // comparison.
        let c_addr = bin.symbol_by_name("mat_c").unwrap().value;
        for i in 0..n {
            for j in 0..n {
                let mut expect = 0.0f64;
                for k in 0..n {
                    expect += (i + k) as f64 * (k as f64 - j as f64);
                }
                let bits = m.mem.load(c_addr + ((i * n + j) * 8) as u64, 8).unwrap();
                let got = f64::from_bits(bits);
                assert_eq!(got, expect, "C[{i}][{j}]");
            }
        }
        // The mutatee's own elapsed-time measurement must be positive and
        // written to stdout as 8 little-endian bytes.
        assert_eq!(m.stdout.len(), 8);
        let ns = u64::from_le_bytes(m.stdout[..8].try_into().unwrap());
        assert!(ns > 0);
    }

    #[test]
    fn switch_program_uses_jump_table_correctly() {
        let iters = 16;
        let bin = switch_program(iters);
        let mut m = load_binary(&bin);
        m.fuel = Some(1_000_000);
        assert_eq!(m.run(), StopReason::Exited(0));
        let result = bin.symbol_by_name("result").unwrap().value;
        // i & 7 cycles 0..7; cases 0..3 return 10,20,30,40; 4..7 return 0.
        let expect: u64 = (0..iters)
            .map(|i| match i & 7 {
                0 => 10,
                1 => 20,
                2 => 30,
                3 => 40,
                _ => 0,
            })
            .sum();
        assert_eq!(m.mem.load(result, 8).unwrap(), expect);
    }

    #[test]
    fn tailcall_program_result() {
        let bin = tailcall_program();
        let mut m = load_binary(&bin);
        m.fuel = Some(100_000);
        assert_eq!(m.run(), StopReason::Exited(0));
        let result = bin.symbol_by_name("result").unwrap().value;
        assert_eq!(m.mem.load(result, 8).unwrap(), 12); // (5+1)*2
    }

    #[test]
    fn memcpy_program_output() {
        let bin = memcpy_program();
        let mut m = load_binary(&bin);
        m.fuel = Some(1_000_000);
        assert_eq!(m.run(), StopReason::Exited(0));
        assert_eq!(m.stdout, b"rvdyn: binary instrumentation on RISC-V\n");
    }

    #[test]
    fn deep_call_program_traps_at_leaf() {
        let bin = rvdyn_asm::deep_call_program(25);
        let mut m = load_binary(&bin);
        m.fuel = Some(1_000_000);
        match m.run() {
            StopReason::Break(pc) => {
                let descend = bin.symbol_by_name("descend").unwrap();
                assert!(pc >= descend.value && pc < descend.value + descend.size);
            }
            r => panic!("expected Break, got {r:?}"),
        }
    }

    #[test]
    fn elf_round_trip_then_run() {
        // Serialise to a real ELF file image, reparse, load, run: the full
        // static path of Figure 1 minus the instrumentation.
        let bin = fib_program(12);
        let bytes = bin.to_bytes().unwrap();
        let re = Binary::parse(&bytes).unwrap();
        let mut m = load_binary(&re);
        m.fuel = Some(10_000_000);
        assert_eq!(m.run(), StopReason::Exited(0));
        let result = re.symbol_by_name("result").unwrap().value;
        assert_eq!(m.mem.load(result, 8).unwrap(), 144);
    }

    #[test]
    fn matmul_dynamic_block_count_matches_paper_shape() {
        // §4.1: "during one execution of the multiply function, about
        // 2 million basic blocks are executed" (N=100). The closed form
        // for our 11-block matmul is:
        //   1 + (N+1) + N + N(N+1) + N² + N²(N+1) + N³ + N² + N² + N + 1
        // For N=16 that's 9043; verify via the taken-transfer counter
        // proxy: every block in matmul ends with a taken transfer except
        // fallthroughs out of B2/B4/B6 conditionals... instead verify the
        // exact dynamic *instruction* count is deterministic and repeatable.
        let bin = matmul_program(16, 1);
        let mut m1 = load_binary(&bin);
        m1.fuel = Some(100_000_000);
        assert_eq!(m1.run(), StopReason::Exited(0));
        let mut m2 = load_binary(&bin);
        m2.fuel = Some(100_000_000);
        assert_eq!(m2.run(), StopReason::Exited(0));
        assert_eq!(m1.icount, m2.icount, "emulation must be deterministic");
        assert_eq!(m1.cycles, m2.cycles);
    }
}

#[cfg(test)]
mod atomics_tests {
    use super::*;
    use crate::machine::StopReason;

    #[test]
    fn atomics_program_computes_with_amo_and_lrsc() {
        let iters = 100u64;
        let bin = rvdyn_asm::atomics_program(iters);
        let mut m = load_binary(&bin);
        m.fuel = Some(10_000_000);
        assert_eq!(m.run(), StopReason::Exited(0));
        let r = bin.symbol_by_name("result").unwrap().value;
        assert_eq!(m.mem.load(r, 8).unwrap(), (0..iters).sum::<u64>());
        assert_eq!(m.mem.load(r + 8, 8).unwrap(), iters);
        assert_eq!(m.mem.load(r + 16, 8).unwrap(), 7 * (iters - 1));
        // rdinstret: a plausible nonzero retired count.
        let instret = m.mem.load(r + 24, 8).unwrap();
        assert!(instret > 100 && instret < m.icount);
    }
}
