//! Sparse paged memory for the emulated process.
//!
//! Pages live in a vector sorted by page number and are found by binary
//! search behind a small direct-mapped hint cache, so the hot load/store
//! path of both execution engines (see [`crate::translate`]) costs a few
//! compares instead of a hash per access.

use std::cell::Cell;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Hint-cache entries; must be a power of two. Sized so a workload
/// touching a few dozen pages per loop iteration (e.g. a matrix kernel
/// striding three arrays) doesn't thrash slots back into binary search.
const HINT_SLOTS: usize = 64;

/// Byte-addressed little-endian sparse memory. Pages materialise
/// zero-filled on first write; reads of unmapped memory fault unless the
/// page was mapped (matching a process whose loader mapped its segments).
pub struct Memory {
    /// Mapped pages, sorted by page number.
    pages: Vec<(u64, Box<[u8; PAGE_SIZE]>)>,
    /// Direct-mapped cache of recent `pages` indices, keyed by the low
    /// bits of the page number. Entries are validated on use, so stale
    /// indices after an insert cost a binary search, never a wrong page.
    /// Per-slot cells so a hit touches one word, not the whole array.
    hints: [Cell<usize>; HINT_SLOTS],
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            pages: Vec::new(),
            hints: std::array::from_fn(|_| Cell::new(0)),
        }
    }
}

/// An access fault: address and whether it was a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting byte address.
    pub addr: u64,
    /// True for a store, false for a load.
    pub write: bool,
}

impl Memory {
    /// An empty memory: nothing mapped.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn page_of(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr as usize) & (PAGE_SIZE - 1))
    }

    /// Index of the page `pno` in `self.pages`, hint-cached.
    #[inline(always)]
    fn find(&self, pno: u64) -> Option<usize> {
        let slot = (pno as usize) & (HINT_SLOTS - 1);
        let h = self.hints[slot].get();
        if let Some(p) = self.pages.get(h) {
            if p.0 == pno {
                return Some(h);
            }
        }
        match self.pages.binary_search_by_key(&pno, |p| p.0) {
            Ok(i) => {
                self.hints[slot].set(i);
                Some(i)
            }
            Err(_) => None,
        }
    }

    /// The page `pno` by reference — the hint-hit path hands back the
    /// entry it already validated, so the caller never re-indexes (and
    /// never pays a second bounds check) on the hot path.
    #[inline(always)]
    fn page(&self, pno: u64) -> Option<&[u8; PAGE_SIZE]> {
        let slot = (pno as usize) & (HINT_SLOTS - 1);
        if let Some(p) = self.pages.get(self.hints[slot].get()) {
            if p.0 == pno {
                return Some(&p.1);
            }
        }
        match self.pages.binary_search_by_key(&pno, |p| p.0) {
            Ok(i) => {
                self.hints[slot].set(i);
                Some(&self.pages[i].1)
            }
            Err(_) => None,
        }
    }

    /// Mutable variant of [`Memory::page`].
    #[inline(always)]
    fn page_mut(&mut self, pno: u64) -> Option<&mut [u8; PAGE_SIZE]> {
        let slot = (pno as usize) & (HINT_SLOTS - 1);
        let h = self.hints[slot].get();
        if let Some(p) = self.pages.get(h) {
            if p.0 == pno {
                return Some(&mut self.pages[h].1);
            }
        }
        match self.pages.binary_search_by_key(&pno, |p| p.0) {
            Ok(i) => {
                self.hints[slot].set(i);
                Some(&mut self.pages[i].1)
            }
            Err(_) => None,
        }
    }

    /// Map (zero-fill) the pages covering `[addr, addr+len)`.
    pub fn map(&mut self, addr: u64, len: u64) {
        let first = addr >> PAGE_SHIFT;
        let last = (addr + len.max(1) - 1) >> PAGE_SHIFT;
        for p in first..=last {
            if let Err(i) = self.pages.binary_search_by_key(&p, |e| e.0) {
                self.pages.insert(i, (p, Box::new([0; PAGE_SIZE])));
            }
        }
    }

    /// Is the page containing `addr` mapped?
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.find(addr >> PAGE_SHIFT).is_some()
    }

    /// Copy `data` to `addr`, mapping as needed.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.map(addr, data.len() as u64);
        let mut off = 0usize;
        while off < data.len() {
            let (pno, poff) = Self::page_of(addr + off as u64);
            let n = (PAGE_SIZE - poff).min(data.len() - off);
            let i = self.find(pno).expect("mapped above");
            self.pages[i].1[poff..poff + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Read `len` bytes at `addr` (fault if any page unmapped).
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::with_capacity(len);
        let mut off = 0usize;
        while off < len {
            let (pno, poff) = Self::page_of(addr + off as u64);
            let i = self.find(pno).ok_or(MemFault {
                addr: addr + off as u64,
                write: false,
            })?;
            let n = (PAGE_SIZE - poff).min(len - off);
            out.extend_from_slice(&self.pages[i].1[poff..poff + n]);
            off += n;
        }
        Ok(out)
    }

    /// Load a `size`-byte little-endian scalar (1/2/4/8), zero-extended.
    ///
    /// The in-page path is specialised per width so each access compiles
    /// to a fixed-size load instead of a variable-length `memcpy` — this
    /// is the hottest function in both execution engines.
    #[inline(always)]
    pub fn load(&self, addr: u64, size: u8) -> Result<u64, MemFault> {
        let (pno, poff) = Self::page_of(addr);
        let size_us = size as usize;
        if poff + size_us <= PAGE_SIZE {
            let p = self.page(pno).ok_or(MemFault { addr, write: false })?;
            // Byte-wise so the dominating range check above is the only
            // bounds check; LLVM merges these into one fixed-width load.
            Ok(match size {
                1 => p[poff] as u64,
                2 => u16::from_le_bytes([p[poff], p[poff + 1]]) as u64,
                4 => u32::from_le_bytes([p[poff], p[poff + 1], p[poff + 2], p[poff + 3]]) as u64,
                _ => u64::from_le_bytes([
                    p[poff],
                    p[poff + 1],
                    p[poff + 2],
                    p[poff + 3],
                    p[poff + 4],
                    p[poff + 5],
                    p[poff + 6],
                    p[poff + 7],
                ]),
            })
        } else {
            // Crosses a page boundary — slow path.
            let bytes = self.read_bytes(addr, size_us)?;
            let mut buf = [0u8; 8];
            buf[..size_us].copy_from_slice(&bytes);
            Ok(u64::from_le_bytes(buf))
        }
    }

    /// Store the low `size` bytes of `val` (page must be mapped).
    ///
    /// Width-specialised like [`Memory::load`], for the same reason.
    #[inline(always)]
    pub fn store(&mut self, addr: u64, size: u8, val: u64) -> Result<(), MemFault> {
        let (pno, poff) = Self::page_of(addr);
        let size_us = size as usize;
        if poff + size_us <= PAGE_SIZE {
            let p = self.page_mut(pno).ok_or(MemFault { addr, write: true })?;
            // Byte-wise for the same reason as [`Memory::load`].
            let b = val.to_le_bytes();
            match size {
                1 => p[poff] = b[0],
                2 => {
                    p[poff] = b[0];
                    p[poff + 1] = b[1];
                }
                4 => {
                    p[poff] = b[0];
                    p[poff + 1] = b[1];
                    p[poff + 2] = b[2];
                    p[poff + 3] = b[3];
                }
                _ => {
                    p[poff] = b[0];
                    p[poff + 1] = b[1];
                    p[poff + 2] = b[2];
                    p[poff + 3] = b[3];
                    p[poff + 4] = b[4];
                    p[poff + 5] = b[5];
                    p[poff + 6] = b[6];
                    p[poff + 7] = b[7];
                }
            }
            Ok(())
        } else {
            // Page-crossing store: both pages must exist.
            let bytes = val.to_le_bytes();
            for (k, b) in bytes[..size_us].iter().enumerate() {
                let a = addr + k as u64;
                let (pno, poff) = Self::page_of(a);
                let i = self.find(pno).ok_or(MemFault {
                    addr: a,
                    write: true,
                })?;
                self.pages[i].1[poff] = *b;
            }
            Ok(())
        }
    }

    /// Total mapped bytes (diagnostics).
    pub fn mapped_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Iterate every mapped page as `(base_address, bytes)`, ascending by
    /// address. Used by tests (the engine-differential suite compares
    /// whole memory images) and debug tooling.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages
            .iter()
            .map(|(p, data)| (p << PAGE_SHIFT, &data[..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_fault() {
        let m = Memory::new();
        assert_eq!(
            m.load(0x1000, 8),
            Err(MemFault {
                addr: 0x1000,
                write: false
            })
        );
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::new();
        m.write_bytes(0x1000, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.load(0x1000, 8).unwrap(), 0x0807060504030201);
        assert_eq!(m.load(0x1004, 4).unwrap(), 0x08070605);
        assert_eq!(m.load(0x1007, 1).unwrap(), 8);
    }

    #[test]
    fn page_crossing_access() {
        let mut m = Memory::new();
        m.map(0x1000, 0x2000);
        m.store(0x1FFC, 8, 0x1122334455667788).unwrap();
        assert_eq!(m.load(0x1FFC, 8).unwrap(), 0x1122334455667788);
        assert_eq!(m.load(0x2000, 4).unwrap(), 0x11223344);
    }

    #[test]
    fn store_to_unmapped_faults() {
        let mut m = Memory::new();
        assert!(m.store(0x5000, 4, 1).is_err());
        m.map(0x5000, 1);
        assert!(m.store(0x5000, 4, 1).is_ok());
    }

    #[test]
    fn bulk_round_trip_across_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        m.write_bytes(0xFF0, &data);
        assert_eq!(m.read_bytes(0xFF0, data.len()).unwrap(), data);
    }

    #[test]
    fn pages_stay_sorted_under_interleaved_maps() {
        let mut m = Memory::new();
        // Map out of order, including duplicates.
        for base in [0x9000u64, 0x1000, 0x5000, 0x1000, 0x7000] {
            m.map(base, 1);
        }
        let bases: Vec<u64> = m.pages().map(|(b, _)| b).collect();
        assert_eq!(bases, vec![0x1000, 0x5000, 0x7000, 0x9000]);
        // The hint cache survives inserts: reads still land correctly.
        m.write_bytes(0x5004, &[0xAB]);
        m.map(0x3000, 1); // shifts indices of later pages
        assert_eq!(m.load(0x5004, 1).unwrap(), 0xAB);
    }
}
