//! Sparse paged memory for the emulated process.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Byte-addressed little-endian sparse memory. Pages materialise
/// zero-filled on first write; reads of unmapped memory fault unless the
/// page was mapped (matching a process whose loader mapped its segments).
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

/// An access fault: address and whether it was a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    pub addr: u64,
    pub write: bool,
}

impl Memory {
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn page_of(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr as usize) & (PAGE_SIZE - 1))
    }

    /// Map (zero-fill) the pages covering `[addr, addr+len)`.
    pub fn map(&mut self, addr: u64, len: u64) {
        let first = addr >> PAGE_SHIFT;
        let last = (addr + len.max(1) - 1) >> PAGE_SHIFT;
        for p in first..=last {
            self.pages
                .entry(p)
                .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        }
    }

    /// Is the page containing `addr` mapped?
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr >> PAGE_SHIFT))
    }

    /// Copy `data` to `addr`, mapping as needed.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.map(addr, data.len() as u64);
        let mut off = 0usize;
        while off < data.len() {
            let (pno, poff) = Self::page_of(addr + off as u64);
            let n = (PAGE_SIZE - poff).min(data.len() - off);
            let page = self.pages.get_mut(&pno).expect("mapped above");
            page[poff..poff + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Read `len` bytes at `addr` (fault if any page unmapped).
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::with_capacity(len);
        let mut off = 0usize;
        while off < len {
            let (pno, poff) = Self::page_of(addr + off as u64);
            let page = self.pages.get(&pno).ok_or(MemFault {
                addr: addr + off as u64,
                write: false,
            })?;
            let n = (PAGE_SIZE - poff).min(len - off);
            out.extend_from_slice(&page[poff..poff + n]);
            off += n;
        }
        Ok(out)
    }

    /// Load a `size`-byte little-endian scalar (1/2/4/8), zero-extended.
    #[inline]
    pub fn load(&self, addr: u64, size: u8) -> Result<u64, MemFault> {
        let (pno, poff) = Self::page_of(addr);
        let page = self
            .pages
            .get(&pno)
            .ok_or(MemFault { addr, write: false })?;
        let size = size as usize;
        if poff + size <= PAGE_SIZE {
            let mut buf = [0u8; 8];
            buf[..size].copy_from_slice(&page[poff..poff + size]);
            Ok(u64::from_le_bytes(buf))
        } else {
            // Crosses a page boundary — slow path.
            let bytes = self.read_bytes(addr, size)?;
            let mut buf = [0u8; 8];
            buf[..size].copy_from_slice(&bytes);
            Ok(u64::from_le_bytes(buf))
        }
    }

    /// Store the low `size` bytes of `val` (page must be mapped).
    #[inline]
    pub fn store(&mut self, addr: u64, size: u8, val: u64) -> Result<(), MemFault> {
        let (pno, poff) = Self::page_of(addr);
        let size_us = size as usize;
        if poff + size_us <= PAGE_SIZE {
            let page = self
                .pages
                .get_mut(&pno)
                .ok_or(MemFault { addr, write: true })?;
            page[poff..poff + size_us].copy_from_slice(&val.to_le_bytes()[..size_us]);
            Ok(())
        } else {
            // Page-crossing store: both pages must exist.
            let bytes = val.to_le_bytes();
            for (i, b) in bytes[..size_us].iter().enumerate() {
                let a = addr + i as u64;
                let (pno, poff) = Self::page_of(a);
                let page = self.pages.get_mut(&pno).ok_or(MemFault {
                    addr: a,
                    write: true,
                })?;
                page[poff] = *b;
            }
            Ok(())
        }
    }

    /// Total mapped bytes (diagnostics).
    pub fn mapped_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_fault() {
        let m = Memory::new();
        assert_eq!(
            m.load(0x1000, 8),
            Err(MemFault {
                addr: 0x1000,
                write: false
            })
        );
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::new();
        m.write_bytes(0x1000, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.load(0x1000, 8).unwrap(), 0x0807060504030201);
        assert_eq!(m.load(0x1004, 4).unwrap(), 0x08070605);
        assert_eq!(m.load(0x1007, 1).unwrap(), 8);
    }

    #[test]
    fn page_crossing_access() {
        let mut m = Memory::new();
        m.map(0x1000, 0x2000);
        m.store(0x1FFC, 8, 0x1122334455667788).unwrap();
        assert_eq!(m.load(0x1FFC, 8).unwrap(), 0x1122334455667788);
        assert_eq!(m.load(0x2000, 4).unwrap(), 0x11223344);
    }

    #[test]
    fn store_to_unmapped_faults() {
        let mut m = Memory::new();
        assert!(m.store(0x5000, 4, 1).is_err());
        m.map(0x5000, 1);
        assert!(m.store(0x5000, 4, 1).is_ok());
    }

    #[test]
    fn bulk_round_trip_across_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        m.write_bytes(0xFF0, &data);
        assert_eq!(m.read_bytes(0xFF0, data.len()).unwrap(), data);
    }
}
