//! The emulated RV64GC hart: architectural state, the fetch/step
//! interpreter loop, its syscall layer and the debug interface.
//!
//! Instruction *semantics* live in `crate::exec` (`Machine::exec`) and
//! are shared by both execution engines; the translation-cached engine —
//! decoded basic blocks, direct-branch chaining, generation-based
//! invalidation — lives in [`crate::translate`]. Which engine
//! [`Machine::run`] uses is selected by [`Machine::engine`]
//! ([`EmuEngine`], default from the `RVDYN_EMU` environment variable).
//! Both engines are bit-identical in architectural state *and* in the
//! cycle cost model; see `docs/EMULATOR.md` for the written contract.

use crate::cost::CostModel;
use crate::memory::{MemFault, Memory};
use crate::translate::{EmuEngine, EmuEvent, TranslationCache};
use rvdyn_isa::decode::decode;
use rvdyn_isa::{DecodeError, Instruction};

pub use rvdyn_isa::Reg;

/// Linux RISC-V syscall number for `exit`.
pub const EXIT_SYSCALL: u64 = 93;

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program called `exit(code)`.
    Exited(i64),
    /// An `ebreak` executed at this pc (pc is *not* advanced — the
    /// ptrace-like contract ProcControlAPI expects).
    Break(u64),
    /// Undecodable instruction bytes at pc.
    IllegalInstruction(u64),
    /// A data access faulted.
    MemFault {
        /// pc of the faulting instruction.
        pc: u64,
        /// The faulting data address.
        addr: u64,
        /// True for a store, false for a load.
        write: bool,
    },
    /// An instruction fetch faulted.
    FetchFault {
        /// The unfetchable pc.
        pc: u64,
    },
    /// The configured fuel (max instruction count) ran out.
    FuelExhausted,
    /// The translation cache's coherence check failed: a cached block's
    /// source bytes changed without an invalidation (only possible when
    /// text is mutated behind the debug interface, e.g. by poking
    /// [`Machine::mem`] directly). Raised only when
    /// [`Machine::verify_translations`] is armed.
    CacheIncoherent {
        /// Entry pc of the stale cached block.
        pc: u64,
    },
    /// The modelled cycle counter reached [`Machine::stop_at_cycles`].
    /// The stop lands on an instruction boundary *before* executing the
    /// instruction at `pc`, on either engine at exactly the same pc —
    /// the sampling-profiler interrupt (see `rvdyn::tools::profile`).
    CycleLimit {
        /// pc of the next (unexecuted) instruction.
        pc: u64,
    },
}

impl StopReason {
    /// Stable lower-case label for the exit reason (telemetry / JSON).
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::Exited(_) => "exited",
            StopReason::Break(_) => "break",
            StopReason::IllegalInstruction(_) => "illegal-instruction",
            StopReason::MemFault { .. } => "mem-fault",
            StopReason::FetchFault { .. } => "fetch-fault",
            StopReason::FuelExhausted => "fuel-exhausted",
            StopReason::CacheIncoherent { .. } => "cache-incoherent",
            StopReason::CycleLimit { .. } => "cycle-limit",
        }
    }
}

/// One memory access recorded by the interpreter-side oracle
/// ([`Machine::arm_mem_oracle`]): the ground truth a memory-access
/// tracer's instrumentation output is differenced against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// pc of the load/store instruction.
    pub pc: u64,
    /// Effective data address.
    pub addr: u64,
    /// Access width in bytes (1, 2, 4 or 8).
    pub len: u8,
    /// True for a store, false for a load.
    pub is_store: bool,
}

/// The emulated machine.
pub struct Machine {
    /// Program counter.
    pub pc: u64,
    /// Integer registers; `gpr[0]` (x0) is kept zero by construction.
    pub gpr: [u64; 32],
    /// FP registers as raw bits (f32 values NaN-boxed).
    pub fpr: [u64; 32],
    /// Floating-point control/status register (fflags + frm).
    pub fcsr: u64,
    /// The process address space.
    pub mem: Memory,
    /// The cycle cost model both engines charge identically.
    pub cost: CostModel,
    /// Retired instruction count.
    pub icount: u64,
    /// Modelled cycle count.
    pub cycles: u64,
    /// Bytes the program wrote to fd 1/2.
    pub stdout: Vec<u8>,
    /// Optional execution budget (instructions).
    pub fuel: Option<u64>,
    /// Optional cycle-count interrupt: once [`Machine::cycles`] reaches
    /// this value, execution stops with [`StopReason::CycleLimit`]
    /// *before* the next instruction executes. Both engines stop at the
    /// exact same pc and cycle count (the cached engine falls back to
    /// single-stepping near the edge, mirroring its fuel-edge rule).
    /// Re-arm with a larger value to keep sampling; the controller owns
    /// the cadence.
    pub stop_at_cycles: Option<u64>,
    /// Interpreter-side memory-op oracle: when armed, every load/store
    /// the *program* performs (excluding atomics and syscall-internal
    /// traffic) is appended here. See [`Machine::arm_mem_oracle`].
    pub(crate) mem_oracle: Option<Vec<MemOp>>,
    /// Interpreter-side shadow call stack: return addresses pushed by
    /// `jal`/`jalr` linking x1/x5 and popped by `jalr x0` through
    /// x1/x5. See [`Machine::arm_call_oracle`].
    pub(crate) call_oracle: Option<Vec<u64>>,
    /// Dynamic count of taken control transfers (diagnostics: the number
    /// of basic-block entries is `taken_transfers + fallthroughs`).
    pub taken_transfers: u64,
    /// Which execution engine [`Machine::run`] uses. Defaults from the
    /// `RVDYN_EMU` environment variable (see [`EmuEngine::from_env`]);
    /// [`Machine::step`] is always the interpreter.
    pub engine: EmuEngine,
    /// When set, the cached engine re-checks every cached block's source
    /// bytes on entry and stops with [`StopReason::CacheIncoherent`] on a
    /// mismatch. Off by default (it re-reads text per block entry).
    pub verify_translations: bool,
    /// Trap-table redirects: `ebreak` at a key address transfers control
    /// to the value address instead of stopping. This is the runtime half
    /// of PatchAPI's worst-case 2-byte trap springboard (§3.1.2) — on real
    /// hardware a SIGTRAP handler injected by the rewriter; here, the
    /// equivalent kernel-side redirect. Each redirect is charged
    /// [`CostModel::trap_redirect`] cycles to model the trap round trip.
    pub trap_redirects: std::collections::BTreeMap<u64, u64>,
    /// Count of injected redirect-resolution faults (see
    /// [`Machine::inject_redirect_drop`]).
    pub redirect_faults_injected: u64,
    /// Fault injection: when `Some(n)`, the `n`-th (0-based) trap-redirect
    /// resolution is dropped — the `ebreak` surfaces as if the trap table
    /// had no entry for it, exercising the mutator's `RedirectMiss` path.
    pub(crate) redirect_drop_nth: Option<u64>,
    /// Running count of trap-redirect resolutions attempted.
    pub(crate) redirect_resolutions: u64,
    pub(crate) brk: u64,
    pub(crate) code_base: u64,
    pub(crate) code_end: u64,
    /// Decoded-instruction cache over `[code_base, code_end)`, one slot
    /// per half-word, split into lazily-allocated chunks: the top-level
    /// vector holds one entry per [`ICACHE_CHUNK`]-slot chunk and a
    /// chunk's backing store materialises only when a pc inside it is
    /// first cached. The code region routinely spans the gap between
    /// the original text and a high patch area (dynamic instrumentation
    /// extends it across both), so a flat array would cost megabytes
    /// per machine for the never-executed middle — ruinous for fleets
    /// of processes held live concurrently.
    icache: Vec<Option<Box<[Option<Instruction>]>>>,
    /// Decoded-basic-block translation cache (the cached engine's state).
    pub(crate) tcache: TranslationCache,
}

/// Stack placement: top just below 2 GiB. The stack region is 8 MiB, but
/// only the top 64 KiB is mapped eagerly — the rest materialises on
/// demand (see the fault-retry path in `step`), keeping machine creation
/// cheap.
pub(crate) const STACK_TOP: u64 = 0x7FFF_F000;
pub(crate) const STACK_SIZE: u64 = 8 * 1024 * 1024;
const STACK_EAGER: u64 = 64 * 1024;

/// Half-word slots per decoded-instruction-cache chunk: 1024 slots =
/// 2 KiB of code text per chunk. Small enough that sparse code regions
/// stay cheap, large enough that a hot loop lives in one chunk.
const ICACHE_CHUNK: usize = 1024;

/// An empty chunk table covering a code region of `len` bytes.
fn icache_chunks(len: u64) -> Vec<Option<Box<[Option<Instruction>]>>> {
    let slots = (len / 2 + 2) as usize;
    vec![None; slots.div_ceil(ICACHE_CHUNK)]
}

impl Machine {
    /// A bare machine: empty memory, stack mapped, sp initialised.
    pub fn new() -> Machine {
        let mut m = Machine {
            pc: 0,
            gpr: [0; 32],
            fpr: [0; 32],
            fcsr: 0,
            mem: Memory::new(),
            cost: CostModel::default(),
            icount: 0,
            cycles: 0,
            stdout: Vec::new(),
            fuel: None,
            stop_at_cycles: None,
            mem_oracle: None,
            call_oracle: None,
            taken_transfers: 0,
            engine: EmuEngine::from_env(),
            verify_translations: false,
            trap_redirects: std::collections::BTreeMap::new(),
            redirect_faults_injected: 0,
            redirect_drop_nth: None,
            redirect_resolutions: 0,
            brk: 0x6000_0000,
            code_base: 0,
            code_end: 0,
            icache: Vec::new(),
            tcache: TranslationCache::default(),
        };
        m.mem.map(STACK_TOP - STACK_EAGER, STACK_EAGER);
        m.gpr[2] = STACK_TOP - 64; // sp, with a little headroom
        m
    }

    /// Read a register (x0 reads as zero).
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        match r.class() {
            rvdyn_isa::RegClass::Gpr => {
                if r.is_zero() {
                    0
                } else {
                    self.gpr[r.num() as usize]
                }
            }
            rvdyn_isa::RegClass::Fpr => self.fpr[r.num() as usize],
        }
    }

    /// Write a register (writes to x0 are dropped).
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        match r.class() {
            rvdyn_isa::RegClass::Gpr => {
                if !r.is_zero() {
                    self.gpr[r.num() as usize] = v;
                }
            }
            rvdyn_isa::RegClass::Fpr => self.fpr[r.num() as usize] = v,
        }
    }

    /// Register the executable address range for the decoded-instruction
    /// cache. Writes into the range invalidate affected entries
    /// (self-modifying code / dynamic instrumentation work correctly).
    pub fn set_code_region(&mut self, base: u64, len: u64) {
        self.code_base = base;
        self.code_end = base + len;
        self.icache = icache_chunks(len);
        self.tcache.flush();
    }

    /// Extend the code region if `addr..addr+len` lies outside it.
    pub fn ensure_code_region(&mut self, addr: u64, len: u64) {
        if self.code_base == self.code_end {
            self.set_code_region(addr, len);
            return;
        }
        let nb = self.code_base.min(addr);
        let ne = self.code_end.max(addr + len);
        if nb != self.code_base || ne != self.code_end {
            self.code_base = nb;
            self.code_end = ne;
            self.icache = icache_chunks(ne - nb);
            self.tcache.flush();
        }
    }

    /// Write memory through the debug interface: updates bytes *and*
    /// invalidates any cached decodes covering them — the per-address
    /// interpreter cache entries and every overlapping translated block
    /// (required for breakpoint insertion, §3.2.6, and for dynamic
    /// springboard writes into already-hot text).
    pub fn write_mem(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.write_bytes(addr, bytes);
        self.invalidate(addr, bytes.len() as u64);
    }

    /// Read memory through the debug interface.
    pub fn read_mem(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        self.mem.read_bytes(addr, len)
    }

    /// Arm a one-shot fault: the `nth` (0-based) trap-redirect resolution
    /// is dropped, surfacing the `ebreak` to the controller as if its
    /// trap-table entry were missing. Used by the `FaultPlan` debug-side
    /// fault-injection hook to make the `RedirectMiss` recovery path
    /// reachable from tests without test-only code in the resolver.
    pub fn inject_redirect_drop(&mut self, nth: u64) {
        self.redirect_drop_nth = Some(nth);
    }

    /// Arm the memory-op oracle: from now on every load/store the
    /// program itself performs is recorded as a [`MemOp`], in retirement
    /// order. Ground truth for differential tracer tests.
    ///
    /// Scope (deliberately matching what `rvdyn::tools::memtrace`
    /// instruments): plain integer and FP loads/stores only — atomics
    /// (LR/SC/AMO) and memory traffic internal to emulated syscalls
    /// (`write` reading its buffer, `clock_gettime` storing its result)
    /// are *not* recorded. While any oracle is armed, [`Machine::run`]
    /// always interprets, whatever [`Machine::engine`] says: the oracle
    /// observes the semantic core directly, and both engines are
    /// bit-identical anyway (`tests/engine_diff.rs`).
    pub fn arm_mem_oracle(&mut self) {
        self.mem_oracle = Some(Vec::new());
    }

    /// Take the memory ops recorded since [`Machine::arm_mem_oracle`],
    /// leaving the oracle armed with an empty buffer.
    pub fn take_mem_oracle(&mut self) -> Vec<MemOp> {
        match self.mem_oracle.as_mut() {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    /// Arm the shadow call stack: `jal`/`jalr` writing a link register
    /// (x1/x5) push their return address; `jalr x0` through a link
    /// register (a `ret`) pops. The resulting stack is the emulator's
    /// ground-truth call chain, which a sampling profiler's walked
    /// frames are differenced against. Forces interpretation like
    /// [`Machine::arm_mem_oracle`].
    pub fn arm_call_oracle(&mut self) {
        self.call_oracle = Some(Vec::new());
    }

    /// The shadow call stack (innermost return address last). Empty when
    /// the oracle is not armed or execution is back at top level.
    pub fn call_stack(&self) -> &[u64] {
        self.call_oracle.as_deref().unwrap_or(&[])
    }

    #[inline]
    fn oracle_armed(&self) -> bool {
        self.mem_oracle.is_some() || self.call_oracle.is_some()
    }

    /// Record one program-level memory access when the oracle is armed.
    #[inline]
    pub(crate) fn oracle_mem(&mut self, pc: u64, addr: u64, len: u8, is_store: bool) {
        if let Some(ops) = self.mem_oracle.as_mut() {
            ops.push(MemOp {
                pc,
                addr,
                len,
                is_store,
            });
        }
    }

    /// Maintain the shadow call stack across a `jal`/`jalr` when the
    /// oracle is armed (standard RISC-V link-register convention: rd in
    /// {x1, x5} is a call; `jalr x0` via {x1, x5} is a return).
    #[inline]
    pub(crate) fn oracle_call(&mut self, rd: Reg, rs1: Option<Reg>, ret: u64) {
        let Some(stack) = self.call_oracle.as_mut() else {
            return;
        };
        let is_link = |r: Reg| {
            matches!(r.class(), rvdyn_isa::RegClass::Gpr) && (r.num() == 1 || r.num() == 5)
        };
        if is_link(rd) {
            stack.push(ret);
        } else if rd.is_zero() && rs1.is_some_and(is_link) {
            stack.pop();
        }
    }

    /// Translated blocks populated by the cached engine so far.
    pub fn emu_blocks_translated(&self) -> u64 {
        self.tcache.blocks_translated
    }

    /// Translated blocks invalidated by writes into executable text.
    pub fn emu_invalidations(&self) -> u64 {
        self.tcache.invalidations
    }

    /// Direct-branch chain links installed between cached blocks.
    pub fn emu_chain_links(&self) -> u64 {
        self.tcache.chain_links
    }

    /// Drain the engine's buffered [`EmuEvent`]s (block translations and
    /// invalidations) for a telemetry sink. The buffer is bounded; the
    /// counters above are always exact.
    pub fn take_emu_events(&mut self) -> Vec<EmuEvent> {
        std::mem::take(&mut self.tcache.events)
    }

    #[inline]
    pub(crate) fn invalidate(&mut self, addr: u64, len: u64) {
        if addr + len <= self.code_base || addr >= self.code_end {
            return;
        }
        // An instruction starting up to 2 bytes before `addr` may cover it.
        let start = addr.saturating_sub(2).max(self.code_base);
        let end = (addr + len).min(self.code_end);
        let mut a = start;
        while a < end {
            let idx = ((a - self.code_base) / 2) as usize;
            match self.icache.get_mut(idx / ICACHE_CHUNK) {
                Some(Some(chunk)) => {
                    chunk[idx % ICACHE_CHUNK] = None;
                    a += 2;
                }
                // Chunk never materialised: nothing cached to clear —
                // hop straight to the next chunk boundary.
                Some(None) => {
                    a = self.code_base + ((idx / ICACHE_CHUNK + 1) * ICACHE_CHUNK * 2) as u64;
                }
                None => break,
            }
        }
        self.tcache.kill_range(addr, len);
    }

    #[inline]
    pub(crate) fn fetch(&mut self, pc: u64) -> Result<Instruction, StopReason> {
        if pc >= self.code_base && pc < self.code_end && pc & 1 == 0 {
            let idx = ((pc - self.code_base) / 2) as usize;
            if let Some(Some(chunk)) = self.icache.get(idx / ICACHE_CHUNK) {
                if let Some(i) = chunk[idx % ICACHE_CHUNK] {
                    return Ok(i);
                }
            }
        }
        let bytes = self
            .mem
            .read_bytes(pc, 4)
            .or_else(|_| self.mem.read_bytes(pc, 2))
            .map_err(|_| StopReason::FetchFault { pc })?;
        let inst = decode(&bytes, pc).map_err(|e| match e {
            DecodeError::Truncated { .. } => StopReason::FetchFault { pc },
            _ => StopReason::IllegalInstruction(pc),
        })?;
        if pc >= self.code_base && pc < self.code_end && pc & 1 == 0 {
            let idx = ((pc - self.code_base) / 2) as usize;
            if let Some(slot) = self.icache.get_mut(idx / ICACHE_CHUNK) {
                let chunk = slot.get_or_insert_with(|| vec![None; ICACHE_CHUNK].into_boxed_slice());
                chunk[idx % ICACHE_CHUNK] = Some(inst);
            }
        }
        Ok(inst)
    }

    /// Execute instructions until something stops the machine, on the
    /// engine selected by [`Machine::engine`]. An armed oracle
    /// ([`Machine::arm_mem_oracle`] / [`Machine::arm_call_oracle`])
    /// forces interpretation — the oracles observe the semantic core
    /// directly, and the engines are bit-identical regardless.
    pub fn run(&mut self) -> StopReason {
        if self.oracle_armed() {
            loop {
                if let Some(r) = self.step() {
                    return r;
                }
            }
        }
        match self.engine {
            EmuEngine::Interpreter => loop {
                if let Some(r) = self.step() {
                    return r;
                }
            },
            EmuEngine::Cached => self.run_cached(),
        }
    }

    /// Execute one instruction through the interpreter. `None` means
    /// "keep going". Single-stepping is always interpreted — the cached
    /// engine in [`Machine::run`] produces identical architectural state
    /// and cycle counts, block by block.
    #[inline]
    pub fn step(&mut self) -> Option<StopReason> {
        if let Some(fuel) = self.fuel {
            if self.icount >= fuel {
                return Some(StopReason::FuelExhausted);
            }
        }
        if let Some(limit) = self.stop_at_cycles {
            if self.cycles >= limit {
                return Some(StopReason::CycleLimit { pc: self.pc });
            }
        }
        let pc = self.pc;
        let inst = match self.fetch(pc) {
            Ok(i) => i,
            Err(r) => return Some(r),
        };
        match self.exec(&inst) {
            Ok(crate::exec::Effect::Next) => {
                self.pc = pc.wrapping_add(inst.size as u64);
                self.retire(&inst, false);
                None
            }
            Ok(crate::exec::Effect::Jump(t)) => {
                self.pc = t;
                self.taken_transfers += 1;
                self.retire(&inst, true);
                None
            }
            Ok(crate::exec::Effect::Stop(r)) => {
                if let StopReason::Break(at) = r {
                    if self.trap_redirects.contains_key(&at) && self.resolve_redirect(at) {
                        return None;
                    }
                }
                if let StopReason::Exited(_) = r {
                    self.retire(&inst, false);
                }
                Some(r)
            }
            Err(f) => {
                // Demand-grow the stack: accesses within the stack region
                // map fresh zero pages and retry (what the kernel's stack
                // VMA does for a real process).
                if f.addr >= STACK_TOP - STACK_SIZE && f.addr < STACK_TOP {
                    self.mem.map(f.addr & !0xFFF, 0x1000);
                    return self.step();
                }
                Some(StopReason::MemFault {
                    pc,
                    addr: f.addr,
                    write: f.write,
                })
            }
        }
    }

    /// Attempt the trap-table redirect for an `ebreak` at `at`. Returns
    /// true when control was transferred (charging the modelled trap
    /// round trip), false when the resolution was dropped by an armed
    /// fault and the Break must surface. Both engines funnel through
    /// here, so redirect accounting is engine-invariant.
    #[inline]
    pub(crate) fn resolve_redirect(&mut self, at: u64) -> bool {
        let Some(&t) = self.trap_redirects.get(&at) else {
            return false;
        };
        let n = self.redirect_resolutions;
        self.redirect_resolutions += 1;
        if self.redirect_drop_nth == Some(n) {
            // Injected fault: drop this resolution so the Break surfaces
            // exactly as a missing redirect would (the mutator's
            // RedirectMiss path).
            self.redirect_drop_nth = None;
            self.redirect_faults_injected += 1;
            false
        } else {
            // Trap-table springboard: redirect, keep going.
            self.pc = t;
            self.taken_transfers += 1;
            self.icount += 1;
            self.cycles += self.cost.trap_redirect;
            true
        }
    }

    #[inline]
    fn retire(&mut self, inst: &Instruction, taken: bool) {
        self.icount += 1;
        self.cycles += self.cost.cycles_for(inst, taken);
    }

    /// Modelled nanoseconds since start (what `clock_gettime` returns).
    pub fn now_ns(&self) -> u64 {
        self.cost.nanos(self.cycles)
    }

    /// Modelled seconds since start.
    pub fn now_seconds(&self) -> f64 {
        self.cost.seconds(self.cycles)
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_isa::build;
    use rvdyn_isa::encode::encode32;
    use rvdyn_isa::Op;

    fn machine_with(code: &[u8], base: u64) -> Machine {
        let mut m = Machine::new();
        m.mem.write_bytes(base, code);
        m.set_code_region(base, code.len() as u64);
        m.pc = base;
        m
    }

    fn asm(insts: &[Instruction]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in insts {
            out.extend_from_slice(&encode32(i).unwrap().to_le_bytes());
        }
        out
    }

    #[test]
    fn exit_syscall_stops() {
        let code = asm(&[
            build::addi(Reg::x(10), Reg::X0, 42),
            build::addi(Reg::x(17), Reg::X0, EXIT_SYSCALL as i64),
            build::ecall(),
        ]);
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(m.run(), StopReason::Exited(42));
        assert_eq!(m.icount, 3);
    }

    #[test]
    fn write_collects_stdout() {
        let mut m = Machine::new();
        m.mem.write_bytes(0x2000, b"hello");
        let code = asm(&[
            build::addi(Reg::x(10), Reg::X0, 1),
            build::lui(Reg::x(11), 0x2000),
            build::addi(Reg::x(12), Reg::X0, 5),
            build::addi(Reg::x(17), Reg::X0, 64),
            build::ecall(),
            build::addi(Reg::x(17), Reg::X0, 93),
            build::ecall(),
        ]);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        // write() returns the byte count in a0, which exit() then uses.
        assert_eq!(m.run(), StopReason::Exited(5));
        assert_eq!(m.stdout, b"hello");
    }

    #[test]
    fn ebreak_reports_pc_unadvanced() {
        let code = asm(&[build::nop(), build::ebreak()]);
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(m.run(), StopReason::Break(0x1004));
        assert_eq!(m.pc, 0x1004, "pc must point at the ebreak");
    }

    #[test]
    fn illegal_instruction_detected() {
        let mut m = machine_with(&[0, 0, 0, 0], 0x1000);
        assert_eq!(m.run(), StopReason::IllegalInstruction(0x1000));
    }

    #[test]
    fn mem_fault_reported() {
        let code = asm(&[build::ld(Reg::x(10), Reg::X0, 0x10)]);
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(
            m.run(),
            StopReason::MemFault {
                pc: 0x1000,
                addr: 0x10,
                write: false
            }
        );
    }

    #[test]
    fn fuel_limit() {
        // Infinite loop: jal x0, 0
        let code = asm(&[build::jal(Reg::X0, 0)]);
        let mut m = machine_with(&code, 0x1000);
        m.fuel = Some(1000);
        assert_eq!(m.run(), StopReason::FuelExhausted);
        assert_eq!(m.icount, 1000);
    }

    #[test]
    fn fp_double_arithmetic() {
        let mut m = Machine::new();
        m.set_f64(Reg::f(1), 2.5);
        m.set_f64(Reg::f(2), 4.0);
        let code = asm(&[
            build::f_type(Op::FmulD, Reg::f(0), Reg::f(1), Reg::f(2)),
            build::f_type(Op::FaddD, Reg::f(3), Reg::f(0), Reg::f(2)),
            build::fma(Op::FmaddD, Reg::f(4), Reg::f(1), Reg::f(2), Reg::f(3)),
        ]);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        for _ in 0..3 {
            assert!(m.step().is_none());
        }
        assert_eq!(m.f64v(Reg::f(0)), 10.0);
        assert_eq!(m.f64v(Reg::f(3)), 14.0);
        assert_eq!(m.f64v(Reg::f(4)), 2.5f64.mul_add(4.0, 14.0));
    }

    #[test]
    fn fp_conversions_saturate() {
        let mut m = Machine::new();
        m.set_f64(Reg::f(0), f64::NAN);
        let code = asm(&[build::f_unary(Op::FcvtWD, Reg::x(10), Reg::f(0))]);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        m.step();
        assert_eq!(m.gpr[10] as i64, i32::MAX as i64);
    }

    #[test]
    fn nan_boxing_flw() {
        let mut m = Machine::new();
        m.mem.write_bytes(0x2000, &1.5f32.to_bits().to_le_bytes());
        let code = asm(&[
            build::lui(Reg::x(5), 0x2000),
            build::i_type(Op::Flw, Reg::f(0), Reg::x(5), 0),
        ]);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        for _ in 0..2 {
            m.step();
        }
        assert_eq!(m.f32v(Reg::f(0)), 1.5);
        assert_eq!(m.fpr[0] >> 32, 0xFFFF_FFFF);
    }

    #[test]
    fn clock_gettime_reflects_cycle_model() {
        let mut m = Machine::new();
        // Burn some cycles, then clock_gettime(1, 0x3000).
        let mut insts = vec![];
        for _ in 0..100 {
            insts.push(build::addi(Reg::x(5), Reg::x(5), 1));
        }
        insts.push(build::addi(Reg::x(10), Reg::X0, 1));
        insts.push(build::lui(Reg::x(11), 0x3000));
        insts.push(build::i_type(Op::Srli, Reg::x(11), Reg::x(11), 0)); // keep addr
        insts.push(build::addi(Reg::x(17), Reg::X0, 113));
        insts.push(build::ecall());
        insts.push(build::addi(Reg::x(17), Reg::X0, 93));
        insts.push(build::ecall());
        let code = asm(&insts);
        m.mem.map(0x3000, 16);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        m.run();
        let ns = m.mem.load(0x3008, 8).unwrap();
        // ~104 cheap instructions at 1.4 GHz ≈ 74 ns (the in-flight ecall
        // has not retired when the timestamp is taken).
        assert!(ns > 50 && ns < 2000, "modelled ns = {ns}");
    }

    #[test]
    fn code_writes_invalidate_icache() {
        // Execute a nop twice; between runs, overwrite it with addi x5+=7.
        let code = asm(&[build::nop(), build::ebreak()]);
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(m.run(), StopReason::Break(0x1004));
        // Patch the nop (already cached) via the debug interface.
        let patch = encode32(&build::addi(Reg::x(5), Reg::x(5), 7)).unwrap();
        m.write_mem(0x1000, &patch.to_le_bytes());
        m.pc = 0x1000;
        assert_eq!(m.run(), StopReason::Break(0x1004));
        assert_eq!(m.gpr[5], 7, "stale icache entry executed");
    }

    #[test]
    fn compressed_instructions_execute() {
        // c.addi x10, 3 ; c.mv x11, x10 ; ebreak
        let mut code = Vec::new();
        let ca = rvdyn_isa::encode::compress(&build::addi(Reg::x(10), Reg::x(10), 3)).unwrap();
        let cm = rvdyn_isa::encode::compress(&build::add(Reg::x(11), Reg::X0, Reg::x(10))).unwrap();
        code.extend_from_slice(&ca.to_le_bytes());
        code.extend_from_slice(&cm.to_le_bytes());
        code.extend_from_slice(&encode32(&build::ebreak()).unwrap().to_le_bytes());
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(m.run(), StopReason::Break(0x1004));
        assert_eq!(m.gpr[10], 3);
        assert_eq!(m.gpr[11], 3);
    }

    #[test]
    fn csr_cycle_instret_readable() {
        let mut insts = vec![build::nop(); 5];
        let mut csr = build::i_type(Op::Csrrs, Reg::x(10), Reg::X0, 0);
        csr.csr = Some(0xC02); // instret
        csr.rs1 = Some(Reg::X0);
        insts.push(csr);
        insts.push(build::ebreak());
        let code = asm(&insts);
        let mut m = machine_with(&code, 0x1000);
        m.run();
        assert_eq!(m.gpr[10], 5);
    }
}

#[cfg(test)]
mod syscall_edge_tests {
    use super::*;
    use rvdyn_isa::build;
    use rvdyn_isa::encode::encode32;

    fn run_syscall(nr: i64, a0: u64, a1: u64, a2: u64) -> (Machine, StopReason) {
        let mut m = Machine::new();
        m.gpr[10] = a0;
        m.gpr[11] = a1;
        m.gpr[12] = a2;
        // a7 = nr via lui/addi-free path: materialise small values only.
        let insts = [
            build::addi(Reg::x(17), Reg::X0, nr),
            build::ecall(),
            build::ebreak(),
        ];
        let code: Vec<u8> = insts
            .iter()
            .flat_map(|i| encode32(i).unwrap().to_le_bytes())
            .collect();
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        let r = m.run();
        (m, r)
    }

    #[test]
    fn write_to_bad_fd_returns_ebadf() {
        let mut m = Machine::new();
        m.mem.map(0x3000, 16);
        let (m, r) = {
            let mut mm = m;
            mm.mem.write_bytes(0x3000, b"abc");
            let mut insts = vec![
                build::addi(Reg::x(10), Reg::X0, 7), // fd 7
                build::lui(Reg::x(11), 0x3000),
                build::addi(Reg::x(12), Reg::X0, 3),
                build::addi(Reg::x(17), Reg::X0, 64),
                build::ecall(),
                build::ebreak(),
            ];
            let code: Vec<u8> = insts
                .drain(..)
                .flat_map(|i| rvdyn_isa::encode::encode32(&i).unwrap().to_le_bytes())
                .collect();
            mm.mem.write_bytes(0x1000, &code);
            mm.set_code_region(0x1000, code.len() as u64);
            mm.pc = 0x1000;
            let r = mm.run();
            (mm, r)
        };
        assert!(matches!(r, StopReason::Break(_)));
        assert_eq!(m.gpr[10] as i64, -9, "EBADF");
        assert!(m.stdout.is_empty());
    }

    #[test]
    fn unknown_syscall_returns_enosys() {
        let (m, r) = run_syscall(999, 0, 0, 0);
        assert!(matches!(r, StopReason::Break(_)));
        assert_eq!(m.gpr[10] as i64, -38, "ENOSYS");
    }

    #[test]
    fn brk_grows_the_heap() {
        // brk(0) queries; brk(query + 0x2000) grows; memory then usable.
        let (m, r) = run_syscall(214, 0, 0, 0);
        assert!(matches!(r, StopReason::Break(_)));
        let cur = m.gpr[10];
        assert!(cur >= 0x6000_0000);
        let (mut m2, r2) = run_syscall(214, cur + 0x2000, 0, 0);
        assert!(matches!(r2, StopReason::Break(_)));
        assert_eq!(m2.gpr[10], cur + 0x2000);
        assert!(
            m2.mem.store(cur + 0x1000, 8, 42).is_ok(),
            "grown heap usable"
        );
    }

    #[test]
    fn stack_grows_on_demand() {
        // Touch memory 1 MiB below the initial sp: a fresh page must
        // appear (the demand-grow path), not a fault.
        let mut m = Machine::new();
        let sp = m.gpr[2];
        let insts = [
            build::lui(Reg::x(5), -(1 << 20) as i64 & !0xFFF),
            build::add(Reg::x(5), Reg::x(5), Reg::X2),
            build::sd(Reg::x(6), Reg::x(5), 0),
            build::ebreak(),
        ];
        let code: Vec<u8> = insts
            .iter()
            .flat_map(|i| rvdyn_isa::encode::encode32(i).unwrap().to_le_bytes())
            .collect();
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        m.gpr[6] = 0x1234;
        assert!(matches!(m.run(), StopReason::Break(_)));
        let addr = sp.wrapping_sub(1 << 20) & !0xFFF_u64 | (sp & 0xFFF);
        let _ = addr;
        assert!(m.mem.is_mapped(sp - (1 << 20)), "stack page must be mapped");
    }
}
