//! The emulated RV64GC hart, its syscall layer and debug interface.

use crate::cost::CostModel;
use crate::memory::{MemFault, Memory};
use rvdyn_isa::decode::decode;
use rvdyn_isa::{DecodeError, Instruction, Op, Reg};

/// Linux RISC-V syscall number for `exit`.
pub const EXIT_SYSCALL: u64 = 93;
const SYS_WRITE: u64 = 64;
const SYS_BRK: u64 = 214;
const SYS_CLOCK_GETTIME: u64 = 113;

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program called `exit(code)`.
    Exited(i64),
    /// An `ebreak` executed at this pc (pc is *not* advanced — the
    /// ptrace-like contract ProcControlAPI expects).
    Break(u64),
    /// Undecodable instruction bytes at pc.
    IllegalInstruction(u64),
    /// A data access faulted.
    MemFault { pc: u64, addr: u64, write: bool },
    /// An instruction fetch faulted.
    FetchFault { pc: u64 },
    /// The configured fuel (max instruction count) ran out.
    FuelExhausted,
}

impl StopReason {
    /// Stable lower-case label for the exit reason (telemetry / JSON).
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::Exited(_) => "exited",
            StopReason::Break(_) => "break",
            StopReason::IllegalInstruction(_) => "illegal-instruction",
            StopReason::MemFault { .. } => "mem-fault",
            StopReason::FetchFault { .. } => "fetch-fault",
            StopReason::FuelExhausted => "fuel-exhausted",
        }
    }
}

/// The emulated machine.
pub struct Machine {
    pub pc: u64,
    pub gpr: [u64; 32],
    /// FP registers as raw bits (f32 values NaN-boxed).
    pub fpr: [u64; 32],
    pub fcsr: u64,
    pub mem: Memory,
    pub cost: CostModel,
    /// Retired instruction count.
    pub icount: u64,
    /// Modelled cycle count.
    pub cycles: u64,
    /// Bytes the program wrote to fd 1/2.
    pub stdout: Vec<u8>,
    /// Optional execution budget (instructions).
    pub fuel: Option<u64>,
    /// Dynamic count of taken control transfers (diagnostics: the number
    /// of basic-block entries is `taken_transfers + fallthroughs`).
    pub taken_transfers: u64,
    /// Trap-table redirects: `ebreak` at a key address transfers control
    /// to the value address instead of stopping. This is the runtime half
    /// of PatchAPI's worst-case 2-byte trap springboard (§3.1.2) — on real
    /// hardware a SIGTRAP handler injected by the rewriter; here, the
    /// equivalent kernel-side redirect. Each redirect is charged
    /// [`CostModel::trap_redirect`] cycles to model the trap round trip.
    pub trap_redirects: std::collections::BTreeMap<u64, u64>,
    /// Count of injected redirect-resolution faults (see
    /// [`Machine::inject_redirect_drop`]).
    pub redirect_faults_injected: u64,
    /// Fault injection: when `Some(n)`, the `n`-th (0-based) trap-redirect
    /// resolution is dropped — the `ebreak` surfaces as if the trap table
    /// had no entry for it, exercising the mutator's `RedirectMiss` path.
    redirect_drop_nth: Option<u64>,
    /// Running count of trap-redirect resolutions attempted.
    redirect_resolutions: u64,
    brk: u64,
    code_base: u64,
    code_end: u64,
    icache: Vec<Option<Instruction>>,
}

/// Stack placement: top just below 2 GiB. The stack region is 8 MiB, but
/// only the top 64 KiB is mapped eagerly — the rest materialises on
/// demand (see `grow_stack_on_fault`), keeping machine creation cheap.
const STACK_TOP: u64 = 0x7FFF_F000;
const STACK_SIZE: u64 = 8 * 1024 * 1024;
const STACK_EAGER: u64 = 64 * 1024;

impl Machine {
    /// A bare machine: empty memory, stack mapped, sp initialised.
    pub fn new() -> Machine {
        let mut m = Machine {
            pc: 0,
            gpr: [0; 32],
            fpr: [0; 32],
            fcsr: 0,
            mem: Memory::new(),
            cost: CostModel::default(),
            icount: 0,
            cycles: 0,
            stdout: Vec::new(),
            fuel: None,
            taken_transfers: 0,
            trap_redirects: std::collections::BTreeMap::new(),
            redirect_faults_injected: 0,
            redirect_drop_nth: None,
            redirect_resolutions: 0,
            brk: 0x6000_0000,
            code_base: 0,
            code_end: 0,
            icache: Vec::new(),
        };
        m.mem.map(STACK_TOP - STACK_EAGER, STACK_EAGER);
        m.gpr[2] = STACK_TOP - 64; // sp, with a little headroom
        m
    }

    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        match r.class() {
            rvdyn_isa::RegClass::Gpr => {
                if r.is_zero() {
                    0
                } else {
                    self.gpr[r.num() as usize]
                }
            }
            rvdyn_isa::RegClass::Fpr => self.fpr[r.num() as usize],
        }
    }

    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        match r.class() {
            rvdyn_isa::RegClass::Gpr => {
                if !r.is_zero() {
                    self.gpr[r.num() as usize] = v;
                }
            }
            rvdyn_isa::RegClass::Fpr => self.fpr[r.num() as usize] = v,
        }
    }

    /// Register the executable address range for the decoded-instruction
    /// cache. Writes into the range invalidate affected entries
    /// (self-modifying code / dynamic instrumentation work correctly).
    pub fn set_code_region(&mut self, base: u64, len: u64) {
        self.code_base = base;
        self.code_end = base + len;
        self.icache = vec![None; (len / 2 + 2) as usize];
    }

    /// Extend the code region if `addr..addr+len` lies outside it.
    pub fn ensure_code_region(&mut self, addr: u64, len: u64) {
        if self.code_base == self.code_end {
            self.set_code_region(addr, len);
            return;
        }
        let nb = self.code_base.min(addr);
        let ne = self.code_end.max(addr + len);
        if nb != self.code_base || ne != self.code_end {
            self.code_base = nb;
            self.code_end = ne;
            self.icache = vec![None; ((ne - nb) / 2 + 2) as usize];
        }
    }

    /// Write memory through the debug interface: updates bytes *and*
    /// invalidates any cached decodes covering them (required for
    /// breakpoint insertion, §3.2.6).
    pub fn write_mem(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.write_bytes(addr, bytes);
        self.invalidate(addr, bytes.len() as u64);
    }

    /// Read memory through the debug interface.
    pub fn read_mem(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        self.mem.read_bytes(addr, len)
    }

    /// Arm a one-shot fault: the `nth` (0-based) trap-redirect resolution
    /// is dropped, surfacing the `ebreak` to the controller as if its
    /// trap-table entry were missing. Used by the `FaultPlan` debug-side
    /// fault-injection hook to make the `RedirectMiss` recovery path
    /// reachable from tests without test-only code in the resolver.
    pub fn inject_redirect_drop(&mut self, nth: u64) {
        self.redirect_drop_nth = Some(nth);
    }

    fn invalidate(&mut self, addr: u64, len: u64) {
        if addr + len <= self.code_base || addr >= self.code_end {
            return;
        }
        // An instruction starting up to 2 bytes before `addr` may cover it.
        let start = addr.saturating_sub(2).max(self.code_base);
        let end = (addr + len).min(self.code_end);
        let mut a = start;
        while a < end {
            let idx = ((a - self.code_base) / 2) as usize;
            if idx < self.icache.len() {
                self.icache[idx] = None;
            }
            a += 2;
        }
    }

    #[inline]
    fn fetch(&mut self, pc: u64) -> Result<Instruction, StopReason> {
        if pc >= self.code_base && pc < self.code_end && pc & 1 == 0 {
            let idx = ((pc - self.code_base) / 2) as usize;
            if let Some(i) = self.icache[idx] {
                return Ok(i);
            }
        }
        let bytes = self
            .mem
            .read_bytes(pc, 4)
            .or_else(|_| self.mem.read_bytes(pc, 2))
            .map_err(|_| StopReason::FetchFault { pc })?;
        let inst = decode(&bytes, pc).map_err(|e| match e {
            DecodeError::Truncated { .. } => StopReason::FetchFault { pc },
            _ => StopReason::IllegalInstruction(pc),
        })?;
        if pc >= self.code_base && pc < self.code_end && pc & 1 == 0 {
            let idx = ((pc - self.code_base) / 2) as usize;
            self.icache[idx] = Some(inst);
        }
        Ok(inst)
    }

    /// Execute instructions until something stops the machine.
    pub fn run(&mut self) -> StopReason {
        loop {
            if let Some(r) = self.step() {
                return r;
            }
        }
    }

    /// Execute one instruction. `None` means "keep going".
    #[inline]
    pub fn step(&mut self) -> Option<StopReason> {
        if let Some(fuel) = self.fuel {
            if self.icount >= fuel {
                return Some(StopReason::FuelExhausted);
            }
        }
        let pc = self.pc;
        let inst = match self.fetch(pc) {
            Ok(i) => i,
            Err(r) => return Some(r),
        };
        match self.exec(&inst) {
            Ok(Effect::Next) => {
                self.pc = pc.wrapping_add(inst.size as u64);
                self.retire(&inst, false);
                None
            }
            Ok(Effect::Jump(t)) => {
                self.pc = t;
                self.taken_transfers += 1;
                self.retire(&inst, true);
                None
            }
            Ok(Effect::Stop(r)) => {
                if let StopReason::Break(at) = r {
                    if let Some(&t) = self.trap_redirects.get(&at) {
                        let n = self.redirect_resolutions;
                        self.redirect_resolutions += 1;
                        if self.redirect_drop_nth == Some(n) {
                            // Injected fault: drop this resolution so the
                            // Break surfaces exactly as a missing redirect
                            // would (the mutator's RedirectMiss path).
                            self.redirect_drop_nth = None;
                            self.redirect_faults_injected += 1;
                        } else {
                            // Trap-table springboard: redirect, keep going.
                            self.pc = t;
                            self.taken_transfers += 1;
                            self.icount += 1;
                            self.cycles += self.cost.trap_redirect;
                            return None;
                        }
                    }
                }
                if let StopReason::Exited(_) = r {
                    self.retire(&inst, false);
                }
                Some(r)
            }
            Err(f) => {
                // Demand-grow the stack: accesses within the stack region
                // map fresh zero pages and retry (what the kernel's stack
                // VMA does for a real process).
                if f.addr >= STACK_TOP - STACK_SIZE && f.addr < STACK_TOP {
                    self.mem.map(f.addr & !0xFFF, 0x1000);
                    return self.step();
                }
                Some(StopReason::MemFault {
                    pc,
                    addr: f.addr,
                    write: f.write,
                })
            }
        }
    }

    #[inline]
    fn retire(&mut self, inst: &Instruction, taken: bool) {
        self.icount += 1;
        self.cycles += self.cost.cycles_for(inst, taken);
    }

    /// Modelled nanoseconds since start (what `clock_gettime` returns).
    pub fn now_ns(&self) -> u64 {
        self.cost.nanos(self.cycles)
    }

    /// Modelled seconds since start.
    pub fn now_seconds(&self) -> f64 {
        self.cost.seconds(self.cycles)
    }

    // ---- execution ----

    #[inline]
    #[allow(clippy::manual_checked_ops)] // spec-mandated div-by-zero results
    fn exec(&mut self, i: &Instruction) -> Result<Effect, MemFault> {
        use Op::*;
        let rd = i.rd.unwrap_or(Reg::X0);
        let rs1 = || self.get(i.rs1.unwrap_or(Reg::X0));
        let rs2 = || self.get(i.rs2.unwrap_or(Reg::X0));
        let imm = i.imm;
        macro_rules! wr {
            ($v:expr) => {{
                let v = $v;
                self.set(rd, v);
                Ok(Effect::Next)
            }};
        }
        let sw = |v: u64| v as i32 as i64 as u64;

        match i.op {
            Lui => wr!(imm as u64),
            Auipc => wr!(i.address.wrapping_add(imm as u64)),
            Addi => wr!(rs1().wrapping_add(imm as u64)),
            Slti => wr!(((rs1() as i64) < imm) as u64),
            Sltiu => wr!((rs1() < imm as u64) as u64),
            Xori => wr!(rs1() ^ imm as u64),
            Ori => wr!(rs1() | imm as u64),
            Andi => wr!(rs1() & imm as u64),
            Slli => wr!(rs1().wrapping_shl(imm as u32)),
            Srli => wr!(rs1().wrapping_shr(imm as u32)),
            Srai => wr!(((rs1() as i64) >> (imm as u32)) as u64),
            Addiw => wr!(sw(rs1().wrapping_add(imm as u64))),
            Slliw => wr!(sw((rs1() as u32).wrapping_shl(imm as u32) as u64)),
            Srliw => wr!(sw(((rs1() as u32) >> (imm as u32)) as u64)),
            Sraiw => wr!(sw((((rs1() as i32) >> (imm as u32)) as u32) as u64)),
            Add => wr!(rs1().wrapping_add(rs2())),
            Sub => wr!(rs1().wrapping_sub(rs2())),
            Sll => wr!(rs1().wrapping_shl((rs2() & 63) as u32)),
            Slt => wr!(((rs1() as i64) < (rs2() as i64)) as u64),
            Sltu => wr!((rs1() < rs2()) as u64),
            Xor => wr!(rs1() ^ rs2()),
            Srl => wr!(rs1().wrapping_shr((rs2() & 63) as u32)),
            Sra => wr!(((rs1() as i64) >> ((rs2() & 63) as u32)) as u64),
            Or => wr!(rs1() | rs2()),
            And => wr!(rs1() & rs2()),
            Addw => wr!(sw(rs1().wrapping_add(rs2()))),
            Subw => wr!(sw(rs1().wrapping_sub(rs2()))),
            Sllw => wr!(sw(((rs1() as u32) << (rs2() & 31)) as u64)),
            Srlw => wr!(sw(((rs1() as u32) >> (rs2() & 31)) as u64)),
            Sraw => wr!(sw((((rs1() as i32) >> (rs2() & 31)) as u32) as u64)),
            Mul => wr!(rs1().wrapping_mul(rs2())),
            Mulh => {
                wr!((((rs1() as i64 as i128) * (rs2() as i64 as i128)) >> 64) as u64)
            }
            Mulhsu => {
                wr!((((rs1() as i64 as i128) * (rs2() as u128 as i128)) >> 64) as u64)
            }
            Mulhu => wr!((((rs1() as u128) * (rs2() as u128)) >> 64) as u64),
            Div => {
                let (a, b) = (rs1() as i64, rs2() as i64);
                wr!(if b == 0 {
                    u64::MAX
                } else if a == i64::MIN && b == -1 {
                    a as u64
                } else {
                    (a / b) as u64
                })
            }
            Divu => {
                let (a, b) = (rs1(), rs2());
                wr!(if b == 0 { u64::MAX } else { a / b })
            }
            Rem => {
                let (a, b) = (rs1() as i64, rs2() as i64);
                wr!(if b == 0 {
                    a as u64
                } else if a == i64::MIN && b == -1 {
                    0
                } else {
                    (a % b) as u64
                })
            }
            Remu => {
                let (a, b) = (rs1(), rs2());
                wr!(if b == 0 { a } else { a % b })
            }
            Mulw => wr!(sw(rs1().wrapping_mul(rs2()))),
            Divw => {
                let (a, b) = (rs1() as i32, rs2() as i32);
                wr!(if b == 0 {
                    u64::MAX
                } else if a == i32::MIN && b == -1 {
                    a as i64 as u64
                } else {
                    (a / b) as i64 as u64
                })
            }
            Divuw => {
                let (a, b) = (rs1() as u32, rs2() as u32);
                wr!(if b == 0 { u64::MAX } else { sw((a / b) as u64) })
            }
            Remw => {
                let (a, b) = (rs1() as i32, rs2() as i32);
                wr!(if b == 0 {
                    a as i64 as u64
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    (a % b) as i64 as u64
                })
            }
            Remuw => {
                let (a, b) = (rs1() as u32, rs2() as u32);
                wr!(if b == 0 {
                    a as i64 as u64
                } else {
                    sw((a % b) as u64)
                })
            }
            Jal => {
                let target = i.address.wrapping_add(imm as u64);
                self.set(rd, i.next_pc());
                Ok(Effect::Jump(target))
            }
            Jalr => {
                let target = rs1().wrapping_add(imm as u64) & !1;
                self.set(rd, i.next_pc());
                Ok(Effect::Jump(target))
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let (a, b) = (rs1(), rs2());
                let take = match i.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i64) < (b as i64),
                    Bge => (a as i64) >= (b as i64),
                    Bltu => a < b,
                    _ => a >= b,
                };
                if take {
                    Ok(Effect::Jump(i.address.wrapping_add(imm as u64)))
                } else {
                    Ok(Effect::Next)
                }
            }
            Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu => {
                let addr = rs1().wrapping_add(imm as u64);
                let (size, sx) = match i.op {
                    Lb => (1, true),
                    Lh => (2, true),
                    Lw => (4, true),
                    Ld => (8, false),
                    Lbu => (1, false),
                    Lhu => (2, false),
                    _ => (4, false),
                };
                let raw = self.mem.load(addr, size)?;
                let v = if sx {
                    let shift = 64 - size as u32 * 8;
                    (((raw << shift) as i64) >> shift) as u64
                } else {
                    raw
                };
                wr!(v)
            }
            Sb | Sh | Sw | Sd => {
                let addr = rs1().wrapping_add(imm as u64);
                let size = match i.op {
                    Sb => 1,
                    Sh => 2,
                    Sw => 4,
                    _ => 8,
                };
                let val = rs2();
                self.mem.store(addr, size, val)?;
                self.invalidate(addr, size as u64);
                Ok(Effect::Next)
            }
            Flw => {
                let addr = rs1().wrapping_add(imm as u64);
                let raw = self.mem.load(addr, 4)?;
                self.set(rd, nan_box(raw as u32));
                Ok(Effect::Next)
            }
            Fld => {
                let addr = rs1().wrapping_add(imm as u64);
                let raw = self.mem.load(addr, 8)?;
                self.set(rd, raw);
                Ok(Effect::Next)
            }
            Fsw => {
                let addr = rs1().wrapping_add(imm as u64);
                let v = self.get(i.rs2.unwrap()) as u32;
                self.mem.store(addr, 4, v as u64)?;
                Ok(Effect::Next)
            }
            Fsd => {
                let addr = rs1().wrapping_add(imm as u64);
                let v = self.get(i.rs2.unwrap());
                self.mem.store(addr, 8, v)?;
                Ok(Effect::Next)
            }
            Fence | FenceI => Ok(Effect::Next),
            Ecall => self.syscall(),
            Ebreak => Ok(Effect::Stop(StopReason::Break(i.address))),
            Csrrw | Csrrs | Csrrc | Csrrwi | Csrrsi | Csrrci => {
                let csr = i.csr.unwrap_or(0);
                let old = self.read_csr(csr);
                let src = match i.op {
                    Csrrw | Csrrs | Csrrc => rs1(),
                    _ => imm as u64,
                };
                let new = match i.op {
                    Csrrw | Csrrwi => src,
                    Csrrs | Csrrsi => old | src,
                    _ => old & !src,
                };
                // Writes only apply when the source is live per spec
                // subtleties; we apply unconditionally except to RO CSRs.
                self.write_csr(csr, new);
                wr!(old)
            }
            op if op.is_atomic() => self.exec_amo(i),
            _ => self.exec_fp(i),
        }
    }

    fn exec_amo(&mut self, i: &Instruction) -> Result<Effect, MemFault> {
        use Op::*;
        let addr = self.get(i.rs1.unwrap());
        let rd = i.rd.unwrap_or(Reg::X0);
        let size: u8 = if i.op.mnemonic().ends_with(".w") {
            4
        } else {
            8
        };
        match i.op {
            LrW | LrD => {
                let raw = self.mem.load(addr, size)?;
                let v = if size == 4 {
                    raw as u32 as i32 as i64 as u64
                } else {
                    raw
                };
                self.set(rd, v);
            }
            ScW | ScD => {
                // Single-threaded: always succeeds.
                let v = self.get(i.rs2.unwrap());
                self.mem.store(addr, size, v)?;
                self.set(rd, 0);
            }
            _ => {
                let raw = self.mem.load(addr, size)?;
                let old = if size == 4 {
                    raw as u32 as i32 as i64 as u64
                } else {
                    raw
                };
                let src = self.get(i.rs2.unwrap());
                let new = match i.op {
                    AmoSwapW | AmoSwapD => src,
                    AmoAddW | AmoAddD => old.wrapping_add(src),
                    AmoXorW | AmoXorD => old ^ src,
                    AmoAndW | AmoAndD => old & src,
                    AmoOrW | AmoOrD => old | src,
                    AmoMinW => ((old as i32).min(src as i32)) as u64,
                    AmoMaxW => ((old as i32).max(src as i32)) as u64,
                    AmoMinuW => ((old as u32).min(src as u32)) as u64,
                    AmoMaxuW => ((old as u32).max(src as u32)) as u64,
                    AmoMinD => ((old as i64).min(src as i64)) as u64,
                    AmoMaxD => ((old as i64).max(src as i64)) as u64,
                    AmoMinuD => old.min(src),
                    AmoMaxuD => old.max(src),
                    _ => unreachable!(),
                };
                self.mem.store(addr, size, new)?;
                self.set(rd, old);
            }
        }
        Ok(Effect::Next)
    }

    // ---- floating point ----

    #[inline]
    fn f64v(&self, r: Reg) -> f64 {
        f64::from_bits(self.get(r))
    }

    #[inline]
    fn f32v(&self, r: Reg) -> f32 {
        let bits = self.get(r);
        // NaN-boxing check: a valid f32 has all upper 32 bits set.
        if bits >> 32 == 0xFFFF_FFFF {
            f32::from_bits(bits as u32)
        } else {
            f32::NAN
        }
    }

    #[inline]
    fn set_f64(&mut self, r: Reg, v: f64) {
        self.set(r, v.to_bits());
    }

    #[inline]
    fn set_f32(&mut self, r: Reg, v: f32) {
        self.set(r, nan_box(v.to_bits()));
    }

    fn exec_fp(&mut self, i: &Instruction) -> Result<Effect, MemFault> {
        use Op::*;
        let rd = i.rd.unwrap_or(Reg::X0);
        let a64 = || self.f64v(i.rs1.unwrap());
        let b64 = || self.f64v(i.rs2.unwrap());
        let a32 = || self.f32v(i.rs1.unwrap());
        let b32 = || self.f32v(i.rs2.unwrap());
        macro_rules! wrd {
            ($v:expr) => {{
                let v = $v;
                self.set_f64(rd, v);
                Ok(Effect::Next)
            }};
        }
        macro_rules! wrs {
            ($v:expr) => {{
                let v = $v;
                self.set_f32(rd, v);
                Ok(Effect::Next)
            }};
        }
        macro_rules! wrx {
            ($v:expr) => {{
                let v = $v;
                self.set(rd, v);
                Ok(Effect::Next)
            }};
        }
        let rm = if i.rm == 7 {
            ((self.fcsr >> 5) & 7) as u8
        } else {
            i.rm
        };

        match i.op {
            FaddD => wrd!(a64() + b64()),
            FsubD => wrd!(a64() - b64()),
            FmulD => wrd!(a64() * b64()),
            FdivD => wrd!(a64() / b64()),
            FsqrtD => wrd!(a64().sqrt()),
            FaddS => wrs!(a32() + b32()),
            FsubS => wrs!(a32() - b32()),
            FmulS => wrs!(a32() * b32()),
            FdivS => wrs!(a32() / b32()),
            FsqrtS => wrs!(a32().sqrt()),
            FmaddD | FmsubD | FnmsubD | FnmaddD => {
                let (a, b, c) = (a64(), b64(), self.f64v(i.rs3.unwrap()));
                wrd!(match i.op {
                    FmaddD => a.mul_add(b, c),
                    FmsubD => a.mul_add(b, -c),
                    FnmsubD => (-a).mul_add(b, c),
                    _ => (-a).mul_add(b, -c),
                })
            }
            FmaddS | FmsubS | FnmsubS | FnmaddS => {
                let (a, b, c) = (a32(), b32(), self.f32v(i.rs3.unwrap()));
                wrs!(match i.op {
                    FmaddS => a.mul_add(b, c),
                    FmsubS => a.mul_add(b, -c),
                    FnmsubS => (-a).mul_add(b, c),
                    _ => (-a).mul_add(b, -c),
                })
            }
            FsgnjD | FsgnjnD | FsgnjxD => {
                let (a, b) = (self.get(i.rs1.unwrap()), self.get(i.rs2.unwrap()));
                let sign = match i.op {
                    FsgnjD => b & (1 << 63),
                    FsgnjnD => !b & (1 << 63),
                    _ => (a ^ b) & (1 << 63),
                };
                wrx!((a & !(1u64 << 63)) | sign)
            }
            FsgnjS | FsgnjnS | FsgnjxS => {
                let a = self.f32v(i.rs1.unwrap()).to_bits();
                let b = self.f32v(i.rs2.unwrap()).to_bits();
                let sign = match i.op {
                    FsgnjS => b & (1 << 31),
                    FsgnjnS => !b & (1 << 31),
                    _ => (a ^ b) & (1 << 31),
                };
                wrx!(nan_box((a & !(1u32 << 31)) | sign))
            }
            FminD => wrd!(fmin64(a64(), b64())),
            FmaxD => wrd!(fmax64(a64(), b64())),
            FminS => wrs!(fmin32(a32(), b32())),
            FmaxS => wrs!(fmax32(a32(), b32())),
            FeqD => wrx!((a64() == b64()) as u64),
            FltD => wrx!((a64() < b64()) as u64),
            FleD => wrx!((a64() <= b64()) as u64),
            FeqS => wrx!((a32() == b32()) as u64),
            FltS => wrx!((a32() < b32()) as u64),
            FleS => wrx!((a32() <= b32()) as u64),
            FclassD => wrx!(fclass64(a64())),
            FclassS => wrx!(fclass32(a32())),
            FcvtWD => wrx!(f2i(a64(), rm, i32::MIN as i64, i32::MAX as i64) as i32 as i64 as u64),
            FcvtWuD => wrx!(f2u(a64(), rm, u32::MAX as u64) as u32 as i32 as i64 as u64),
            FcvtLD => wrx!(f2i(a64(), rm, i64::MIN, i64::MAX) as u64),
            FcvtLuD => wrx!(f2u(a64(), rm, u64::MAX)),
            FcvtWS => {
                wrx!(f2i(a32() as f64, rm, i32::MIN as i64, i32::MAX as i64) as i32 as i64 as u64)
            }
            FcvtWuS => wrx!(f2u(a32() as f64, rm, u32::MAX as u64) as u32 as i32 as i64 as u64),
            FcvtLS => wrx!(f2i(a32() as f64, rm, i64::MIN, i64::MAX) as u64),
            FcvtLuS => wrx!(f2u(a32() as f64, rm, u64::MAX)),
            FcvtDW => wrd!(self.get(i.rs1.unwrap()) as i32 as f64),
            FcvtDWu => wrd!(self.get(i.rs1.unwrap()) as u32 as f64),
            FcvtDL => wrd!(self.get(i.rs1.unwrap()) as i64 as f64),
            FcvtDLu => wrd!(self.get(i.rs1.unwrap()) as f64),
            FcvtSW => wrs!(self.get(i.rs1.unwrap()) as i32 as f32),
            FcvtSWu => wrs!(self.get(i.rs1.unwrap()) as u32 as f32),
            FcvtSL => wrs!(self.get(i.rs1.unwrap()) as i64 as f32),
            FcvtSLu => wrs!(self.get(i.rs1.unwrap()) as f32),
            FcvtSD => wrs!(a64() as f32),
            FcvtDS => wrd!(a32() as f64),
            FmvXD => wrx!(self.get(i.rs1.unwrap())),
            FmvDX => wrx!(self.get(i.rs1.unwrap())),
            FmvXW => {
                // Low 32 bits of the FPR, sign-extended.
                wrx!(self.get(i.rs1.unwrap()) as u32 as i32 as i64 as u64)
            }
            FmvWX => wrx!(nan_box(self.get(i.rs1.unwrap()) as u32)),
            _ => {
                // Every op is covered above; reaching here is a bug.
                unreachable!("unhandled op {:?}", i.op)
            }
        }
    }

    // ---- CSRs ----

    fn read_csr(&self, csr: u16) -> u64 {
        match csr {
            0x001 => self.fcsr & 0x1F,       // fflags
            0x002 => (self.fcsr >> 5) & 0x7, // frm
            0x003 => self.fcsr,              // fcsr
            0xC00 => self.cycles,            // cycle
            0xC01 => self.now_ns() / 10,     // time (10ns ticks)
            0xC02 => self.icount,            // instret
            _ => 0,
        }
    }

    fn write_csr(&mut self, csr: u16, v: u64) {
        match csr {
            0x001 => self.fcsr = (self.fcsr & !0x1F) | (v & 0x1F),
            0x002 => self.fcsr = (self.fcsr & !0xE0) | ((v & 0x7) << 5),
            0x003 => self.fcsr = v & 0xFF,
            _ => {} // read-only / unimplemented: ignore
        }
    }

    // ---- syscalls ----

    fn syscall(&mut self) -> Result<Effect, MemFault> {
        let nr = self.gpr[17]; // a7
        let a0 = self.gpr[10];
        let a1 = self.gpr[11];
        let a2 = self.gpr[12];
        match nr {
            EXIT_SYSCALL => Ok(Effect::Stop(StopReason::Exited(a0 as i64))),
            SYS_WRITE => {
                if a0 == 1 || a0 == 2 {
                    let data = self.mem.read_bytes(a1, a2 as usize)?;
                    self.stdout.extend_from_slice(&data);
                    self.gpr[10] = a2;
                } else {
                    self.gpr[10] = (-9i64) as u64; // EBADF
                }
                Ok(Effect::Next)
            }
            SYS_CLOCK_GETTIME => {
                let ns = self.now_ns();
                self.mem.store(a1, 8, ns / 1_000_000_000)?;
                self.mem.store(a1 + 8, 8, ns % 1_000_000_000)?;
                self.gpr[10] = 0;
                Ok(Effect::Next)
            }
            SYS_BRK => {
                if a0 != 0 {
                    if a0 > self.brk {
                        self.mem.map(self.brk, a0 - self.brk);
                    }
                    self.brk = a0;
                }
                self.gpr[10] = self.brk;
                Ok(Effect::Next)
            }
            _ => {
                self.gpr[10] = (-38i64) as u64; // ENOSYS
                Ok(Effect::Next)
            }
        }
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

enum Effect {
    Next,
    Jump(u64),
    Stop(StopReason),
}

#[inline]
fn nan_box(v: u32) -> u64 {
    0xFFFF_FFFF_0000_0000 | v as u64
}

const CANONICAL_NAN64: f64 = f64::from_bits(0x7FF8_0000_0000_0000);
const CANONICAL_NAN32: f32 = f32::from_bits(0x7FC0_0000);

/// `fclass` result bits (RISC-V spec table): one-hot classification.
fn fclass64(v: f64) -> u64 {
    let bits = v.to_bits();
    let sign = bits >> 63 != 0;
    if v.is_nan() {
        // Signaling NaN has the top mantissa bit clear.
        if bits & (1 << 51) == 0 {
            1 << 8
        } else {
            1 << 9
        }
    } else if v.is_infinite() {
        if sign {
            1 << 0
        } else {
            1 << 7
        }
    } else if v == 0.0 {
        if sign {
            1 << 3
        } else {
            1 << 4
        }
    } else if v.is_subnormal() {
        if sign {
            1 << 2
        } else {
            1 << 5
        }
    } else if sign {
        1 << 1
    } else {
        1 << 6
    }
}

fn fclass32(v: f32) -> u64 {
    let bits = v.to_bits();
    let sign = bits >> 31 != 0;
    if v.is_nan() {
        if bits & (1 << 22) == 0 {
            1 << 8
        } else {
            1 << 9
        }
    } else if v.is_infinite() {
        if sign {
            1 << 0
        } else {
            1 << 7
        }
    } else if v == 0.0 {
        if sign {
            1 << 3
        } else {
            1 << 4
        }
    } else if v.is_subnormal() {
        if sign {
            1 << 2
        } else {
            1 << 5
        }
    } else if sign {
        1 << 1
    } else {
        1 << 6
    }
}

fn fmin64(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN64,
        (true, false) => b,
        (false, true) => a,
        _ => {
            if a == 0.0 && b == 0.0 {
                // fmin(-0, +0) = -0
                if a.is_sign_negative() {
                    a
                } else {
                    b
                }
            } else {
                a.min(b)
            }
        }
    }
}

fn fmax64(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN64,
        (true, false) => b,
        (false, true) => a,
        _ => {
            if a == 0.0 && b == 0.0 {
                if a.is_sign_positive() {
                    a
                } else {
                    b
                }
            } else {
                a.max(b)
            }
        }
    }
}

fn fmin32(a: f32, b: f32) -> f32 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN32,
        (true, false) => b,
        (false, true) => a,
        _ => {
            if a == 0.0 && b == 0.0 {
                if a.is_sign_negative() {
                    a
                } else {
                    b
                }
            } else {
                a.min(b)
            }
        }
    }
}

fn fmax32(a: f32, b: f32) -> f32 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN32,
        (true, false) => b,
        (false, true) => a,
        _ => {
            if a == 0.0 && b == 0.0 {
                if a.is_sign_positive() {
                    a
                } else {
                    b
                }
            } else {
                a.max(b)
            }
        }
    }
}

/// Round per the RISC-V rounding mode, then convert to a signed integer
/// with spec saturation (NaN → max).
fn f2i(v: f64, rm: u8, min: i64, max: i64) -> i64 {
    if v.is_nan() {
        return max;
    }
    let r = round_rm(v, rm);
    if r < min as f64 {
        min
    } else if r > max as f64 {
        max
    } else {
        r as i64
    }
}

/// As [`f2i`] but unsigned.
fn f2u(v: f64, rm: u8, max: u64) -> u64 {
    if v.is_nan() {
        return max;
    }
    let r = round_rm(v, rm);
    if r < 0.0 {
        0
    } else if r > max as f64 {
        max
    } else {
        r as u64
    }
}

fn round_rm(v: f64, rm: u8) -> f64 {
    match rm {
        0 | 4 => {
            // RNE (and RMM approximated): ties-to-even.
            let r = v.round();
            if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                r - v.signum()
            } else {
                r
            }
        }
        1 => v.trunc(), // RTZ
        2 => v.floor(), // RDN
        3 => v.ceil(),  // RUP
        _ => v.trunc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_isa::build;
    use rvdyn_isa::encode::encode32;

    fn machine_with(code: &[u8], base: u64) -> Machine {
        let mut m = Machine::new();
        m.mem.write_bytes(base, code);
        m.set_code_region(base, code.len() as u64);
        m.pc = base;
        m
    }

    fn asm(insts: &[Instruction]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in insts {
            out.extend_from_slice(&encode32(i).unwrap().to_le_bytes());
        }
        out
    }

    #[test]
    fn exit_syscall_stops() {
        let code = asm(&[
            build::addi(Reg::x(10), Reg::X0, 42),
            build::addi(Reg::x(17), Reg::X0, EXIT_SYSCALL as i64),
            build::ecall(),
        ]);
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(m.run(), StopReason::Exited(42));
        assert_eq!(m.icount, 3);
    }

    #[test]
    fn write_collects_stdout() {
        let mut m = Machine::new();
        m.mem.write_bytes(0x2000, b"hello");
        let code = asm(&[
            build::addi(Reg::x(10), Reg::X0, 1),
            build::lui(Reg::x(11), 0x2000),
            build::addi(Reg::x(12), Reg::X0, 5),
            build::addi(Reg::x(17), Reg::X0, 64),
            build::ecall(),
            build::addi(Reg::x(17), Reg::X0, 93),
            build::ecall(),
        ]);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        // write() returns the byte count in a0, which exit() then uses.
        assert_eq!(m.run(), StopReason::Exited(5));
        assert_eq!(m.stdout, b"hello");
    }

    #[test]
    fn ebreak_reports_pc_unadvanced() {
        let code = asm(&[build::nop(), build::ebreak()]);
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(m.run(), StopReason::Break(0x1004));
        assert_eq!(m.pc, 0x1004, "pc must point at the ebreak");
    }

    #[test]
    fn illegal_instruction_detected() {
        let mut m = machine_with(&[0, 0, 0, 0], 0x1000);
        assert_eq!(m.run(), StopReason::IllegalInstruction(0x1000));
    }

    #[test]
    fn mem_fault_reported() {
        let code = asm(&[build::ld(Reg::x(10), Reg::X0, 0x10)]);
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(
            m.run(),
            StopReason::MemFault {
                pc: 0x1000,
                addr: 0x10,
                write: false
            }
        );
    }

    #[test]
    fn fuel_limit() {
        // Infinite loop: jal x0, 0
        let code = asm(&[build::jal(Reg::X0, 0)]);
        let mut m = machine_with(&code, 0x1000);
        m.fuel = Some(1000);
        assert_eq!(m.run(), StopReason::FuelExhausted);
        assert_eq!(m.icount, 1000);
    }

    #[test]
    fn fp_double_arithmetic() {
        let mut m = Machine::new();
        m.set_f64(Reg::f(1), 2.5);
        m.set_f64(Reg::f(2), 4.0);
        let code = asm(&[
            build::f_type(Op::FmulD, Reg::f(0), Reg::f(1), Reg::f(2)),
            build::f_type(Op::FaddD, Reg::f(3), Reg::f(0), Reg::f(2)),
            build::fma(Op::FmaddD, Reg::f(4), Reg::f(1), Reg::f(2), Reg::f(3)),
        ]);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        for _ in 0..3 {
            assert!(m.step().is_none());
        }
        assert_eq!(m.f64v(Reg::f(0)), 10.0);
        assert_eq!(m.f64v(Reg::f(3)), 14.0);
        assert_eq!(m.f64v(Reg::f(4)), 2.5f64.mul_add(4.0, 14.0));
    }

    #[test]
    fn fp_conversions_saturate() {
        let mut m = Machine::new();
        m.set_f64(Reg::f(0), f64::NAN);
        let code = asm(&[build::f_unary(Op::FcvtWD, Reg::x(10), Reg::f(0))]);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        m.step();
        assert_eq!(m.gpr[10] as i64, i32::MAX as i64);
    }

    #[test]
    fn fmin_fmax_nan_and_zero_rules() {
        assert_eq!(fmin64(-0.0, 0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(fmax64(-0.0, 0.0).to_bits(), (0.0f64).to_bits());
        assert_eq!(fmin64(f64::NAN, 3.0), 3.0);
        assert!(fmin64(f64::NAN, f64::NAN).is_nan());
    }

    #[test]
    fn nan_boxing_flw() {
        let mut m = Machine::new();
        m.mem.write_bytes(0x2000, &1.5f32.to_bits().to_le_bytes());
        let code = asm(&[
            build::lui(Reg::x(5), 0x2000),
            build::i_type(Op::Flw, Reg::f(0), Reg::x(5), 0),
        ]);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        for _ in 0..2 {
            m.step();
        }
        assert_eq!(m.f32v(Reg::f(0)), 1.5);
        assert_eq!(m.fpr[0] >> 32, 0xFFFF_FFFF);
    }

    #[test]
    fn clock_gettime_reflects_cycle_model() {
        let mut m = Machine::new();
        // Burn some cycles, then clock_gettime(1, 0x3000).
        let mut insts = vec![];
        for _ in 0..100 {
            insts.push(build::addi(Reg::x(5), Reg::x(5), 1));
        }
        insts.push(build::addi(Reg::x(10), Reg::X0, 1));
        insts.push(build::lui(Reg::x(11), 0x3000));
        insts.push(build::i_type(Op::Srli, Reg::x(11), Reg::x(11), 0)); // keep addr
        insts.push(build::addi(Reg::x(17), Reg::X0, 113));
        insts.push(build::ecall());
        insts.push(build::addi(Reg::x(17), Reg::X0, 93));
        insts.push(build::ecall());
        let code = asm(&insts);
        m.mem.map(0x3000, 16);
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        m.run();
        let ns = m.mem.load(0x3008, 8).unwrap();
        // ~104 cheap instructions at 1.4 GHz ≈ 74 ns (the in-flight ecall
        // has not retired when the timestamp is taken).
        assert!(ns > 50 && ns < 2000, "modelled ns = {ns}");
    }

    #[test]
    fn code_writes_invalidate_icache() {
        // Execute a nop twice; between runs, overwrite it with addi x5+=7.
        let code = asm(&[build::nop(), build::ebreak()]);
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(m.run(), StopReason::Break(0x1004));
        // Patch the nop (already cached) via the debug interface.
        let patch = encode32(&build::addi(Reg::x(5), Reg::x(5), 7)).unwrap();
        m.write_mem(0x1000, &patch.to_le_bytes());
        m.pc = 0x1000;
        assert_eq!(m.run(), StopReason::Break(0x1004));
        assert_eq!(m.gpr[5], 7, "stale icache entry executed");
    }

    #[test]
    fn compressed_instructions_execute() {
        // c.addi x10, 3 ; c.mv x11, x10 ; ebreak
        let mut code = Vec::new();
        let ca = rvdyn_isa::encode::compress(&build::addi(Reg::x(10), Reg::x(10), 3)).unwrap();
        let cm = rvdyn_isa::encode::compress(&build::add(Reg::x(11), Reg::X0, Reg::x(10))).unwrap();
        code.extend_from_slice(&ca.to_le_bytes());
        code.extend_from_slice(&cm.to_le_bytes());
        code.extend_from_slice(&encode32(&build::ebreak()).unwrap().to_le_bytes());
        let mut m = machine_with(&code, 0x1000);
        assert_eq!(m.run(), StopReason::Break(0x1004));
        assert_eq!(m.gpr[10], 3);
        assert_eq!(m.gpr[11], 3);
    }

    #[test]
    fn csr_cycle_instret_readable() {
        let mut insts = vec![build::nop(); 5];
        let mut csr = build::i_type(Op::Csrrs, Reg::x(10), Reg::X0, 0);
        csr.csr = Some(0xC02); // instret
        csr.rs1 = Some(Reg::X0);
        insts.push(csr);
        insts.push(build::ebreak());
        let code = asm(&insts);
        let mut m = machine_with(&code, 0x1000);
        m.run();
        assert_eq!(m.gpr[10], 5);
    }
}

#[cfg(test)]
mod syscall_edge_tests {
    use super::*;
    use rvdyn_isa::build;
    use rvdyn_isa::encode::encode32;

    fn run_syscall(nr: i64, a0: u64, a1: u64, a2: u64) -> (Machine, StopReason) {
        let mut m = Machine::new();
        m.gpr[10] = a0;
        m.gpr[11] = a1;
        m.gpr[12] = a2;
        // a7 = nr via lui/addi-free path: materialise small values only.
        let insts = [
            build::addi(Reg::x(17), Reg::X0, nr),
            build::ecall(),
            build::ebreak(),
        ];
        let code: Vec<u8> = insts
            .iter()
            .flat_map(|i| encode32(i).unwrap().to_le_bytes())
            .collect();
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        let r = m.run();
        (m, r)
    }

    #[test]
    fn write_to_bad_fd_returns_ebadf() {
        let mut m = Machine::new();
        m.mem.map(0x3000, 16);
        let (m, r) = {
            let mut mm = m;
            mm.mem.write_bytes(0x3000, b"abc");
            let mut insts = vec![
                build::addi(Reg::x(10), Reg::X0, 7), // fd 7
                build::lui(Reg::x(11), 0x3000),
                build::addi(Reg::x(12), Reg::X0, 3),
                build::addi(Reg::x(17), Reg::X0, 64),
                build::ecall(),
                build::ebreak(),
            ];
            let code: Vec<u8> = insts
                .drain(..)
                .flat_map(|i| rvdyn_isa::encode::encode32(&i).unwrap().to_le_bytes())
                .collect();
            mm.mem.write_bytes(0x1000, &code);
            mm.set_code_region(0x1000, code.len() as u64);
            mm.pc = 0x1000;
            let r = mm.run();
            (mm, r)
        };
        assert!(matches!(r, StopReason::Break(_)));
        assert_eq!(m.gpr[10] as i64, -9, "EBADF");
        assert!(m.stdout.is_empty());
    }

    #[test]
    fn unknown_syscall_returns_enosys() {
        let (m, r) = run_syscall(999, 0, 0, 0);
        assert!(matches!(r, StopReason::Break(_)));
        assert_eq!(m.gpr[10] as i64, -38, "ENOSYS");
    }

    #[test]
    fn brk_grows_the_heap() {
        // brk(0) queries; brk(query + 0x2000) grows; memory then usable.
        let (m, r) = run_syscall(214, 0, 0, 0);
        assert!(matches!(r, StopReason::Break(_)));
        let cur = m.gpr[10];
        assert!(cur >= 0x6000_0000);
        let (mut m2, r2) = run_syscall(214, cur + 0x2000, 0, 0);
        assert!(matches!(r2, StopReason::Break(_)));
        assert_eq!(m2.gpr[10], cur + 0x2000);
        assert!(
            m2.mem.store(cur + 0x1000, 8, 42).is_ok(),
            "grown heap usable"
        );
    }

    #[test]
    fn stack_grows_on_demand() {
        // Touch memory 1 MiB below the initial sp: a fresh page must
        // appear (the demand-grow path), not a fault.
        let mut m = Machine::new();
        let sp = m.gpr[2];
        let insts = [
            build::lui(Reg::x(5), -(1 << 20) as i64 & !0xFFF),
            build::add(Reg::x(5), Reg::x(5), Reg::X2),
            build::sd(Reg::x(6), Reg::x(5), 0),
            build::ebreak(),
        ];
        let code: Vec<u8> = insts
            .iter()
            .flat_map(|i| rvdyn_isa::encode::encode32(i).unwrap().to_le_bytes())
            .collect();
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, code.len() as u64);
        m.pc = 0x1000;
        m.gpr[6] = 0x1234;
        assert!(matches!(m.run(), StopReason::Break(_)));
        let addr = sp.wrapping_sub(1 << 20) & !0xFFF_u64 | (sp & 0xFFF);
        let _ = addr;
        assert!(m.mem.is_mapped(sp - (1 << 20)), "stack page must be mapped");
    }
}
