//! The cycle cost model (DESIGN.md §5.4).
//!
//! The paper's numbers come from a 1.4 GHz SiFive P550, an in-order core.
//! This model charges per-instruction-class latencies in the spirit of
//! such a core; "seconds" are `cycles / freq_hz`. Absolute values are not
//! expected to match the paper's testbed — the *ratios* between the base
//! and instrumented runs (the table's overhead percentages) are the
//! reproduction target, and those depend only on the instruction mix.

use rvdyn_isa::{Extension, Instruction, Op};

/// Per-class cycle weights.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Core clock in Hz (P550: 1.4 GHz).
    pub freq_hz: u64,
    /// Integer ALU op (add/shift/logic, LUI/AUIPC, fences).
    pub int_alu: u64,
    /// Integer or FP load.
    pub load: u64,
    /// Integer or FP store.
    pub store: u64,
    /// Conditional branch that is taken (pipeline redirect).
    pub branch_taken: u64,
    /// Conditional branch that falls through.
    pub branch_not_taken: u64,
    /// Unconditional jump (`jal`/`jalr`).
    pub jump: u64,
    /// Integer multiply family.
    pub mul: u64,
    /// Integer divide/remainder family.
    pub div: u64,
    /// FP arithmetic other than divide/sqrt (incl. FMA, compares, moves).
    pub fp_alu: u64,
    /// FP divide and square root.
    pub fp_div: u64,
    /// Atomic memory operation (`lr`/`sc`/`amo*`).
    pub amo: u64,
    /// `ecall` service cost (kernel round trip).
    pub syscall: u64,
    /// Cost of a trap-table redirect (SIGTRAP round trip on hardware).
    pub trap_redirect: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            freq_hz: 1_400_000_000,
            int_alu: 1,
            load: 3,
            store: 1,
            branch_taken: 3,
            branch_not_taken: 1,
            jump: 2,
            mul: 3,
            div: 20,
            fp_alu: 4,
            fp_div: 28,
            amo: 5,
            syscall: 600,
            trap_redirect: 2000,
        }
    }
}

impl CostModel {
    /// Cycles charged for one dynamic instance of `inst`.
    /// `taken` applies to conditional branches only.
    #[inline]
    pub fn cycles_for(&self, inst: &Instruction, taken: bool) -> u64 {
        use Op::*;
        match inst.op {
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                if taken {
                    self.branch_taken
                } else {
                    self.branch_not_taken
                }
            }
            Jal | Jalr => self.jump,
            Mul | Mulh | Mulhsu | Mulhu | Mulw => self.mul,
            Div | Divu | Rem | Remu | Divw | Divuw | Remw | Remuw => self.div,
            FdivS | FdivD | FsqrtS | FsqrtD => self.fp_div,
            Ecall => self.syscall,
            op if op.is_atomic() => self.amo,
            op if op.is_load() => self.load,
            op if op.is_store() => self.store,
            op if matches!(op.extension(), Extension::F | Extension::D) => self.fp_alu,
            _ => self.int_alu,
        }
    }

    /// Convert a cycle count to modelled seconds.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }

    /// Convert a cycle count to modelled nanoseconds.
    pub fn nanos(&self, cycles: u64) -> u64 {
        ((cycles as u128) * 1_000_000_000u128 / self.freq_hz as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_isa::build;

    #[test]
    fn class_weights() {
        let m = CostModel::default();
        assert_eq!(
            m.cycles_for(
                &build::addi(rvdyn_isa::Reg::x(1), rvdyn_isa::Reg::x(1), 1),
                false
            ),
            1
        );
        assert_eq!(
            m.cycles_for(
                &build::ld(rvdyn_isa::Reg::x(1), rvdyn_isa::Reg::X2, 0),
                false
            ),
            3
        );
        let b = build::b_type(Op::Beq, rvdyn_isa::Reg::x(1), rvdyn_isa::Reg::x(2), 8);
        assert_eq!(m.cycles_for(&b, true), 3);
        assert_eq!(m.cycles_for(&b, false), 1);
        let fd = build::f_type(
            Op::FdivD,
            rvdyn_isa::Reg::f(0),
            rvdyn_isa::Reg::f(1),
            rvdyn_isa::Reg::f(2),
        );
        assert_eq!(m.cycles_for(&fd, false), 28);
    }

    #[test]
    fn time_conversion() {
        let m = CostModel::default();
        assert_eq!(m.nanos(1_400_000_000), 1_000_000_000);
        assert!((m.seconds(1_400_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(m.nanos(14), 10);
    }
}
