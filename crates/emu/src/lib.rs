//! # rvdyn-emu — RV64GC execution substrate
//!
//! The paper evaluates on a 1.4 GHz SiFive P550; this workspace has no
//! RISC-V hardware, so this crate provides the documented substitute
//! (DESIGN.md §2): a complete RV64GC emulator that
//!
//! * executes the ELF binaries produced by `rvdyn-asm`/PatchAPI (the full
//!   I, M, A, F, D, Zicsr-subset and C instruction sets);
//! * services the Linux syscalls the mutatees use (`write`, `exit`,
//!   `brk`, `clock_gettime` — the latter returning *modelled* time derived
//!   from the cycle model, so the mutatee's own elapsed-time measurement
//!   works exactly as it does on hardware);
//! * charges each instruction through a P550-flavoured in-order cost model
//!   ([`cost::CostModel`]) clocked at 1.4 GHz, making "seconds" a
//!   deterministic function of the executed instruction stream — the
//!   quantity the paper's wall-clock numbers estimate, minus the noise;
//! * exposes the **debug interface** ProcControlAPI builds on: memory and
//!   register access and `ebreak` trap reporting. Deliberately ptrace-like
//!   and deliberately *without* hardware single-step, reproducing the
//!   RISC-V ptrace limitation the paper reports (§3.2.6) — single-stepping
//!   must be emulated with breakpoints by ProcControlAPI.
//!
//! Execution has **two engines** behind one contract ([`EmuEngine`],
//! documented in `docs/EMULATOR.md`): the decode-dispatch
//! [interpreter](machine::Machine::step) and a decoded-basic-block
//! [translation cache](translate) with direct-branch chaining (the DBT
//! back end). They are bit-identical in architectural state, retired
//! counts, modelled cycles and trap pcs; the `RVDYN_EMU` environment
//! variable selects the default.

#![deny(missing_docs)]

pub mod cost;
mod exec;
pub mod loader;
pub mod machine;
pub mod memory;
pub mod translate;

pub use cost::CostModel;
pub use loader::load_binary;
pub use machine::{Machine, MemOp, StopReason, EXIT_SYSCALL};
pub use memory::Memory;
pub use translate::{EmuEngine, EmuEvent};
