//! Instruction execution: the RV64GC semantic core shared by both
//! execution engines.
//!
//! [`Machine::exec`] applies one decoded [`Instruction`] to the machine
//! state and reports its control-flow [`Effect`]. The interpreter calls
//! it for every retired instruction; the translation-cached engine
//! (`crate::translate`) calls it only for `Fallback` steps — CSR ops,
//! syscalls, atomics, conversions and other cold opcodes — so the two
//! engines share one definition of instruction semantics by
//! construction.

use crate::machine::{Machine, StopReason, EXIT_SYSCALL};
use crate::memory::MemFault;
use rvdyn_isa::{Instruction, Op, Reg};

const SYS_WRITE: u64 = 64;
const SYS_BRK: u64 = 214;
const SYS_CLOCK_GETTIME: u64 = 113;

/// What an executed instruction does to control flow.
pub(crate) enum Effect {
    /// Fall through to the next sequential instruction.
    Next,
    /// Transfer control to this pc (jumps and taken branches).
    Jump(u64),
    /// Halt the machine with this reason.
    Stop(StopReason),
}

impl Machine {
    #[inline]
    #[allow(clippy::manual_checked_ops)] // spec-mandated div-by-zero results
    pub(crate) fn exec(&mut self, i: &Instruction) -> Result<Effect, MemFault> {
        use Op::*;
        let rd = i.rd.unwrap_or(Reg::X0);
        let rs1 = || self.get(i.rs1.unwrap_or(Reg::X0));
        let rs2 = || self.get(i.rs2.unwrap_or(Reg::X0));
        let imm = i.imm;
        macro_rules! wr {
            ($v:expr) => {{
                let v = $v;
                self.set(rd, v);
                Ok(Effect::Next)
            }};
        }
        let sw = |v: u64| v as i32 as i64 as u64;

        match i.op {
            Lui => wr!(imm as u64),
            Auipc => wr!(i.address.wrapping_add(imm as u64)),
            Addi => wr!(rs1().wrapping_add(imm as u64)),
            Slti => wr!(((rs1() as i64) < imm) as u64),
            Sltiu => wr!((rs1() < imm as u64) as u64),
            Xori => wr!(rs1() ^ imm as u64),
            Ori => wr!(rs1() | imm as u64),
            Andi => wr!(rs1() & imm as u64),
            Slli => wr!(rs1().wrapping_shl(imm as u32)),
            Srli => wr!(rs1().wrapping_shr(imm as u32)),
            Srai => wr!(((rs1() as i64) >> (imm as u32)) as u64),
            Addiw => wr!(sw(rs1().wrapping_add(imm as u64))),
            Slliw => wr!(sw((rs1() as u32).wrapping_shl(imm as u32) as u64)),
            Srliw => wr!(sw(((rs1() as u32) >> (imm as u32)) as u64)),
            Sraiw => wr!(sw((((rs1() as i32) >> (imm as u32)) as u32) as u64)),
            Add => wr!(rs1().wrapping_add(rs2())),
            Sub => wr!(rs1().wrapping_sub(rs2())),
            Sll => wr!(rs1().wrapping_shl((rs2() & 63) as u32)),
            Slt => wr!(((rs1() as i64) < (rs2() as i64)) as u64),
            Sltu => wr!((rs1() < rs2()) as u64),
            Xor => wr!(rs1() ^ rs2()),
            Srl => wr!(rs1().wrapping_shr((rs2() & 63) as u32)),
            Sra => wr!(((rs1() as i64) >> ((rs2() & 63) as u32)) as u64),
            Or => wr!(rs1() | rs2()),
            And => wr!(rs1() & rs2()),
            Addw => wr!(sw(rs1().wrapping_add(rs2()))),
            Subw => wr!(sw(rs1().wrapping_sub(rs2()))),
            Sllw => wr!(sw(((rs1() as u32) << (rs2() & 31)) as u64)),
            Srlw => wr!(sw(((rs1() as u32) >> (rs2() & 31)) as u64)),
            Sraw => wr!(sw((((rs1() as i32) >> (rs2() & 31)) as u32) as u64)),
            Mul => wr!(rs1().wrapping_mul(rs2())),
            Mulh => {
                wr!((((rs1() as i64 as i128) * (rs2() as i64 as i128)) >> 64) as u64)
            }
            Mulhsu => {
                wr!((((rs1() as i64 as i128) * (rs2() as u128 as i128)) >> 64) as u64)
            }
            Mulhu => wr!((((rs1() as u128) * (rs2() as u128)) >> 64) as u64),
            Div => {
                let (a, b) = (rs1() as i64, rs2() as i64);
                wr!(if b == 0 {
                    u64::MAX
                } else if a == i64::MIN && b == -1 {
                    a as u64
                } else {
                    (a / b) as u64
                })
            }
            Divu => {
                let (a, b) = (rs1(), rs2());
                wr!(if b == 0 { u64::MAX } else { a / b })
            }
            Rem => {
                let (a, b) = (rs1() as i64, rs2() as i64);
                wr!(if b == 0 {
                    a as u64
                } else if a == i64::MIN && b == -1 {
                    0
                } else {
                    (a % b) as u64
                })
            }
            Remu => {
                let (a, b) = (rs1(), rs2());
                wr!(if b == 0 { a } else { a % b })
            }
            Mulw => wr!(sw(rs1().wrapping_mul(rs2()))),
            Divw => {
                let (a, b) = (rs1() as i32, rs2() as i32);
                wr!(if b == 0 {
                    u64::MAX
                } else if a == i32::MIN && b == -1 {
                    a as i64 as u64
                } else {
                    (a / b) as i64 as u64
                })
            }
            Divuw => {
                let (a, b) = (rs1() as u32, rs2() as u32);
                wr!(if b == 0 { u64::MAX } else { sw((a / b) as u64) })
            }
            Remw => {
                let (a, b) = (rs1() as i32, rs2() as i32);
                wr!(if b == 0 {
                    a as i64 as u64
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    (a % b) as i64 as u64
                })
            }
            Remuw => {
                let (a, b) = (rs1() as u32, rs2() as u32);
                wr!(if b == 0 {
                    a as i64 as u64
                } else {
                    sw((a % b) as u64)
                })
            }
            Jal => {
                let target = i.address.wrapping_add(imm as u64);
                self.set(rd, i.next_pc());
                self.oracle_call(rd, None, i.next_pc());
                Ok(Effect::Jump(target))
            }
            Jalr => {
                let target = rs1().wrapping_add(imm as u64) & !1;
                self.set(rd, i.next_pc());
                self.oracle_call(rd, i.rs1, i.next_pc());
                Ok(Effect::Jump(target))
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let (a, b) = (rs1(), rs2());
                let take = match i.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i64) < (b as i64),
                    Bge => (a as i64) >= (b as i64),
                    Bltu => a < b,
                    _ => a >= b,
                };
                if take {
                    Ok(Effect::Jump(i.address.wrapping_add(imm as u64)))
                } else {
                    Ok(Effect::Next)
                }
            }
            Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu => {
                let addr = rs1().wrapping_add(imm as u64);
                let (size, sx) = match i.op {
                    Lb => (1, true),
                    Lh => (2, true),
                    Lw => (4, true),
                    Ld => (8, false),
                    Lbu => (1, false),
                    Lhu => (2, false),
                    _ => (4, false),
                };
                let raw = self.mem.load(addr, size)?;
                self.oracle_mem(i.address, addr, size, false);
                let v = if sx {
                    let shift = 64 - size as u32 * 8;
                    (((raw << shift) as i64) >> shift) as u64
                } else {
                    raw
                };
                wr!(v)
            }
            Sb | Sh | Sw | Sd => {
                let addr = rs1().wrapping_add(imm as u64);
                let size = match i.op {
                    Sb => 1,
                    Sh => 2,
                    Sw => 4,
                    _ => 8,
                };
                let val = rs2();
                self.mem.store(addr, size, val)?;
                self.oracle_mem(i.address, addr, size, true);
                self.invalidate(addr, size as u64);
                Ok(Effect::Next)
            }
            Flw => {
                let addr = rs1().wrapping_add(imm as u64);
                let raw = self.mem.load(addr, 4)?;
                self.oracle_mem(i.address, addr, 4, false);
                self.set(rd, nan_box(raw as u32));
                Ok(Effect::Next)
            }
            Fld => {
                let addr = rs1().wrapping_add(imm as u64);
                let raw = self.mem.load(addr, 8)?;
                self.oracle_mem(i.address, addr, 8, false);
                self.set(rd, raw);
                Ok(Effect::Next)
            }
            Fsw => {
                let addr = rs1().wrapping_add(imm as u64);
                let v = self.get(i.rs2.unwrap()) as u32;
                self.mem.store(addr, 4, v as u64)?;
                self.oracle_mem(i.address, addr, 4, true);
                Ok(Effect::Next)
            }
            Fsd => {
                let addr = rs1().wrapping_add(imm as u64);
                let v = self.get(i.rs2.unwrap());
                self.mem.store(addr, 8, v)?;
                self.oracle_mem(i.address, addr, 8, true);
                Ok(Effect::Next)
            }
            Fence | FenceI => Ok(Effect::Next),
            Ecall => self.syscall(),
            Ebreak => Ok(Effect::Stop(StopReason::Break(i.address))),
            Csrrw | Csrrs | Csrrc | Csrrwi | Csrrsi | Csrrci => {
                let csr = i.csr.unwrap_or(0);
                let old = self.read_csr(csr);
                let src = match i.op {
                    Csrrw | Csrrs | Csrrc => rs1(),
                    _ => imm as u64,
                };
                let new = match i.op {
                    Csrrw | Csrrwi => src,
                    Csrrs | Csrrsi => old | src,
                    _ => old & !src,
                };
                // Writes only apply when the source is live per spec
                // subtleties; we apply unconditionally except to RO CSRs.
                self.write_csr(csr, new);
                wr!(old)
            }
            op if op.is_atomic() => self.exec_amo(i),
            _ => self.exec_fp(i),
        }
    }

    fn exec_amo(&mut self, i: &Instruction) -> Result<Effect, MemFault> {
        use Op::*;
        let addr = self.get(i.rs1.unwrap());
        let rd = i.rd.unwrap_or(Reg::X0);
        let size: u8 = if i.op.mnemonic().ends_with(".w") {
            4
        } else {
            8
        };
        match i.op {
            LrW | LrD => {
                let raw = self.mem.load(addr, size)?;
                let v = if size == 4 {
                    raw as u32 as i32 as i64 as u64
                } else {
                    raw
                };
                self.set(rd, v);
            }
            ScW | ScD => {
                // Single-threaded: always succeeds.
                let v = self.get(i.rs2.unwrap());
                self.mem.store(addr, size, v)?;
                self.set(rd, 0);
            }
            _ => {
                let raw = self.mem.load(addr, size)?;
                let old = if size == 4 {
                    raw as u32 as i32 as i64 as u64
                } else {
                    raw
                };
                let src = self.get(i.rs2.unwrap());
                let new = match i.op {
                    AmoSwapW | AmoSwapD => src,
                    AmoAddW | AmoAddD => old.wrapping_add(src),
                    AmoXorW | AmoXorD => old ^ src,
                    AmoAndW | AmoAndD => old & src,
                    AmoOrW | AmoOrD => old | src,
                    AmoMinW => ((old as i32).min(src as i32)) as u64,
                    AmoMaxW => ((old as i32).max(src as i32)) as u64,
                    AmoMinuW => ((old as u32).min(src as u32)) as u64,
                    AmoMaxuW => ((old as u32).max(src as u32)) as u64,
                    AmoMinD => ((old as i64).min(src as i64)) as u64,
                    AmoMaxD => ((old as i64).max(src as i64)) as u64,
                    AmoMinuD => old.min(src),
                    AmoMaxuD => old.max(src),
                    _ => unreachable!(),
                };
                self.mem.store(addr, size, new)?;
                self.set(rd, old);
            }
        }
        Ok(Effect::Next)
    }

    // ---- floating point ----

    #[inline]
    pub(crate) fn f64v(&self, r: Reg) -> f64 {
        f64::from_bits(self.get(r))
    }

    #[inline]
    pub(crate) fn f32v(&self, r: Reg) -> f32 {
        let bits = self.get(r);
        // NaN-boxing check: a valid f32 has all upper 32 bits set.
        if bits >> 32 == 0xFFFF_FFFF {
            f32::from_bits(bits as u32)
        } else {
            f32::NAN
        }
    }

    #[inline]
    pub(crate) fn set_f64(&mut self, r: Reg, v: f64) {
        self.set(r, v.to_bits());
    }

    #[inline]
    pub(crate) fn set_f32(&mut self, r: Reg, v: f32) {
        self.set(r, nan_box(v.to_bits()));
    }

    fn exec_fp(&mut self, i: &Instruction) -> Result<Effect, MemFault> {
        use Op::*;
        let rd = i.rd.unwrap_or(Reg::X0);
        let a64 = || self.f64v(i.rs1.unwrap());
        let b64 = || self.f64v(i.rs2.unwrap());
        let a32 = || self.f32v(i.rs1.unwrap());
        let b32 = || self.f32v(i.rs2.unwrap());
        macro_rules! wrd {
            ($v:expr) => {{
                let v = $v;
                self.set_f64(rd, v);
                Ok(Effect::Next)
            }};
        }
        macro_rules! wrs {
            ($v:expr) => {{
                let v = $v;
                self.set_f32(rd, v);
                Ok(Effect::Next)
            }};
        }
        macro_rules! wrx {
            ($v:expr) => {{
                let v = $v;
                self.set(rd, v);
                Ok(Effect::Next)
            }};
        }
        let rm = if i.rm == 7 {
            ((self.fcsr >> 5) & 7) as u8
        } else {
            i.rm
        };

        match i.op {
            FaddD => wrd!(a64() + b64()),
            FsubD => wrd!(a64() - b64()),
            FmulD => wrd!(a64() * b64()),
            FdivD => wrd!(a64() / b64()),
            FsqrtD => wrd!(a64().sqrt()),
            FaddS => wrs!(a32() + b32()),
            FsubS => wrs!(a32() - b32()),
            FmulS => wrs!(a32() * b32()),
            FdivS => wrs!(a32() / b32()),
            FsqrtS => wrs!(a32().sqrt()),
            FmaddD | FmsubD | FnmsubD | FnmaddD => {
                let (a, b, c) = (a64(), b64(), self.f64v(i.rs3.unwrap()));
                wrd!(match i.op {
                    FmaddD => a.mul_add(b, c),
                    FmsubD => a.mul_add(b, -c),
                    FnmsubD => (-a).mul_add(b, c),
                    _ => (-a).mul_add(b, -c),
                })
            }
            FmaddS | FmsubS | FnmsubS | FnmaddS => {
                let (a, b, c) = (a32(), b32(), self.f32v(i.rs3.unwrap()));
                wrs!(match i.op {
                    FmaddS => a.mul_add(b, c),
                    FmsubS => a.mul_add(b, -c),
                    FnmsubS => (-a).mul_add(b, c),
                    _ => (-a).mul_add(b, -c),
                })
            }
            FsgnjD | FsgnjnD | FsgnjxD => {
                let (a, b) = (self.get(i.rs1.unwrap()), self.get(i.rs2.unwrap()));
                let sign = match i.op {
                    FsgnjD => b & (1 << 63),
                    FsgnjnD => !b & (1 << 63),
                    _ => (a ^ b) & (1 << 63),
                };
                wrx!((a & !(1u64 << 63)) | sign)
            }
            FsgnjS | FsgnjnS | FsgnjxS => {
                let a = self.f32v(i.rs1.unwrap()).to_bits();
                let b = self.f32v(i.rs2.unwrap()).to_bits();
                let sign = match i.op {
                    FsgnjS => b & (1 << 31),
                    FsgnjnS => !b & (1 << 31),
                    _ => (a ^ b) & (1 << 31),
                };
                wrx!(nan_box((a & !(1u32 << 31)) | sign))
            }
            FminD => wrd!(fmin64(a64(), b64())),
            FmaxD => wrd!(fmax64(a64(), b64())),
            FminS => wrs!(fmin32(a32(), b32())),
            FmaxS => wrs!(fmax32(a32(), b32())),
            FeqD => wrx!((a64() == b64()) as u64),
            FltD => wrx!((a64() < b64()) as u64),
            FleD => wrx!((a64() <= b64()) as u64),
            FeqS => wrx!((a32() == b32()) as u64),
            FltS => wrx!((a32() < b32()) as u64),
            FleS => wrx!((a32() <= b32()) as u64),
            FclassD => wrx!(fclass64(a64())),
            FclassS => wrx!(fclass32(a32())),
            FcvtWD => wrx!(f2i(a64(), rm, i32::MIN as i64, i32::MAX as i64) as i32 as i64 as u64),
            FcvtWuD => wrx!(f2u(a64(), rm, u32::MAX as u64) as u32 as i32 as i64 as u64),
            FcvtLD => wrx!(f2i(a64(), rm, i64::MIN, i64::MAX) as u64),
            FcvtLuD => wrx!(f2u(a64(), rm, u64::MAX)),
            FcvtWS => {
                wrx!(f2i(a32() as f64, rm, i32::MIN as i64, i32::MAX as i64) as i32 as i64 as u64)
            }
            FcvtWuS => wrx!(f2u(a32() as f64, rm, u32::MAX as u64) as u32 as i32 as i64 as u64),
            FcvtLS => wrx!(f2i(a32() as f64, rm, i64::MIN, i64::MAX) as u64),
            FcvtLuS => wrx!(f2u(a32() as f64, rm, u64::MAX)),
            FcvtDW => wrd!(self.get(i.rs1.unwrap()) as i32 as f64),
            FcvtDWu => wrd!(self.get(i.rs1.unwrap()) as u32 as f64),
            FcvtDL => wrd!(self.get(i.rs1.unwrap()) as i64 as f64),
            FcvtDLu => wrd!(self.get(i.rs1.unwrap()) as f64),
            FcvtSW => wrs!(self.get(i.rs1.unwrap()) as i32 as f32),
            FcvtSWu => wrs!(self.get(i.rs1.unwrap()) as u32 as f32),
            FcvtSL => wrs!(self.get(i.rs1.unwrap()) as i64 as f32),
            FcvtSLu => wrs!(self.get(i.rs1.unwrap()) as f32),
            FcvtSD => wrs!(a64() as f32),
            FcvtDS => wrd!(a32() as f64),
            FmvXD => wrx!(self.get(i.rs1.unwrap())),
            FmvDX => wrx!(self.get(i.rs1.unwrap())),
            FmvXW => {
                // Low 32 bits of the FPR, sign-extended.
                wrx!(self.get(i.rs1.unwrap()) as u32 as i32 as i64 as u64)
            }
            FmvWX => wrx!(nan_box(self.get(i.rs1.unwrap()) as u32)),
            _ => {
                // Every op is covered above; reaching here is a bug.
                unreachable!("unhandled op {:?}", i.op)
            }
        }
    }

    // ---- CSRs ----

    fn read_csr(&self, csr: u16) -> u64 {
        match csr {
            0x001 => self.fcsr & 0x1F,       // fflags
            0x002 => (self.fcsr >> 5) & 0x7, // frm
            0x003 => self.fcsr,              // fcsr
            0xC00 => self.cycles,            // cycle
            0xC01 => self.now_ns() / 10,     // time (10ns ticks)
            0xC02 => self.icount,            // instret
            _ => 0,
        }
    }

    fn write_csr(&mut self, csr: u16, v: u64) {
        match csr {
            0x001 => self.fcsr = (self.fcsr & !0x1F) | (v & 0x1F),
            0x002 => self.fcsr = (self.fcsr & !0xE0) | ((v & 0x7) << 5),
            0x003 => self.fcsr = v & 0xFF,
            _ => {} // read-only / unimplemented: ignore
        }
    }

    // ---- syscalls ----

    fn syscall(&mut self) -> Result<Effect, MemFault> {
        let nr = self.gpr[17]; // a7
        let a0 = self.gpr[10];
        let a1 = self.gpr[11];
        let a2 = self.gpr[12];
        match nr {
            EXIT_SYSCALL => Ok(Effect::Stop(StopReason::Exited(a0 as i64))),
            SYS_WRITE => {
                if a0 == 1 || a0 == 2 {
                    let data = self.mem.read_bytes(a1, a2 as usize)?;
                    self.stdout.extend_from_slice(&data);
                    self.gpr[10] = a2;
                } else {
                    self.gpr[10] = (-9i64) as u64; // EBADF
                }
                Ok(Effect::Next)
            }
            SYS_CLOCK_GETTIME => {
                let ns = self.now_ns();
                self.mem.store(a1, 8, ns / 1_000_000_000)?;
                self.mem.store(a1 + 8, 8, ns % 1_000_000_000)?;
                self.gpr[10] = 0;
                Ok(Effect::Next)
            }
            SYS_BRK => {
                if a0 != 0 {
                    if a0 > self.brk {
                        self.mem.map(self.brk, a0 - self.brk);
                    }
                    self.brk = a0;
                }
                self.gpr[10] = self.brk;
                Ok(Effect::Next)
            }
            _ => {
                self.gpr[10] = (-38i64) as u64; // ENOSYS
                Ok(Effect::Next)
            }
        }
    }
}

#[inline]
pub(crate) fn nan_box(v: u32) -> u64 {
    0xFFFF_FFFF_0000_0000 | v as u64
}

const CANONICAL_NAN64: f64 = f64::from_bits(0x7FF8_0000_0000_0000);
const CANONICAL_NAN32: f32 = f32::from_bits(0x7FC0_0000);

/// `fclass` result bits (RISC-V spec table): one-hot classification.
fn fclass64(v: f64) -> u64 {
    let bits = v.to_bits();
    let sign = bits >> 63 != 0;
    if v.is_nan() {
        // Signaling NaN has the top mantissa bit clear.
        if bits & (1 << 51) == 0 {
            1 << 8
        } else {
            1 << 9
        }
    } else if v.is_infinite() {
        if sign {
            1 << 0
        } else {
            1 << 7
        }
    } else if v == 0.0 {
        if sign {
            1 << 3
        } else {
            1 << 4
        }
    } else if v.is_subnormal() {
        if sign {
            1 << 2
        } else {
            1 << 5
        }
    } else if sign {
        1 << 1
    } else {
        1 << 6
    }
}

fn fclass32(v: f32) -> u64 {
    let bits = v.to_bits();
    let sign = bits >> 31 != 0;
    if v.is_nan() {
        if bits & (1 << 22) == 0 {
            1 << 8
        } else {
            1 << 9
        }
    } else if v.is_infinite() {
        if sign {
            1 << 0
        } else {
            1 << 7
        }
    } else if v == 0.0 {
        if sign {
            1 << 3
        } else {
            1 << 4
        }
    } else if v.is_subnormal() {
        if sign {
            1 << 2
        } else {
            1 << 5
        }
    } else if sign {
        1 << 1
    } else {
        1 << 6
    }
}

pub(crate) fn fmin64(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN64,
        (true, false) => b,
        (false, true) => a,
        _ => {
            if a == 0.0 && b == 0.0 {
                // fmin(-0, +0) = -0
                if a.is_sign_negative() {
                    a
                } else {
                    b
                }
            } else {
                a.min(b)
            }
        }
    }
}

pub(crate) fn fmax64(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN64,
        (true, false) => b,
        (false, true) => a,
        _ => {
            if a == 0.0 && b == 0.0 {
                if a.is_sign_positive() {
                    a
                } else {
                    b
                }
            } else {
                a.max(b)
            }
        }
    }
}

fn fmin32(a: f32, b: f32) -> f32 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN32,
        (true, false) => b,
        (false, true) => a,
        _ => {
            if a == 0.0 && b == 0.0 {
                if a.is_sign_negative() {
                    a
                } else {
                    b
                }
            } else {
                a.min(b)
            }
        }
    }
}

fn fmax32(a: f32, b: f32) -> f32 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN32,
        (true, false) => b,
        (false, true) => a,
        _ => {
            if a == 0.0 && b == 0.0 {
                if a.is_sign_positive() {
                    a
                } else {
                    b
                }
            } else {
                a.max(b)
            }
        }
    }
}

/// Round per the RISC-V rounding mode, then convert to a signed integer
/// with spec saturation (NaN → max).
fn f2i(v: f64, rm: u8, min: i64, max: i64) -> i64 {
    if v.is_nan() {
        return max;
    }
    let r = round_rm(v, rm);
    if r < min as f64 {
        min
    } else if r > max as f64 {
        max
    } else {
        r as i64
    }
}

/// As [`f2i`] but unsigned.
fn f2u(v: f64, rm: u8, max: u64) -> u64 {
    if v.is_nan() {
        return max;
    }
    let r = round_rm(v, rm);
    if r < 0.0 {
        0
    } else if r > max as f64 {
        max
    } else {
        r as u64
    }
}

fn round_rm(v: f64, rm: u8) -> f64 {
    match rm {
        0 | 4 => {
            // RNE (and RMM approximated): ties-to-even.
            let r = v.round();
            if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                r - v.signum()
            } else {
                r
            }
        }
        1 => v.trunc(), // RTZ
        2 => v.floor(), // RDN
        3 => v.ceil(),  // RUP
        _ => v.trunc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmin_fmax_nan_and_zero_rules() {
        assert_eq!(fmin64(-0.0, 0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(fmax64(-0.0, 0.0).to_bits(), (0.0f64).to_bits());
        assert_eq!(fmin64(f64::NAN, 3.0), 3.0);
        assert!(fmin64(f64::NAN, f64::NAN).is_nan());
    }
}
