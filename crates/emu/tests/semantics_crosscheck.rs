//! Cross-validation of the two independent executors (DESIGN.md §2):
//! the fast interpreter in `rvdyn-emu` vs the reference evaluator derived
//! from the micro-op semantics spec (`rvdyn_isa::semantics::eval_int`).
//!
//! This pair plays the role the paper's SAIL-derived artifacts play for
//! Dyninst: one rigorous semantics source checked against an independent
//! implementation. Any divergence on the integer subset is a bug in one
//! of the two — the property test hunts for it across the whole encoding
//! space and random machine states.

use proptest::prelude::*;
use rvdyn_emu::Machine;
use rvdyn_isa::decode::decode;
use rvdyn_isa::semantics::{eval_int, EvalOutcome, FlatMemory, IntState, MemoryBus};
use rvdyn_isa::{Op, Reg};

const MEM_BASE: u64 = 0x8000;
const MEM_LEN: usize = 0x1000;
const PC: u64 = 0x1_0000;

/// Clamp register values so memory operands stay inside the test window
/// (we want to compare *successful* executions; faults are tested
/// separately in the emu crate).
fn clamp_addrish(v: u64) -> u64 {
    MEM_BASE + (v % (MEM_LEN as u64 - 16)) / 8 * 8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn machine_matches_reference_evaluator(
        raw in any::<u32>(),
        seed_regs in proptest::collection::vec(any::<u64>(), 31),
        seed_mem in any::<u64>(),
    ) {
        let Ok(inst) = decode(&raw.to_le_bytes(), PC) else { return Ok(()) };
        // Integer subset only (the reference evaluator's domain).
        let ops = rvdyn_isa::semantics::micro_ops(&inst);
        let outside = ops.iter().any(|o| matches!(
            o,
            rvdyn_isa::semantics::MicroOp::FpCompute { .. }
                | rvdyn_isa::semantics::MicroOp::Opaque
        ));
        let fp_regs = [inst.rd, inst.rs1, inst.rs2, inst.rs3]
            .iter()
            .flatten()
            .any(|r| r.class() == rvdyn_isa::RegClass::Fpr);
        if outside
            || fp_regs
            || matches!(inst.op, Op::Ecall | Op::Ebreak | Op::Fence | Op::FenceI)
        {
            return Ok(());
        }
        // A hard-wired-zero base register cannot be clamped into the test
        // memory window; both executors would fault identically — skip.
        if inst.mem_access().map(|m| m.base.is_zero()).unwrap_or(false) {
            return Ok(());
        }

        // Build matching initial states.
        let mut st = IntState::new(PC);
        let mut machine = Machine::new();
        machine.pc = PC;
        for n in 1..32u8 {
            let mut v = seed_regs[(n - 1) as usize];
            // Registers used as memory bases get clamped into the window.
            if inst.mem_access().map(|m| m.base == Reg::x(n)).unwrap_or(false) {
                let off = inst.mem_access().unwrap().offset;
                v = clamp_addrish(v).wrapping_sub(off as u64);
            }
            st.set(Reg::x(n), v);
            machine.set(Reg::x(n), v);
        }
        let mut ref_mem = FlatMemory::new(MEM_BASE, MEM_LEN);
        machine.mem.map(MEM_BASE, MEM_LEN as u64);
        for i in 0..(MEM_LEN / 8) {
            let v = seed_mem.wrapping_mul(i as u64 + 1).rotate_left(i as u32 % 64);
            ref_mem.store(MEM_BASE + (i * 8) as u64, 8, v);
            machine.mem.store(MEM_BASE + (i * 8) as u64, 8, v).unwrap();
        }
        // The machine also needs the instruction bytes mapped.
        machine.mem.write_bytes(PC, &raw.to_le_bytes());
        machine.set_code_region(PC, 4);

        // Execute on both.
        let outcome = eval_int(&inst, &mut st, &mut ref_mem);
        let stop = machine.step();

        prop_assert!(stop.is_none(), "machine unexpectedly stopped: {stop:?}");
        // Compare pc.
        let expect_pc = match outcome {
            EvalOutcome::Next => PC + inst.size as u64,
            EvalOutcome::Jump(t) => t,
            o => {
                prop_assert!(false, "unexpected reference outcome {o:?}");
                return Ok(());
            }
        };
        prop_assert_eq!(machine.pc, expect_pc, "pc divergence for {}", inst.mnemonic());
        // Compare all GPRs.
        for n in 0..32u8 {
            prop_assert_eq!(
                machine.get(Reg::x(n)),
                st.get(Reg::x(n)),
                "x{} divergence for {} (raw {:#010x})",
                n,
                inst.mnemonic(),
                raw
            );
        }
        // Compare the memory window.
        for i in 0..(MEM_LEN / 8) {
            let a = MEM_BASE + (i * 8) as u64;
            prop_assert_eq!(
                machine.mem.load(a, 8).unwrap(),
                ref_mem.load(a, 8),
                "memory divergence at {:#x} for {}",
                a,
                inst.mnemonic()
            );
        }
    }

    #[test]
    fn random_instruction_sequences_agree(
        raws in proptest::collection::vec(any::<u32>(), 1..40),
        seed in any::<u64>(),
    ) {
        // Filter to integer, non-branching, non-memory instructions and run
        // the whole sequence on both executors.
        let mut code: Vec<u8> = Vec::new();
        let mut insts = Vec::new();
        let mut pc = PC;
        for raw in raws {
            let Ok(i) = decode(&raw.to_le_bytes(), pc) else { continue };
            if i.mem_access().is_some()
                || i.is_block_terminator()
                || matches!(i.op, Op::Ecall | Op::Fence | Op::FenceI)
                || i.op.extension() == rvdyn_isa::Extension::F
                || i.op.extension() == rvdyn_isa::Extension::D
                || i.op.extension() == rvdyn_isa::Extension::Zicsr
            {
                continue;
            }
            // Re-decode at the right pc for correct address-relative ops.
            let mut j = i;
            j.address = pc;
            code.extend_from_slice(&raw.to_le_bytes()[..i.size as usize]);
            pc += i.size as u64;
            insts.push(j);
        }
        if insts.is_empty() {
            return Ok(());
        }

        let mut st = IntState::new(PC);
        let mut machine = Machine::new();
        machine.pc = PC;
        for n in 1..32u8 {
            let v = seed.wrapping_mul(n as u64).rotate_left(n as u32);
            st.set(Reg::x(n), v);
            machine.set(Reg::x(n), v);
        }
        let mut ref_mem = FlatMemory::new(MEM_BASE, MEM_LEN);
        machine.mem.write_bytes(PC, &code);
        machine.set_code_region(PC, code.len() as u64);

        for i in &insts {
            st.pc = i.address;
            eval_int(i, &mut st, &mut ref_mem);
            let stop = machine.step();
            prop_assert!(stop.is_none());
        }
        for n in 0..32u8 {
            // sp differs: the machine initialises it; skip unless written.
            if n == 2 {
                continue;
            }
            prop_assert_eq!(machine.get(Reg::x(n)), st.get(Reg::x(n)), "x{}", n);
        }
    }
}
