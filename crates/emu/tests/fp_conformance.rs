//! Floating-point conformance: table-driven checks of the F/D execution
//! paths against IEEE-754/RISC-V-spec expectations, plus host-reference
//! property tests for the arithmetic core.

use proptest::prelude::*;
use rvdyn_emu::Machine;
use rvdyn_isa::{build, Op, Reg};

fn exec_fp(op: Op, a_bits: u64, b_bits: u64) -> Machine {
    let mut m = Machine::new();
    m.set(Reg::f(1), a_bits);
    m.set(Reg::f(2), b_bits);
    let i = build::f_type(op, Reg::f(0), Reg::f(1), Reg::f(2));
    let code = rvdyn_isa::encode::encode32(&i).unwrap().to_le_bytes();
    m.mem.write_bytes(0x1000, &code);
    m.set_code_region(0x1000, 4);
    m.pc = 0x1000;
    assert!(m.step().is_none());
    m
}

fn exec_fp_unary(op: Op, rd: Reg, rs: Reg, val: u64) -> Machine {
    let mut m = Machine::new();
    m.set(rs, val);
    let i = build::f_unary(op, rd, rs);
    let code = rvdyn_isa::encode::encode32(&i).unwrap().to_le_bytes();
    m.mem.write_bytes(0x1000, &code);
    m.set_code_region(0x1000, 4);
    m.pc = 0x1000;
    assert!(m.step().is_none());
    m
}

#[test]
fn fclass_d_all_ten_classes() {
    // RISC-V fclass bit positions: 0 -inf, 1 -normal, 2 -subnormal,
    // 3 -0, 4 +0, 5 +subnormal, 6 +normal, 7 +inf, 8 sNaN, 9 qNaN.
    let cases: [(f64, u64); 10] = [
        (f64::NEG_INFINITY, 1 << 0),
        (-1.5, 1 << 1),
        (-f64::MIN_POSITIVE / 2.0, 1 << 2),
        (-0.0, 1 << 3),
        (0.0, 1 << 4),
        (f64::MIN_POSITIVE / 2.0, 1 << 5),
        (1.5, 1 << 6),
        (f64::INFINITY, 1 << 7),
        // Signaling NaN: quiet bit (mantissa MSB) clear, payload nonzero.
        (f64::from_bits(0x7FF0_0000_0000_0001), 1 << 8),
        (f64::NAN, 1 << 9),
    ];
    for (v, expect) in cases {
        let m = exec_fp_unary(Op::FclassD, Reg::x(10), Reg::f(1), v.to_bits());
        assert_eq!(m.gpr[10], expect, "fclass.d({v})");
    }
}

#[test]
fn fcvt_w_d_saturation_table() {
    // (input, expected i32 result) per the spec's saturating conversion.
    let cases: [(f64, i64); 6] = [
        (1e12, i32::MAX as i64),
        (-1e12, i32::MIN as i64),
        (f64::NAN, i32::MAX as i64),
        (f64::INFINITY, i32::MAX as i64),
        (f64::NEG_INFINITY, i32::MIN as i64),
        (-3.75, -3), // dynamic rm defaults to RNE; -3.75 rounds to -4? RNE: -4
    ];
    for (v, expect) in &cases[..5] {
        let m = exec_fp_unary(Op::FcvtWD, Reg::x(10), Reg::f(1), v.to_bits());
        assert_eq!(m.gpr[10] as i64, *expect, "fcvt.w.d({v})");
    }
    // RNE check separately: -3.75 → -4.
    let m = exec_fp_unary(Op::FcvtWD, Reg::x(10), Reg::f(1), (-3.75f64).to_bits());
    assert_eq!(m.gpr[10] as i64, -4);
    // Tie: 2.5 → 2 (ties to even).
    let m = exec_fp_unary(Op::FcvtWD, Reg::x(10), Reg::f(1), 2.5f64.to_bits());
    assert_eq!(m.gpr[10] as i64, 2);
    let m = exec_fp_unary(Op::FcvtWD, Reg::x(10), Reg::f(1), 3.5f64.to_bits());
    assert_eq!(m.gpr[10] as i64, 4);
}

#[test]
fn fmin_fmax_nan_propagation_per_spec() {
    // RISC-V fmin/fmax: if one operand is NaN, return the other.
    let m = exec_fp(Op::FminD, f64::NAN.to_bits(), 2.0f64.to_bits());
    assert_eq!(f64::from_bits(m.fpr[0]), 2.0);
    let m = exec_fp(Op::FmaxD, 2.0f64.to_bits(), f64::NAN.to_bits());
    assert_eq!(f64::from_bits(m.fpr[0]), 2.0);
    // Both NaN → canonical NaN.
    let m = exec_fp(Op::FminD, f64::NAN.to_bits(), f64::NAN.to_bits());
    assert_eq!(m.fpr[0], 0x7FF8_0000_0000_0000);
    // Signed zeros: min picks -0, max picks +0.
    let m = exec_fp(Op::FminD, (-0.0f64).to_bits(), 0.0f64.to_bits());
    assert_eq!(m.fpr[0], (-0.0f64).to_bits());
    let m = exec_fp(Op::FmaxD, (-0.0f64).to_bits(), 0.0f64.to_bits());
    assert_eq!(m.fpr[0], 0.0f64.to_bits());
}

#[test]
fn comparisons_with_nan_are_false() {
    for op in [Op::FeqD, Op::FltD, Op::FleD] {
        let m = exec_fp(op, f64::NAN.to_bits(), 1.0f64.to_bits());
        assert_eq!(m.gpr[0], 0);
        let mut m2 = Machine::new();
        m2.set(Reg::f(1), f64::NAN.to_bits());
        m2.set(Reg::f(2), 1.0f64.to_bits());
        let i = build::f_type(op, Reg::x(10), Reg::f(1), Reg::f(2));
        let code = rvdyn_isa::encode::encode32(&i).unwrap().to_le_bytes();
        m2.mem.write_bytes(0x1000, &code);
        m2.set_code_region(0x1000, 4);
        m2.pc = 0x1000;
        m2.step();
        assert_eq!(m2.gpr[10], 0, "{op:?} with NaN must be 0");
    }
}

#[test]
fn fsgnj_builds_neg_and_abs() {
    // fsgnjn.d f0, f1, f1 == fneg; fsgnjx with itself == fabs... (fsgnjx
    // f1,f1 clears sign iff sign⊕sign=0 → abs needs fsgnj with +x; the
    // classic idioms: fabs = fsgnjx rs,rs; fneg = fsgnjn rs,rs.)
    let m = exec_fp(Op::FsgnjnD, (3.5f64).to_bits(), (3.5f64).to_bits());
    assert_eq!(f64::from_bits(m.fpr[0]), -3.5);
    let m = exec_fp(Op::FsgnjxD, (-3.5f64).to_bits(), (-3.5f64).to_bits());
    assert_eq!(f64::from_bits(m.fpr[0]), 3.5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn double_arithmetic_matches_host(a in any::<f64>(), b in any::<f64>()) {
        for (op, host) in [
            (Op::FaddD, a + b),
            (Op::FsubD, a - b),
            (Op::FmulD, a * b),
            (Op::FdivD, a / b),
        ] {
            let m = exec_fp(op, a.to_bits(), b.to_bits());
            let got = f64::from_bits(m.fpr[0]);
            if host.is_nan() {
                prop_assert!(got.is_nan(), "{op:?}({a},{b}) = {got}, want NaN");
            } else {
                prop_assert_eq!(got.to_bits(), host.to_bits(), "{:?}({},{})", op, a, b);
            }
        }
    }

    #[test]
    fn fmadd_matches_host_fma(a in any::<f64>(), b in any::<f64>(), c in any::<f64>()) {
        let mut m = Machine::new();
        m.set(Reg::f(1), a.to_bits());
        m.set(Reg::f(2), b.to_bits());
        m.set(Reg::f(3), c.to_bits());
        let i = build::fma(Op::FmaddD, Reg::f(0), Reg::f(1), Reg::f(2), Reg::f(3));
        let code = rvdyn_isa::encode::encode32(&i).unwrap().to_le_bytes();
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, 4);
        m.pc = 0x1000;
        m.step();
        let got = f64::from_bits(m.fpr[0]);
        let host = a.mul_add(b, c);
        if host.is_nan() {
            prop_assert!(got.is_nan());
        } else {
            prop_assert_eq!(got.to_bits(), host.to_bits());
        }
    }

    #[test]
    fn int_to_double_conversions_exact(v in any::<i64>()) {
        let m = exec_fp_unary(Op::FcvtDL, Reg::f(0), Reg::x(10), 0); // placeholder
        let _ = m;
        let mut m = Machine::new();
        m.set(Reg::x(10), v as u64);
        let i = build::f_unary(Op::FcvtDL, Reg::f(0), Reg::x(10));
        let code = rvdyn_isa::encode::encode32(&i).unwrap().to_le_bytes();
        m.mem.write_bytes(0x1000, &code);
        m.set_code_region(0x1000, 4);
        m.pc = 0x1000;
        m.step();
        prop_assert_eq!(f64::from_bits(m.fpr[0]), v as f64);
    }
}
