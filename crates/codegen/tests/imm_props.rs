//! Property tests: immediate materialisation is exact for every i64, and
//! generated snippet code always encodes and preserves non-scratch state.

use proptest::prelude::*;
use rvdyn_codegen::emitter::generate;
use rvdyn_codegen::imm::{load_imm, pcrel_parts};
use rvdyn_codegen::regalloc::RegAllocMode;
use rvdyn_codegen::snippet::{Snippet, Var};
use rvdyn_isa::semantics::{eval_int, FlatMemory, IntState};
use rvdyn_isa::{IsaProfile, Reg, RegSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn load_imm_exact_for_any_value(v in any::<i64>()) {
        let rd = Reg::x(10);
        let seq = load_imm(rd, v);
        prop_assert!(seq.len() <= 8, "sequence too long for {v:#x}: {}", seq.len());
        let mut st = IntState::new(0);
        let mut mem = FlatMemory::new(0, 8);
        for i in &seq {
            rvdyn_isa::encode::encode32(i).unwrap();
            eval_int(i, &mut st, &mut mem);
        }
        prop_assert_eq!(st.get(rd) as i64, v);
    }

    #[test]
    fn pcrel_parts_exact(pc in any::<u32>(), target in any::<u32>()) {
        let (pc, target) = (pc as u64, target as u64);
        match pcrel_parts(pc, target) {
            Some((hi, lo)) => {
                prop_assert_eq!(pc.wrapping_add(hi as u64).wrapping_add(lo as u64), target);
                prop_assert_eq!(hi & 0xFFF, 0);
                prop_assert!((-2048..=2047).contains(&lo));
            }
            None => {
                // Only the asymmetric edge of the window may be rejected.
                let off = target.wrapping_sub(pc) as i64;
                prop_assert!(!(-(1i64 << 31) - 2048..(1i64 << 31) - 2048).contains(&off));
            }
        }
    }

    #[test]
    fn counter_snippet_exact_for_any_count(n in 1usize..50, addr in 0x8000u64..0x8800) {
        let addr = addr & !7;
        let var = Var { addr, size: 8 };
        let (code, _) = generate(
            &Snippet::increment(var),
            RegSet::ALL_GPR,
            RegAllocMode::DeadRegisters,
            IsaProfile::rv64gc(),
        ).unwrap();
        let mut st = IntState::new(0);
        let mut mem = FlatMemory::new(0x8000, 0x1000);
        for _ in 0..n {
            for i in &code {
                eval_int(i, &mut st, &mut mem);
            }
        }
        prop_assert_eq!(mem.bytes[(addr - 0x8000) as usize] as usize, n);
    }
}
