//! Immediate materialisation (§3.2.5).
//!
//! RISC-V has no single "load 64-bit constant" instruction; values are
//! assembled from `lui` (upper 20 bits), `addi(w)` (12-bit signed chunks)
//! and `slli` shifts. The paper singles this out as error-prone because
//! each 12-bit chunk is *signed*: adding a chunk with bit 11 set borrows
//! from everything above it, so the remaining upper part must be
//! pre-compensated.

use rvdyn_isa::{Instruction, Op, Reg};

fn mk(op: Op) -> Instruction {
    Instruction::new(0, 0, 4, op)
}

fn addi(rd: Reg, rs1: Reg, imm: i64) -> Instruction {
    let mut i = mk(Op::Addi);
    i.rd = Some(rd);
    i.rs1 = Some(rs1);
    i.imm = imm;
    i
}

fn addiw(rd: Reg, rs1: Reg, imm: i64) -> Instruction {
    let mut i = mk(Op::Addiw);
    i.rd = Some(rd);
    i.rs1 = Some(rs1);
    i.imm = imm;
    i
}

fn lui(rd: Reg, imm: i64) -> Instruction {
    let mut i = mk(Op::Lui);
    i.rd = Some(rd);
    i.imm = imm;
    i
}

fn slli(rd: Reg, rs1: Reg, sh: i64) -> Instruction {
    let mut i = mk(Op::Slli);
    i.rd = Some(rd);
    i.rs1 = Some(rs1);
    i.imm = sh;
    i
}

/// Materialise `value` into `rd` using only `rd` as scratch.
///
/// Returns the (position-independent) instruction sequence. The sequence
/// is minimal for the common cases: 1 instruction for 12-bit values,
/// 2 for 32-bit, and the standard `lui`+chunked `slli`/`addi` ladder for
/// full 64-bit constants.
pub fn load_imm(rd: Reg, value: i64) -> Vec<Instruction> {
    let mut out = Vec::with_capacity(8);
    load_imm_into(&mut out, rd, value);
    out
}

fn load_imm_into(out: &mut Vec<Instruction>, rd: Reg, value: i64) {
    // 12-bit signed: single addi from x0.
    if (-(1 << 11)..(1 << 11)).contains(&value) {
        out.push(addi(rd, Reg::X0, value));
        return;
    }
    // 32-bit signed: lui + addiw.
    if value >= i32::MIN as i64 && value <= i32::MAX as i64 {
        let lo = (value << 52) >> 52; // sign-extended low 12
        let hi = (value.wrapping_sub(lo) as i32) as i64; // compensated upper 20
        if hi != 0 {
            out.push(lui(rd, hi));
            if lo != 0 {
                out.push(addiw(rd, rd, lo));
            }
        } else {
            out.push(addi(rd, Reg::X0, lo));
        }
        return;
    }
    // 64-bit: materialise the upper part, shift, add 12-bit chunks.
    // Split into (upper = value without the low 12 bits, compensated for
    // the signed chunk) and recurse.
    let lo = (value << 52) >> 52;
    let upper = value.wrapping_sub(lo) >> 12;
    load_imm_into(out, rd, upper);
    out.push(slli(rd, rd, 12));
    if lo != 0 {
        out.push(addi(rd, rd, lo));
    }
}

/// Compute the pair for a PC-relative reference: `auipc rd, HI` followed by
/// a `LO`-displacement instruction (`addi`/load/store/`jalr`), such that
/// `pc + sext(HI) + sext(LO) == target`.
///
/// Returns `(hi20, lo12)` where `hi20` is already shifted into U-format
/// position (a multiple of 0x1000), or `None` when the displacement is
/// outside `auipc` range — note the reachable window is
/// `[-2^31 - 2^11, 2^31 - 2^11)`, *not* a symmetric ±2 GiB, because the
/// low chunk is signed (§3.2.5's "not straightforward" immediates).
pub fn pcrel_parts(pc: u64, target: u64) -> Option<(i64, i64)> {
    let off = target.wrapping_sub(pc) as i64;
    let lo = (off << 52) >> 52;
    let hi = off.wrapping_sub(lo);
    debug_assert_eq!(hi & 0xFFF, 0);
    if hi < i32::MIN as i64 || hi > i32::MAX as i64 {
        return None;
    }
    Some((hi, lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_isa::semantics::{eval_int, FlatMemory, IntState};

    /// Execute a materialisation sequence and return the resulting value.
    fn run(seq: &[Instruction], rd: Reg) -> u64 {
        let mut st = IntState::new(0);
        let mut mem = FlatMemory::new(0, 8);
        for i in seq {
            eval_int(i, &mut st, &mut mem);
        }
        st.get(rd)
    }

    fn check(v: i64) {
        let rd = Reg::x(10);
        let seq = load_imm(rd, v);
        assert_eq!(
            run(&seq, rd) as i64,
            v,
            "materialisation of {v:#x} wrong (seq: {seq:?})"
        );
        // All encodings must be valid.
        for i in &seq {
            rvdyn_isa::encode::encode32(i).unwrap();
        }
    }

    #[test]
    fn small_values_single_instruction() {
        for v in [0i64, 1, -1, 2047, -2048] {
            assert_eq!(load_imm(Reg::x(5), v).len(), 1);
            check(v);
        }
    }

    #[test]
    fn thirty_two_bit_values() {
        for v in [
            2048i64,
            -2049,
            0x12345,
            0x1234_5678,
            -0x1234_5678,
            i32::MAX as i64,
            i32::MIN as i64,
            0x7FFF_F800,
            0x7FFF_F7FF,
        ] {
            let n = load_imm(Reg::x(5), v).len();
            assert!(n <= 2, "{v:#x} took {n} instructions");
            check(v);
        }
    }

    #[test]
    fn sixty_four_bit_values() {
        for v in [
            0x1_0000_0000i64,
            i64::MAX,
            i64::MIN,
            0x1234_5678_9ABC_DEF0,
            -0x1234_5678_9ABC_DEF0,
            0x8000_0000_0000_0001u64 as i64,
            0xDEAD_BEEF_CAFE_F00Du64 as i64,
        ] {
            check(v);
        }
    }

    #[test]
    fn boundary_carries() {
        // Values whose low 12 bits have bit 11 set force the signed-chunk
        // compensation — the exact case the paper flags as error-prone.
        for v in [
            0x800i64,
            0xFFF,
            0x7FF_FFF,
            0x800_0800,
            -0x800,
            0xFFFF_F800u32 as i64,
        ] {
            check(v);
        }
    }

    #[test]
    fn pcrel_window_boundaries() {
        // The reachable window is asymmetric: [-2^31 - 2^11, 2^31 - 2^11),
        // because the low 12-bit chunk is signed. Pin all four edges
        // (these cover the proptest-regressions seed `pc = 0,
        // target = 2147481600`, i.e. off = 2^31 - 2^11).
        let hi_in = (1i64 << 31) - (1 << 11) - 1; // largest reachable
        let hi_out = (1i64 << 31) - (1 << 11); // first unreachable above
        let lo_in = -(1i64 << 31) - (1 << 11); // smallest reachable
        let lo_out = -(1i64 << 31) - (1 << 11) - 1; // first unreachable below
        for (off, expect_some) in [
            (hi_in, true),
            (hi_out, false),
            (lo_in, true),
            (lo_out, false),
        ] {
            let pc = 0x4000_0000_0000u64;
            let target = pc.wrapping_add(off as u64);
            match pcrel_parts(pc, target) {
                Some((hi, lo)) => {
                    assert!(expect_some, "off={off:#x} should be rejected");
                    assert_eq!(hi & 0xFFF, 0);
                    assert!((-2048..=2047).contains(&lo));
                    assert!((i32::MIN as i64..=i32::MAX as i64).contains(&hi));
                    assert_eq!(
                        pc.wrapping_add(hi as u64).wrapping_add(lo as u64),
                        target,
                        "off={off:#x}"
                    );
                }
                None => {
                    assert!(!expect_some, "off={off:#x} should be reachable");
                }
            }
        }
    }

    #[test]
    fn pcrel_parts_reconstruct_target() {
        for (pc, target) in [
            (0x10000u64, 0x10800u64),
            (0x10000, 0x0F800),
            (0x10000, 0x7FFF_FFFF),
            (0x7FFF_0000, 0x10),
            (0x10_0000, 0x10_0000),
        ] {
            let (hi, lo) = pcrel_parts(pc, target).unwrap();
            assert_eq!(hi % 0x1000, 0);
            assert!((-2048..=2047).contains(&lo));
            assert_eq!(
                pc.wrapping_add(hi as u64).wrapping_add(lo as u64),
                target,
                "pc={pc:#x} target={target:#x}"
            );
        }
    }
}
