//! The machine-independent snippet AST (§2, "Instrumentation Toolkits").
//!
//! A snippet is an abstract syntax tree describing code to insert at an
//! instrumentation point. The AST is completely architecture independent —
//! tools written against it port to a new ISA for free, which is the whole
//! point of Dyninst's design. [`crate::Emitter`] lowers it to RV64
//! instructions.

use rvdyn_isa::Reg;

/// An instrumentation variable: a slot in the patch area's data region.
///
/// Variables are allocated by PatchAPI (`allocate_var`) and addressed
/// absolutely by generated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var {
    /// Absolute address of the slot in the mutatee's address space.
    pub addr: u64,
    /// Width in bytes (1, 2, 4 or 8).
    pub size: u8,
}

/// Binary operators available to snippets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    LtS,
    LeS,
    GtS,
    GeS,
}

/// Unary operators available to snippets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// The snippet AST. Expression nodes produce a value; statement nodes do
/// not. [`Snippet::Seq`] sequences statements; an expression used as a
/// statement is evaluated for effect.
#[derive(Debug, Clone, PartialEq)]
pub enum Snippet {
    /// 64-bit constant.
    Const(i64),
    /// Read a mutatee register (the pre-instrumentation value, which the
    /// trampoline preserves).
    ReadReg(Reg),
    /// Write a mutatee register. **Use with care** — this changes mutatee
    /// state, which is legitimate for some tools (fault injection) but not
    /// for passive tracing.
    WriteReg(Reg, Box<Snippet>),
    /// Read an instrumentation variable.
    ReadVar(Var),
    /// Write an instrumentation variable.
    WriteVar(Var, Box<Snippet>),
    /// `*(addr)` — load from a computed address.
    ReadMem { addr: Box<Snippet>, size: u8 },
    /// `*(addr) = val` — store to a computed address.
    WriteMem {
        addr: Box<Snippet>,
        val: Box<Snippet>,
        size: u8,
    },
    /// Binary operation.
    Bin(BinaryOp, Box<Snippet>, Box<Snippet>),
    /// Unary operation.
    Un(UnaryOp, Box<Snippet>),
    /// Conditional: if `cond != 0` run `then_`, else `else_`.
    If {
        cond: Box<Snippet>,
        then_: Box<Snippet>,
        else_: Option<Box<Snippet>>,
    },
    /// Statement sequence.
    Seq(Vec<Snippet>),
    /// `var += 1` — the canonical counter snippet used by the paper's
    /// benchmarks ("this instrumentation simply increments a counter in
    /// memory", §4.1).
    IncrementVar(Var),
    /// Call a mutatee (or instrumentation-library) function by absolute
    /// address with up to 8 integer arguments.
    Call { target: u64, args: Vec<Snippet> },
    /// No-op.
    Nop,
}

impl Snippet {
    /// `var += 1`.
    pub fn increment(var: Var) -> Snippet {
        Snippet::IncrementVar(var)
    }

    /// The `i`-th integer argument of the function containing the point
    /// (Dyninst's `BPatch_paramExpr`): valid at function-entry points,
    /// where the psABI guarantees arguments in `a0`–`a7`. Panics if
    /// `i >= 8` (stack-passed arguments are not modelled).
    pub fn param(i: u8) -> Snippet {
        assert!(i < 8, "only register arguments a0-a7 are addressable");
        Snippet::ReadReg(Reg::x(10 + i))
    }

    /// The function's integer return value (`a0`) — valid at exit points.
    pub fn return_value() -> Snippet {
        Snippet::ReadReg(Reg::x(10))
    }

    /// Convenience: `a op b`.
    pub fn bin(op: BinaryOp, a: Snippet, b: Snippet) -> Snippet {
        Snippet::Bin(op, Box::new(a), Box::new(b))
    }

    /// Number of scratch registers needed to evaluate this snippet
    /// (Sethi–Ullman-style bound; the emitter requests this many from the
    /// register allocator up front).
    pub fn scratch_needs(&self) -> u32 {
        match self {
            Snippet::Const(_) | Snippet::ReadReg(_) | Snippet::Nop => 1,
            Snippet::ReadVar(_) => 2,
            Snippet::WriteVar(_, v) => v.scratch_needs().max(1) + 1,
            Snippet::WriteReg(_, v) => v.scratch_needs(),
            Snippet::ReadMem { addr, .. } => addr.scratch_needs(),
            Snippet::WriteMem { addr, val, .. } => {
                (addr.scratch_needs() + 1).max(val.scratch_needs() + 1)
            }
            Snippet::Bin(_, a, b) => {
                let (x, y) = (a.scratch_needs(), b.scratch_needs());
                if x == y {
                    x + 1
                } else {
                    x.max(y)
                }
            }
            Snippet::Un(_, a) => a.scratch_needs(),
            Snippet::If { cond, then_, else_ } => cond
                .scratch_needs()
                .max(then_.scratch_needs())
                .max(else_.as_ref().map_or(0, |e| e.scratch_needs())),
            Snippet::Seq(v) => v.iter().map(|s| s.scratch_needs()).max().unwrap_or(1),
            Snippet::IncrementVar(_) => 2,
            Snippet::Call { args, .. } => {
                args.iter().map(|s| s.scratch_needs()).max().unwrap_or(0) + 1
            }
        }
    }

    /// Does the snippet contain a function call? (Patch-time decision: the
    /// trampoline must then preserve the full caller-saved set.)
    pub fn contains_call(&self) -> bool {
        match self {
            Snippet::Call { .. } => true,
            Snippet::WriteReg(_, v) | Snippet::WriteVar(_, v) | Snippet::Un(_, v) => {
                v.contains_call()
            }
            Snippet::ReadMem { addr, .. } => addr.contains_call(),
            Snippet::WriteMem { addr, val, .. } => addr.contains_call() || val.contains_call(),
            Snippet::Bin(_, a, b) => a.contains_call() || b.contains_call(),
            Snippet::If { cond, then_, else_ } => {
                cond.contains_call()
                    || then_.contains_call()
                    || else_.as_ref().is_some_and(|e| e.contains_call())
            }
            Snippet::Seq(v) => v.iter().any(|s| s.contains_call()),
            _ => false,
        }
    }

    /// Mutatee registers this snippet writes (beyond scratch): tools use
    /// this to check a snippet is side-effect-free.
    pub fn mutates_registers(&self) -> bool {
        match self {
            Snippet::WriteReg(..) => true,
            Snippet::WriteVar(_, v) | Snippet::Un(_, v) => v.mutates_registers(),
            Snippet::ReadMem { addr, .. } => addr.mutates_registers(),
            Snippet::WriteMem { addr, val, .. } => {
                addr.mutates_registers() || val.mutates_registers()
            }
            Snippet::Bin(_, a, b) => a.mutates_registers() || b.mutates_registers(),
            Snippet::If { cond, then_, else_ } => {
                cond.mutates_registers()
                    || then_.mutates_registers()
                    || else_.as_ref().is_some_and(|e| e.mutates_registers())
            }
            Snippet::Seq(v) => v.iter().any(|s| s.mutates_registers()),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_needs_bounds() {
        let v = Var {
            addr: 0x30000,
            size: 8,
        };
        assert_eq!(Snippet::increment(v).scratch_needs(), 2);
        // (a + b) * (c + d): needs 3 by Sethi–Ullman.
        let e = Snippet::bin(
            BinaryOp::Mul,
            Snippet::bin(BinaryOp::Add, Snippet::Const(1), Snippet::Const(2)),
            Snippet::bin(BinaryOp::Add, Snippet::Const(3), Snippet::Const(4)),
        );
        assert_eq!(e.scratch_needs(), 3);
        // A right-leaning chain stays at 2.
        let chain = Snippet::bin(
            BinaryOp::Add,
            Snippet::Const(1),
            Snippet::bin(BinaryOp::Add, Snippet::Const(2), Snippet::Const(3)),
        );
        assert_eq!(chain.scratch_needs(), 2);
    }

    #[test]
    fn call_detection() {
        let s = Snippet::Seq(vec![
            Snippet::Nop,
            Snippet::If {
                cond: Box::new(Snippet::Const(1)),
                then_: Box::new(Snippet::Call {
                    target: 0x1000,
                    args: vec![],
                }),
                else_: None,
            },
        ]);
        assert!(s.contains_call());
        assert!(!Snippet::Nop.contains_call());
    }

    #[test]
    fn mutation_detection() {
        let v = Var {
            addr: 0x30000,
            size: 8,
        };
        assert!(!Snippet::increment(v).mutates_registers());
        let w = Snippet::WriteReg(rvdyn_isa::Reg::x(10), Box::new(Snippet::Const(0)));
        assert!(w.mutates_registers());
    }
}
