//! # rvdyn-codegen — snippet code generation (CodeGenAPI)
//!
//! The rvdyn equivalent of Dyninst's *CodeGenAPI* (§3.2.5): it transforms
//! the machine-independent snippet AST into RV64 instruction sequences,
//! honouring the mutatee's ISA profile (never emitting instructions from
//! extensions the target lacks) and drawing scratch registers from the
//! dead-register sets produced by DataflowAPI's liveness analysis — the
//! register-allocation optimisation the paper credits for the low RISC-V
//! instrumentation overhead (§4.3).
//!
//! Layers:
//!
//! * [`imm`] — immediate materialisation: the `lui`/`addi`/`slli` sequence
//!   construction the paper calls "one of the more error-prone aspects of
//!   code generation" for RISC-V; property-tested for exactness over all
//!   of `u64`.
//! * [`snippet`] — the machine-independent AST (Dyninst's `BPatch_snippet`
//!   analogue): arithmetic, memory, variables, conditionals, sequences.
//! * [`regalloc`] — scratch-register pools built from liveness information
//!   with explicit spill fallback (ablation A1 forces the spill path).
//! * [`emitter`] — AST → instruction lowering.

pub mod emitter;
pub mod imm;
pub mod regalloc;
pub mod snippet;

pub use emitter::{generate, generate_with_stats, CodeBuffer, CodeGenError, Emitter, LowerStats};
pub use regalloc::{RegAllocMode, RegAllocator};
pub use snippet::{BinaryOp, Snippet, UnaryOp, Var};
