//! Snippet AST → RV64 instruction lowering.
//!
//! The emitter walks the snippet tree, evaluating expressions into scratch
//! registers obtained from the [`RegAllocator`] and emitting straight-line
//! code with small internal branches for [`Snippet::If`]. The output is a
//! list of [`rvdyn_isa::Instruction`] values with intra-buffer branch offsets already
//! resolved; PatchAPI wraps it with the spill frame and splices it into a
//! trampoline.

use crate::imm::load_imm;
use crate::regalloc::RegAllocator;
use crate::snippet::{BinaryOp, Snippet, UnaryOp};
use rvdyn_isa::build;
use rvdyn_isa::{Extension, IsaProfile, Op, Reg};
use std::fmt;

/// Code generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeGenError {
    /// The snippet needs more scratch registers than exist.
    OutOfRegisters,
    /// The operation requires an extension the mutatee's profile lacks
    /// (§3.1.1: "Dyninst should not generate instrumentation code using
    /// any instructions from that specific extension").
    ExtensionUnavailable { ext: Extension, what: &'static str },
    /// Unsupported operand width.
    BadWidth(u8),
    /// An internal branch target ended up out of B-format range
    /// (snippet too large).
    BranchOutOfRange,
}

impl fmt::Display for CodeGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeGenError::OutOfRegisters => {
                write!(f, "snippet requires more scratch registers than available")
            }
            CodeGenError::ExtensionUnavailable { ext, what } => write!(
                f,
                "cannot generate {what}: mutatee profile lacks the {} extension",
                ext.name()
            ),
            CodeGenError::BadWidth(w) => write!(f, "unsupported access width {w}"),
            CodeGenError::BranchOutOfRange => {
                write!(f, "internal snippet branch exceeds ±4 KiB")
            }
        }
    }
}

impl std::error::Error for CodeGenError {}

/// An instruction buffer with intra-buffer label support.
#[derive(Debug, Default)]
pub struct CodeBuffer {
    insts: Vec<Instrs>,
    next_label: u32,
}

#[derive(Debug)]
enum Instrs {
    Inst(rvdyn_isa::Instruction),
    /// Conditional branch to `label` when `rs1 op rs2` (encoded as the Op).
    Branch {
        op: Op,
        rs1: Reg,
        rs2: Reg,
        label: u32,
    },
    /// Unconditional jump to `label`.
    Jump {
        label: u32,
    },
    /// Label definition.
    Label(u32),
}

impl CodeBuffer {
    pub fn new() -> CodeBuffer {
        CodeBuffer::default()
    }

    pub fn push(&mut self, i: rvdyn_isa::Instruction) {
        self.insts.push(Instrs::Inst(i));
    }

    pub fn extend(&mut self, is: impl IntoIterator<Item = rvdyn_isa::Instruction>) {
        for i in is {
            self.push(i);
        }
    }

    fn fresh_label(&mut self) -> u32 {
        self.next_label += 1;
        self.next_label
    }

    /// Resolve labels to byte offsets and produce final instructions
    /// (each 4 bytes wide; snippet code is never compressed so offsets are
    /// trivially stable).
    fn resolve(self) -> Result<Vec<rvdyn_isa::Instruction>, CodeGenError> {
        // First pass: byte offset of each element; labels occupy 0 bytes.
        let mut offsets = Vec::with_capacity(self.insts.len());
        let mut label_off = std::collections::HashMap::new();
        let mut pos: i64 = 0;
        for e in &self.insts {
            offsets.push(pos);
            match e {
                Instrs::Label(l) => {
                    label_off.insert(*l, pos);
                }
                _ => pos += 4,
            }
        }
        // Second pass: emit.
        let mut out = Vec::with_capacity(self.insts.len());
        for (e, &off) in self.insts.iter().zip(&offsets) {
            match e {
                Instrs::Inst(i) => out.push(*i),
                Instrs::Branch {
                    op,
                    rs1,
                    rs2,
                    label,
                } => {
                    let delta = label_off[label] - off;
                    if !(-4096..4096).contains(&delta) {
                        return Err(CodeGenError::BranchOutOfRange);
                    }
                    out.push(build::b_type(*op, *rs1, *rs2, delta));
                }
                Instrs::Jump { label } => {
                    let delta = label_off[label] - off;
                    out.push(build::jal(Reg::X0, delta));
                }
                Instrs::Label(_) => {}
            }
        }
        Ok(out)
    }
}

/// The snippet emitter.
pub struct Emitter<'a> {
    buf: CodeBuffer,
    alloc: &'a mut RegAllocator,
    profile: IsaProfile,
    uses_call: bool,
}

impl<'a> Emitter<'a> {
    pub fn new(alloc: &'a mut RegAllocator, profile: IsaProfile) -> Emitter<'a> {
        Emitter {
            buf: CodeBuffer::new(),
            alloc,
            profile,
            uses_call: false,
        }
    }

    /// Lower a snippet (as a statement).
    pub fn emit(&mut self, s: &Snippet) -> Result<(), CodeGenError> {
        match s {
            Snippet::Nop => Ok(()),
            Snippet::Seq(v) => {
                for s in v {
                    self.emit(s)?;
                }
                Ok(())
            }
            Snippet::WriteReg(rd, val) => {
                let r = self.expr(val)?;
                self.buf.push(build::mv(*rd, r));
                self.alloc.release(r);
                Ok(())
            }
            Snippet::WriteVar(var, val) => {
                let v = self.expr(val)?;
                let a = self.acquire()?;
                self.buf.extend(load_imm(a, var.addr as i64));
                self.store(v, a, 0, var.size)?;
                self.alloc.release(a);
                self.alloc.release(v);
                Ok(())
            }
            Snippet::WriteMem { addr, val, size } => {
                let a = self.expr(addr)?;
                let v = self.expr(val)?;
                self.store(v, a, 0, *size)?;
                self.alloc.release(v);
                self.alloc.release(a);
                Ok(())
            }
            Snippet::IncrementVar(var) => {
                // The canonical counter: la t, addr; ld u, 0(t);
                // addi u, u, 1; sd u, 0(t).
                let a = self.acquire()?;
                let u = self.acquire()?;
                self.buf.extend(load_imm(a, var.addr as i64));
                self.load(u, a, 0, var.size, false)?;
                self.buf.push(build::addi(u, u, 1));
                self.store(u, a, 0, var.size)?;
                self.alloc.release(u);
                self.alloc.release(a);
                Ok(())
            }
            Snippet::If { cond, then_, else_ } => {
                let c = self.expr(cond)?;
                let l_else = self.buf.fresh_label();
                let l_end = self.buf.fresh_label();
                self.buf.insts.push(Instrs::Branch {
                    op: Op::Beq,
                    rs1: c,
                    rs2: Reg::X0,
                    label: l_else,
                });
                self.alloc.release(c);
                self.emit(then_)?;
                if else_.is_some() {
                    self.buf.insts.push(Instrs::Jump { label: l_end });
                }
                self.buf.insts.push(Instrs::Label(l_else));
                if let Some(e) = else_ {
                    self.emit(e)?;
                    self.buf.insts.push(Instrs::Label(l_end));
                }
                Ok(())
            }
            Snippet::Call { target, args } => {
                let r = self.emit_call(*target, args)?;
                self.alloc.release(r);
                Ok(())
            }
            // Expression used as a statement: evaluate for effect.
            other => {
                let r = self.expr(other)?;
                self.alloc.release(r);
                Ok(())
            }
        }
    }

    /// Lower an expression; the result register must be released by the
    /// caller.
    fn expr(&mut self, s: &Snippet) -> Result<Reg, CodeGenError> {
        match s {
            Snippet::Const(v) => {
                let r = self.acquire()?;
                self.buf.extend(load_imm(r, *v));
                Ok(r)
            }
            Snippet::ReadReg(src) => {
                let r = self.acquire()?;
                self.buf.push(build::mv(r, *src));
                Ok(r)
            }
            Snippet::ReadVar(var) => {
                let r = self.acquire()?;
                self.buf.extend(load_imm(r, var.addr as i64));
                self.load(r, r, 0, var.size, false)?;
                Ok(r)
            }
            Snippet::ReadMem { addr, size } => {
                let a = self.expr(addr)?;
                self.load(a, a, 0, *size, true)?;
                Ok(a)
            }
            Snippet::Un(op, a) => {
                let r = self.expr(a)?;
                match op {
                    UnaryOp::Neg => self.buf.push(build::sub(r, Reg::X0, r)),
                    UnaryOp::Not => self.buf.push(build::i_type(Op::Xori, r, r, -1)),
                }
                Ok(r)
            }
            Snippet::Bin(op, a, b) => {
                // Evaluate the deeper side first (Sethi–Ullman order).
                let (ra, rb) = if a.scratch_needs() >= b.scratch_needs() {
                    let ra = self.expr(a)?;
                    let rb = self.expr(b)?;
                    (ra, rb)
                } else {
                    let rb = self.expr(b)?;
                    let ra = self.expr(a)?;
                    (ra, rb)
                };
                self.bin_op(*op, ra, ra, rb)?;
                self.alloc.release(rb);
                Ok(ra)
            }
            Snippet::Call { target, args } => {
                // The call's value is the callee's a0.
                self.emit_call(*target, args)
            }
            Snippet::If { .. }
            | Snippet::Seq(_)
            | Snippet::WriteReg(..)
            | Snippet::WriteVar(..)
            | Snippet::WriteMem { .. }
            | Snippet::IncrementVar(_)
            | Snippet::Nop => {
                // Statement in expression position: evaluate, yield 0.
                self.emit(s)?;
                let r = self.acquire()?;
                self.buf.push(build::mv(r, Reg::X0));
                Ok(r)
            }
        }
    }

    fn bin_op(&mut self, op: BinaryOp, rd: Reg, a: Reg, b: Reg) -> Result<(), CodeGenError> {
        let push = |buf: &mut CodeBuffer, o: Op| buf.push(build::r_type(o, rd, a, b));
        match op {
            BinaryOp::Add => push(&mut self.buf, Op::Add),
            BinaryOp::Sub => push(&mut self.buf, Op::Sub),
            BinaryOp::And => push(&mut self.buf, Op::And),
            BinaryOp::Or => push(&mut self.buf, Op::Or),
            BinaryOp::Xor => push(&mut self.buf, Op::Xor),
            BinaryOp::Shl => push(&mut self.buf, Op::Sll),
            BinaryOp::Shr => push(&mut self.buf, Op::Srl),
            BinaryOp::Mul | BinaryOp::Div => {
                if !self.profile.has(Extension::M) {
                    return Err(CodeGenError::ExtensionUnavailable {
                        ext: Extension::M,
                        what: "multiply/divide snippet",
                    });
                }
                push(
                    &mut self.buf,
                    if op == BinaryOp::Mul {
                        Op::Mul
                    } else {
                        Op::Div
                    },
                );
            }
            BinaryOp::LtS => push(&mut self.buf, Op::Slt),
            BinaryOp::GeS => {
                push(&mut self.buf, Op::Slt);
                self.buf.push(build::i_type(Op::Xori, rd, rd, 1));
            }
            BinaryOp::GtS => {
                self.buf.push(build::r_type(Op::Slt, rd, b, a));
            }
            BinaryOp::LeS => {
                self.buf.push(build::r_type(Op::Slt, rd, b, a));
                self.buf.push(build::i_type(Op::Xori, rd, rd, 1));
            }
            BinaryOp::Eq => {
                push(&mut self.buf, Op::Sub);
                self.buf.push(build::i_type(Op::Sltiu, rd, rd, 1));
            }
            BinaryOp::Ne => {
                push(&mut self.buf, Op::Sub);
                self.buf.push(build::r_type(Op::Sltu, rd, Reg::X0, rd));
            }
        }
        Ok(())
    }

    fn load(
        &mut self,
        rd: Reg,
        base: Reg,
        off: i64,
        size: u8,
        signed: bool,
    ) -> Result<(), CodeGenError> {
        let op = match (size, signed) {
            (1, false) => Op::Lbu,
            (1, true) => Op::Lb,
            (2, false) => Op::Lhu,
            (2, true) => Op::Lh,
            (4, false) => Op::Lwu,
            (4, true) => Op::Lw,
            (8, _) => Op::Ld,
            (w, _) => return Err(CodeGenError::BadWidth(w)),
        };
        self.buf.push(build::i_type(op, rd, base, off));
        Ok(())
    }

    fn store(&mut self, val: Reg, base: Reg, off: i64, size: u8) -> Result<(), CodeGenError> {
        let op = match size {
            1 => Op::Sb,
            2 => Op::Sh,
            4 => Op::Sw,
            8 => Op::Sd,
            w => return Err(CodeGenError::BadWidth(w)),
        };
        self.buf.push(build::s_type(op, base, val, off));
        Ok(())
    }

    /// Emit a function call and return the scratch register holding the
    /// callee's `a0`.
    ///
    /// The callee may clobber the whole caller-saved set — which is also
    /// where snippet temporaries live — so every in-use scratch register
    /// is preserved in a private stack frame across the call, and the
    /// arguments are routed *through that frame* into `a0..` (a direct
    /// `mv` chain could clobber a temp that happens to be an argument
    /// register). `ra` doubles as the call-address register: it is
    /// clobbered by `jalr` anyway and the whole-snippet wrapper already
    /// preserves it when live.
    fn emit_call(&mut self, target: u64, args: &[Snippet]) -> Result<Reg, CodeGenError> {
        self.uses_call = true;
        if args.len() > 8 {
            return Err(CodeGenError::OutOfRegisters);
        }
        // Evaluate arguments into scratch registers.
        let mut tmps = Vec::with_capacity(args.len());
        for a in args {
            tmps.push(self.expr(a)?);
        }
        // Everything currently handed out that is NOT an argument temp
        // must survive the call.
        let preserve: Vec<Reg> = self
            .alloc
            .in_use()
            .into_iter()
            .filter(|r| !tmps.contains(r))
            .collect();
        let slots = preserve.len() + tmps.len();
        let frame = ((slots * 8 + 15) & !15) as i64;
        if frame > 0 {
            self.buf.push(build::addi(Reg::X2, Reg::X2, -frame));
            for (i, &r) in preserve.iter().chain(tmps.iter()).enumerate() {
                self.buf.push(build::sd(r, Reg::X2, (i * 8) as i64));
            }
        }
        // Arguments: load from the frame into a0..an.
        for (i, _) in tmps.iter().enumerate() {
            let slot = (preserve.len() + i) * 8;
            self.buf
                .push(build::ld(Reg::x(10 + i as u8), Reg::X2, slot as i64));
        }
        for t in tmps {
            self.alloc.release(t);
        }
        // li ra, target ; jalr ra, 0(ra)
        self.buf.extend(load_imm(Reg::X1, target as i64));
        self.buf.push(build::jalr(Reg::X1, Reg::X1, 0));
        // Capture the result before restoring anything it could alias.
        let result = self.acquire()?;
        self.buf.push(build::mv(result, Reg::x(10)));
        if frame > 0 {
            for (i, &r) in preserve.iter().enumerate() {
                if r == result {
                    // The allocator can never hand out a preserved (in-use)
                    // register, but keep the invariant explicit.
                    continue;
                }
                self.buf.push(build::ld(r, Reg::X2, (i * 8) as i64));
            }
            self.buf.push(build::addi(Reg::X2, Reg::X2, frame));
        }
        Ok(result)
    }

    fn acquire(&mut self) -> Result<Reg, CodeGenError> {
        self.alloc.acquire().ok_or(CodeGenError::OutOfRegisters)
    }

    /// Did any emitted snippet contain a function call?
    pub fn uses_call(&self) -> bool {
        self.uses_call
    }

    /// Finish: resolve internal branches and return the instruction list
    /// (without the spill frame — the caller composes that from
    /// [`RegAllocator::frame`]).
    pub fn finish(self) -> Result<Vec<rvdyn_isa::Instruction>, CodeGenError> {
        self.buf.resolve()
    }
}

/// Per-point lowering statistics — what the register allocator did while
/// lowering one snippet sequence (telemetry's `PointLowered` payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Registers spilled to a stack frame (the §4.3 slow path).
    pub spills: usize,
    /// Scratch grants served from the dead-register pool for free.
    pub dead_scratch: usize,
}

/// Convenience entry point: lower `snippet` at a point with `dead`
/// registers free, returning the complete sequence including any spill
/// frame, plus the spill count (for diagnostics/ablation).
pub fn generate(
    snippet: &Snippet,
    dead: rvdyn_isa::RegSet,
    mode: crate::regalloc::RegAllocMode,
    profile: IsaProfile,
) -> Result<(Vec<rvdyn_isa::Instruction>, usize), CodeGenError> {
    generate_with_stats(snippet, dead, mode, profile).map(|(code, st)| (code, st.spills))
}

/// As [`generate`], additionally reporting how the scratch registers were
/// obtained (dead pool vs. spill) for per-point telemetry.
pub fn generate_with_stats(
    snippet: &Snippet,
    dead: rvdyn_isa::RegSet,
    mode: crate::regalloc::RegAllocMode,
    profile: IsaProfile,
) -> Result<(Vec<rvdyn_isa::Instruction>, LowerStats), CodeGenError> {
    let mut alloc = RegAllocator::new(dead, mode);
    let mut em = Emitter::new(&mut alloc, profile);
    em.emit(snippet)?;
    let body = em.finish()?;
    let stats = LowerStats {
        spills: alloc.spill_count(),
        dead_scratch: alloc.dead_grants(),
    };
    let (pro, epi) = alloc.frame();

    // A snippet containing a Call lets the callee clobber the entire
    // caller-saved set, so every *live* caller-saved register (integer
    // and FP, including ra) is preserved in an outer stack frame — the
    // same conservative treatment Dyninst applies to call snippets,
    // pruned here by liveness.
    let call_saves: Vec<Reg> = if snippet.contains_call() {
        (0..64u8)
            .map(Reg::from_index)
            .filter(|r| r.is_caller_saved() && !dead.contains(*r))
            .collect()
    } else {
        Vec::new()
    };

    let mut out = Vec::new();
    if !call_saves.is_empty() {
        let frame = ((call_saves.len() * 8 + 15) & !15) as i64;
        out.push(build::addi(Reg::X2, Reg::X2, -frame));
        for (i, &r) in call_saves.iter().enumerate() {
            let off = (i * 8) as i64;
            out.push(match r.class() {
                rvdyn_isa::RegClass::Gpr => build::sd(r, Reg::X2, off),
                rvdyn_isa::RegClass::Fpr => build::fsd(r, Reg::X2, off),
            });
        }
    }
    out.extend(pro);
    out.extend(body);
    out.extend(epi);
    if !call_saves.is_empty() {
        let frame = ((call_saves.len() * 8 + 15) & !15) as i64;
        for (i, &r) in call_saves.iter().enumerate() {
            let off = (i * 8) as i64;
            out.push(match r.class() {
                rvdyn_isa::RegClass::Gpr => build::ld(r, Reg::X2, off),
                rvdyn_isa::RegClass::Fpr => build::fld(r, Reg::X2, off),
            });
        }
        out.push(build::addi(Reg::X2, Reg::X2, frame));
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::RegAllocMode;
    use crate::snippet::Var;
    use rvdyn_isa::semantics::{eval_int, EvalOutcome, FlatMemory, IntState, MemoryBus};
    use rvdyn_isa::RegSet;

    /// Run generated code on the reference evaluator.
    fn run(insts: &[rvdyn_isa::Instruction], st: &mut IntState, mem: &mut FlatMemory) {
        // Lay the instructions out at pc=0x100 so branches work.
        let mut pc = 0x100u64;
        let mut laid = Vec::new();
        for i in insts {
            let mut j = *i;
            j.address = pc;
            pc += 4;
            laid.push(j);
        }
        let mut ip = 0usize;
        let mut steps = 0;
        while ip < laid.len() {
            steps += 1;
            assert!(steps < 10_000, "runaway snippet");
            st.pc = laid[ip].address;
            match eval_int(&laid[ip], st, mem) {
                EvalOutcome::Next => ip += 1,
                EvalOutcome::Jump(t) => {
                    ip = ((t - 0x100) / 4) as usize;
                }
                o => panic!("unexpected outcome {o:?}"),
            }
        }
    }

    fn dead_all() -> RegSet {
        RegSet::ALL_GPR
    }

    #[test]
    fn increment_var_counts() {
        let var = Var {
            addr: 0x8000,
            size: 8,
        };
        let (code, spills) = generate(
            &Snippet::increment(var),
            dead_all(),
            RegAllocMode::DeadRegisters,
            IsaProfile::rv64gc(),
        )
        .unwrap();
        assert_eq!(spills, 0);
        let mut st = IntState::new(0);
        let mut mem = FlatMemory::new(0x8000, 64);
        run(&code, &mut st, &mut mem);
        run(&code, &mut st, &mut mem);
        run(&code, &mut st, &mut mem);
        assert_eq!(mem.load(0x8000, 8), 3);
    }

    #[test]
    fn arithmetic_expression_value() {
        // v = (7 + 3) * 4 - 1 → 39 stored to var
        let var = Var {
            addr: 0x8000,
            size: 8,
        };
        let e = Snippet::WriteVar(
            var,
            Box::new(Snippet::bin(
                BinaryOp::Sub,
                Snippet::bin(
                    BinaryOp::Mul,
                    Snippet::bin(BinaryOp::Add, Snippet::Const(7), Snippet::Const(3)),
                    Snippet::Const(4),
                ),
                Snippet::Const(1),
            )),
        );
        let (code, _) = generate(
            &e,
            dead_all(),
            RegAllocMode::DeadRegisters,
            IsaProfile::rv64gc(),
        )
        .unwrap();
        let mut st = IntState::new(0);
        let mut mem = FlatMemory::new(0x8000, 64);
        run(&code, &mut st, &mut mem);
        assert_eq!(mem.load(0x8000, 8), 39);
    }

    #[test]
    fn conditional_both_arms() {
        // if (reg a0 < 10) var = 1 else var = 2
        let var = Var {
            addr: 0x8000,
            size: 8,
        };
        let s = Snippet::If {
            cond: Box::new(Snippet::bin(
                BinaryOp::LtS,
                Snippet::ReadReg(Reg::x(10)),
                Snippet::Const(10),
            )),
            then_: Box::new(Snippet::WriteVar(var, Box::new(Snippet::Const(1)))),
            else_: Some(Box::new(Snippet::WriteVar(
                var,
                Box::new(Snippet::Const(2)),
            ))),
        };
        // Exclude a0 from the dead set: the snippet reads it.
        let mut dead = dead_all();
        dead.remove(Reg::x(10));
        let (code, _) =
            generate(&s, dead, RegAllocMode::DeadRegisters, IsaProfile::rv64gc()).unwrap();

        let mut st = IntState::new(0);
        st.set(Reg::x(10), 5);
        let mut mem = FlatMemory::new(0x8000, 64);
        run(&code, &mut st, &mut mem);
        assert_eq!(mem.load(0x8000, 8), 1);

        let mut st = IntState::new(0);
        st.set(Reg::x(10), 50);
        let mut mem = FlatMemory::new(0x8000, 64);
        run(&code, &mut st, &mut mem);
        assert_eq!(mem.load(0x8000, 8), 2);
    }

    #[test]
    fn force_spill_creates_frame_and_preserves_values() {
        let var = Var {
            addr: 0x8000,
            size: 8,
        };
        let (code, spills) = generate(
            &Snippet::increment(var),
            dead_all(),
            RegAllocMode::ForceSpill,
            IsaProfile::rv64gc(),
        )
        .unwrap();
        assert!(spills >= 2);
        // First instruction must build the frame; last must tear it down.
        assert_eq!(code[0].op, Op::Addi);
        assert!(code[0].imm < 0);
        // Execute and verify the scratch registers are preserved.
        let mut st = IntState::new(0);
        st.set(Reg::X2, 0x9000);
        let saved: Vec<(Reg, u64)> = (5..8).map(|n| (Reg::x(n), 0x1111 * n as u64)).collect();
        for &(r, v) in &saved {
            st.set(r, v);
        }
        let mut mem = FlatMemory::new(0x8000, 0x2000);
        run(&code, &mut st, &mut mem);
        assert_eq!(mem.load(0x8000, 8), 1);
        assert_eq!(st.get(Reg::X2), 0x9000, "sp not restored");
        for &(r, v) in &saved {
            assert_eq!(st.get(r), v, "{r:?} clobbered");
        }
    }

    #[test]
    fn division_requires_m_extension() {
        let e = Snippet::bin(BinaryOp::Div, Snippet::Const(10), Snippet::Const(2));
        let profile: IsaProfile = "rv64ic".parse().unwrap();
        let err = generate(&e, dead_all(), RegAllocMode::DeadRegisters, profile).unwrap_err();
        assert!(matches!(
            err,
            CodeGenError::ExtensionUnavailable {
                ext: Extension::M,
                ..
            }
        ));
    }

    #[test]
    fn comparison_operators() {
        let var = Var {
            addr: 0x8000,
            size: 8,
        };
        for (op, a, b, expect) in [
            (BinaryOp::Eq, 4i64, 4i64, 1u64),
            (BinaryOp::Eq, 4, 5, 0),
            (BinaryOp::Ne, 4, 5, 1),
            (BinaryOp::LtS, -1, 0, 1),
            (BinaryOp::GeS, -1, 0, 0),
            (BinaryOp::GtS, 3, 2, 1),
            (BinaryOp::LeS, 2, 2, 1),
        ] {
            let s = Snippet::WriteVar(
                var,
                Box::new(Snippet::bin(op, Snippet::Const(a), Snippet::Const(b))),
            );
            let (code, _) = generate(
                &s,
                dead_all(),
                RegAllocMode::DeadRegisters,
                IsaProfile::rv64gc(),
            )
            .unwrap();
            let mut st = IntState::new(0);
            let mut mem = FlatMemory::new(0x8000, 64);
            run(&code, &mut st, &mut mem);
            assert_eq!(mem.load(0x8000, 8), expect, "{op:?}({a},{b})");
        }
    }

    #[test]
    fn all_generated_code_encodes() {
        let var = Var {
            addr: 0xDEAD_BEEF_0000,
            size: 4,
        };
        let s = Snippet::Seq(vec![
            Snippet::increment(var),
            Snippet::WriteMem {
                addr: Box::new(Snippet::Const(0x8000)),
                val: Box::new(Snippet::ReadVar(var)),
                size: 4,
            },
        ]);
        let (code, _) = generate(
            &s,
            RegSet::EMPTY,
            RegAllocMode::DeadRegisters,
            IsaProfile::rv64gc(),
        )
        .unwrap();
        for i in &code {
            rvdyn_isa::encode::encode32(i).unwrap();
        }
    }
}
