//! Scratch-register allocation for instrumentation code (§4.3).
//!
//! "When instrumentation needs registers, we attempt to use dead registers
//! (ones that do not contain values used later in the execution). If such
//! registers are available, spilling the contents can be avoided." — this
//! is the optimisation the paper credits for RISC-V's 15.3% per-block
//! overhead vs x86's 66.9%.
//!
//! The allocator receives the dead-register set at the instrumentation
//! point from DataflowAPI's liveness analysis and hands scratch registers
//! to the emitter. When the dead pool is exhausted — or in
//! [`RegAllocMode::ForceSpill`], the ablation mode used by benchmark A1 —
//! registers are spilled to a small stack frame the trampoline creates.

use rvdyn_isa::{Instruction, Op, Reg, RegSet};

/// Allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegAllocMode {
    /// Prefer dead registers; spill only when the pool runs dry.
    DeadRegisters,
    /// Ignore liveness and spill every scratch register (models the
    /// pre-optimisation x86 Dyninst behaviour; ablation A1).
    ForceSpill,
}

/// The per-point scratch register allocator.
#[derive(Debug, Clone)]
pub struct RegAllocator {
    /// Registers free for use without saving.
    dead_pool: Vec<Reg>,
    /// Registers handed out that must be spilled/restored.
    spilled: Vec<Reg>,
    /// Registers currently handed out.
    in_use: Vec<Reg>,
    /// Scratch grants satisfied from the dead pool (zero-cost path).
    dead_grants: usize,
    mode: RegAllocMode,
}

/// Candidate scratch registers, in preference order: temporaries first,
/// then argument registers. `ra`/`sp`/`gp`/`tp` are never used as scratch.
const CANDIDATES: [u8; 14] = [5, 6, 7, 28, 29, 30, 31, 10, 11, 12, 13, 14, 15, 16];

impl RegAllocator {
    /// Build an allocator for a point where `dead` registers are free
    /// (as computed by liveness; pass `RegSet::EMPTY` when liveness is
    /// unavailable — e.g. analysis of a gap region — to force spills).
    pub fn new(dead: RegSet, mode: RegAllocMode) -> RegAllocator {
        let dead_pool = match mode {
            RegAllocMode::DeadRegisters => CANDIDATES
                .iter()
                .map(|&n| Reg::x(n))
                .filter(|r| dead.contains(*r))
                .collect(),
            RegAllocMode::ForceSpill => Vec::new(),
        };
        RegAllocator {
            dead_pool,
            spilled: Vec::new(),
            in_use: Vec::new(),
            dead_grants: 0,
            mode,
        }
    }

    /// Number of registers that had to be spilled so far.
    pub fn spill_count(&self) -> usize {
        self.spilled.len()
    }

    /// Number of scratch grants satisfied from the dead pool so far (the
    /// §4.3 zero-cost path; the complement of [`Self::spill_count`]).
    pub fn dead_grants(&self) -> usize {
        self.dead_grants
    }

    /// Registers currently handed out (live snippet temporaries). The
    /// emitter preserves these across snippet-internal function calls.
    pub fn in_use(&self) -> Vec<Reg> {
        self.in_use.clone()
    }

    pub fn mode(&self) -> RegAllocMode {
        self.mode
    }

    /// Acquire a scratch register. Dead registers come for free; otherwise
    /// the register is recorded for spilling and the trampoline prologue /
    /// epilogue (from [`RegAllocator::frame`]) saves and restores it.
    pub fn acquire(&mut self) -> Option<Reg> {
        if let Some(r) = self.dead_pool.pop() {
            self.in_use.push(r);
            self.dead_grants += 1;
            return Some(r);
        }
        // Pick the next candidate not already handed out.
        for &n in &CANDIDATES {
            let r = Reg::x(n);
            if !self.in_use.contains(&r) && !self.spilled.contains(&r) {
                self.spilled.push(r);
                self.in_use.push(r);
                return Some(r);
            }
        }
        None
    }

    /// Release a scratch register back to the allocator.
    pub fn release(&mut self, r: Reg) {
        if let Some(pos) = self.in_use.iter().position(|&x| x == r) {
            self.in_use.remove(pos);
            if !self.spilled.contains(&r) {
                self.dead_pool.push(r);
            }
        }
    }

    /// The spill frame: `(prologue, epilogue)` instruction sequences that
    /// save and restore every spilled register on a private stack frame.
    /// Empty when nothing was spilled — the zero-cost dead-register path.
    pub fn frame(&self) -> (Vec<Instruction>, Vec<Instruction>) {
        if self.spilled.is_empty() {
            return (Vec::new(), Vec::new());
        }
        // 16-byte aligned frame per the RISC-V ABI.
        let frame = ((self.spilled.len() * 8 + 15) & !15) as i64;
        let mut pro = Vec::with_capacity(self.spilled.len() + 1);
        let mut epi = Vec::with_capacity(self.spilled.len() + 1);
        let mut addi = Instruction::new(0, 0, 4, Op::Addi);
        addi.rd = Some(Reg::X2);
        addi.rs1 = Some(Reg::X2);
        addi.imm = -frame;
        pro.push(addi);
        for (i, &r) in self.spilled.iter().enumerate() {
            let mut sd = Instruction::new(0, 0, 4, Op::Sd);
            sd.rs1 = Some(Reg::X2);
            sd.rs2 = Some(r);
            sd.imm = (i * 8) as i64;
            pro.push(sd);
            let mut ld = Instruction::new(0, 0, 4, Op::Ld);
            ld.rd = Some(r);
            ld.rs1 = Some(Reg::X2);
            ld.imm = (i * 8) as i64;
            epi.push(ld);
        }
        let mut undo = Instruction::new(0, 0, 4, Op::Addi);
        undo.rd = Some(Reg::X2);
        undo.rs1 = Some(Reg::X2);
        undo.imm = frame;
        epi.push(undo);
        (pro, epi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_registers_cost_nothing() {
        let dead = RegSet::of(&[Reg::x(5), Reg::x(6), Reg::x(7)]);
        let mut a = RegAllocator::new(dead, RegAllocMode::DeadRegisters);
        let r1 = a.acquire().unwrap();
        let r2 = a.acquire().unwrap();
        assert!(dead.contains(r1) && dead.contains(r2));
        assert_eq!(a.spill_count(), 0);
        let (pro, epi) = a.frame();
        assert!(pro.is_empty() && epi.is_empty());
    }

    #[test]
    fn exhausted_pool_spills() {
        let dead = RegSet::of(&[Reg::x(5)]);
        let mut a = RegAllocator::new(dead, RegAllocMode::DeadRegisters);
        let _r1 = a.acquire().unwrap();
        let r2 = a.acquire().unwrap(); // must spill
        assert_eq!(a.spill_count(), 1);
        assert!(!dead.contains(r2));
        let (pro, epi) = a.frame();
        // addi + 1 sd / 1 ld + addi
        assert_eq!(pro.len(), 2);
        assert_eq!(epi.len(), 2);
        assert_eq!(pro[0].op, Op::Addi);
        assert_eq!(pro[0].imm, -16);
        assert_eq!(epi[1].imm, 16);
    }

    #[test]
    fn force_spill_spills_everything() {
        let dead = RegSet::ALL_GPR;
        let mut a = RegAllocator::new(dead, RegAllocMode::ForceSpill);
        a.acquire().unwrap();
        a.acquire().unwrap();
        assert_eq!(a.spill_count(), 2);
    }

    #[test]
    fn release_and_reuse() {
        let dead = RegSet::of(&[Reg::x(5)]);
        let mut a = RegAllocator::new(dead, RegAllocMode::DeadRegisters);
        let r = a.acquire().unwrap();
        a.release(r);
        let r2 = a.acquire().unwrap();
        assert_eq!(r, r2);
        assert_eq!(a.spill_count(), 0);
    }

    #[test]
    fn never_hands_out_duplicates() {
        let mut a = RegAllocator::new(RegSet::EMPTY, RegAllocMode::DeadRegisters);
        let mut seen = std::collections::HashSet::new();
        while let Some(r) = a.acquire() {
            assert!(seen.insert(r), "duplicate scratch {r:?}");
        }
        assert_eq!(seen.len(), CANDIDATES.len());
    }
}
