//! # rvdyn-stackwalker — call-stack walking (StackwalkerAPI)
//!
//! The rvdyn equivalent of Dyninst's *StackwalkerAPI* (§3.2.7): collect
//! the call stack of a stopped mutatee, one frame per executing function.
//!
//! The paper flags the RISC-V difficulty precisely: although the ABI
//! designates `x8`/`s0` as a frame pointer, "many compilers choose to use
//! x8 as a general purpose register … most compilers handle stack frames
//! using only the stack pointer register", so new *frame steppers* are
//! needed. StackwalkerAPI is plugin-based; this crate ships two steppers
//! in the architecture the paper describes:
//!
//! * [`SpHeightStepper`] — the primary RISC-V stepper: uses DataflowAPI's
//!   stack-height analysis to recover the frame size and the saved-`ra`
//!   slot at any pc, requiring no frame pointer at all;
//! * [`FpStepper`] — the classic frame-pointer chain (`s0` →
//!   `[fp-8]=ra, [fp-16]=old fp`), for code compiled with frame pointers.
//!
//! Steppers are tried in order; the first that produces a caller frame
//! wins — exactly Dyninst's plugin protocol.
//!
//! ## Consumers
//!
//! `examples/stack_sampler.rs` is the STAT-style consumer: it stops a
//! running mutatee at a planted breakpoint and, on each hit, walks the
//! stack with the stepper chain to profile recursion depth. The walker
//! operates on any stopped [`rvdyn_proccontrol::Process`], which
//! includes every member of a `FleetController` fleet — `with_process`
//! hands a tool the raw process, so a whole-workload sampler walks all
//! N mutatees from one event loop (see `docs/FLEET.md`).

use rvdyn_dataflow::{stackheight::Height, StackHeight};
use rvdyn_isa::Reg;
use rvdyn_parse::CodeObject;
use rvdyn_proccontrol::Process;

/// One frame of a walked stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Program counter in this frame (return address for outer frames).
    pub pc: u64,
    /// Stack pointer on entry to this frame's function (best effort).
    pub sp: u64,
    /// Entry address of the function, when known.
    pub func_entry: Option<u64>,
    /// Function name, when known.
    pub func_name: Option<String>,
    /// This frame's frame pointer (`s0` on entry), when recovered by a
    /// stepper. The innermost frame leaves it `None` (the live register
    /// is the source of truth there); [`FpStepper`] fills it for outer
    /// frames so the saved-fp chain can be followed past the first
    /// caller instead of re-reading the live register at every depth.
    pub fp: Option<u64>,
}

/// The source of truth a stepper consults: registers + memory of the
/// stopped mutatee.
pub trait WalkTarget {
    fn reg(&self, r: Reg) -> u64;
    fn read_u64(&self, addr: u64) -> Option<u64>;
}

impl WalkTarget for Process {
    fn reg(&self, r: Reg) -> u64 {
        self.get_reg(r)
    }

    fn read_u64(&self, addr: u64) -> Option<u64> {
        let b = self.read_mem(addr, 8).ok()?;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }
}

/// A frame stepper: given the current frame, produce the caller's frame.
pub trait FrameStepper {
    /// A short identifier for diagnostics.
    fn name(&self) -> &'static str;

    /// Step from `frame` (with `ra_live` true only for the innermost
    /// frame, where the return address may still be in the register).
    fn step(
        &self,
        target: &dyn WalkTarget,
        co: &CodeObject,
        frame: &Frame,
        ra_live: bool,
    ) -> Option<Frame>;
}

/// SP-based stepper driven by stack-height analysis (§3.2.7).
pub struct SpHeightStepper;

impl FrameStepper for SpHeightStepper {
    fn name(&self) -> &'static str {
        "sp-height"
    }

    fn step(
        &self,
        target: &dyn WalkTarget,
        co: &CodeObject,
        frame: &Frame,
        ra_live: bool,
    ) -> Option<Frame> {
        let f = co.function_containing(frame.pc)?;
        let sh = StackHeight::analyze(f);
        let info = sh.frame_at(f, frame.pc);
        let Height::Known(h) = info.height else {
            return None;
        };
        let entry_sp = frame.sp.wrapping_add(h as u64);
        let ra = match info.ra_slot {
            Some(off) => target.read_u64(entry_sp.wrapping_add(off as u64))?,
            None if ra_live => target.reg(Reg::X1),
            None => return None,
        };
        if ra == 0 {
            return None;
        }
        Some(mk_frame(co, ra, entry_sp))
    }
}

/// Frame-pointer chain stepper: `s0` points just above the frame;
/// `[fp-8] = ra`, `[fp-16] = caller s0` (the standard gcc layout when
/// `-fno-omit-frame-pointer`).
pub struct FpStepper;

impl FrameStepper for FpStepper {
    fn name(&self) -> &'static str {
        "frame-pointer"
    }

    fn step(
        &self,
        target: &dyn WalkTarget,
        co: &CodeObject,
        frame: &Frame,
        _ra_live: bool,
    ) -> Option<Frame> {
        // Innermost frame: the live register holds this frame's fp.
        // Outer frames: the chain value recovered from `[fp-16]` below —
        // the live register belongs to the innermost function only.
        let fp = frame.fp.unwrap_or_else(|| target.reg(Reg::X8));
        if fp <= frame.sp || fp - frame.sp > 1 << 20 {
            return None; // s0 is clearly not a frame pointer here
        }
        let ra = target.read_u64(fp.wrapping_sub(8))?;
        if ra == 0 {
            return None;
        }
        let caller_fp = target.read_u64(fp.wrapping_sub(16))?;
        let mut fr = mk_frame(co, ra, fp);
        fr.fp = Some(caller_fp);
        Some(fr)
    }
}

fn mk_frame(co: &CodeObject, pc: u64, sp: u64) -> Frame {
    let f = co.function_containing(pc);
    Frame {
        pc,
        sp,
        func_entry: f.map(|f| f.entry),
        func_name: f.and_then(|f| f.name.clone()),
        fp: None,
    }
}

/// The walker: an ordered stepper pipeline.
pub struct StackWalker {
    steppers: Vec<Box<dyn FrameStepper>>,
    max_frames: usize,
    /// Optional pc translation applied before frame resolution — used to
    /// map patch-area (relocated) addresses back to original code when
    /// walking an *instrumented* process (PatchAPI's `RelocationIndex`).
    translate: Option<Box<dyn Fn(u64) -> u64>>,
}

impl Default for StackWalker {
    fn default() -> StackWalker {
        StackWalker {
            steppers: vec![Box::new(SpHeightStepper), Box::new(FpStepper)],
            max_frames: 1024,
            translate: None,
        }
    }
}

impl StackWalker {
    pub fn new() -> StackWalker {
        StackWalker::default()
    }

    /// Replace the stepper pipeline (plugin architecture, §3.2.7).
    pub fn with_steppers(steppers: Vec<Box<dyn FrameStepper>>) -> StackWalker {
        StackWalker {
            steppers,
            max_frames: 1024,
            translate: None,
        }
    }

    /// Install a pc translator (e.g.
    /// `move |pc| reloc_index.to_original(pc)`) so walks through
    /// instrumented code resolve frames against the original binary.
    pub fn with_translation(mut self, f: impl Fn(u64) -> u64 + 'static) -> StackWalker {
        self.translate = Some(Box::new(f));
        self
    }

    fn xlate(&self, pc: u64) -> u64 {
        match &self.translate {
            Some(f) => f(pc),
            None => pc,
        }
    }

    /// Walk the stack of a stopped target. The first frame is the current
    /// pc/sp; walking stops at `_start`-like frames (no known caller).
    pub fn walk(&self, target: &dyn WalkTarget, co: &CodeObject, pc: u64, sp: u64) -> Vec<Frame> {
        let pc = self.xlate(pc);
        let mut frames = vec![mk_frame(co, pc, sp)];
        let mut ra_live = true;
        while frames.len() < self.max_frames {
            let cur = frames.last().unwrap().clone();
            let mut next = None;
            for s in &self.steppers {
                if let Some(fr) = s.step(target, co, &cur, ra_live) {
                    next = Some(fr);
                    break;
                }
            }
            match next {
                Some(mut fr) => {
                    let t = self.xlate(fr.pc);
                    if t != fr.pc {
                        let fp = fr.fp;
                        fr = mk_frame(co, t, fr.sp);
                        fr.fp = fp;
                    }
                    // A frame that doesn't resolve to a known function ends
                    // the walk (returned into runtime scaffolding).
                    let done = fr.func_entry.is_none();
                    frames.push(fr);
                    if done {
                        break;
                    }
                }
                None => break,
            }
            ra_live = false;
        }
        frames
    }

    /// Convenience: walk a stopped [`Process`].
    pub fn walk_process(&self, p: &Process, co: &CodeObject) -> Vec<Frame> {
        self.walk(p, co, p.pc(), p.get_reg(Reg::X2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_asm::{deep_call_program, fib_program};
    use rvdyn_parse::ParseOptions;
    use rvdyn_proccontrol::Event;

    #[test]
    fn walk_deep_recursion_at_trap() {
        let depth = 12u64;
        let bin = deep_call_program(depth);
        let co = CodeObject::parse(&bin, &ParseOptions::default());
        let mut p = Process::launch(&bin);
        match p.cont().unwrap() {
            Event::Trap(_) => {}
            e => panic!("expected trap, got {e:?}"),
        }
        let frames = StackWalker::new().walk_process(&p, &co);
        // descend × (depth+1), then main, then _start.
        let descend: usize = frames
            .iter()
            .filter(|f| f.func_name.as_deref() == Some("descend"))
            .count();
        assert_eq!(descend, depth as usize + 1, "frames: {frames:?}");
        assert!(frames
            .iter()
            .any(|f| f.func_name.as_deref() == Some("main")));
        let names: Vec<_> = frames.iter().map(|f| f.func_name.clone()).collect();
        assert_eq!(
            names.last().unwrap().as_deref(),
            Some("_start"),
            "walk should reach _start: {names:?}"
        );
    }

    #[test]
    fn walk_mid_function_with_ra_in_register() {
        // Stop at a function entry (prologue not yet run): the return
        // address is still in ra.
        let bin = fib_program(4);
        let co = CodeObject::parse(&bin, &ParseOptions::default());
        let fib = bin.symbol_by_name("fib").unwrap().value;
        let mut p = Process::launch(&bin);
        p.set_breakpoint(fib).unwrap();
        assert!(matches!(p.cont().unwrap(), Event::Breakpoint(_)));
        let frames = StackWalker::new().walk_process(&p, &co);
        assert!(frames.len() >= 3, "fib, main, _start: {frames:?}");
        assert_eq!(frames[0].func_name.as_deref(), Some("fib"));
        assert_eq!(frames[1].func_name.as_deref(), Some("main"));
    }

    #[test]
    fn recursive_frames_counted_exactly() {
        // Break deep inside the recursion and count fib frames.
        let bin = fib_program(5);
        let co = CodeObject::parse(&bin, &ParseOptions::default());
        let fib = bin.symbol_by_name("fib").unwrap().value;
        let mut p = Process::launch(&bin);
        p.set_breakpoint(fib).unwrap();
        // Hit the breakpoint several times: recursion deepens leftwards
        // fib(5)→fib(4)→fib(3)→fib(2): at the 4th hit the stack holds 4
        // fib frames.
        for _ in 0..4 {
            assert!(matches!(p.cont().unwrap(), Event::Breakpoint(_)));
        }
        let frames = StackWalker::new().walk_process(&p, &co);
        let fib_frames = frames
            .iter()
            .filter(|f| f.func_name.as_deref() == Some("fib"))
            .count();
        assert_eq!(fib_frames, 4, "{frames:?}");
    }

    #[test]
    fn custom_stepper_pipeline() {
        // A pipeline with only the FP stepper fails on sp-only code
        // (our programs never maintain s0 as a frame pointer).
        let bin = deep_call_program(3);
        let co = CodeObject::parse(&bin, &ParseOptions::default());
        let mut p = Process::launch(&bin);
        assert!(matches!(p.cont().unwrap(), Event::Trap(_)));
        let w = StackWalker::with_steppers(vec![Box::new(FpStepper)]);
        let frames = w.walk_process(&p, &co);
        assert_eq!(frames.len(), 1, "FP stepper alone cannot walk sp-only code");
        // The default pipeline succeeds (sp-height stepper first).
        let frames = StackWalker::new().walk_process(&p, &co);
        assert!(frames.len() > 3);
    }
}

#[cfg(test)]
mod instrumented_walk_tests {
    use super::*;
    use rvdyn_parse::ParseOptions;
    use rvdyn_proccontrol::Event;

    #[test]
    fn walk_through_instrumented_code_with_translation() {
        // Instrument `descend` per-block (relocating it into the patch
        // area), run to its own `ebreak` — which now executes at a
        // PATCH-AREA pc — and walk the stack with the relocation
        // translation installed. Without translation the walk dies at
        // frame 0; with it, every recursion level resolves.
        let depth = 9u64;
        let bin = rvdyn_asm::deep_call_program(depth);
        let co = CodeObject::parse(&bin, &ParseOptions::default());
        let desc = bin.symbol_by_name("descend").unwrap().value;

        let mut ins = rvdyn_patch::Instrumenter::new(&bin, &co);
        let counter = ins.alloc_var(8);
        let pts =
            rvdyn_patch::find_points(&co.functions[&desc], rvdyn_patch::PointKind::BlockEntry);
        for p in pts {
            ins.insert(p, rvdyn_codegen::snippet::Snippet::increment(counter));
        }
        let patched = ins.apply().unwrap();

        let mut p = Process::launch(&patched.binary);
        match p.cont().unwrap() {
            Event::Trap(pc) => {
                assert!(
                    patched.reloc_index.is_relocated(pc),
                    "the ebreak must execute inside the relocated copy ({pc:#x})"
                );
            }
            e => panic!("expected trap, got {e:?}"),
        }

        // Untranslated: frame 0 is unresolvable (pc in the patch area).
        let plain = StackWalker::new().walk_process(&p, &co);
        assert!(plain[0].func_name.is_none());

        // Translated: full stack.
        let idx = patched.reloc_index.clone();
        let walker = StackWalker::new().with_translation(move |pc| idx.to_original(pc));
        let frames = walker.walk_process(&p, &co);
        let descend_frames = frames
            .iter()
            .filter(|f| f.func_name.as_deref() == Some("descend"))
            .count();
        assert_eq!(descend_frames, depth as usize + 1, "{frames:#?}");
        assert!(frames
            .iter()
            .any(|f| f.func_name.as_deref() == Some("main")));
    }
}
