//! Edge instrumentation end-to-end (§2's branch-taken / branch-not-taken
//! point classes): counters attached to branch *edges* must count exactly
//! the executions of those edges — and their sum must equal the branch's
//! dynamic execution count.

use rvdyn_asm::{matmul_program, memcpy_program};
use rvdyn_codegen::snippet::Snippet;
use rvdyn_emu::{load_binary, StopReason};
use rvdyn_parse::{CodeObject, ParseOptions};
use rvdyn_patch::{find_points, Instrumenter, PointKind};
use rvdyn_symtab::Binary;

fn run(bin: &Binary, fuel: u64) -> rvdyn_emu::Machine {
    let mut m = load_binary(bin);
    m.fuel = Some(fuel);
    assert_eq!(m.run(), StopReason::Exited(0));
    m
}

#[test]
fn taken_plus_not_taken_equals_branch_executions() {
    // memcpy's copy loop: `bge idx, len, done` executes len+1 times —
    // not-taken len times (loop continues), taken once (exit).
    let bin = memcpy_program();
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let copy = bin.symbol_by_name("copy").unwrap().value;
    let f = &co.functions[&copy];
    let msg_len = bin.symbol_by_name("message").unwrap().size;

    let mut ins = Instrumenter::new(&bin, &co);
    let c_taken = ins.alloc_var(8);
    let c_not = ins.alloc_var(8);
    let taken_pts = find_points(f, PointKind::BranchTaken);
    let not_pts = find_points(f, PointKind::BranchNotTaken);
    assert_eq!(taken_pts.len(), 1, "copy has one conditional branch");
    assert_eq!(not_pts.len(), 1);
    ins.insert_at_points(&taken_pts, &Snippet::increment(c_taken));
    ins.insert_at_points(&not_pts, &Snippet::increment(c_not));
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 10_000_000);

    let taken = m.mem.load(c_taken.addr, 8).unwrap();
    let not_taken = m.mem.load(c_not.addr, 8).unwrap();
    assert_eq!(taken, 1, "loop exits once");
    assert_eq!(not_taken, msg_len, "loop body runs len times");
    // And the program output is unharmed.
    assert_eq!(m.stdout, b"rvdyn: binary instrumentation on RISC-V\n");
}

#[test]
fn matmul_loop_branch_edges_count_iterations_exactly() {
    let n = 7u64;
    let bin = matmul_program(n as usize, 1);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];

    // matmul has 3 conditional branches (the three loop heads).
    let taken_pts = find_points(f, PointKind::BranchTaken);
    assert_eq!(taken_pts.len(), 3);

    let mut ins = Instrumenter::new(&bin, &co);
    let c_taken = ins.alloc_var(8);
    let c_not = ins.alloc_var(8);
    ins.insert_at_points(&taken_pts, &Snippet::increment(c_taken));
    ins.insert_at_points(
        &find_points(f, PointKind::BranchNotTaken),
        &Snippet::increment(c_not),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 500_000_000);

    // Loop-head `bge i/j/k, N` branches: each is taken exactly when its
    // loop exits: i-loop 1, j-loop n, k-loop n².
    let expect_taken = 1 + n + n * n;
    // Not-taken = loop body entries: i-loop n, j-loop n², k-loop n³.
    let expect_not = n + n * n + n * n * n;
    assert_eq!(m.mem.load(c_taken.addr, 8).unwrap(), expect_taken);
    assert_eq!(m.mem.load(c_not.addr, 8).unwrap(), expect_not);

    // Result matrix must be intact.
    let c_addr = bin.symbol_by_name("mat_c").unwrap().value;
    let n = n as usize;
    for i in 0..n {
        for j in 0..n {
            let mut expect = 0.0f64;
            for k in 0..n {
                expect += (i + k) as f64 * (k as f64 - j as f64);
            }
            let got = f64::from_bits(m.mem.load(c_addr + ((i * n + j) * 8) as u64, 8).unwrap());
            assert_eq!(got, expect, "C[{i}][{j}]");
        }
    }
}

#[test]
fn edge_counters_compose_with_block_counters() {
    // All three point classes on the same function simultaneously.
    let n = 5u64;
    let bin = matmul_program(n as usize, 1);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];

    let mut ins = Instrumenter::new(&bin, &co);
    let c_blocks = ins.alloc_var(8);
    let c_taken = ins.alloc_var(8);
    let c_not = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(f, PointKind::BlockEntry),
        &Snippet::increment(c_blocks),
    );
    ins.insert_at_points(
        &find_points(f, PointKind::BranchTaken),
        &Snippet::increment(c_taken),
    );
    ins.insert_at_points(
        &find_points(f, PointKind::BranchNotTaken),
        &Snippet::increment(c_not),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 500_000_000);

    let blocks = m.mem.load(c_blocks.addr, 8).unwrap();
    let taken = m.mem.load(c_taken.addr, 8).unwrap();
    let not_taken = m.mem.load(c_not.addr, 8).unwrap();
    // Branch executions = taken + not-taken = executions of the three
    // loop-head blocks (B2, B4, B6).
    let heads = (n + 1) + n * (n + 1) + n * n * (n + 1);
    assert_eq!(taken + not_taken, heads);
    // Block counter: the closed form.
    let expect_blocks =
        1 + (n + 1) + n + n * (n + 1) + n * n + n * n * (n + 1) + n * n * n + 3 * n * n - n * n
            + n
            + 1;
    assert_eq!(blocks, expect_blocks);
}
