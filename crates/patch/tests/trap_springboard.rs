//! The §3.1.2 worst case, end to end: "In exceptional cases, such as
//! functions that are shorter than four bytes, these longer jumps cannot
//! be used. Dyninst will … ultimately resorting to the inefficient 2-byte
//! trap instructions in the worst case."
//!
//! The mutatee is `rvdyn_asm::tiny_function_program`: its hot function is
//! a single 2-byte `c.j` tail call — a real 2-byte function. Instrumenting
//! it forces the trap springboard; the rewritten ELF carries a
//! `.rvdyn.traps` table, and the execution substrate resolves the trap
//! exactly as the injected SIGTRAP handler would on hardware.

use rvdyn_asm::tiny_function_program;
use rvdyn_codegen::snippet::Snippet;
use rvdyn_emu::{load_binary, StopReason};
use rvdyn_parse::{CodeObject, ParseOptions};
use rvdyn_patch::{find_points, Instrumenter, PointKind, SpringboardKind};
use rvdyn_symtab::Binary;

#[test]
fn two_byte_function_forces_trap_and_still_counts() {
    let iters = 50u64;
    let bin = tiny_function_program(iters);
    let tiny_addr = bin.symbol_by_name("tiny").unwrap().value;
    let result_addr = bin.symbol_by_name("result").unwrap().value;

    // Sanity: uninstrumented program works. sum = Σ (i + 3).
    let expect_sum: u64 = (0..iters).map(|i| i + 3).sum();
    let mut m = load_binary(&bin);
    m.fuel = Some(10_000_000);
    assert_eq!(m.run(), StopReason::Exited(0));
    assert_eq!(m.mem.load(result_addr, 8).unwrap(), expect_sum);

    // The springboard planner must pick Trap for this site: 2-byte budget,
    // patch area ~0x7_0000 away.
    let sb = rvdyn_patch::plan_springboard(
        tiny_addr,
        0x8_0000,
        2,
        rvdyn_isa::IsaProfile::rv64gc(),
        rvdyn_isa::RegSet::ALL_GPR,
    );
    assert_eq!(sb.kind, SpringboardKind::Trap);

    // Instrument tiny's entry; apply; the patch must emit a trap table.
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    let f = &co.functions[&tiny_addr];
    ins.insert_at_points(
        &find_points(f, PointKind::FuncEntry),
        &Snippet::increment(counter),
    );
    let patched = ins.apply().unwrap();
    assert!(
        !patched.trap_table.is_empty(),
        "2-byte function must use the trap springboard"
    );
    assert!(patched.binary.section_by_name(".rvdyn.traps").is_some());

    // Static path through a real ELF file image.
    let elf = patched.binary.to_bytes().unwrap();
    let rebin = Binary::parse(&elf).unwrap();
    let mut m = load_binary(&rebin);
    m.fuel = Some(50_000_000);
    assert_eq!(m.run(), StopReason::Exited(0));
    assert_eq!(
        m.mem.load(counter.addr, 8).unwrap(),
        iters,
        "trap path must count"
    );
    assert_eq!(
        m.mem.load(result_addr, 8).unwrap(),
        expect_sum,
        "semantics preserved"
    );

    // And the trap cost shows up in the cycle model (the "inefficient"
    // part of the paper's remark).
    let mut base = load_binary(&bin);
    base.fuel = Some(10_000_000);
    base.run();
    assert!(
        m.cycles > base.cycles + iters * 1000,
        "trap round trips must cost"
    );
}
