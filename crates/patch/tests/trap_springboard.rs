//! The §3.1.2 worst case, end to end: "In exceptional cases, such as
//! functions that are shorter than four bytes, these longer jumps cannot
//! be used. Dyninst will … ultimately resorting to the inefficient 2-byte
//! trap instructions in the worst case."
//!
//! We build a mutatee whose hot function is a single 2-byte `c.j` tail
//! call — a real 2-byte function. Instrumenting it forces the trap
//! springboard; the rewritten ELF carries a `.rvdyn.traps` table, and the
//! execution substrate resolves the trap exactly as the injected SIGTRAP
//! handler would on hardware.

use rvdyn_asm::Assembler;
use rvdyn_codegen::snippet::Snippet;
use rvdyn_emu::{load_binary, StopReason};
use rvdyn_isa::Reg;
use rvdyn_parse::{CodeObject, ParseOptions};
use rvdyn_patch::{find_points, Instrumenter, PointKind, SpringboardKind};
use rvdyn_symtab::{
    Binary, RiscvAttributes, Section, Symbol, SymbolBinding, SymbolKind, SHF_ALLOC, SHF_EXECINSTR,
    SHF_WRITE,
};

/// main loops `iters` times calling `tiny`, which is exactly one 2-byte
/// `c.j` that tail-calls `target` (a0 += 3, return).
fn tiny_function_program(iters: u64) -> (Binary, u64) {
    let mut a = Assembler::new(0x1_0000);
    let l_main = a.label();
    let l_tiny = a.label();
    let l_target = a.label();

    a.call(l_main);
    a.li(Reg::x(17), 93);
    a.ecall();

    a.bind(l_main);
    let main_addr = a.here();
    a.addi(Reg::X2, Reg::X2, -32);
    a.sd(Reg::X1, Reg::X2, 24);
    a.sd(Reg::x(8), Reg::X2, 16);
    a.sd(Reg::x(9), Reg::X2, 8);
    a.li(Reg::x(8), iters as i64);
    a.li(Reg::x(9), 0);
    a.li(Reg::x(10), 0); // accumulator in a0 across calls? a0 is clobbered;
                         // keep sum in s-reg via returned a0.
    a.mv(Reg::x(18), Reg::X0); // s2 = sum
    let head = a.here_label();
    let done = a.label();
    a.bge(Reg::x(9), Reg::x(8), done);
    a.mv(Reg::x(10), Reg::x(9));
    a.call(l_tiny);
    a.add(Reg::x(18), Reg::x(18), Reg::x(10));
    a.addi(Reg::x(9), Reg::x(9), 1);
    a.jump(head);
    a.bind(done);
    a.li(Reg::x(5), 0x2_0000);
    a.sd(Reg::x(18), Reg::x(5), 0);
    a.mv(Reg::x(10), Reg::X0);
    a.ld(Reg::X1, Reg::X2, 24);
    a.ld(Reg::x(8), Reg::X2, 16);
    a.ld(Reg::x(9), Reg::X2, 8);
    a.addi(Reg::X2, Reg::X2, 32);
    a.ret();
    let main_size = a.here() - main_addr;

    // tiny: exactly one compressed jump (2 bytes) — a tail call.
    a.bind(l_tiny);
    let tiny_addr = a.here();
    {
        // c.j to l_target: we know l_target is just ahead; emit via the
        // assembler's compressed-instruction path once the offset is known.
        // The assembler's `jump` emits a 4-byte jal; we need the 2-byte
        // form, so place target right after and emit c.j manually.
        // Offset: l_target = tiny + 2.
        let cj = rvdyn_isa::encode::compress(&rvdyn_isa::build::jal(Reg::X0, 2)).expect("c.j +2");
        let i = rvdyn_isa::decode::decode(&cj.to_le_bytes(), 0).unwrap();
        a.c_inst({
            let mut j = rvdyn_isa::build::jal(Reg::X0, 2);
            j.compressed = i.compressed;
            j
        });
    }
    let tiny_size = a.here() - tiny_addr;
    assert_eq!(tiny_size, 2, "tiny must be a 2-byte function");

    a.bind(l_target);
    let target_addr = a.here();
    a.addi(Reg::x(10), Reg::x(10), 3);
    a.ret();
    let target_size = a.here() - target_addr;

    let code = a.finish().unwrap();
    let bin = Binary {
        entry: 0x1_0000,
        e_flags: Binary::eflags_for(rvdyn_isa::IsaProfile::rv64gc()),
        e_type: rvdyn_symtab::elf::ET_EXEC,
        sections: vec![
            Section::progbits(".text", 0x1_0000, SHF_ALLOC | SHF_EXECINSTR, code),
            Section::progbits(".data", 0x2_0000, SHF_ALLOC | SHF_WRITE, vec![0; 8]),
        ],
        symbols: vec![
            Symbol {
                name: "main".into(),
                value: main_addr,
                size: main_size,
                kind: SymbolKind::Function,
                binding: SymbolBinding::Global,
            },
            Symbol {
                name: "tiny".into(),
                value: tiny_addr,
                size: tiny_size,
                kind: SymbolKind::Function,
                binding: SymbolBinding::Global,
            },
            Symbol {
                name: "target".into(),
                value: target_addr,
                size: target_size,
                kind: SymbolKind::Function,
                binding: SymbolBinding::Global,
            },
        ],
        attributes: Some(RiscvAttributes::for_profile(rvdyn_isa::IsaProfile::rv64gc())),
    };
    (bin, tiny_addr)
}

#[test]
fn two_byte_function_forces_trap_and_still_counts() {
    let iters = 50u64;
    let (bin, tiny_addr) = tiny_function_program(iters);

    // Sanity: uninstrumented program works. sum = Σ (i + 3).
    let expect_sum: u64 = (0..iters).map(|i| i + 3).sum();
    let mut m = load_binary(&bin);
    m.fuel = Some(10_000_000);
    assert_eq!(m.run(), StopReason::Exited(0));
    assert_eq!(m.mem.load(0x2_0000, 8).unwrap(), expect_sum);

    // The springboard planner must pick Trap for this site: 2-byte budget,
    // patch area ~0x7_0000 away.
    let sb = rvdyn_patch::plan_springboard(
        tiny_addr,
        0x8_0000,
        2,
        rvdyn_isa::IsaProfile::rv64gc(),
        rvdyn_isa::RegSet::ALL_GPR,
    );
    assert_eq!(sb.kind, SpringboardKind::Trap);

    // Instrument tiny's entry; apply; the patch must emit a trap table.
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    let f = &co.functions[&tiny_addr];
    ins.insert_at_points(
        &find_points(f, PointKind::FuncEntry),
        &Snippet::increment(counter),
    );
    let patched = ins.apply().unwrap();
    assert!(
        !patched.trap_table.is_empty(),
        "2-byte function must use the trap springboard"
    );
    assert!(patched.binary.section_by_name(".rvdyn.traps").is_some());

    // Static path through a real ELF file image.
    let elf = patched.binary.to_bytes().unwrap();
    let rebin = Binary::parse(&elf).unwrap();
    let mut m = load_binary(&rebin);
    m.fuel = Some(50_000_000);
    assert_eq!(m.run(), StopReason::Exited(0));
    assert_eq!(
        m.mem.load(counter.addr, 8).unwrap(),
        iters,
        "trap path must count"
    );
    assert_eq!(
        m.mem.load(0x2_0000, 8).unwrap(),
        expect_sum,
        "semantics preserved"
    );

    // And the trap cost shows up in the cycle model (the "inefficient"
    // part of the paper's remark).
    let mut base = load_binary(&bin);
    base.fuel = Some(10_000_000);
    base.run();
    assert!(
        m.cycles > base.cycles + iters * 1000,
        "trap round trips must cost"
    );
}
