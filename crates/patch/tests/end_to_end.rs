//! End-to-end static rewriting (Figure 1, left path): build mutatee →
//! parse → instrument → rewrite ELF → execute in the emulator → check that
//! (a) the program still computes the right answers and (b) the inserted
//! counters match closed-form dynamic counts exactly.

use rvdyn_asm::{matmul_program, switch_program};
use rvdyn_codegen::regalloc::RegAllocMode;
use rvdyn_codegen::snippet::Snippet;
use rvdyn_emu::{load_binary, StopReason};
use rvdyn_parse::{CodeObject, ParseOptions};
use rvdyn_patch::{find_points, Instrumenter, PointKind};
use rvdyn_symtab::Binary;

fn run(bin: &Binary, fuel: u64) -> rvdyn_emu::Machine {
    let mut m = load_binary(bin);
    m.fuel = Some(fuel);
    let r = m.run();
    assert_eq!(r, StopReason::Exited(0), "mutatee must exit cleanly");
    m
}

/// Closed-form dynamic basic-block count of one `matmul(n)` call for the
/// 11-block structure (see rvdyn-asm::programs).
fn matmul_blocks(n: u64) -> u64 {
    1 + (n + 1) + n + n * (n + 1) + n * n + n * n * (n + 1) + n * n * n + n * n + n * n + n + 1
}

#[test]
fn function_entry_counter_counts_calls() {
    let n = 8usize;
    let reps = 5usize;
    let bin = matmul_program(n, reps);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];

    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    let pts = find_points(f, PointKind::FuncEntry);
    ins.insert_at_points(&pts, &Snippet::increment(counter));
    let patched = ins.apply().unwrap();
    assert_eq!(patched.spill_count, 0, "dead registers must suffice (§4.3)");

    // Static path: serialise to a real ELF and reparse before running.
    let elf = patched.binary.to_bytes().unwrap();
    let rebin = Binary::parse(&elf).unwrap();
    let m = run(&rebin, 200_000_000);
    assert_eq!(
        m.mem.load(counter.addr, 8).unwrap(),
        reps as u64,
        "entry counter must equal the number of calls"
    );
}

#[test]
fn basic_block_counter_matches_closed_form() {
    let n = 6usize;
    let reps = 2usize;
    let bin = matmul_program(n, reps);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];
    assert_eq!(f.blocks.len(), 11);

    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    let pts = find_points(f, PointKind::BlockEntry);
    assert_eq!(pts.len(), 11);
    ins.insert_at_points(&pts, &Snippet::increment(counter));
    let patched = ins.apply().unwrap();

    let m = run(&patched.binary, 200_000_000);
    let expect = matmul_blocks(n as u64) * reps as u64;
    assert_eq!(
        m.mem.load(counter.addr, 8).unwrap(),
        expect,
        "per-block counter must match the closed-form dynamic block count"
    );
}

#[test]
fn instrumented_matmul_still_computes_correct_product() {
    let n = 5usize;
    let bin = matmul_program(n, 1);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];

    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(f, PointKind::BlockEntry),
        &Snippet::increment(counter),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 100_000_000);

    let c_addr = bin.symbol_by_name("mat_c").unwrap().value;
    for i in 0..n {
        for j in 0..n {
            let mut expect = 0.0f64;
            for k in 0..n {
                expect += (i + k) as f64 * (k as f64 - j as f64);
            }
            let got = f64::from_bits(m.mem.load(c_addr + ((i * n + j) * 8) as u64, 8).unwrap());
            assert_eq!(got, expect, "C[{i}][{j}] corrupted by instrumentation");
        }
    }
}

#[test]
fn overhead_ordering_matches_paper() {
    // base < function-entry < per-block, and force-spill > dead-register
    // per-block — the qualitative content of the §4.3 table.
    let n = 12usize;
    let bin = matmul_program(n, 1);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];

    let base = run(&bin, 500_000_000).cycles;

    let cycles_for = |kind: PointKind, mode: RegAllocMode| {
        let mut ins = Instrumenter::new(&bin, &co).with_mode(mode);
        let counter = ins.alloc_var(8);
        ins.insert_at_points(&find_points(f, kind), &Snippet::increment(counter));
        let patched = ins.apply().unwrap();
        run(&patched.binary, 500_000_000).cycles
    };

    let fn_count = cycles_for(PointKind::FuncEntry, RegAllocMode::DeadRegisters);
    let bb_count = cycles_for(PointKind::BlockEntry, RegAllocMode::DeadRegisters);
    let bb_spill = cycles_for(PointKind::BlockEntry, RegAllocMode::ForceSpill);

    assert!(base < fn_count, "entry instrumentation must cost something");
    assert!(
        fn_count < bb_count,
        "per-block must cost more than per-function"
    );
    assert!(
        bb_count < bb_spill,
        "dead-register allocation must beat forced spills: {bb_count} vs {bb_spill}"
    );
    // Function-entry overhead should be tiny (paper: 0.8%).
    let fn_overhead = (fn_count - base) as f64 / base as f64;
    assert!(
        fn_overhead < 0.05,
        "fn-entry overhead too high: {fn_overhead}"
    );
}

#[test]
fn jump_table_function_instrumentable() {
    let iters = 16u64;
    let bin = switch_program(iters);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let sel = bin.symbol_by_name("selector").unwrap().value;
    let f = &co.functions[&sel];

    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(f, PointKind::FuncEntry),
        &Snippet::increment(counter),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 10_000_000);
    assert_eq!(m.mem.load(counter.addr, 8).unwrap(), iters);

    // The program's own result must be unchanged.
    let result = bin.symbol_by_name("result").unwrap().value;
    let expect: u64 = (0..iters)
        .map(|i| match i & 7 {
            0 => 10,
            1 => 20,
            2 => 30,
            3 => 40,
            _ => 0,
        })
        .sum();
    assert_eq!(m.mem.load(result, 8).unwrap(), expect);
}

#[test]
fn jump_table_case_blocks_counted_via_springboards() {
    // Per-block counters on the selector: the case blocks are reached
    // through the ORIGINAL jump table, so springboards at the case blocks
    // must bounce execution into the instrumented copy.
    let iters = 8u64;
    let bin = switch_program(iters);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let sel = bin.symbol_by_name("selector").unwrap().value;
    let f = &co.functions[&sel];

    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(f, PointKind::BlockEntry),
        &Snippet::increment(counter),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 10_000_000);

    // Per call: entry block + (dispatch-or-default path). For i&7 in 0..4:
    // entry + dispatch + case = 3 blocks; for 4..8: entry + default = 2.
    // Count blocks precisely: selector blocks are entry (ends bgeu),
    // dispatch (ends jalr), 4 cases, default.
    let expect: u64 = (0..iters).map(|i| if (i & 7) < 4 { 3 } else { 2 }).sum();
    assert_eq!(
        m.mem.load(counter.addr, 8).unwrap(),
        expect,
        "case blocks must be counted despite the original jump table"
    );
}

#[test]
fn exit_point_counter() {
    let n = 4usize;
    let reps = 3usize;
    let bin = matmul_program(n, reps);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];

    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(f, PointKind::FuncExit),
        &Snippet::increment(counter),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 100_000_000);
    assert_eq!(m.mem.load(counter.addr, 8).unwrap(), reps as u64);
}

#[test]
fn loop_backedge_counter() {
    let n = 5usize;
    let bin = matmul_program(n, 1);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];

    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(f, PointKind::LoopBackEdge),
        &Snippet::increment(counter),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 100_000_000);
    // Latch executions: i-loop N (B10), j-loop N² (B9), k-loop N³ (B7).
    let n = n as u64;
    assert_eq!(m.mem.load(counter.addr, 8).unwrap(), n + n * n + n * n * n);
}

#[test]
fn multiple_functions_instrumented_together() {
    let bin = matmul_program(4, 2);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let init = bin.symbol_by_name("init_arrays").unwrap().value;

    let mut ins = Instrumenter::new(&bin, &co);
    let c_mm = ins.alloc_var(8);
    let c_init = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(&co.functions[&mm], PointKind::FuncEntry),
        &Snippet::increment(c_mm),
    );
    ins.insert_at_points(
        &find_points(&co.functions[&init], PointKind::FuncEntry),
        &Snippet::increment(c_init),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 100_000_000);
    assert_eq!(m.mem.load(c_mm.addr, 8).unwrap(), 2);
    assert_eq!(m.mem.load(c_init.addr, 8).unwrap(), 1);
}

#[test]
fn pre_and_post_call_counters() {
    let reps = 4usize;
    let bin = matmul_program(4, reps);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let main = bin.symbol_by_name("main").unwrap().value;
    let f = &co.functions[&main];

    let mut ins = Instrumenter::new(&bin, &co);
    let pre = ins.alloc_var(8);
    let post = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(f, PointKind::PreCall),
        &Snippet::increment(pre),
    );
    ins.insert_at_points(
        &find_points(f, PointKind::PostCall),
        &Snippet::increment(post),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 100_000_000);
    // main calls init_arrays once + matmul `reps` times.
    let expect = (1 + reps) as u64;
    assert_eq!(m.mem.load(pre.addr, 8).unwrap(), expect);
    assert_eq!(
        m.mem.load(post.addr, 8).unwrap(),
        expect,
        "every call returns exactly once"
    );
}

#[test]
fn inst_before_point_counts_one_instruction() {
    // Pick the fmadd.d inside matmul's k-body: its dynamic count is n³.
    let n = 6u64;
    let bin = matmul_program(n as usize, 1);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];
    let fmadd_addr = f
        .blocks
        .values()
        .flat_map(|b| b.insts.iter())
        .find(|i| i.op == rvdyn_isa::Op::FmaddD)
        .map(|i| i.address)
        .expect("matmul has an fmadd.d");

    let mut ins = Instrumenter::new(&bin, &co);
    let c = ins.alloc_var(8);
    let pts = find_points(f, PointKind::InstBefore(fmadd_addr));
    assert_eq!(pts.len(), 1);
    ins.insert_at_points(&pts, &Snippet::increment(c));
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 200_000_000);
    assert_eq!(m.mem.load(c.addr, 8).unwrap(), n * n * n);
}

#[test]
fn argument_and_return_value_recording() {
    // Snippet::param / Snippet::return_value — BPatch_paramExpr-style.
    let bin = matmul_program(9, 1);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let mm = bin.symbol_by_name("matmul").unwrap().value;
    let f = &co.functions[&mm];

    let mut ins = Instrumenter::new(&bin, &co);
    let n_arg = ins.alloc_var(8);
    // Record a3 (the N argument) at entry.
    ins.insert_at_points(
        &find_points(f, PointKind::FuncEntry),
        &Snippet::WriteVar(n_arg, Box::new(Snippet::param(3))),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 200_000_000);
    assert_eq!(m.mem.load(n_arg.addr, 8).unwrap(), 9);
}

#[test]
fn relative_jump_table_program_instrumentable() {
    // Per-block counters on the relative-table selector; springboards at
    // case blocks must bounce the lw/add/jalr dispatch as well.
    let iters = 8u64;
    let bin = rvdyn_asm::switch_rel_program(iters);
    let co = CodeObject::parse(&bin, &ParseOptions::default());
    let sel = bin.symbol_by_name("selector").unwrap().value;
    let f = &co.functions[&sel];

    let mut ins = Instrumenter::new(&bin, &co);
    let counter = ins.alloc_var(8);
    ins.insert_at_points(
        &find_points(f, PointKind::BlockEntry),
        &Snippet::increment(counter),
    );
    let patched = ins.apply().unwrap();
    let m = run(&patched.binary, 10_000_000);

    let expect: u64 = (0..iters).map(|i| if (i & 7) < 4 { 3 } else { 2 }).sum();
    assert_eq!(m.mem.load(counter.addr, 8).unwrap(), expect);
    let result = bin.symbol_by_name("result").unwrap().value;
    let expect_sum: u64 = (0..iters)
        .map(|i| match i & 7 {
            0 => 10,
            1 => 20,
            2 => 30,
            3 => 40,
            _ => 0,
        })
        .sum();
    assert_eq!(m.mem.load(result, 8).unwrap(), expect_sum);
}
