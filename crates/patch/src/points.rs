//! Instrumentation points (§2): where snippets may be inserted.

use rvdyn_parse::{EdgeKind, Function};

/// The abstract location classes Dyninst exposes (§2's taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointKind {
    /// Before the first instruction of the function.
    FuncEntry,
    /// Before each return-class terminator.
    FuncExit,
    /// Before the first instruction of every basic block.
    BlockEntry,
    /// Before each call-site terminator.
    PreCall,
    /// After each call site (at the call's fallthrough).
    PostCall,
    /// Before the latch branch of each natural loop (loop back edge).
    LoopBackEdge,
    /// On the taken edge of every conditional branch: the snippet runs
    /// only when the branch is taken (§2's "branch-taken edges").
    BranchTaken,
    /// On the not-taken (fallthrough) edge of every conditional branch.
    BranchNotTaken,
    /// Before one specific instruction.
    InstBefore(u64),
}

/// A concrete instrumentation point: an instruction address within a
/// function, before which snippet code will execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point {
    pub func: u64,
    pub addr: u64,
    pub kind: PointKind,
}

/// Enumerate the points of `kind` in `f`.
pub fn find_points(f: &Function, kind: PointKind) -> Vec<Point> {
    let mut pts = Vec::new();
    match kind {
        PointKind::FuncEntry => {
            pts.push(Point {
                func: f.entry,
                addr: f.entry,
                kind,
            });
        }
        PointKind::FuncExit => {
            for b in f.blocks.values() {
                let exits = b
                    .edges
                    .iter()
                    .any(|e| matches!(e.kind, EdgeKind::Return | EdgeKind::TailCall));
                if exits {
                    if let Some(last) = b.last_inst() {
                        pts.push(Point {
                            func: f.entry,
                            addr: last.address,
                            kind,
                        });
                    }
                }
            }
        }
        PointKind::BlockEntry => {
            for &s in f.blocks.keys() {
                pts.push(Point {
                    func: f.entry,
                    addr: s,
                    kind,
                });
            }
        }
        PointKind::PreCall => {
            for b in f.call_sites() {
                if let Some(last) = b.last_inst() {
                    pts.push(Point {
                        func: f.entry,
                        addr: last.address,
                        kind,
                    });
                }
            }
        }
        PointKind::PostCall => {
            for b in f.call_sites() {
                for e in &b.edges {
                    if e.kind == EdgeKind::CallFallthrough {
                        if let Some(t) = e.target {
                            pts.push(Point {
                                func: f.entry,
                                addr: t,
                                kind,
                            });
                        }
                    }
                }
            }
        }
        PointKind::LoopBackEdge => {
            for l in &f.loops {
                for &latch in &l.latches {
                    if let Some(b) = f.blocks.get(&latch) {
                        if let Some(last) = b.last_inst() {
                            pts.push(Point {
                                func: f.entry,
                                addr: last.address,
                                kind,
                            });
                        }
                    }
                }
            }
        }
        PointKind::BranchTaken | PointKind::BranchNotTaken => {
            for b in f.blocks.values() {
                let conditional = b
                    .last_inst()
                    .map(|i| i.op.is_conditional_branch())
                    .unwrap_or(false);
                if conditional {
                    if let Some(last) = b.last_inst() {
                        pts.push(Point {
                            func: f.entry,
                            addr: last.address,
                            kind,
                        });
                    }
                }
            }
        }
        PointKind::InstBefore(addr) => {
            if f.block_containing(addr).is_some() {
                pts.push(Point {
                    func: f.entry,
                    addr,
                    kind,
                });
            }
        }
    }
    pts.sort_by_key(|p| p.addr);
    pts.dedup_by_key(|p| p.addr);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_asm::matmul_program;
    use rvdyn_parse::{CodeObject, ParseOptions};

    fn matmul_fn() -> Function {
        let bin = matmul_program(8, 1);
        let co = CodeObject::parse(&bin, &ParseOptions::default());
        let mm = bin.symbol_by_name("matmul").unwrap().value;
        co.functions[&mm].clone()
    }

    #[test]
    fn block_entry_points_cover_all_blocks() {
        let f = matmul_fn();
        let pts = find_points(&f, PointKind::BlockEntry);
        assert_eq!(pts.len(), 11, "§4.1: 11 instrumentation points");
        for p in &pts {
            assert!(f.blocks.contains_key(&p.addr));
        }
    }

    #[test]
    fn entry_and_exit_points() {
        let f = matmul_fn();
        let entry = find_points(&f, PointKind::FuncEntry);
        assert_eq!(entry.len(), 1);
        assert_eq!(entry[0].addr, f.entry);
        let exits = find_points(&f, PointKind::FuncExit);
        assert_eq!(exits.len(), 1); // single ret
                                    // Exit point is the ret instruction itself.
        let b = f.block_containing(exits[0].addr).unwrap();
        assert!(b.last_inst().unwrap().is_canonical_return());
    }

    #[test]
    fn loop_back_edge_points() {
        let f = matmul_fn();
        let pts = find_points(&f, PointKind::LoopBackEdge);
        // Three loops, each with one latch (the jump back to the head).
        assert_eq!(pts.len(), 3);
    }

    #[test]
    fn call_points_in_main() {
        let bin = matmul_program(8, 2);
        let co = CodeObject::parse(&bin, &ParseOptions::default());
        let main = bin.symbol_by_name("main").unwrap().value;
        let f = &co.functions[&main];
        let pre = find_points(f, PointKind::PreCall);
        // main calls init_arrays once and matmul once (in the loop).
        assert_eq!(pre.len(), 2);
        let post = find_points(f, PointKind::PostCall);
        assert_eq!(post.len(), 2);
    }
}
