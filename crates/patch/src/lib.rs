//! # rvdyn-patch — snippet insertion (PatchAPI)
//!
//! The rvdyn equivalent of Dyninst's *PatchAPI*: given a parsed mutatee, a
//! set of instrumentation **points** and machine-independent **snippets**,
//! produce a safely transformed binary (static rewriting) or a patch plan
//! applied to a live process (dynamic instrumentation).
//!
//! rvdyn uses the *code patching* strategy the paper describes for Dyninst
//! (§1): instrumented functions are **relocated** — a new version with the
//! snippets inlined is placed in a patch area, and the original entry (plus
//! every indirect-jump target) is overwritten with a **springboard** jump
//! to the new version. The pass is split into a *parallel plan phase*
//! (per-function liveness + lowering + symbolic relocation, fanned out
//! over a worker pool) and a *sequential layout phase* (deterministic
//! patch-area address assignment + springboards) so it scales with cores
//! while producing bit-identical bytes for any thread count — see
//! [`instrument`]. The springboard planner implements §3.1.2's
//! size/range ladder:
//!
//! | form            | size | reach       |
//! |-----------------|------|-------------|
//! | `c.j`           | 2 B  | ±2 KiB      |
//! | `jal x0`        | 4 B  | ±1 MiB      |
//! | `auipc`+`jalr`  | 8 B  | ±2 GiB (needs a dead register) |
//! | `ebreak` trap   | 2 B  | anywhere (slow; "worst case")  |
//!
//! Relocation rewrites PC-relative material for its new home: branches and
//! `jal`s are retargeted (with automatic inverted-branch + `jal` widening
//! when displacements outgrow B-format), and every `auipc` is replaced by
//! an exact materialisation of the value it produced at its *original*
//! address — immune to the pairing ambiguity of `auipc`/`lo12` sequences.
//!
//! ## The springboard redirect invariant
//!
//! Planting a springboard overwrites bytes, and those bytes may *straddle*
//! instructions: a 4-byte `jal` over two compressed instructions clobbers
//! both, and an entry block that is also an indirect-jump target (a
//! same-function jump table dispatching back to the function head) keeps
//! every clobbered address reachable at runtime. The invariant every
//! `apply` upholds:
//!
//! > **Every instruction address overlapped by springboard bytes has a
//! > redirect registered in the trap table, mapping it to its relocated
//! > equivalent.**
//!
//! [`clobbered_addresses`] enumerates the overlapped set for a site and
//! [`audit_redirect_coverage`] proves coverage against the relocation
//! address map, returning the redirect pairs to register;
//! [`InstrumentError::SpringboardClobber`] is the refusal when coverage
//! cannot be established — an unsound patch is never produced silently.
//! The audit totals surface as `clobbers_audited` /
//! `redirects_registered` in [`instrument::PatchResult`] and the facade's
//! diagnostics. Entry springboards are budgeted to the entry *block* (not
//! the whole function extent), so a springboard can never spill past the
//! code whose relocation map covers it.

pub mod instrument;
pub mod placement;
pub mod points;
pub mod relocate;
pub mod springboard;

pub use instrument::{
    audit_redirect_coverage, clobbered_addresses, InstrumentError, Instrumenter, PatchEvent,
    PatchLayout, RelocationIndex,
};
pub use placement::{
    plan_block_counters, plan_block_counters_with_depths, BlockCountPlan, CounterPlacement,
    CounterSite,
};
pub use points::{find_points, Point, PointKind};
pub use relocate::{relocate_function, Insertions, RelocatedFunction, RelocationPlan};
pub use springboard::{plan_springboard, Springboard, SpringboardKind, SpringboardStats};
