//! # rvdyn-patch — snippet insertion (PatchAPI)
//!
//! The rvdyn equivalent of Dyninst's *PatchAPI*: given a parsed mutatee, a
//! set of instrumentation **points** and machine-independent **snippets**,
//! produce a safely transformed binary (static rewriting) or a patch plan
//! applied to a live process (dynamic instrumentation).
//!
//! rvdyn uses the *code patching* strategy the paper describes for Dyninst
//! (§1): instrumented functions are **relocated** — a new version with the
//! snippets inlined is placed in a patch area, and the original entry (plus
//! every indirect-jump target) is overwritten with a **springboard** jump
//! to the new version. The springboard planner implements §3.1.2's
//! size/range ladder:
//!
//! | form            | size | reach       |
//! |-----------------|------|-------------|
//! | `c.j`           | 2 B  | ±2 KiB      |
//! | `jal x0`        | 4 B  | ±1 MiB      |
//! | `auipc`+`jalr`  | 8 B  | ±2 GiB (needs a dead register) |
//! | `ebreak` trap   | 2 B  | anywhere (slow; "worst case")  |
//!
//! Relocation rewrites PC-relative material for its new home: branches and
//! `jal`s are retargeted (with automatic inverted-branch + `jal` widening
//! when displacements outgrow B-format), and every `auipc` is replaced by
//! an exact materialisation of the value it produced at its *original*
//! address — immune to the pairing ambiguity of `auipc`/`lo12` sequences.

pub mod instrument;
pub mod points;
pub mod relocate;
pub mod springboard;

pub use instrument::{InstrumentError, Instrumenter, PatchEvent, PatchLayout, RelocationIndex};
pub use points::{find_points, Point, PointKind};
pub use relocate::{relocate_function, Insertions, RelocatedFunction};
pub use springboard::{plan_springboard, Springboard, SpringboardKind, SpringboardStats};
