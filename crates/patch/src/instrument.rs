//! The instrumenter: points + snippets → a rewritten binary.
//!
//! This is the user-facing PatchAPI operation (§2): "code snippet
//! insertion … takes a tuple (P, AST) … Dyninst will convert the AST to
//! native code, optimize the code when possible, generate new versions of
//! the blocks or functions that have been modified, and patch a branch
//! into the original code to jump to the modified code."
//!
//! ## Parallel plan phase, sequential layout phase
//!
//! The pass is split so it scales with cores *without changing a single
//! output byte* (the parse stage's §2 "fast parallel algorithm", applied
//! to the back half of the pipeline):
//!
//! 1. **Plan** (parallel, [`Instrumenter::with_threads`]): each
//!    instrumented function's liveness analysis, snippet lowering, and
//!    relocation planning runs independently on a worker pool (the batch
//!    worklist shared with the parallel parser), producing one
//!    position-independent `FunctionPlan` per function — a
//!    [`RelocationPlan`] whose branch/jump targets are still symbolic.
//! 2. **Layout** (sequential, single-threaded): patch-area bases are
//!    assigned in stable entry-address order, each plan is re-relaxed at
//!    its final base to a whole-area fixpoint, symbolic targets are
//!    resolved into bytes, and springboards are planted and audited.
//!
//! Every output-bearing decision happens in the layout phase from
//! position-independent inputs, so the rewritten bytes are bit-identical
//! for any worker count; worker failures are surfaced lowest-address
//! first so even the error is deterministic. Observer events gathered in
//! the plan phase are replayed in entry-address order for the same
//! reason.

use crate::points::{Point, PointKind};
use crate::relocate::{Insertions, RelocationPlan};
use crate::springboard::{plan_springboard, SpringboardKind, SpringboardStats};
use rvdyn_codegen::emitter::{generate_with_stats, CodeGenError};
use rvdyn_codegen::regalloc::RegAllocMode;
use rvdyn_codegen::snippet::{Snippet, Var};
use rvdyn_dataflow::Liveness;
use rvdyn_isa::{IsaProfile, RegSet};
use rvdyn_parse::worklist::Worklist;
use rvdyn_parse::{CodeObject, EdgeKind, Function};
use rvdyn_symtab::{Binary, Section, SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Observable milestones of one instrumentation pass, for a
/// caller-supplied observer (e.g. the facade's telemetry sink).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchEvent {
    /// One point's snippets were lowered to machine code.
    PointLowered {
        addr: u64,
        spills: usize,
        dead_scratch: usize,
    },
    /// One function's position-independent plan (lowered snippets +
    /// symbolic relocation) is complete; the layout phase takes it from
    /// here. Replayed in entry-address order regardless of which worker
    /// built the plan.
    PlanBuilt { entry: u64, points: usize },
    /// One function was relocated into the patch area.
    FunctionRelocated { entry: u64, bytes: usize },
    /// A springboard was planted over original code.
    SpringboardPlanted { addr: u64, kind: SpringboardKind },
    /// The clobber audit registered a redirect: any control transfer that
    /// lands on the overwritten original instruction at `from` is carried
    /// to its relocated copy at `to`.
    RedirectRegistered { from: u64, to: u64 },
}

/// Where instrumented code and data land in the mutatee's address space.
#[derive(Debug, Clone, Copy)]
pub struct PatchLayout {
    /// Base of the patch code area (`.rvdyn.text`).
    pub patch_text: u64,
    /// Base of the instrumentation data area (`.rvdyn.data` — counters,
    /// variables, spill slots).
    pub patch_data: u64,
}

impl Default for PatchLayout {
    fn default() -> PatchLayout {
        PatchLayout {
            patch_text: 0x8_0000,
            patch_data: 0xC_0000,
        }
    }
}

/// Instrumentation failure.
#[derive(Debug)]
pub enum InstrumentError {
    /// The point's function was not found in the parse.
    UnknownFunction(u64),
    /// Snippet lowering failed.
    CodeGen(CodeGenError),
    /// Function relocation failed.
    Relocate(crate::relocate::RelocateError),
    /// A springboard address fell outside every code section.
    SpringboardOutsideCode { addr: u64 },
    /// The springboard planted at `pc` overwrites original instructions
    /// for which no relocated copy exists — control flow landing on any
    /// address in `clobbered` would execute torn bytes. The audit refuses
    /// to produce an unsound patch.
    SpringboardClobber { pc: u64, clobbered: Vec<u64> },
}

impl fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrumentError::UnknownFunction(a) => {
                write!(f, "no parsed function at {a:#x}")
            }
            InstrumentError::CodeGen(e) => write!(f, "snippet codegen: {e}"),
            InstrumentError::Relocate(e) => write!(f, "relocation: {e}"),
            InstrumentError::SpringboardOutsideCode { addr } => {
                write!(f, "springboard at {addr:#x} is outside every code section")
            }
            InstrumentError::SpringboardClobber { pc, clobbered } => {
                write!(
                    f,
                    "springboard at {pc:#x} clobbers {} instruction(s) with no \
                     redirect coverage:",
                    clobbered.len()
                )?;
                for a in clobbered {
                    write!(f, " {a:#x}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for InstrumentError {}

impl From<CodeGenError> for InstrumentError {
    fn from(e: CodeGenError) -> Self {
        InstrumentError::CodeGen(e)
    }
}

impl From<crate::relocate::RelocateError> for InstrumentError {
    fn from(e: crate::relocate::RelocateError) -> Self {
        InstrumentError::Relocate(e)
    }
}

/// The original instruction addresses a `len`-byte write at `base` tears:
/// every instruction of `f` whose bytes intersect `[base, base+len)`.
/// Includes compressed instructions a wider springboard straddles and
/// instructions only partially overwritten by a narrower one.
pub fn clobbered_addresses(f: &Function, base: u64, len: usize) -> Vec<u64> {
    let end = base + len as u64;
    let mut out: Vec<u64> = f
        .blocks
        .values()
        .flat_map(|b| b.insts.iter())
        .filter(|i| i.address < end && i.address + i.size as u64 > base)
        .map(|i| i.address)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The springboard soundness audit (ROADMAP: springboard-clobber): for a
/// `len`-byte springboard planted at `base` in `f`, check that *every*
/// clobbered instruction address has a relocated copy in `addr_map`, and
/// return the `(original, relocated)` redirect pair for each. Any
/// clobbered address without coverage makes the patch unsound — control
/// flow landing there (a jump table, a return, a signal) would execute
/// torn bytes — so the audit refuses with
/// [`InstrumentError::SpringboardClobber`] instead.
pub fn audit_redirect_coverage(
    f: &Function,
    base: u64,
    len: usize,
    addr_map: &BTreeMap<u64, u64>,
) -> Result<Vec<(u64, u64)>, InstrumentError> {
    let clobbered = clobbered_addresses(f, base, len);
    let mut cover = Vec::with_capacity(clobbered.len());
    let mut missing = Vec::new();
    for pc in clobbered {
        match addr_map.get(&pc) {
            Some(&to) => cover.push((pc, to)),
            None => missing.push(pc),
        }
    }
    if !missing.is_empty() {
        return Err(InstrumentError::SpringboardClobber {
            pc: base,
            clobbered: missing,
        });
    }
    Ok(cover)
}

/// Run the clobber audit for one planted springboard and fold its
/// redirect pairs into the pass-wide audit state, reporting each newly
/// registered redirect to the observer.
fn audit_springboard(
    f: &Function,
    base: u64,
    len: usize,
    addr_map: &BTreeMap<u64, u64>,
    audited: &mut BTreeSet<u64>,
    redirects: &mut BTreeSet<(u64, u64)>,
    observer: &mut dyn FnMut(PatchEvent),
) -> Result<(), InstrumentError> {
    for (from, to) in audit_redirect_coverage(f, base, len, addr_map)? {
        audited.insert(from);
        if redirects.insert((from, to)) {
            observer(PatchEvent::RedirectRegistered { from, to });
        }
    }
    Ok(())
}

/// Maps relocated (patch-area) instruction addresses back to their
/// original addresses — what debuggers and stack walkers need to reason
/// about instrumented code in source terms (Dyninst keeps the same
/// mapping for its `BPatch` address translation).
#[derive(Debug, Clone, Default)]
pub struct RelocationIndex {
    /// new instruction address → original instruction address.
    reverse: BTreeMap<u64, u64>,
}

impl RelocationIndex {
    /// Translate a patch-area pc to its original address. Addresses
    /// outside any relocated range map to themselves. A pc inside snippet
    /// code maps to the instruction the snippet was attached to.
    pub fn to_original(&self, pc: u64) -> u64 {
        match self.reverse.range(..=pc).next_back() {
            // Within 64 bytes of a mapped instruction start: attribute to
            // it (covers multi-instruction expansions and snippet bodies).
            Some((&new, &old)) if pc - new < 64 => old,
            _ => pc,
        }
    }

    /// Is `pc` inside relocated code?
    pub fn is_relocated(&self, pc: u64) -> bool {
        matches!(self.reverse.range(..=pc).next_back(), Some((&new, _)) if pc - new < 64)
    }

    fn absorb(&mut self, addr_map: &BTreeMap<u64, u64>) {
        for (&old, &new) in addr_map {
            self.reverse.insert(new, old);
        }
    }

    /// Merge another index (e.g. from a later commit).
    pub fn merge(&mut self, other: &RelocationIndex) {
        self.reverse.extend(other.reverse.iter());
    }
}

/// The output of [`Instrumenter::apply`].
#[derive(Debug, Clone)]
pub struct PatchResult {
    /// The rewritten binary (new `.rvdyn.*` sections, springboards patched
    /// into `.text`). Serialise with [`Binary::to_bytes`] for the static
    /// path; or apply [`PatchResult::memory_writes`] to a live process for
    /// the dynamic path.
    pub binary: Binary,
    /// Redirect table: `(original, relocated)` pairs covering every
    /// instruction address a springboard overwrote (the clobber audit's
    /// output), plus the entries worst-case trap springboards execute
    /// through. Serialised as `.rvdyn.traps` on the static path and
    /// installed into the machine's trap-redirect map on the dynamic one.
    pub trap_table: Vec<(u64, u64)>,
    /// Diagnostics: total registers spilled across all snippets (0 when
    /// dead-register allocation succeeded everywhere — the §4.3 claim).
    pub spill_count: usize,
    /// Diagnostics: points whose snippets were lowered entirely from dead
    /// registers (the zero-cost path §4.3 credits for RISC-V's overhead
    /// advantage).
    pub dead_register_points: usize,
    /// Diagnostics: total points instrumented.
    pub points_instrumented: usize,
    /// Diagnostics: histogram of springboard strategies planted (§3.1.2).
    pub springboards: SpringboardStats,
    /// Wall-clock nanoseconds spent inside relocation planning and
    /// emission (a sub-phase of the apply pass, reported separately for
    /// telemetry). Under a worker pool this is the *sum* of per-worker
    /// time — CPU time, not wall time.
    pub relocate_ns: u64,
    /// Soundness audit: distinct original instruction addresses the
    /// clobber audit examined under planted springboards.
    pub clobbers_audited: usize,
    /// Soundness audit: distinct `(original, relocated)` redirects
    /// registered in [`PatchResult::trap_table`] to cover them.
    pub redirects_registered: usize,
    /// Position-independent function plans built by the plan phase (one
    /// per instrumented function).
    pub plans_built: usize,
    /// Worker threads the plan phase actually used (1 = inline, no pool).
    pub instrument_workers: usize,
    /// Raw (address, bytes) writes for dynamic instrumentation.
    writes: Vec<(u64, Vec<u8>)>,
    /// The original bytes each springboard overwrote, for removal.
    undo: Vec<(u64, Vec<u8>)>,
    /// Patch-area → original address translation.
    pub reloc_index: RelocationIndex,
}

impl PatchResult {
    /// The memory writes that implement this instrumentation on a live
    /// process (patch area content + springboards).
    pub fn memory_writes(&self) -> &[(u64, Vec<u8>)] {
        &self.writes
    }

    /// The inverse writes: restoring these bytes removes every
    /// springboard, returning the mutatee to uninstrumented execution
    /// (the patch area becomes unreachable dead code). This is Dyninst's
    /// "remove instrumentation" operation.
    pub fn undo_writes(&self) -> &[(u64, Vec<u8>)] {
        &self.undo
    }
}

/// Requested snippets for one function, split by placement semantics.
#[derive(Default)]
struct FuncInsertions {
    /// Before the instruction at the address.
    before: BTreeMap<u64, Vec<Snippet>>,
    /// On the taken edge of the conditional branch at the address.
    taken: BTreeMap<u64, Vec<Snippet>>,
    /// On the not-taken edge of the conditional branch at the address.
    not_taken: BTreeMap<u64, Vec<Snippet>>,
}

/// One function's plan-phase output: lowered snippets spliced into a
/// position-independent [`RelocationPlan`], plus everything the
/// sequential layout phase needs to finish the function without
/// re-running analysis (liveness does not survive the plan phase).
struct FunctionPlan {
    entry: u64,
    reloc: RelocationPlan,
    /// Lowering milestones, replayed to the observer in entry-address
    /// order by the layout phase (deterministic event stream).
    events: Vec<PatchEvent>,
    spills: usize,
    dead_points: usize,
    points: usize,
    /// Wall-clock ns spent building + pre-relaxing the relocation.
    plan_ns: u64,
    /// Dead registers before the function entry (springboard scratch).
    dead_entry: RegSet,
    /// `(target, dead-before-target)` for every indirect-jump edge whose
    /// target is a block of this function (jump-table re-entry sites).
    indirect: Vec<(u64, RegSet)>,
    /// Patch-area base, assigned by the layout phase.
    base: u64,
}

/// Builder for an instrumentation pass over one binary.
pub struct Instrumenter<'b> {
    binary: &'b Binary,
    co: &'b CodeObject,
    layout: PatchLayout,
    mode: RegAllocMode,
    threads: usize,
    liveness: Option<&'b BTreeMap<u64, Liveness>>,
    insertions: BTreeMap<u64, FuncInsertions>,
    var_cursor: u64,
}

impl<'b> Instrumenter<'b> {
    pub fn new(binary: &'b Binary, co: &'b CodeObject) -> Instrumenter<'b> {
        Instrumenter {
            binary,
            co,
            layout: PatchLayout::default(),
            mode: RegAllocMode::DeadRegisters,
            threads: 1,
            liveness: None,
            insertions: BTreeMap::new(),
            var_cursor: 0,
        }
    }

    /// Override the patch-area layout.
    pub fn with_layout(mut self, layout: PatchLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Select the register-allocation mode (ablation A1 uses
    /// [`RegAllocMode::ForceSpill`]).
    pub fn with_mode(mut self, mode: RegAllocMode) -> Self {
        self.mode = mode;
        self
    }

    /// Fan the plan phase out over `threads` workers (1 = run inline on
    /// the calling thread). Output bytes are identical for every value:
    /// only the plan phase parallelises, and the layout phase orders its
    /// results by entry address.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Supply precomputed per-function liveness solutions (keyed by
    /// function entry). The plan phase uses the supplied solution for a
    /// function when present and falls back to running
    /// [`Liveness::analyze`] itself otherwise, so a partial table is
    /// safe. Liveness is a pure function of the CFG, so a table computed
    /// once from `co` (e.g. a shared front-half analysis) yields
    /// bit-identical output to in-plan analysis — only the plan-phase
    /// wall-clock time changes.
    pub fn with_liveness(mut self, liveness: &'b BTreeMap<u64, Liveness>) -> Self {
        self.liveness = Some(liveness);
        self
    }

    /// Allocate an instrumentation variable in the patch data area.
    pub fn alloc_var(&mut self, size: u8) -> Var {
        // 8-byte align every slot.
        let addr = self.layout.patch_data + self.var_cursor;
        self.var_cursor += ((size as u64) + 7) & !7;
        Var { addr, size }
    }

    /// Request `snippet` at `point`. Edge points ([`PointKind::BranchTaken`]
    /// / [`PointKind::BranchNotTaken`]) attach to the branch's edge rather
    /// than the instruction stream.
    pub fn insert(&mut self, point: Point, snippet: Snippet) {
        let fi = self.insertions.entry(point.func).or_default();
        let map = match point.kind {
            PointKind::BranchTaken => &mut fi.taken,
            PointKind::BranchNotTaken => &mut fi.not_taken,
            _ => &mut fi.before,
        };
        map.entry(point.addr).or_default().push(snippet);
    }

    /// Request `snippet` at every point in `points`.
    pub fn insert_at_points(&mut self, points: &[Point], snippet: &Snippet) {
        for p in points {
            self.insert(*p, snippet.clone());
        }
    }

    /// Build one function's position-independent plan: liveness, snippet
    /// lowering, relocation planning, and the dead-register sets the
    /// layout phase will need. Runs on a worker (or inline) — must not
    /// touch anything whose result depends on other functions.
    fn build_plan(
        &self,
        fe: u64,
        fi: &FuncInsertions,
        profile: IsaProfile,
    ) -> Result<FunctionPlan, InstrumentError> {
        let f = self
            .co
            .functions
            .get(&fe)
            .ok_or(InstrumentError::UnknownFunction(fe))?;
        let computed;
        let lv = match self.liveness.and_then(|m| m.get(&fe)) {
            Some(shared) => shared,
            None => {
                computed = Liveness::analyze(f);
                &computed
            }
        };

        // Lower each point's snippets with its dead-register pool.
        // Edge snippets use the dead set before the branch, which is a
        // safe under-approximation of the edge's own dead set.
        let mut events = Vec::new();
        let mut lowered = Insertions::default();
        let mut spills = 0usize;
        let mut dead_points = 0usize;
        let mut points = 0usize;
        for (src_map, dst) in [
            (&fi.before, &mut lowered.before),
            (&fi.taken, &mut lowered.taken_edge),
            (&fi.not_taken, &mut lowered.not_taken_edge),
        ] {
            for (&addr, snippets) in src_map {
                let dead = lv.dead_before(f, addr);
                let seq = Snippet::Seq(snippets.clone());
                let (code, stats) = generate_with_stats(&seq, dead, self.mode, profile)?;
                spills += stats.spills;
                points += 1;
                if stats.spills == 0 {
                    dead_points += 1;
                }
                events.push(PatchEvent::PointLowered {
                    addr,
                    spills: stats.spills,
                    dead_scratch: stats.dead_scratch,
                });
                dst.insert(addr, code);
            }
        }

        // Build the symbolic relocation and pre-relax it at the patch
        // area's base — the best position-independent size estimate, and
        // the one the first laid-out function gets exactly.
        let reloc_start = Instant::now();
        let mut reloc = RelocationPlan::build(f, &lowered)?;
        reloc.relax_at(self.layout.patch_text);
        let plan_ns = (reloc_start.elapsed().as_nanos() as u64).max(1);

        // Springboard scratch sets, captured while liveness is in scope.
        let dead_entry = lv.dead_before(f, fe);
        let mut indirect: Vec<(u64, RegSet)> = Vec::new();
        for b in f.blocks.values() {
            for e in &b.edges {
                if e.kind == EdgeKind::IndirectJump {
                    if let Some(t) = e.target {
                        if f.blocks.contains_key(&t) {
                            indirect.push((t, lv.dead_before(f, t)));
                        }
                    }
                }
            }
        }

        Ok(FunctionPlan {
            entry: fe,
            reloc,
            events,
            spills,
            dead_points,
            points,
            plan_ns,
            dead_entry,
            indirect,
            base: 0,
        })
    }

    /// Plan phase: build every function's plan, fanned out over the
    /// worker pool when `threads > 1`. Errors surface lowest-address
    /// first regardless of which worker hit one first.
    fn build_plans(
        &self,
        nworkers: usize,
        profile: IsaProfile,
    ) -> Result<BTreeMap<u64, FunctionPlan>, InstrumentError> {
        if nworkers <= 1 {
            let mut plans = BTreeMap::new();
            for (&fe, fi) in &self.insertions {
                plans.insert(fe, self.build_plan(fe, fi, profile)?);
            }
            return Ok(plans);
        }

        let wl = Worklist::new(self.insertions.keys().copied(), nworkers);
        let results: Mutex<Vec<(u64, Result<FunctionPlan, InstrumentError>)>> =
            Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..nworkers {
                scope.spawn(|| {
                    let mut local: Vec<(u64, Result<FunctionPlan, InstrumentError>)> = Vec::new();
                    loop {
                        let batch = wl.next_batch();
                        if batch.is_empty() {
                            break;
                        }
                        for &fe in &batch {
                            let fi = &self.insertions[&fe];
                            local.push((fe, self.build_plan(fe, fi, profile)));
                        }
                        wl.complete(batch.len(), std::iter::empty());
                    }
                    if !local.is_empty() {
                        results.lock().unwrap().extend(local);
                    }
                });
            }
        });

        // Deterministic error propagation: order worker results by entry
        // address, then surface the first failure — always the
        // lowest-addressed one, matching the sequential path.
        let by_addr: BTreeMap<u64, Result<FunctionPlan, InstrumentError>> =
            results.into_inner().unwrap().into_iter().collect();
        let mut plans = BTreeMap::new();
        for (fe, r) in by_addr {
            plans.insert(fe, r?);
        }
        Ok(plans)
    }

    /// Generate code, relocate the instrumented functions, plant
    /// springboards, and produce the rewritten binary.
    pub fn apply(&self) -> Result<PatchResult, InstrumentError> {
        self.apply_with_observer(&mut |_| {})
    }

    /// As [`Instrumenter::apply`], reporting pass milestones (point
    /// lowering, plan completion, relocation, springboard planting) to
    /// `observer`.
    pub fn apply_with_observer(
        &self,
        observer: &mut dyn FnMut(PatchEvent),
    ) -> Result<PatchResult, InstrumentError> {
        let profile = self.binary.profile();

        // ---- plan phase (parallel): everything per-function and
        // position-independent. ----
        let nworkers = self.threads.max(1).min(self.insertions.len().max(1));
        let mut plans = self.build_plans(nworkers, profile)?;

        // ---- layout phase (sequential, deterministic from here on) ----
        // Assign patch-area bases in entry-address order, re-relaxing
        // each plan at its final base until the whole-area assignment is
        // a fixpoint: a function that widens shifts everything after it,
        // and slot sizes are monotone, so the loop terminates.
        let layout_start = Instant::now();
        loop {
            let mut cursor = self.layout.patch_text;
            let mut changed = false;
            for plan in plans.values_mut() {
                plan.base = cursor;
                changed |= plan.reloc.relax_at(cursor);
                cursor += (plan.reloc.code_size() + 7) & !7;
            }
            if !changed {
                break;
            }
        }
        let mut relocate_ns = (layout_start.elapsed().as_nanos() as u64).max(1);

        let mut out = self.binary.clone();
        let mut patch_code: Vec<u8> = Vec::new();
        let mut trap_table: Vec<(u64, u64)> = Vec::new();
        let mut spill_count = 0usize;
        let mut dead_register_points = 0usize;
        let mut points_instrumented = 0usize;
        let mut writes: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut undo: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut springs: Vec<(u64, crate::springboard::Springboard)> = Vec::new();
        let mut reloc_index = RelocationIndex::default();
        // Clobber audit state: every original instruction address a
        // springboard tears, and the redirect registered to cover it.
        let mut audited: BTreeSet<u64> = BTreeSet::new();
        let mut redirects: BTreeSet<(u64, u64)> = BTreeSet::new();

        for plan in plans.values() {
            let fe = plan.entry;
            // build_plan proved the function exists.
            let f = &self.co.functions[&fe];

            // Replay the plan's lowering milestones in address order.
            for ev in &plan.events {
                observer(ev.clone());
            }
            spill_count += plan.spills;
            dead_register_points += plan.dead_points;
            points_instrumented += plan.points;
            relocate_ns += plan.plan_ns;
            observer(PatchEvent::PlanBuilt {
                entry: fe,
                points: plan.points,
            });

            // Resolve the plan's symbolic targets at its assigned base.
            debug_assert_eq!(
                self.layout.patch_text + patch_code.len() as u64,
                plan.base,
                "layout cursor drifted from assigned base"
            );
            let emit_start = Instant::now();
            let reloc = plan.reloc.emit(plan.base)?;
            relocate_ns += (emit_start.elapsed().as_nanos() as u64).max(1);
            observer(PatchEvent::FunctionRelocated {
                entry: fe,
                bytes: reloc.code.len(),
            });
            reloc_index.absorb(&reloc.addr_map);
            patch_code.extend_from_slice(&reloc.code);
            // Align the next function.
            while !patch_code.len().is_multiple_of(8) {
                patch_code.push(0);
            }

            // Springboard at the function entry. Soundness: the budget is
            // the entry *block*, not the whole function extent — later
            // blocks start at branch targets whose original bytes must
            // survive, and an entry block that is itself an indirect-jump
            // target re-enters mid-patch if overwritten without coverage.
            let avail = match f.blocks.get(&fe) {
                Some(b) => b.len_bytes() as usize,
                None => {
                    let (lo, hi) = f.extent();
                    (hi - lo) as usize
                }
            };
            let sb = plan_springboard(fe, reloc.new_entry, avail, profile, plan.dead_entry);
            if let Some(t) = sb.trap_entry {
                trap_table.push(t);
            }
            audit_springboard(
                f,
                fe,
                sb.bytes.len(),
                &reloc.addr_map,
                &mut audited,
                &mut redirects,
                observer,
            )?;
            springs.push((fe, sb));

            // Springboards at indirect-jump targets: execution re-enters
            // original code through jump tables; bounce it back into the
            // instrumented copy (§3.2.3 jump tables + code patching).
            for &(t, dead) in &plan.indirect {
                if let Some(&nt) = reloc.addr_map.get(&t) {
                    let tb = &f.blocks[&t];
                    let avail = tb.len_bytes() as usize;
                    let sb = plan_springboard(t, nt, avail, profile, dead);
                    if let Some(tt) = sb.trap_entry {
                        trap_table.push(tt);
                    }
                    audit_springboard(
                        f,
                        t,
                        sb.bytes.len(),
                        &reloc.addr_map,
                        &mut audited,
                        &mut redirects,
                        observer,
                    )?;
                    springs.push((t, sb));
                }
            }
        }

        // Every audited clobber's redirect goes into the trap table, so
        // any control transfer landing on a torn original instruction —
        // not just an executed trap springboard — resolves to relocated
        // code. The runtime charges nothing for entries that never fire.
        trap_table.extend(redirects.iter().copied());

        springs.sort_by_key(|(a, _)| *a);
        springs.dedup_by_key(|(a, _)| *a);
        trap_table.sort();
        trap_table.dedup();
        let mut springboards = SpringboardStats::default();

        // Patch springboards into the text section image, recording the
        // bytes they replace for uninstrumentation.
        for (addr, sb) in &springs {
            let sec = out
                .sections
                .iter_mut()
                .find(|s| s.is_code() && s.contains(*addr))
                .ok_or(InstrumentError::SpringboardOutsideCode { addr: *addr })?;
            let bytes = &sb.bytes;
            let off = (*addr - sec.addr) as usize;
            undo.push((*addr, sec.data[off..off + bytes.len()].to_vec()));
            sec.data[off..off + bytes.len()].copy_from_slice(bytes);
            writes.push((*addr, bytes.clone()));
            springboards.record(&sb.kind);
            observer(PatchEvent::SpringboardPlanted {
                addr: *addr,
                kind: sb.kind.clone(),
            });
        }

        // New sections.
        if !patch_code.is_empty() {
            writes.push((self.layout.patch_text, patch_code.clone()));
            out.sections.push(Section::progbits(
                ".rvdyn.text",
                self.layout.patch_text,
                SHF_ALLOC | SHF_EXECINSTR,
                patch_code,
            ));
        }
        let data_size = self.var_cursor.max(8);
        out.sections.push(Section::progbits(
            ".rvdyn.data",
            self.layout.patch_data,
            SHF_ALLOC | SHF_WRITE,
            vec![0; data_size as usize],
        ));
        if !trap_table.is_empty() {
            let mut t = Vec::with_capacity(trap_table.len() * 16);
            for (from, to) in &trap_table {
                t.extend_from_slice(&from.to_le_bytes());
                t.extend_from_slice(&to.to_le_bytes());
            }
            out.sections.push(Section::progbits(
                ".rvdyn.traps",
                0,
                0, // non-alloc metadata; the emulator's loader reads it
                t,
            ));
        }

        Ok(PatchResult {
            binary: out,
            trap_table,
            spill_count,
            dead_register_points,
            points_instrumented,
            springboards,
            relocate_ns,
            clobbers_audited: audited.len(),
            redirects_registered: redirects.len(),
            plans_built: plans.len(),
            instrument_workers: nworkers,
            writes,
            undo,
            reloc_index,
        })
    }
}
