//! Function relocation: produce an instrumented copy of a function for the
//! patch area, preserving semantics at a new address.
//!
//! CFG-safe transformation (in the spirit of Bernat & Miller's structured
//! binary editing, which the paper cites): blocks are laid out in original
//! order with snippet code spliced in front of instrumented instructions;
//! all PC-relative material is re-derived:
//!
//! * intra-function branch/jump targets follow the address map (branch
//!   targets land on the snippet code of their target point, so e.g.
//!   loop-head counters observe every iteration);
//! * interprocedural `jal` calls/tail-calls keep their original absolute
//!   targets (re-encoded for the new pc; springboards at the callee decide
//!   whether the call enters instrumented code);
//! * every `auipc rd, imm` is replaced by an exact materialisation of the
//!   value it produced at its original address, sidestepping the
//!   `auipc`/`lo12` pairing problem entirely;
//! * branch displacements that outgrow their format are relaxed
//!   (inverted branch + `jal`, or `auipc`+`jalr` for far jumps) by an
//!   iterative size-relaxation pass, exactly like an assembler.

use rvdyn_codegen::imm::load_imm;
use rvdyn_isa::encode::{compress, encode32};
use rvdyn_isa::{build, Instruction, Op, Reg};
use rvdyn_parse::{EdgeKind, Function};
use std::collections::BTreeMap;
use std::fmt;

/// Relocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelocateError {
    /// A far unconditional jump had no way to reach its target (no
    /// register to spare for `auipc`).
    JumpOutOfRange { at: u64, target: u64 },
    /// An instruction failed to re-encode.
    Encode(String),
    /// A branch target was not an instruction the relocation mapped.
    UnmappedTarget { at: u64, target: u64 },
    /// A decoded instruction was missing an operand its format requires
    /// (a parse the decoder should never produce — surfaced instead of
    /// trusted).
    MalformedInstruction { at: u64 },
}

impl fmt::Display for RelocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelocateError::JumpOutOfRange { at, target } => {
                write!(f, "jump at {at:#x} cannot reach {target:#x}")
            }
            RelocateError::Encode(e) => write!(f, "re-encoding failed: {e}"),
            RelocateError::UnmappedTarget { at, target } => {
                write!(f, "branch at {at:#x} targets unmapped address {target:#x}")
            }
            RelocateError::MalformedInstruction { at } => {
                write!(f, "instruction at {at:#x} is missing a required operand")
            }
        }
    }
}

impl std::error::Error for RelocateError {}

/// The relocated function image.
#[derive(Debug, Clone)]
pub struct RelocatedFunction {
    /// Encoded bytes, based at `new_base`.
    pub code: Vec<u8>,
    /// New address of the (instrumented) function entry.
    pub new_entry: u64,
    /// Map from original instruction address to its relocated address
    /// (pointing at the snippet code when one is attached to the
    /// instruction).
    pub addr_map: BTreeMap<u64, u64>,
}

enum Item {
    /// Snippet code attached before the original instruction at `for_old`.
    Snippet { insts: Vec<Instruction> },
    /// An original instruction copied (re-encoded) verbatim.
    Verbatim { inst: Instruction },
    /// Conditional branch with a (possibly intra-function) target. When
    /// `stub_slot` is set, the branch routes through a taken-edge stub
    /// instead of its real target.
    CondBranch {
        inst: Instruction,
        old_target: u64,
        intra: bool,
        stub_slot: Option<usize>,
    },
    /// `jal` with a target: intra-function or absolute (call/tail-call).
    Jump {
        rd: Reg,
        old_target: u64,
        intra: bool,
    },
    /// Replacement for `auipc rd`: materialise the original value.
    AuipcValue { insts: Vec<Instruction> },
}

/// Snippet placement requests for one function's relocation.
#[derive(Debug, Default, Clone)]
pub struct Insertions {
    /// Run before the instruction at the key address (block-entry points
    /// map to the block's first instruction).
    pub before: BTreeMap<u64, Vec<Instruction>>,
    /// Run only when the conditional branch at the key address is taken
    /// (implemented as an out-of-line stub the branch is retargeted to).
    pub taken_edge: BTreeMap<u64, Vec<Instruction>>,
    /// Run only on the fallthrough of the conditional branch at the key
    /// address (implemented inline after the branch — only the
    /// fallthrough path passes there).
    pub not_taken_edge: BTreeMap<u64, Vec<Instruction>>,
}

impl Insertions {
    /// Only before-instruction insertions (the common case).
    pub fn before_only(before: BTreeMap<u64, Vec<Instruction>>) -> Insertions {
        Insertions {
            before,
            ..Default::default()
        }
    }
}

struct Slot {
    old_addr: Option<u64>, // original instruction this slot represents
    item: Item,
    size: u64,
}

fn invert(op: Op) -> Option<Op> {
    match op {
        Op::Beq => Some(Op::Bne),
        Op::Bne => Some(Op::Beq),
        Op::Blt => Some(Op::Bge),
        Op::Bge => Some(Op::Blt),
        Op::Bltu => Some(Op::Bgeu),
        Op::Bgeu => Some(Op::Bltu),
        _ => None,
    }
}

/// A sized-but-unplaced relocation: the slot list for one function with
/// snippets spliced in, after the size-relaxation fixpoint, but before
/// any patch-area address is chosen. This is the position-independent
/// artifact the instrumenter's parallel plan phase produces per
/// function; the sequential layout phase then pins each plan to its
/// final base ([`RelocationPlan::relax_at`]) and resolves the symbolic
/// targets into bytes ([`RelocationPlan::emit`]).
///
/// Slot sizes are *monotone*: `relax_at` only ever widens a slot, so
/// re-relaxing the same plan at successive candidate bases reaches a
/// fixpoint — which is what makes the instrumenter's whole-patch-area
/// layout loop terminate deterministically.
pub struct RelocationPlan {
    entry: u64,
    slots: Vec<Slot>,
}

impl RelocationPlan {
    /// Build the slot list for `f` with `insertions` spliced in (taken-edge
    /// stubs appended after the body). No addresses are assigned yet.
    pub fn build(f: &Function, insertions: &Insertions) -> Result<RelocationPlan, RelocateError> {
        build_slots(f, insertions).map(|slots| RelocationPlan {
            entry: f.entry,
            slots,
        })
    }

    /// Total encoded size of the plan at its current slot sizes.
    pub fn code_size(&self) -> u64 {
        self.slots.iter().map(|s| s.size).sum()
    }

    /// Run the size-relaxation fixpoint with the plan based at
    /// `new_base`. Slot sizes only grow (branches widen to the inverted
    /// form, jumps to `auipc`+`jalr`), so iterating `relax_at` over
    /// changing bases converges. Returns whether any slot widened.
    pub fn relax_at(&mut self, new_base: u64) -> bool {
        relax_slots(&mut self.slots, new_base)
    }

    /// Resolve every slot's target against `new_base` and encode. The
    /// caller must have called [`RelocationPlan::relax_at`] with the same
    /// base (sizes are assumed stable).
    pub fn emit(&self, new_base: u64) -> Result<RelocatedFunction, RelocateError> {
        emit_slots(&self.slots, self.entry, new_base)
    }
}

/// Relocate `f` to `new_base`, splicing `insertions`.
pub fn relocate_function(
    f: &Function,
    insertions: &Insertions,
    new_base: u64,
) -> Result<RelocatedFunction, RelocateError> {
    let mut plan = RelocationPlan::build(f, insertions)?;
    plan.relax_at(new_base);
    plan.emit(new_base)
}

/// Build the slot list for one function in block address order.
fn build_slots(f: &Function, insertions: &Insertions) -> Result<Vec<Slot>, RelocateError> {
    // ---- build the item list in block address order ----
    let mut slots: Vec<Slot> = Vec::new();
    // Conditional branches that need a taken-edge stub: (slot index of the
    // branch, branch old address).
    let mut want_stub: Vec<(usize, u64)> = Vec::new();
    let blocks: Vec<_> = f.blocks.values().collect();
    for (bi, b) in blocks.iter().enumerate() {
        let is_last_inst =
            |inst: &Instruction| Some(inst.address) == b.last_inst().map(|l| l.address);
        for inst in &b.insts {
            if let Some(snip) = insertions.before.get(&inst.address) {
                if !snip.is_empty() {
                    slots.push(Slot {
                        old_addr: Some(inst.address),
                        item: Item::Snippet {
                            insts: snip.clone(),
                        },
                        size: snip.len() as u64 * 4,
                    });
                }
            }
            // Classify the instruction for relocation purposes.
            let slot = if inst.op == Op::Auipc {
                let value = inst.address.wrapping_add(inst.imm as u64);
                let rd = inst
                    .rd
                    .ok_or(RelocateError::MalformedInstruction { at: inst.address })?;
                let insts = load_imm(rd, value as i64);
                let size = insts.len() as u64 * 4;
                Slot {
                    old_addr: Some(inst.address),
                    item: Item::AuipcValue { insts },
                    size,
                }
            } else if inst.op.is_conditional_branch() {
                let old_target = inst.address.wrapping_add(inst.imm as u64);
                if insertions.taken_edge.contains_key(&inst.address) {
                    want_stub.push((slots.len(), inst.address));
                }
                let slot = Slot {
                    old_addr: Some(inst.address),
                    item: Item::CondBranch {
                        inst: *inst,
                        old_target,
                        intra: true,
                        stub_slot: None,
                    },
                    size: 4,
                };
                slots.push(slot);
                // Not-taken edge snippet: inline right after the branch —
                // only the fallthrough path executes it.
                if let Some(snip) = insertions.not_taken_edge.get(&inst.address) {
                    if !snip.is_empty() {
                        slots.push(Slot {
                            old_addr: None,
                            item: Item::Snippet {
                                insts: snip.clone(),
                            },
                            size: snip.len() as u64 * 4,
                        });
                    }
                }
                continue;
            } else if inst.op == Op::Jal {
                let old_target = inst.address.wrapping_add(inst.imm as u64);
                // Edge kinds decide whether the target moves with us.
                let intra = if is_last_inst(inst) {
                    b.edges
                        .iter()
                        .any(|e| e.kind == EdgeKind::Jump && e.target == Some(old_target))
                } else {
                    true
                };
                Slot {
                    old_addr: Some(inst.address),
                    item: Item::Jump {
                        rd: inst.rd.unwrap_or(Reg::X0),
                        old_target,
                        intra,
                    },
                    size: 4,
                }
            } else {
                // Verbatim: keep compressed width when possible.
                let size = if inst.compressed.is_some() && compress(inst).is_some() {
                    2
                } else {
                    4
                };
                Slot {
                    old_addr: Some(inst.address),
                    item: Item::Verbatim { inst: *inst },
                    size,
                }
            };
            slots.push(slot);
        }
        // Explicit jump if the fallthrough successor is not laid out next.
        let ft = b.edges.iter().find_map(|e| {
            matches!(
                e.kind,
                EdgeKind::Fallthrough | EdgeKind::NotTaken | EdgeKind::CallFallthrough
            )
            .then_some(e.target)
            .flatten()
        });
        if let Some(t) = ft {
            let next_start = blocks.get(bi + 1).map(|nb| nb.start);
            if next_start != Some(t) && f.blocks.contains_key(&t) {
                slots.push(Slot {
                    old_addr: None,
                    item: Item::Jump {
                        rd: Reg::X0,
                        old_target: t,
                        intra: true,
                    },
                    size: 4,
                });
            }
        }
    }

    // ---- taken-edge stubs ----
    // Appended after the function body: snippet, then a jump to the real
    // taken target. The branch is retargeted to the stub.
    for (branch_slot, branch_addr) in want_stub {
        let stub_idx = slots.len();
        let snip = &insertions.taken_edge[&branch_addr];
        slots.push(Slot {
            old_addr: None,
            item: Item::Snippet {
                insts: snip.clone(),
            },
            size: snip.len() as u64 * 4,
        });
        let Item::CondBranch {
            old_target,
            ref mut stub_slot,
            ..
        } = slots[branch_slot].item
        else {
            unreachable!("want_stub records only CondBranch slots")
        };
        *stub_slot = Some(stub_idx);
        slots.push(Slot {
            old_addr: None,
            item: Item::Jump {
                rd: Reg::X0,
                old_target,
                intra: true,
            },
            size: 4,
        });
    }

    Ok(slots)
}

/// Assign slot addresses at `base` and derive the old→new address map.
/// The first slot for an old address wins (the snippet slot precedes the
/// instruction slot).
fn slot_addrs(slots: &[Slot], base: u64) -> (Vec<u64>, BTreeMap<u64, u64>) {
    let mut addr_map: BTreeMap<u64, u64> = BTreeMap::new();
    let mut slot_addr = Vec::with_capacity(slots.len());
    let mut pc = base;
    for s in slots {
        slot_addr.push(pc);
        if let Some(old) = s.old_addr {
            addr_map.entry(old).or_insert(pc);
        }
        pc += s.size;
    }
    (slot_addr, addr_map)
}

/// Size relaxation to a fixpoint at `new_base`. Sizes only grow; returns
/// whether any slot widened.
fn relax_slots(slots: &mut [Slot], new_base: u64) -> bool {
    let mut any = false;
    loop {
        let (slot_addr, addr_map) = slot_addrs(slots, new_base);

        // Check sizes.
        let mut changed = false;
        for (i, s) in slots.iter_mut().enumerate() {
            let at = slot_addr[i];
            match &s.item {
                Item::CondBranch {
                    old_target,
                    intra,
                    stub_slot,
                    ..
                } => {
                    let t = if let Some(idx) = stub_slot {
                        slot_addr[*idx]
                    } else if *intra {
                        *addr_map.get(old_target).unwrap_or(old_target)
                    } else {
                        *old_target
                    };
                    let delta = t.wrapping_sub(at) as i64;
                    let need: u64 = if (-4096..4096).contains(&delta) { 4 } else { 8 };
                    if need > s.size {
                        s.size = need;
                        changed = true;
                    }
                }
                Item::Jump {
                    old_target, intra, ..
                } => {
                    let t = if *intra {
                        *addr_map.get(old_target).unwrap_or(old_target)
                    } else {
                        *old_target
                    };
                    let delta = t.wrapping_sub(at) as i64;
                    let need: u64 = if (-(1 << 20)..(1 << 20)).contains(&delta) {
                        4
                    } else {
                        8
                    };
                    if need > s.size {
                        s.size = need;
                        changed = true;
                    }
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
        any = true;
    }
    any
}

/// Encode the (relaxed) slots at `new_base`.
fn emit_slots(
    slots: &[Slot],
    entry: u64,
    new_base: u64,
) -> Result<RelocatedFunction, RelocateError> {
    // Final slot addresses (sizes are stable after relaxation).
    let (emit_slot_addr, addr_map) = slot_addrs(slots, new_base);
    let mut code: Vec<u8> = Vec::new();
    let mut pc = new_base;
    let enc_err = |e: rvdyn_isa::encode::EncodeError| RelocateError::Encode(e.to_string());
    for s in slots {
        let at = pc;
        match &s.item {
            Item::Snippet { insts } | Item::AuipcValue { insts } => {
                for i in insts {
                    code.extend_from_slice(&encode32(i).map_err(enc_err)?.to_le_bytes());
                }
            }
            Item::Verbatim { inst } => {
                if s.size == 2 {
                    let c = compress(inst).ok_or_else(|| {
                        RelocateError::Encode(format!("size-2 slot at {at:#x} does not compress"))
                    })?;
                    code.extend_from_slice(&c.to_le_bytes());
                } else {
                    code.extend_from_slice(&encode32(inst).map_err(enc_err)?.to_le_bytes());
                }
            }
            Item::CondBranch {
                inst,
                old_target,
                intra,
                stub_slot,
            } => {
                let t = if let Some(idx) = stub_slot {
                    emit_slot_addr[*idx]
                } else if *intra {
                    *addr_map
                        .get(old_target)
                        .ok_or(RelocateError::UnmappedTarget {
                            at,
                            target: *old_target,
                        })?
                } else {
                    *old_target
                };
                let delta = t.wrapping_sub(at) as i64;
                let malformed = RelocateError::MalformedInstruction { at: inst.address };
                let rs1 = inst.rs1.ok_or_else(|| malformed.clone())?;
                let rs2 = inst.rs2.ok_or_else(|| malformed.clone())?;
                if s.size == 4 {
                    let b = build::b_type(inst.op, rs1, rs2, delta);
                    code.extend_from_slice(&encode32(&b).map_err(enc_err)?.to_le_bytes());
                } else {
                    // Inverted branch over a jal.
                    let inv = invert(inst.op).ok_or(malformed)?;
                    let skip = build::b_type(inv, rs1, rs2, 8);
                    let j = build::jal(Reg::X0, delta - 4);
                    code.extend_from_slice(&encode32(&skip).map_err(enc_err)?.to_le_bytes());
                    code.extend_from_slice(&encode32(&j).map_err(enc_err)?.to_le_bytes());
                }
            }
            Item::Jump {
                rd,
                old_target,
                intra,
            } => {
                let t = if *intra {
                    *addr_map
                        .get(old_target)
                        .ok_or(RelocateError::UnmappedTarget {
                            at,
                            target: *old_target,
                        })?
                } else {
                    *old_target
                };
                let delta = t.wrapping_sub(at) as i64;
                if s.size == 4 {
                    let j = build::jal(*rd, delta);
                    code.extend_from_slice(&encode32(&j).map_err(enc_err)?.to_le_bytes());
                } else {
                    // Far jump: auipc + jalr through rd (works only for a
                    // linking jump, which has a register to clobber).
                    if rd.is_zero() {
                        return Err(RelocateError::JumpOutOfRange { at, target: t });
                    }
                    let (hi, lo) = rvdyn_codegen::imm::pcrel_parts(at, t)
                        .ok_or(RelocateError::JumpOutOfRange { at, target: t })?;
                    let a = build::auipc(*rd, hi);
                    let j = build::jalr(*rd, *rd, lo);
                    code.extend_from_slice(&encode32(&a).map_err(enc_err)?.to_le_bytes());
                    code.extend_from_slice(&encode32(&j).map_err(enc_err)?.to_le_bytes());
                }
            }
        }
        pc += s.size;
        debug_assert_eq!(code.len() as u64, pc - new_base, "size accounting drift");
    }

    let new_entry = *addr_map.get(&entry).unwrap_or(&new_base);
    Ok(RelocatedFunction {
        code,
        new_entry,
        addr_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_asm::Assembler;
    use rvdyn_parse::{CodeObject, ParseOptions};

    fn parse_one(build_fn: impl FnOnce(&mut Assembler)) -> Function {
        let mut a = Assembler::new(0x1000);
        build_fn(&mut a);
        let code = a.finish().unwrap();
        let src = rvdyn_parse::source::RawCode {
            base: 0x1000,
            bytes: code,
            entries: vec![0x1000],
        };
        CodeObject::parse(&src, &ParseOptions::default()).functions[&0x1000].clone()
    }

    #[test]
    fn plain_relocation_preserves_instruction_count() {
        let f = parse_one(|a| {
            a.addi(Reg::x(10), Reg::X0, 1);
            a.addi(Reg::x(10), Reg::x(10), 2);
            a.ret();
        });
        let r = relocate_function(&f, &Insertions::default(), 0x8_0000).unwrap();
        assert_eq!(r.new_entry, 0x8_0000);
        assert_eq!(r.code.len(), 12);
        // Every original instruction is mapped.
        assert_eq!(r.addr_map.len(), 3);
    }

    #[test]
    fn loop_branches_retarget_into_relocation() {
        let f = parse_one(|a| {
            a.addi(Reg::x(5), Reg::X0, 3);
            let head = a.here_label();
            a.addi(Reg::x(5), Reg::x(5), -1);
            a.bne(Reg::x(5), Reg::X0, head);
            a.ret();
        });
        let r = relocate_function(&f, &Insertions::default(), 0x8_0000).unwrap();
        // Decode the relocated code; the bne target must equal the new
        // address of the loop head.
        let insts: Vec<_> = rvdyn_isa::decode::InstructionIter::new(&r.code, 0x8_0000)
            .map(|x| x.unwrap())
            .collect();
        let bne = insts.iter().find(|i| i.op == Op::Bne).unwrap();
        let target = bne.address.wrapping_add(bne.imm as u64);
        assert_eq!(target, r.addr_map[&0x1004]);
    }

    #[test]
    fn snippet_insertion_lands_before_instruction_and_branches_hit_it() {
        let f = parse_one(|a| {
            a.addi(Reg::x(5), Reg::X0, 3);
            let head = a.here_label();
            a.addi(Reg::x(5), Reg::x(5), -1);
            a.bne(Reg::x(5), Reg::X0, head);
            a.ret();
        });
        // Insert two nops before the loop head (0x1004).
        let mut ins = Insertions::default();
        ins.before.insert(0x1004, vec![build::nop(), build::nop()]);
        let r = relocate_function(&f, &ins, 0x8_0000).unwrap();
        // The map for 0x1004 points at the snippet.
        let snippet_at = r.addr_map[&0x1004];
        let insts: Vec<_> = rvdyn_isa::decode::InstructionIter::new(&r.code, 0x8_0000)
            .map(|x| x.unwrap())
            .collect();
        let at_snippet = insts.iter().find(|i| i.address == snippet_at).unwrap();
        assert_eq!(at_snippet.op, Op::Addi); // nop
                                             // The back edge lands on the snippet, not past it.
        let bne = insts.iter().find(|i| i.op == Op::Bne).unwrap();
        assert_eq!(bne.address.wrapping_add(bne.imm as u64), snippet_at);
    }

    #[test]
    fn auipc_replaced_with_exact_value() {
        let f = parse_one(|a| {
            let l = a.label();
            a.la(Reg::x(10), l); // auipc+addi pair
            a.ret();
            a.bind(l);
        });
        let r = relocate_function(&f, &Insertions::default(), 0x8_0000).unwrap();
        // Execute the relocated code's first instructions; x10 must equal
        // the ORIGINAL la target (0x100C).
        use rvdyn_isa::semantics::{eval_int, FlatMemory, IntState};
        let insts: Vec<_> = rvdyn_isa::decode::InstructionIter::new(&r.code, 0x8_0000)
            .map(|x| x.unwrap())
            .collect();
        let mut st = IntState::new(0x8_0000);
        let mut mem = FlatMemory::new(0, 8);
        for i in &insts {
            if i.is_canonical_return() {
                break;
            }
            st.pc = i.address;
            eval_int(i, &mut st, &mut mem);
        }
        assert_eq!(st.get(Reg::x(10)), 0x100C);
    }

    #[test]
    fn call_keeps_absolute_callee() {
        let f = parse_one(|a| {
            let callee = a.label();
            a.call(callee);
            a.ret();
            a.bind(callee);
            a.ret();
        });
        let r = relocate_function(&f, &Insertions::default(), 0x8_0000).unwrap();
        let insts: Vec<_> = rvdyn_isa::decode::InstructionIter::new(&r.code, 0x8_0000)
            .map(|x| x.unwrap())
            .collect();
        let call = insts
            .iter()
            .find(|i| i.op == Op::Jal && i.rd == Some(Reg::X1))
            .unwrap();
        assert_eq!(call.address.wrapping_add(call.imm as u64), 0x1008);
    }

    #[test]
    fn compressed_instructions_stay_compressed() {
        let f = parse_one(|a| {
            a.c_inst(build::addi(Reg::x(10), Reg::x(10), 1));
            a.ret();
        });
        let r = relocate_function(&f, &Insertions::default(), 0x8_0000).unwrap();
        assert_eq!(r.code.len(), 2 + 4);
    }

    #[test]
    fn big_snippet_forces_branch_relaxation() {
        // A conditional branch whose target moves > 4 KiB away because of
        // a giant snippet in between.
        let f = parse_one(|a| {
            let end = a.label();
            a.beq(Reg::x(10), Reg::X0, end);
            a.addi(Reg::x(5), Reg::X0, 1);
            a.bind(end);
            a.ret();
        });
        let big: Vec<Instruction> = (0..2000).map(|_| build::nop()).collect();
        let mut ins = Insertions::default();
        // The snippet sits on the not-taken path (before 0x1004), pushing
        // the branch target > 4 KiB away from the branch itself.
        ins.before.insert(0x1004, big);
        let r = relocate_function(&f, &ins, 0x8_0000).unwrap();
        // The first emitted instruction is now an INVERTED branch (bne).
        let first = rvdyn_isa::decode(&r.code, 0x8_0000).unwrap();
        assert_eq!(first.op, Op::Bne, "branch must be inverted for relaxation");
        // Executing: beq-taken path must land on the snippet start.
        let second = rvdyn_isa::decode(&r.code[4..], 0x8_0004).unwrap();
        assert_eq!(second.op, Op::Jal);
        assert_eq!(
            second.address.wrapping_add(second.imm as u64),
            r.addr_map[&0x1008]
        );
    }
}
