//! Springboard planning (§3.1.2).
//!
//! A springboard overwrites the first bytes of original code with a jump
//! to relocated code. Compressed instructions make this delicate: the
//! overwritten region may be as small as 2 bytes, and `c.j` reaches only
//! ±2 KiB. The planner picks the cheapest form that fits both the
//! available byte budget and the displacement, "ultimately resorting to
//! the inefficient 2-byte trap instructions in the worst case".

use rvdyn_isa::encode::{compress, encode32};
use rvdyn_isa::{build, Extension, IsaProfile, Reg, RegSet};

/// The chosen springboard form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpringboardKind {
    /// 2-byte compressed jump (±2 KiB, requires the C extension).
    CompressedJump,
    /// 4-byte `jal x0` (±1 MiB).
    Jal,
    /// 8-byte `auipc scratch; jalr x0, lo(scratch)` (±2 GiB). Clobbers
    /// `scratch`, which must be dead at the patch site.
    AuipcJalr(Reg),
    /// 2-byte `c.ebreak` / 4-byte `ebreak` trap, resolved through the trap
    /// table at run time — the worst case.
    Trap,
}

/// Histogram of springboard strategies chosen across one instrumentation
/// pass — the "springboard strategy" diagnostic the paper's worst-case
/// discussion (§3.1.2) calls for: traps should be rare.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpringboardStats {
    pub compressed_jump: usize,
    pub jal: usize,
    pub auipc_jalr: usize,
    pub trap: usize,
}

impl SpringboardStats {
    pub fn record(&mut self, kind: &SpringboardKind) {
        match kind {
            SpringboardKind::CompressedJump => self.compressed_jump += 1,
            SpringboardKind::Jal => self.jal += 1,
            SpringboardKind::AuipcJalr(_) => self.auipc_jalr += 1,
            SpringboardKind::Trap => self.trap += 1,
        }
    }

    pub fn total(&self) -> usize {
        self.compressed_jump + self.jal + self.auipc_jalr + self.trap
    }
}

/// A planned springboard: its form and encoded bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Springboard {
    pub kind: SpringboardKind,
    pub bytes: Vec<u8>,
    /// If `kind == Trap`, the (from, to) pair the trap table must contain.
    pub trap_entry: Option<(u64, u64)>,
}

impl Springboard {
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Plan a springboard at `from` jumping to `to`, with `avail` bytes of
/// overwritable code, targeting `profile`, with `dead` registers free.
pub fn plan_springboard(
    from: u64,
    to: u64,
    avail: usize,
    profile: IsaProfile,
    dead: RegSet,
) -> Springboard {
    let delta = to.wrapping_sub(from) as i64;

    // 1. c.j: ±2 KiB, 2 bytes, C extension required.
    if profile.has(Extension::C) && avail >= 2 && (-2048..2048).contains(&delta) {
        let j = build::jal(Reg::X0, delta);
        if let Some(c) = compress(&j) {
            return Springboard {
                kind: SpringboardKind::CompressedJump,
                bytes: c.to_le_bytes().to_vec(),
                trap_entry: None,
            };
        }
    }

    // 2. jal x0: ±1 MiB, 4 bytes.
    if avail >= 4 && (-(1 << 20)..(1 << 20)).contains(&delta) {
        let j = build::jal(Reg::X0, delta);
        if let Ok(raw) = encode32(&j) {
            return Springboard {
                kind: SpringboardKind::Jal,
                bytes: raw.to_le_bytes().to_vec(),
                trap_entry: None,
            };
        }
    }

    // 3. auipc + jalr: ±2 GiB, 8 bytes, needs a dead scratch register.
    if avail >= 8 {
        // Prefer temporaries.
        let scratch = [5u8, 6, 7, 28, 29, 30, 31]
            .iter()
            .map(|&n| Reg::x(n))
            .find(|&r| dead.contains(r));
        if let Some(s) = scratch {
            if let Some((hi, lo)) = rvdyn_codegen::imm::pcrel_parts(from, to) {
                let a = build::auipc(s, hi);
                let j = build::jalr(Reg::X0, s, lo);
                // pcrel_parts guarantees encodable hi/lo; if either still
                // refuses to encode, fall through to the trap plan rather
                // than abort.
                if let (Ok(ra), Ok(rj)) = (encode32(&a), encode32(&j)) {
                    let mut bytes = Vec::with_capacity(8);
                    bytes.extend_from_slice(&ra.to_le_bytes());
                    bytes.extend_from_slice(&rj.to_le_bytes());
                    return Springboard {
                        kind: SpringboardKind::AuipcJalr(s),
                        bytes,
                        trap_entry: None,
                    };
                }
            }
        }
    }

    // 4. Trap (the paper's worst case, "fortunately, does not occur
    //    often"): c.ebreak if 2 bytes and C, else ebreak. The spec
    //    constants back up the encoder for these fixed instructions.
    let bytes = if profile.has(Extension::C) && avail < 4 {
        compress(&build::ebreak())
            .unwrap_or(0x9002) // c.ebreak
            .to_le_bytes()
            .to_vec()
    } else {
        encode32(&build::ebreak())
            .unwrap_or(0x0010_0073) // ebreak
            .to_le_bytes()
            .to_vec()
    };
    Springboard {
        kind: SpringboardKind::Trap,
        bytes,
        trap_entry: Some((from, to)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead_all() -> RegSet {
        RegSet::ALL_GPR
    }

    #[test]
    fn short_hop_uses_compressed_jump() {
        let s = plan_springboard(0x1000, 0x1400, 8, IsaProfile::rv64gc(), dead_all());
        assert_eq!(s.kind, SpringboardKind::CompressedJump);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn no_c_extension_skips_compressed() {
        let s = plan_springboard(0x1000, 0x1400, 8, IsaProfile::rv64g(), dead_all());
        assert_eq!(s.kind, SpringboardKind::Jal);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn medium_hop_uses_jal() {
        let s = plan_springboard(0x1_0000, 0x8_0000, 8, IsaProfile::rv64gc(), dead_all());
        assert_eq!(s.kind, SpringboardKind::Jal);
    }

    #[test]
    fn far_hop_uses_auipc_pair() {
        let s = plan_springboard(0x1_0000, 0x4000_0000, 8, IsaProfile::rv64gc(), dead_all());
        assert!(matches!(s.kind, SpringboardKind::AuipcJalr(_)));
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn far_hop_without_dead_registers_traps() {
        let s = plan_springboard(
            0x1_0000,
            0x4000_0000,
            8,
            IsaProfile::rv64gc(),
            RegSet::empty(),
        );
        assert_eq!(s.kind, SpringboardKind::Trap);
        assert_eq!(s.trap_entry, Some((0x1_0000, 0x4000_0000)));
    }

    #[test]
    fn tiny_function_traps() {
        // §3.1.2: "functions that are shorter than four bytes" — only a
        // 2-byte budget and an out-of-c.j-range target.
        let s = plan_springboard(0x1_0000, 0x8_0000, 2, IsaProfile::rv64gc(), dead_all());
        assert_eq!(s.kind, SpringboardKind::Trap);
        assert_eq!(s.len(), 2, "must fit the 2-byte budget");
    }

    #[test]
    fn springboard_decodes_to_jump_with_right_target() {
        for (from, to) in [(0x1000u64, 0x1800u64), (0x1_0000, 0x9_0000)] {
            let s = plan_springboard(from, to, 8, IsaProfile::rv64gc(), dead_all());
            let i = rvdyn_isa::decode(&s.bytes, from).unwrap();
            match i.control_flow() {
                rvdyn_isa::ControlFlow::DirectJump { target, link } => {
                    assert_eq!(target, to);
                    assert_eq!(link, Reg::X0);
                }
                cf => panic!("unexpected {cf:?}"),
            }
        }
    }

    #[test]
    fn auipc_pair_computes_target() {
        use rvdyn_isa::semantics::{eval_int, FlatMemory, IntState};
        let (from, to) = (0x1_0000u64, 0x4000_0800u64);
        let s = plan_springboard(from, to, 8, IsaProfile::rv64gc(), dead_all());
        let i1 = rvdyn_isa::decode(&s.bytes[..4], from).unwrap();
        let i2 = rvdyn_isa::decode(&s.bytes[4..], from + 4).unwrap();
        let mut st = IntState::new(from);
        let mut mem = FlatMemory::new(0, 8);
        st.pc = from;
        eval_int(&i1, &mut st, &mut mem);
        st.pc = from + 4;
        match eval_int(&i2, &mut st, &mut mem) {
            rvdyn_isa::semantics::EvalOutcome::Jump(t) => assert_eq!(t, to),
            o => panic!("{o:?}"),
        }
    }
}
