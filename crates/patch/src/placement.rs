//! Optimal counter placement for basic-block counting (Knuth /
//! Ball–Larus style).
//!
//! Counting every basic block costs one increment snippet per dynamic
//! block — the dominant term of the paper's Table 1 overhead. But block
//! counts are not independent: Kirchhoff's law holds on a control-flow
//! graph (flow in = flow out at every vertex), so most counts are *linear
//! combinations* of a few others. The classic result (Knuth & Stevenson;
//! Ball & Larus, "Optimally profiling and tracing programs") is that it
//! suffices to count the edges in the complement of a spanning tree of
//! the CFG, and that picking a **maximum** spanning tree under an
//! execution-frequency weighting pushes the counters onto the *coldest*
//! edges. Every block count is then reconstructed exactly after the run.
//!
//! ## Algorithm
//!
//! 1. Build an undirected multigraph over the function's blocks plus a
//!    virtual `EXIT` vertex: one edge per intraprocedural CFG edge, one
//!    `block → EXIT` edge per exit (return / tail-call) block, and a
//!    virtual `EXIT → entry` edge closing the graph (its count is the
//!    number of function invocations).
//! 2. Weight each edge `10^min(depth(u), depth(v))` where `depth` is the
//!    natural-loop nesting depth ([`rvdyn_parse::loops::loop_depths`]) —
//!    the standard static frequency estimate. The virtual edge is forced
//!    into the tree (it cannot be instrumented).
//! 3. Run Kruskal's algorithm for a maximum spanning tree. Each
//!    *non-tree* edge becomes a [`CounterSite`]; hot back edges end up in
//!    the tree and are never counted directly.
//! 4. Solve the tree symbolically by leaf-peeling: at a vertex with one
//!    unsolved incident edge, flow conservation determines that edge as
//!    an integer combination of the counter sites. A block's count is the
//!    sum of its outgoing edge vectors — the reconstruction matrix stored
//!    in [`BlockCountPlan`].
//!
//! For the matmul kernel's 11-block triple loop this places **4**
//! counters (one per loop plus one for the invocation count) instead of
//! 11, and — more importantly — the counters run `n³ + n² + n + 1` times
//! per call instead of `Θ(2n³)`: the innermost 2-cycle pins one counter
//! at `n³` frequency (that is information-theoretically unavoidable —
//! every edge of that cycle runs `Θ(n³)` times), and everything else is
//! relegated to colder edges.
//!
//! ## Scope and fallback
//!
//! [`plan_block_counters`] returns `None` — and callers fall back to
//! every-block counting — whenever exact reconstruction cannot be
//! guaranteed: unresolved or indirect intraprocedural edges, unreachable
//! blocks, blocks with edge shapes the site mapping does not cover, or a
//! CFG where the co-tree is not actually smaller than the block set.
//! `Call` edges are ignored (control returns via the `CallFallthrough`
//! edge), which assumes callees return; that holds for the bundled
//! mutatees and is the same assumption Ball–Larus profiling makes.

use rvdyn_parse::block::EdgeKind;
use rvdyn_parse::loops::{loop_depths, reverse_postorder};
use rvdyn_parse::Function;
use std::collections::BTreeMap;

use crate::points::{Point, PointKind};

/// Counter-placement strategy for basic-block counting.
///
/// Selected via `SessionOptions::counter_placement`; consumed by the
/// session's `count_blocks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterPlacement {
    /// One counter per basic block, incremented at block entry. Simple,
    /// always applicable, and what Table 1's `bb_count` row measures.
    #[default]
    EveryBlock,
    /// Knuth/Ball–Larus co-tree placement: counters on a minimal set of
    /// cold CFG locations, exact per-block counts reconstructed from the
    /// flow equations after the run ([`plan_block_counters`]). Falls
    /// back to [`EveryBlock`](CounterPlacement::EveryBlock) per function
    /// when no plan exists.
    Optimal,
}

/// One location where an increment snippet is placed by an optimal plan.
///
/// A site counts the traversals of one *non-tree CFG edge*. Edges whose
/// source block has a single successor are counted at the source block
/// itself (a plain block-entry probe); the two sides of a conditional
/// branch are counted on the taken / not-taken edge via the
/// corresponding edge points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterSite {
    /// Increment at entry to `block` (counts the block's executions,
    /// which equal its single outgoing edge's traversals).
    Block { block: u64 },
    /// Increment when the conditional branch ending `block` (at address
    /// `branch`) is taken.
    TakenEdge { block: u64, branch: u64 },
    /// Increment when that branch falls through.
    NotTakenEdge { block: u64, branch: u64 },
}

impl CounterSite {
    /// The block this site's probe lives in.
    pub fn block(&self) -> u64 {
        match *self {
            CounterSite::Block { block }
            | CounterSite::TakenEdge { block, .. }
            | CounterSite::NotTakenEdge { block, .. } => block,
        }
    }

    /// The instrumentation [`Point`] that materialises this site in
    /// function `func`.
    pub fn point(&self, func: u64) -> Point {
        match *self {
            CounterSite::Block { block } => Point {
                func,
                addr: block,
                kind: PointKind::BlockEntry,
            },
            CounterSite::TakenEdge { branch, .. } => Point {
                func,
                addr: branch,
                kind: PointKind::BranchTaken,
            },
            CounterSite::NotTakenEdge { branch, .. } => Point {
                func,
                addr: branch,
                kind: PointKind::BranchNotTaken,
            },
        }
    }
}

/// Why a reconstruction failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// `reconstruct` was handed the wrong number of counter values.
    CounterMismatch { expected: usize, got: usize },
    /// A block's flow equation produced a negative or overflowing count —
    /// the counter values cannot have come from a run of this CFG.
    InconsistentCounts { block: u64 },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::CounterMismatch { expected, got } => {
                write!(f, "expected {expected} counter values, got {got}")
            }
            PlacementError::InconsistentCounts { block } => {
                write!(f, "flow equations inconsistent at block {block:#x}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// An optimal counter placement for one function: where to put the
/// increment snippets, and how to get every block count back.
///
/// Produced by [`plan_block_counters`]; a plan is only returned when it
/// strictly beats every-block placement (`sites.len() < block count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCountPlan {
    /// Entry address of the function the plan was computed for.
    pub func: u64,
    /// The counter sites, in deterministic order; the i-th site's runtime
    /// value is the i-th entry of the slice passed to [`reconstruct`](Self::reconstruct).
    pub sites: Vec<CounterSite>,
    /// Reconstruction matrix: block start → integer coefficients over the
    /// site values, such that `count(block) = Σ matrix[block][i] · site[i]`.
    pub matrix: BTreeMap<u64, Vec<i64>>,
}

impl BlockCountPlan {
    /// Number of increment snippets this plan places.
    pub fn counters_placed(&self) -> usize {
        self.sites.len()
    }

    /// Number of counters saved versus every-block placement.
    pub fn counters_elided(&self) -> usize {
        self.matrix.len() - self.sites.len()
    }

    /// Solve the flow equations: given the runtime value of each counter
    /// site (in [`sites`](Self::sites) order), return the exact execution
    /// count of every basic block.
    pub fn reconstruct(&self, counters: &[u64]) -> Result<BTreeMap<u64, u64>, PlacementError> {
        if counters.len() != self.sites.len() {
            return Err(PlacementError::CounterMismatch {
                expected: self.sites.len(),
                got: counters.len(),
            });
        }
        let mut counts = BTreeMap::new();
        for (&block, coeffs) in &self.matrix {
            let mut acc: i128 = 0;
            for (&c, &v) in coeffs.iter().zip(counters) {
                acc += c as i128 * v as i128;
            }
            if acc < 0 || acc > u64::MAX as i128 {
                return Err(PlacementError::InconsistentCounts { block });
            }
            counts.insert(block, acc as u64);
        }
        Ok(counts)
    }
}

/// Index of the virtual EXIT vertex's placeholder address.
const EXIT: u64 = u64::MAX;

/// How a CFG edge is measured if it ends up outside the spanning tree.
#[derive(Debug, Clone, Copy)]
enum EdgeSite {
    Vertex(u64),
    Taken {
        block: u64,
        branch: u64,
    },
    NotTaken {
        block: u64,
        branch: u64,
    },
    /// The virtual EXIT→entry edge; forced into the tree, never counted.
    Virtual,
}

struct GEdge {
    u: usize,
    v: usize,
    weight: u64,
    site: EdgeSite,
}

/// Union-find with path halving.
fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// Compute an optimal counter placement for `f`, or `None` when the CFG
/// is outside the supported shape (see the [module docs](self) for the
/// exact fallback conditions) or the plan would not save any counters.
///
/// The placement is deterministic: blocks and edges are enumerated in
/// address order and the spanning-tree construction breaks weight ties
/// by that order.
pub fn plan_block_counters(f: &Function) -> Option<BlockCountPlan> {
    plan_block_counters_with_depths(f, &loop_depths(f))
}

/// As [`plan_block_counters`], but with caller-supplied loop depths
/// (e.g. a shared front-half analysis that already computed them),
/// skipping the in-plan `loop_depths` recomputation. `depth` must be
/// the loop-depth map of `f` itself — same keys as `f.blocks`; a map
/// missing any block falls back to `None` (no plan) rather than
/// placing counters from inconsistent weights.
pub fn plan_block_counters_with_depths(
    f: &Function,
    depth: &BTreeMap<u64, usize>,
) -> Option<BlockCountPlan> {
    if f.blocks.is_empty() || !f.blocks.contains_key(&f.entry) {
        return None;
    }
    if f.blocks.keys().any(|b| !depth.contains_key(b)) {
        return None;
    }
    // Every block must be reachable, else its flow equation is
    // disconnected from the instrumented ones.
    if reverse_postorder(f).len() != f.blocks.len() {
        return None;
    }

    let verts: Vec<u64> = f
        .blocks
        .keys()
        .copied()
        .chain(std::iter::once(EXIT))
        .collect();
    let vidx: BTreeMap<u64, usize> = verts.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let d = |b: u64| if b == EXIT { 0 } else { depth[&b] };
    // 10^d with a cap well below the virtual edge's weight.
    let w10 = |e: usize| 10u64.saturating_pow(e.min(18) as u32);

    let mut edges: Vec<GEdge> = Vec::new();
    let mut saw_exit = false;
    for b in f.blocks.values() {
        let mut intra: Vec<(EdgeKind, u64)> = Vec::new();
        let mut exits = 0usize;
        for e in &b.edges {
            match e.kind {
                EdgeKind::IndirectJump | EdgeKind::Unresolved => return None,
                EdgeKind::Return | EdgeKind::TailCall => exits += 1,
                EdgeKind::Call => {}
                EdgeKind::Fallthrough
                | EdgeKind::Jump
                | EdgeKind::CallFallthrough
                | EdgeKind::Taken
                | EdgeKind::NotTaken => {
                    let t = e.target?;
                    if !f.blocks.contains_key(&t) {
                        return None;
                    }
                    intra.push((e.kind, t));
                }
            }
        }
        let weight = |t: u64| w10(d(b.start).min(d(t)));
        match (intra.as_slice(), exits) {
            // Exit block: one edge to the virtual EXIT vertex, counted
            // (if needed) at the block itself.
            ([], n) if n >= 1 => {
                saw_exit = true;
                edges.push(GEdge {
                    u: vidx[&b.start],
                    v: vidx[&EXIT],
                    weight: weight(EXIT),
                    site: EdgeSite::Vertex(b.start),
                });
            }
            // Single successor: the edge count equals the block count.
            ([(_, t)], 0) => edges.push(GEdge {
                u: vidx[&b.start],
                v: vidx[t],
                weight: weight(*t),
                site: EdgeSite::Vertex(b.start),
            }),
            // Conditional branch: two edges, each measurable on its own
            // side of the branch.
            ([a, c], 0) => {
                let (taken, not_taken) = match (a, c) {
                    ((EdgeKind::Taken, t), (EdgeKind::NotTaken, n)) => (*t, *n),
                    ((EdgeKind::NotTaken, n), (EdgeKind::Taken, t)) => (*t, *n),
                    _ => return None,
                };
                let branch = b.last_inst()?.address;
                edges.push(GEdge {
                    u: vidx[&b.start],
                    v: vidx[&taken],
                    weight: weight(taken),
                    site: EdgeSite::Taken {
                        block: b.start,
                        branch,
                    },
                });
                edges.push(GEdge {
                    u: vidx[&b.start],
                    v: vidx[&not_taken],
                    weight: weight(not_taken),
                    site: EdgeSite::NotTaken {
                        block: b.start,
                        branch,
                    },
                });
            }
            _ => return None,
        }
    }
    if !saw_exit {
        // No return path: the flow graph never closes and the equations
        // are underdetermined.
        return None;
    }
    // Virtual back edge EXIT→entry; its count is the invocation count.
    edges.push(GEdge {
        u: vidx[&EXIT],
        v: vidx[&f.entry],
        weight: u64::MAX,
        site: EdgeSite::Virtual,
    });

    // Maximum spanning tree (Kruskal). Stable sort keeps address order
    // within equal weights, making tie-breaks deterministic.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| edges[b].weight.cmp(&edges[a].weight));
    let mut parent: Vec<usize> = (0..verts.len()).collect();
    let mut in_tree = vec![false; edges.len()];
    for &ei in &order {
        let (ru, rv) = (
            find(&mut parent, edges[ei].u),
            find(&mut parent, edges[ei].v),
        );
        if ru != rv {
            parent[ru] = rv;
            in_tree[ei] = true;
        }
    }

    // Non-tree edges become counter sites (edge order = address order).
    let mut sites: Vec<CounterSite> = Vec::new();
    let mut site_of_edge: Vec<Option<usize>> = vec![None; edges.len()];
    for (ei, e) in edges.iter().enumerate() {
        if in_tree[ei] {
            continue;
        }
        let site = match e.site {
            EdgeSite::Vertex(b) => CounterSite::Block { block: b },
            EdgeSite::Taken { block, branch } => CounterSite::TakenEdge { block, branch },
            EdgeSite::NotTaken { block, branch } => CounterSite::NotTakenEdge { block, branch },
            EdgeSite::Virtual => return None, // forced into the tree above
        };
        site_of_edge[ei] = Some(sites.len());
        sites.push(site);
    }
    if sites.len() >= f.blocks.len() {
        // Cyclomatic number ≥ block count: no saving over EveryBlock.
        return None;
    }

    // Solve tree edges by leaf-peeling over the flow equations.
    let nsites = sites.len();
    let mut vec_of: Vec<Option<Vec<i64>>> = site_of_edge
        .iter()
        .map(|s| {
            s.map(|i| {
                let mut v = vec![0i64; nsites];
                v[i] = 1;
                v
            })
        })
        .collect();
    // adjacency: vertex → [(edge index, edge is outgoing at vertex)]
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); verts.len()];
    for (ei, e) in edges.iter().enumerate() {
        adj[e.u].push((ei, true));
        adj[e.v].push((ei, false));
    }
    let mut unsolved: Vec<usize> = vec![0; verts.len()];
    for (ei, e) in edges.iter().enumerate() {
        if vec_of[ei].is_none() {
            unsolved[e.u] += 1;
            unsolved[e.v] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..verts.len()).filter(|&v| unsolved[v] == 1).collect();
    while let Some(v) = queue.pop() {
        if unsolved[v] != 1 {
            continue;
        }
        let (ei, is_out) = *adj[v]
            .iter()
            .find(|&&(ei, _)| vec_of[ei].is_none())
            .expect("vertex with one unsolved edge");
        // Flow conservation at v: Σ in − Σ out = 0.
        let mut acc = vec![0i64; nsites];
        for &(oi, out) in &adj[v] {
            if oi == ei {
                continue;
            }
            let ov = vec_of[oi].as_ref().expect("other edges solved");
            for (a, &b) in acc.iter_mut().zip(ov) {
                *a += if out { -b } else { b };
            }
        }
        if !is_out {
            for a in acc.iter_mut() {
                *a = -*a;
            }
        }
        vec_of[ei] = Some(acc);
        unsolved[edges[ei].u] -= 1;
        unsolved[edges[ei].v] -= 1;
        for x in [edges[ei].u, edges[ei].v] {
            if unsolved[x] == 1 {
                queue.push(x);
            }
        }
    }
    debug_assert!(vec_of.iter().all(|v| v.is_some()));

    // Block count = Σ outgoing edge vectors (every block has ≥ 1 out
    // edge by construction).
    let mut matrix: BTreeMap<u64, Vec<i64>> = BTreeMap::new();
    for (ei, e) in edges.iter().enumerate() {
        let src = verts[e.u];
        if src == EXIT {
            continue;
        }
        let ev = vec_of[ei].as_ref()?;
        let row = matrix.entry(src).or_insert_with(|| vec![0i64; nsites]);
        for (a, &b) in row.iter_mut().zip(ev) {
            *a += b;
        }
    }
    debug_assert_eq!(matrix.len(), f.blocks.len());

    Some(BlockCountPlan {
        func: f.entry,
        sites,
        matrix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvdyn_parse::block::{BasicBlock, Edge};

    /// Build a synthetic function; each block is 4 bytes with one `nop`
    /// so branch points have a `last_inst`.
    fn mk(entry: u64, shape: &[(u64, Vec<Edge>)]) -> Function {
        let mut f = Function::new(entry);
        for (start, edges) in shape {
            let mut inst = rvdyn_isa::build::nop();
            inst.address = *start;
            f.blocks.insert(
                *start,
                BasicBlock {
                    start: *start,
                    end: *start + 4,
                    insts: vec![inst],
                    edges: edges.clone(),
                },
            );
        }
        f
    }

    fn jump(t: u64) -> Edge {
        Edge::to(EdgeKind::Jump, t)
    }
    fn cond(taken: u64, not_taken: u64) -> Vec<Edge> {
        vec![
            Edge::to(EdgeKind::Taken, taken),
            Edge::to(EdgeKind::NotTaken, not_taken),
        ]
    }
    fn ret() -> Edge {
        Edge::out(EdgeKind::Return)
    }

    /// Simulate executions of the CFG and return (true block counts,
    /// simulated site counter values).
    fn simulate(
        f: &Function,
        plan: &BlockCountPlan,
        decisions: &mut impl FnMut(u64) -> bool,
        invocations: usize,
    ) -> (BTreeMap<u64, u64>, Vec<u64>) {
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        let mut taken_counts: BTreeMap<u64, u64> = BTreeMap::new();
        let mut nt_counts: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..invocations {
            let mut cur = f.entry;
            loop {
                *counts.entry(cur).or_default() += 1;
                let b = &f.blocks[&cur];
                let intra: Vec<&Edge> = b
                    .edges
                    .iter()
                    .filter(|e| e.kind.is_intraprocedural())
                    .collect();
                if intra.is_empty() {
                    break; // exit block
                }
                if intra.len() == 1 {
                    cur = intra[0].target.unwrap();
                } else {
                    let take = decisions(cur);
                    let kind = if take {
                        EdgeKind::Taken
                    } else {
                        EdgeKind::NotTaken
                    };
                    let e = intra.iter().find(|e| e.kind == kind).unwrap();
                    if take {
                        *taken_counts.entry(cur).or_default() += 1;
                    } else {
                        *nt_counts.entry(cur).or_default() += 1;
                    }
                    cur = e.target.unwrap();
                }
            }
        }
        let counters = plan
            .sites
            .iter()
            .map(|s| match *s {
                CounterSite::Block { block } => counts.get(&block).copied().unwrap_or(0),
                CounterSite::TakenEdge { block, .. } => {
                    taken_counts.get(&block).copied().unwrap_or(0)
                }
                CounterSite::NotTakenEdge { block, .. } => {
                    nt_counts.get(&block).copied().unwrap_or(0)
                }
            })
            .collect();
        // Blocks never reached still need an entry for comparison.
        for &b in f.blocks.keys() {
            counts.entry(b).or_default();
        }
        (counts, counters)
    }

    #[test]
    fn straight_line_needs_one_counter() {
        // 1 → 2 → 3 → ret
        let f = mk(
            0x10,
            &[
                (0x10, vec![jump(0x20)]),
                (0x20, vec![jump(0x30)]),
                (0x30, vec![ret()]),
            ],
        );
        let plan = plan_block_counters(&f).expect("plan");
        assert_eq!(plan.counters_placed(), 1);
        assert_eq!(plan.counters_elided(), 2);
        let counts = plan.reconstruct(&[7]).unwrap();
        assert!(counts.values().all(|&c| c == 7));
    }

    #[test]
    fn diamond_needs_two_counters() {
        //      0x10 (cond)
        //     /    \
        //  0x20    0x30
        //     \    /
        //      0x40 ret
        let f = mk(
            0x10,
            &[
                (0x10, cond(0x20, 0x30)),
                (0x20, vec![jump(0x40)]),
                (0x30, vec![jump(0x40)]),
                (0x40, vec![ret()]),
            ],
        );
        let plan = plan_block_counters(&f).expect("plan");
        assert_eq!(plan.counters_placed(), 2);
        assert_eq!(plan.counters_elided(), 2);
        // 5 invocations, alternating sides (3 taken, 2 not-taken).
        let mut flip = 0u64;
        let (truth, counters) = simulate(
            &f,
            &plan,
            &mut |_| {
                flip += 1;
                flip % 2 == 1
            },
            5,
        );
        assert_eq!(plan.reconstruct(&counters).unwrap(), truth);
    }

    #[test]
    fn loop_counter_avoids_back_edge() {
        // 0x10 → 0x20(header, cond: taken→0x40 exit, nt→0x30 body) ;
        // 0x30 → 0x20 back edge ; 0x40 ret
        let f = mk(
            0x10,
            &[
                (0x10, vec![jump(0x20)]),
                (0x20, cond(0x40, 0x30)),
                (0x30, vec![jump(0x20)]),
                (0x40, vec![ret()]),
            ],
        );
        let plan = plan_block_counters(&f).expect("plan");
        assert_eq!(plan.counters_placed(), 2);
        // One site must count the loop (body or back edge region), the
        // other the invocation-frequency part; reconstruct an execution
        // with 3 invocations × 4 iterations.
        let mut iters = 0u64;
        let (truth, counters) = simulate(
            &f,
            &plan,
            &mut |_| {
                iters += 1;
                iters.is_multiple_of(5) // take the exit every 5th query
            },
            3,
        );
        assert_eq!(plan.reconstruct(&counters).unwrap(), truth);
        assert_eq!(truth[&0x30], 12); // 3 invocations × 4 body iterations
    }

    #[test]
    fn nested_loops_place_one_counter_per_cycle() {
        // entry → outer header → inner header ⇄ inner body ; exits.
        // outer: 0x20..0x40 ; inner: 0x30 self-nesting via 0x38.
        let f = mk(
            0x10,
            &[
                (0x10, vec![jump(0x20)]),
                (0x20, cond(0x60, 0x30)), // outer header
                (0x30, cond(0x50, 0x38)), // inner header
                (0x38, vec![jump(0x30)]), // inner latch
                (0x50, vec![jump(0x20)]), // outer latch
                (0x60, vec![ret()]),
            ],
        );
        let plan = plan_block_counters(&f).expect("plan");
        // cyclomatic number: E=8 (incl. exit edge) + virtual, V=7 → 8+1-7=2… compute:
        // edges: 10→20, 20→60, 20→30, 30→50, 30→38, 38→30, 50→20, 60→EXIT,
        // EXIT→10 ⇒ 9 edges, 7 vertices ⇒ 3 sites.
        assert_eq!(plan.counters_placed(), 3);
        assert_eq!(plan.counters_elided(), 3);
        let mut n = 0u64;
        let (truth, counters) = simulate(
            &f,
            &plan,
            &mut |_| {
                n = n
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (n >> 33).is_multiple_of(3)
            },
            4,
        );
        assert_eq!(plan.reconstruct(&counters).unwrap(), truth);
    }

    #[test]
    fn indirect_edges_defeat_planning() {
        let f = mk(
            0x10,
            &[
                (0x10, vec![Edge::to(EdgeKind::IndirectJump, 0x20)]),
                (0x20, vec![ret()]),
            ],
        );
        assert!(plan_block_counters(&f).is_none());
    }

    #[test]
    fn unreachable_blocks_defeat_planning() {
        let f = mk(0x10, &[(0x10, vec![ret()]), (0x90, vec![jump(0x10)])]);
        assert!(plan_block_counters(&f).is_none());
    }

    #[test]
    fn single_block_gains_nothing() {
        // 1 block, 1 site — not a saving, so no plan.
        let f = mk(0x10, &[(0x10, vec![ret()])]);
        assert!(plan_block_counters(&f).is_none());
    }

    #[test]
    fn no_exit_defeats_planning() {
        let f = mk(0x10, &[(0x10, vec![jump(0x10)])]);
        assert!(plan_block_counters(&f).is_none());
    }

    #[test]
    fn reconstruct_rejects_wrong_arity_and_inconsistent_counters() {
        let f = mk(
            0x10,
            &[
                (0x10, cond(0x20, 0x30)),
                (0x20, vec![jump(0x40)]),
                (0x30, vec![jump(0x40)]),
                (0x40, vec![ret()]),
            ],
        );
        let plan = plan_block_counters(&f).expect("plan");
        assert!(matches!(
            plan.reconstruct(&[1]),
            Err(PlacementError::CounterMismatch {
                expected: 2,
                got: 1
            })
        ));
        // Some coefficient is negative (a difference of flows), so a
        // wildly lopsided pair must trip the consistency check.
        let bad = plan.reconstruct(&[0, u64::MAX]);
        let good = plan.reconstruct(&[u64::MAX, 0]);
        assert!(bad.is_err() || good.is_err());
    }
}
