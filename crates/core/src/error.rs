//! The unified error taxonomy for the instrumentation pipeline.
//!
//! Every component crate reports failures through its own typed error
//! (`SymtabError`, `DecodeError`, `CodeGenError`, `InstrumentError`,
//! `RelocateError`, `ProcError`); this module folds them into one
//! [`Error`] so a tool built on the facade can match on a single enum,
//! ask [`Error::stage`] where in open→parse→instrument→run the failure
//! happened, and read the faulting pc/address without string parsing.
//!
//! The design rule (ROADMAP north star: survive production binaries): a
//! mutatee that faults, traps unexpectedly, or exits uncleanly is *data*,
//! not a reason for the mutator to abort — those conditions surface as
//! [`Error::MutateeFault`] / [`Error::UncleanExit`], never as panics.

use rvdyn_codegen::emitter::CodeGenError;
use rvdyn_isa::DecodeError;
use rvdyn_patch::relocate::RelocateError;
use rvdyn_patch::InstrumentError;
use rvdyn_proccontrol::ProcError;
use rvdyn_symtab::SymtabError;
use std::fmt;

/// Pipeline stage an error was raised in (Figure 1's workflow steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Reading and modelling the input ELF (SymtabAPI).
    Open,
    /// Decoding and CFG construction (InstructionAPI / ParseAPI).
    Parse,
    /// Snippet lowering, relocation, springboard planting (CodeGen/Patch).
    Instrument,
    /// Serialising the rewritten binary (static path).
    Rewrite,
    /// Executing or controlling the mutatee (ProcControl / emulator).
    Run,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Open => "open",
            Stage::Parse => "parse",
            Stage::Instrument => "instrument",
            Stage::Rewrite => "rewrite",
            Stage::Run => "run",
        };
        f.write_str(s)
    }
}

/// A pipeline failure, with stage and (where known) pc/address context.
#[derive(Debug)]
pub enum Error {
    /// ELF / symbol-table failure while opening or re-serialising.
    Symtab { stage: Stage, source: SymtabError },
    /// An instruction failed to decode during analysis.
    Decode { source: DecodeError },
    /// No function with the requested name in the parse.
    NoSuchFunction { name: String },
    /// Snippet lowering, relocation or springboard planting failed.
    Instrument { source: InstrumentError },
    /// The clobber audit refused the patch: the springboard at `pc`
    /// overwrites the original instructions listed in `clobbered` without
    /// redirect coverage, so control flow landing on any of them would
    /// execute torn bytes. Surfaced as its own variant (not a generic
    /// [`Error::Instrument`]) because it is the soundness contract of the
    /// springboard scheme — see `docs/FAILURE-MODES.md`.
    SpringboardClobber { pc: u64, clobbered: Vec<u64> },
    /// Conservative refusal: the function at `func` has `count` indirect
    /// transfers whose targets could not be resolved, so relocating it
    /// may orphan live control flow. Opt in with
    /// `SessionOptions::allow_unresolved(true)` to proceed anyway.
    UnresolvedIndirects { func: u64, count: usize },
    /// The mutatee hit a trap springboard whose redirect is missing from
    /// the trap table — instrumented code the runtime cannot reach.
    RedirectMiss { pc: u64 },
    /// A delivered patch region read back different bytes than were
    /// written (partial/failed delivery through the debug interface).
    PatchVerifyFailed { addr: u64 },
    /// The debug interface refused an operation; `pc` is the mutatee's
    /// program counter at the time, when a process was attached.
    Proc { source: ProcError, pc: Option<u64> },
    /// The mutatee took a memory / fetch / illegal-instruction fault at
    /// `pc` while touching `addr`.
    MutateeFault { pc: u64, addr: u64 },
    /// The mutatee stopped without exiting cleanly (fuel exhaustion, an
    /// unexpected trap, …); `pc`/`icount` locate how far it got.
    UncleanExit {
        reason: String,
        pc: u64,
        icount: u64,
    },
    /// The emulator's translation-cache coherence assertion tripped: a
    /// cached basic block's source bytes changed without an invalidation.
    /// Only reachable when `verify_translations` is armed on the machine
    /// and executable text is mutated behind the debug interface — a
    /// mutator bug, never a mutatee condition. See `docs/EMULATOR.md`.
    CacheIncoherent { pc: u64 },
    /// A fleet operation targeted the process under controller-assigned
    /// pid `pid`, but that process is gone — it exited before (or while)
    /// the operation could be delivered, or the pid was never part of
    /// the fleet. The per-process analogue of a `waitpid` race: the
    /// failure is attributed to exactly one mutatee, and the rest of the
    /// fleet is unaffected (see `docs/FLEET.md` fault isolation).
    FleetProcessLost { pid: u32 },
    /// A serialized memory-trace stream (`rvdyn-trace-v1`, produced by
    /// [`crate::tools::TraceSink`]) failed validation while being read
    /// back: bad magic, a truncated record, a count mismatch, or a
    /// checksum failure. `offset` is the byte offset at which decoding
    /// stopped making sense. Corrupt trace files are *data* for the
    /// reader to reject, never a panic — see `docs/FAILURE-MODES.md`.
    TraceCorrupt { offset: u64, reason: String },
    /// Per-block count recovery failed for the function at `func`: a
    /// counter variable could not be read back, or the placed counter
    /// values violate the CFG flow equations (a negative reconstructed
    /// count). `addr` is the unreadable variable or the inconsistent
    /// block. Indicates a torn run (early exit mid-function) or counter
    /// memory corruption — the counts cannot have come from a complete
    /// execution of the planned CFG.
    CounterReconstruct { func: u64, addr: u64 },
}

impl Error {
    /// The pipeline stage the error belongs to.
    pub fn stage(&self) -> Stage {
        match self {
            Error::Symtab { stage, .. } => *stage,
            Error::Decode { .. } => Stage::Parse,
            Error::NoSuchFunction { .. } => Stage::Parse,
            Error::Instrument { .. }
            | Error::SpringboardClobber { .. }
            | Error::UnresolvedIndirects { .. }
            | Error::PatchVerifyFailed { .. } => Stage::Instrument,
            Error::Proc { .. }
            | Error::MutateeFault { .. }
            | Error::UncleanExit { .. }
            | Error::RedirectMiss { .. }
            | Error::CacheIncoherent { .. }
            | Error::FleetProcessLost { .. }
            | Error::TraceCorrupt { .. }
            | Error::CounterReconstruct { .. } => Stage::Run,
        }
    }

    /// The mutatee/analysis address most relevant to the error, if any:
    /// the faulting pc, the undecodable instruction, the bad address.
    pub fn pc(&self) -> Option<u64> {
        match self {
            Error::Decode { source } => Some(source.address()),
            Error::Proc { pc, .. } => *pc,
            Error::MutateeFault { pc, .. }
            | Error::UncleanExit { pc, .. }
            | Error::RedirectMiss { pc }
            | Error::CacheIncoherent { pc }
            | Error::SpringboardClobber { pc, .. } => Some(*pc),
            Error::UnresolvedIndirects { func, .. } => Some(*func),
            Error::PatchVerifyFailed { addr } => Some(*addr),
            Error::CounterReconstruct { addr, .. } => Some(*addr),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Symtab { stage, source } => write!(f, "[{stage}] {source}"),
            Error::Decode { source } => write!(f, "[parse] {source}"),
            Error::NoSuchFunction { name } => {
                write!(f, "[parse] no function named {name:?}")
            }
            Error::Instrument { source } => write!(f, "[instrument] {source}"),
            Error::SpringboardClobber { pc, clobbered } => {
                write!(
                    f,
                    "[instrument] springboard at {pc:#x} clobbers {} \
                     instruction(s) without redirect coverage:",
                    clobbered.len()
                )?;
                for a in clobbered {
                    write!(f, " {a:#x}")?;
                }
                Ok(())
            }
            Error::UnresolvedIndirects { func, count } => write!(
                f,
                "[instrument] function {func:#x} has {count} unresolved \
                 indirect transfer(s); refusing to relocate (opt in with \
                 allow_unresolved)"
            ),
            Error::RedirectMiss { pc } => {
                write!(f, "[run] trap springboard at {pc:#x} has no redirect entry")
            }
            Error::PatchVerifyFailed { addr } => write!(
                f,
                "[instrument] patch region at {addr:#x} failed read-back \
                 verification"
            ),
            Error::Proc {
                source,
                pc: Some(pc),
            } => {
                write!(f, "[run] {source} (mutatee pc {pc:#x})")
            }
            Error::Proc { source, pc: None } => write!(f, "[run] {source}"),
            Error::MutateeFault { pc, addr } => {
                write!(f, "[run] mutatee faulted at {pc:#x} touching {addr:#x}")
            }
            Error::UncleanExit { reason, pc, icount } => write!(
                f,
                "[run] mutatee did not exit cleanly: {reason} \
                 (pc {pc:#x} after {icount} instructions)"
            ),
            Error::CacheIncoherent { pc } => write!(
                f,
                "[run] translation cache incoherent at {pc:#x}: cached text \
                 changed without invalidation"
            ),
            Error::FleetProcessLost { pid } => write!(
                f,
                "[run] fleet process {pid} is gone: it exited before the \
                 operation could be delivered (or was never in the fleet)"
            ),
            Error::TraceCorrupt { offset, reason } => {
                write!(f, "[run] trace stream corrupt at byte {offset}: {reason}")
            }
            Error::CounterReconstruct { func, addr } => write!(
                f,
                "[run] per-block count reconstruction failed for function \
                 {func:#x} at {addr:#x}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Symtab { source, .. } => Some(source),
            Error::Decode { source } => Some(source),
            Error::Instrument { source } => Some(source),
            Error::Proc { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SymtabError> for Error {
    fn from(source: SymtabError) -> Error {
        Error::Symtab {
            stage: Stage::Open,
            source,
        }
    }
}

impl From<DecodeError> for Error {
    fn from(source: DecodeError) -> Error {
        Error::Decode { source }
    }
}

impl From<InstrumentError> for Error {
    fn from(source: InstrumentError) -> Error {
        match source {
            // The clobber audit's refusal is a first-class contract
            // violation, promoted out of the generic instrument wrapper.
            InstrumentError::SpringboardClobber { pc, clobbered } => {
                Error::SpringboardClobber { pc, clobbered }
            }
            source => Error::Instrument { source },
        }
    }
}

impl From<CodeGenError> for Error {
    fn from(source: CodeGenError) -> Error {
        Error::Instrument {
            source: InstrumentError::CodeGen(source),
        }
    }
}

impl From<RelocateError> for Error {
    fn from(source: RelocateError) -> Error {
        Error::Instrument {
            source: InstrumentError::Relocate(source),
        }
    }
}

impl From<ProcError> for Error {
    fn from(source: ProcError) -> Error {
        match source {
            // The coherence assertion is a first-class contract violation
            // (like SpringboardClobber), not a generic proc failure.
            ProcError::CacheIncoherent(pc) => Error::CacheIncoherent { pc },
            source => Error::Proc { source, pc: None },
        }
    }
}
